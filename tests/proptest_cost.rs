//! Property-based pins for the pluggable cost layer: the default `CostModel`
//! impl is bit-identical to the pre-refactor `program_time`/`CostAccumulator`
//! path, every model upholds the prefix-admissibility contract, and the
//! interned cost cache never changes a prediction — standalone or through
//! the whole pipeline.

use std::sync::Arc;

use proptest::prelude::*;

use p2::cost::{
    AlphaBetaModel, CachedCostModel, CalibratedModel, CostAccumulator, CostModel, LogGpModel,
    NcclAlgo,
};
use p2::placement::{enumerate_matrices, ordered_factorizations};
use p2::synthesis::{HierarchyKind, LoweredProgram, Synthesizer};
use p2::topology::{Hierarchy, Interconnect, SystemTopology};
use p2::{P2Config, P2};

/// Strategy: a 2-level system with a fast local link and a slow global link,
/// a factorization of its device count into 1–2 axes, and a reduction axis.
fn small_scenario() -> impl Strategy<Value = (SystemTopology, Vec<usize>, usize)> {
    (2usize..=4, 2usize..=8, 1usize..=2).prop_flat_map(|(nodes, gpus, num_axes)| {
        let devices = nodes * gpus;
        let factorizations = ordered_factorizations(devices, num_axes);
        (0..factorizations.len(), 0..num_axes).prop_map(move |(fi, reduction_axis)| {
            let hierarchy = Hierarchy::from_pairs([("node", nodes), ("gpu", gpus)]).unwrap();
            let links = vec![
                Interconnect::new("nic", 8.0e9, 20.0e-6).unwrap(),
                Interconnect::new("nvlink", 150.0e9, 2.0e-6).unwrap(),
            ];
            let system = SystemTopology::new(hierarchy, links).unwrap();
            (system, factorizations[fi].clone(), reduction_axis)
        })
    })
}

/// A sample of lowered programs for a scenario: up to `per_matrix` programs
/// from each of the first three matrices with a non-trivial reduction.
fn lowered_sample(
    system: &SystemTopology,
    axes: &[usize],
    reduction_axis: usize,
    per_matrix: usize,
) -> Vec<LoweredProgram> {
    let arities = system.hierarchy().arities();
    let mut out = Vec::new();
    for matrix in enumerate_matrices(&arities, axes).unwrap() {
        if matrix.axis_sizes()[reduction_axis] < 2 {
            continue;
        }
        let synth =
            Synthesizer::new(matrix, vec![reduction_axis], HierarchyKind::ReductionAxes).unwrap();
        for program in synth.synthesize(3).programs.iter().take(per_matrix) {
            out.push(synth.lower(program).unwrap());
        }
        if out.len() >= 3 * per_matrix {
            break;
        }
    }
    out
}

/// Every built-in model over a system, including a decorated stack.
fn all_models(system: &SystemTopology, bytes: f64, algo: NcclAlgo) -> Vec<Arc<dyn CostModel>> {
    let alpha: Arc<dyn CostModel> =
        Arc::new(AlphaBetaModel::new(system.clone(), algo, bytes).unwrap());
    let depth = system.hierarchy().depth();
    let scales: Vec<f64> = (0..depth).map(|l| 1.3 - 0.3 * l as f64).collect();
    vec![
        Arc::clone(&alpha),
        Arc::new(LogGpModel::new(system.clone(), algo, bytes).unwrap()),
        Arc::new(CalibratedModel::new(Arc::clone(&alpha), scales).unwrap()),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The pre-refactor contract, now stated for the trait: `program_time`
    /// equals the in-order `+`-fold of the step times — whether folded by the
    /// default method, by an explicit loop, or by a `CostAccumulator`, and
    /// whether dispatched concretely or through `dyn CostModel` — bit for
    /// bit, with every prefix an admissible lower bound.
    #[test]
    fn program_time_is_the_fold_of_step_times((system, axes, reduction_axis) in small_scenario()) {
        let bytes = 1.0e8;
        for algo in NcclAlgo::ALL {
            let model = AlphaBetaModel::new(system.clone(), algo, bytes).unwrap();
            let dyn_model: &dyn CostModel = &model;
            for lowered in lowered_sample(&system, &axes, reduction_axis, 4) {
                let total = model.program_time(&lowered);
                prop_assert_eq!(dyn_model.program_time(&lowered), total);
                prop_assert_eq!(model.program_breakdown(&lowered).total(), total);
                let mut fold = 0.0;
                let mut acc = CostAccumulator::new(dyn_model);
                for step in &lowered.steps {
                    fold += model.step_time(step);
                    let running = acc.push(step);
                    prop_assert_eq!(running, fold);
                    prop_assert!(running <= total + 1e-15, "prefix above total");
                }
                prop_assert_eq!(fold, total);
                prop_assert_eq!(acc.seconds(), total);
            }
        }
    }

    /// Admissibility holds for every built-in model: step times are
    /// non-negative and finite, so prefixes never overshoot.
    #[test]
    fn all_models_produce_admissible_non_negative_times(
        (system, axes, reduction_axis) in small_scenario()
    ) {
        for model in all_models(&system, 1.0e8, NcclAlgo::Ring) {
            for lowered in lowered_sample(&system, &axes, reduction_axis, 3) {
                let total = model.program_time(&lowered);
                prop_assert!(total.is_finite() && total >= 0.0, "bad total {total}");
                let mut acc = CostAccumulator::new(model.as_ref());
                for step in &lowered.steps {
                    let t = model.step_time(step);
                    prop_assert!(t.is_finite() && t >= 0.0, "bad step time {t}");
                    acc.push(step);
                }
                prop_assert_eq!(acc.seconds(), total);
            }
        }
    }

    /// The interned cache is invisible: every step time and program time it
    /// serves — cold or hot — equals the wrapped model's, bit for bit.
    #[test]
    fn cost_cache_never_changes_predictions((system, axes, reduction_axis) in small_scenario()) {
        for model in all_models(&system, 1.0e8, NcclAlgo::Ring) {
            let cached = CachedCostModel::new(Arc::clone(&model));
            for lowered in lowered_sample(&system, &axes, reduction_axis, 4) {
                for step in &lowered.steps {
                    let expected = model.step_time(step);
                    prop_assert_eq!(cached.step_time(step), expected); // cold or warm
                    prop_assert_eq!(cached.step_time(step), expected); // guaranteed warm
                }
                prop_assert_eq!(cached.program_time(&lowered), model.program_time(&lowered));
            }
            let stats = cached.stats();
            prop_assert!(stats.hits > 0, "the sample never hit the cache");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// End to end: a pipeline run with the per-placement cost cache is
    /// bit-identical to one without, predictions and measurements alike.
    #[test]
    fn pipeline_results_are_cache_invariant((system, axes, reduction_axis) in small_scenario()) {
        let config = P2Config::new(system, axes, vec![reduction_axis])
            .with_bytes_per_device(1.0e8)
            .with_repeats(1)
            .with_max_program_size(3)
            .with_threads(2);
        let cached = P2::new(config.clone().with_cost_cache(true)).unwrap().run().unwrap();
        let uncached = P2::new(config.with_cost_cache(false)).unwrap().run().unwrap();
        prop_assert_eq!(cached.placements.len(), uncached.placements.len());
        for (pa, pb) in cached.placements.iter().zip(&uncached.placements) {
            prop_assert_eq!(&pa.matrix, &pb.matrix);
            prop_assert_eq!(pa.allreduce_predicted, pb.allreduce_predicted);
            prop_assert_eq!(pa.allreduce_measured, pb.allreduce_measured);
            prop_assert_eq!(pa.programs.len(), pb.programs.len());
            for (qa, qb) in pa.programs.iter().zip(&pb.programs) {
                prop_assert_eq!(qa.signature(), qb.signature());
                prop_assert_eq!(qa.predicted_seconds, qb.predicted_seconds);
                prop_assert_eq!(qa.measured_seconds, qb.measured_seconds);
            }
        }
    }
}
