//! Determinism of the parallel placement × synthesis sweep: for a fixed seed,
//! [`p2::P2::run`] must produce bit-identical results serially and under any
//! worker-thread count, and every session entry point (builder,
//! `P2::new(config).with_mode(...)`) must agree with the others the same way.
//! This pins down the `--seed` reproducibility contract: noise is a pure
//! function of (seed, program content), never of evaluation order.

use p2::{
    presets, run_batch, BatchOptions, ExperimentResult, NcclAlgo, P2Config, RunMode,
    SystemTopology, P2,
};

fn config(seed: u64) -> P2Config {
    P2Config::new(presets::a100_system(2), vec![8, 4], vec![0])
        .with_algo(NcclAlgo::Ring)
        .with_bytes_per_device(1.0e9)
        .with_repeats(2)
        .with_seed(seed)
}

/// Strict equality of everything rankings are built from (synthesis wall-clock
/// time is excluded: it is the one genuinely nondeterministic field).
fn assert_identical(a: &ExperimentResult, b: &ExperimentResult) {
    assert_eq!(a.label, b.label);
    assert_eq!(a.parallelism_axes, b.parallelism_axes);
    assert_eq!(a.reduction_axes, b.reduction_axes);
    assert_eq!(a.placements.len(), b.placements.len());
    for (pa, pb) in a.placements.iter().zip(&b.placements) {
        assert_eq!(pa.matrix.to_string(), pb.matrix.to_string());
        assert_eq!(pa.num_programs, pb.num_programs);
        assert_eq!(pa.programs_pruned, pb.programs_pruned);
        assert_eq!(pa.programs_retained, pb.programs_retained);
        assert_eq!(pa.allreduce_predicted, pb.allreduce_predicted);
        assert_eq!(pa.allreduce_measured, pb.allreduce_measured);
        for (qa, qb) in pa.programs.iter().zip(&pb.programs) {
            assert_eq!(qa.signature(), qb.signature());
            assert_eq!(qa.predicted_seconds, qb.predicted_seconds);
            assert_eq!(qa.measured_seconds, qb.measured_seconds);
        }
    }
}

#[test]
fn full_run_is_identical_across_thread_counts() {
    let serial = P2::new(config(0x5eed).with_threads(1))
        .unwrap()
        .run()
        .unwrap();
    for threads in [0, 2, 4, 8] {
        let parallel = P2::new(config(0x5eed).with_threads(threads))
            .unwrap()
            .run()
            .unwrap();
        assert_identical(&serial, &parallel);
    }
}

#[test]
fn shortlist_run_is_identical_across_thread_counts() {
    let p2_serial = P2::new(config(0xabcd).with_threads(1))
        .unwrap()
        .with_mode(RunMode::Shortlist(10));
    let serial = p2_serial.run().unwrap();
    for threads in [2, 4] {
        let p2_parallel = P2::new(config(0xabcd).with_threads(threads))
            .unwrap()
            .with_mode(RunMode::Shortlist(10));
        assert_identical(&serial, &p2_parallel.run().unwrap());
    }
}

/// The api_redesign acceptance criterion, migrated from the removed
/// `run_with_shortlist` shim: the builder + `RunMode::Shortlist` session is
/// bit-identical to assembling a `P2Config` by hand and selecting the mode
/// with `with_mode`, pinned on the paper's presets (an A100 and a V100
/// system) with the shim's historical cases and seed.
#[test]
fn builder_shortlist_is_bit_identical_to_config_with_mode() {
    let cases: [(SystemTopology, Vec<usize>, Vec<usize>); 3] = [
        (presets::a100_system(2), vec![8, 4], vec![0]),
        (presets::v100_system(2), vec![4, 4], vec![1]),
        (presets::a100_system(2), vec![16, 2], vec![0, 1]),
    ];
    for (system, axes, reduction) in cases {
        let new_api = P2::builder(system.clone())
            .parallelism_axes(axes.clone())
            .reduction_axes(reduction.clone())
            .algo(NcclAlgo::Ring)
            .bytes_per_device(1.0e9)
            .repeats(2)
            .seed(0x5eed)
            .mode(RunMode::Shortlist(10))
            .run()
            .unwrap();
        let config = P2Config::new(system, axes, reduction)
            .with_algo(NcclAlgo::Ring)
            .with_bytes_per_device(1.0e9)
            .with_repeats(2)
            .with_seed(0x5eed);
        let via_config = P2::new(config)
            .unwrap()
            .with_mode(RunMode::Shortlist(10))
            .run()
            .unwrap();
        assert_identical(&new_api, &via_config);
    }
}

#[test]
fn bounded_retention_is_identical_across_thread_counts() {
    // The streaming top-K retention and its pruning bounds are pure
    // per-placement state, so bounded runs must stay bit-identical too.
    let serial = P2::new(config(0x5eed).with_keep_top(5).with_threads(1))
        .unwrap()
        .run()
        .unwrap();
    for threads in [0, 2, 4] {
        let parallel = P2::new(config(0x5eed).with_keep_top(5).with_threads(threads))
            .unwrap()
            .run()
            .unwrap();
        assert_identical(&serial, &parallel);
    }
    let shortlisted = P2::new(config(0x5eed).with_keep_top(5).with_threads(1))
        .unwrap()
        .with_mode(RunMode::Shortlist(5))
        .run()
        .unwrap();
    for threads in [2, 4] {
        let parallel = P2::new(config(0x5eed).with_keep_top(5).with_threads(threads))
            .unwrap()
            .with_mode(RunMode::Shortlist(5))
            .run()
            .unwrap();
        assert_identical(&shortlisted, &parallel);
    }
}

/// The sweep-wide shared interner must be invisible in the results: the same
/// experiment with shared tables on (the default) and off, serial and
/// parallel, is bit-identical everywhere rankings are built from, and the
/// deterministic statistics (states explored, per-placement device-state
/// universes, final shared-interner size) agree for any thread count.
#[test]
fn shared_interning_is_invisible_in_results() {
    let shared_serial = P2::new(config(0x5eed).with_threads(1))
        .unwrap()
        .run()
        .unwrap();
    let private_serial = P2::new(config(0x5eed).with_shared_intern(false).with_threads(1))
        .unwrap()
        .run()
        .unwrap();
    assert_identical(&shared_serial, &private_serial);
    assert!(shared_serial.shared_unique_device_states.is_some());
    assert!(private_serial.shared_unique_device_states.is_none());
    for (a, b) in shared_serial
        .placements
        .iter()
        .zip(&private_serial.placements)
    {
        assert_eq!(a.states_explored, b.states_explored);
        assert_eq!(
            a.unique_device_states, b.unique_device_states,
            "a placement's device-state universe must not depend on sharing"
        );
    }
    // The shared interner holds each device state once for the whole sweep,
    // so its final size never exceeds the sum of per-placement universes.
    let per_placement_sum: usize = shared_serial
        .placements
        .iter()
        .map(|p| p.unique_device_states)
        .sum();
    let shared_size = shared_serial.shared_unique_device_states.unwrap();
    assert!(shared_size > 0 && shared_size <= per_placement_sum);
    assert_eq!(shared_serial.peak_unique_device_states(), shared_size);
    for threads in [0, 2, 4] {
        let parallel = P2::new(config(0x5eed).with_threads(threads))
            .unwrap()
            .run()
            .unwrap();
        assert_identical(&shared_serial, &parallel);
        assert_eq!(
            parallel.shared_unique_device_states, shared_serial.shared_unique_device_states,
            "the final shared-interner size is a set union: thread-count independent"
        );
        for (a, b) in shared_serial.placements.iter().zip(&parallel.placements) {
            assert_eq!(a.unique_device_states, b.unique_device_states);
            assert_eq!(a.suffix_memo_hits, b.suffix_memo_hits);
            assert_eq!(a.suffix_memo_misses, b.suffix_memo_misses);
        }
    }
}

/// The cross-run table store must be result-invisible: a warm-started run
/// (snapshot loaded from disk) is bit-identical to the cold run that wrote
/// the snapshot and to a store-less baseline — for 1, 2 and 8 worker
/// threads, so warm seeding cannot interact with the steal schedule.
#[test]
fn warm_started_runs_are_identical_to_cold_runs_for_any_thread_count() {
    let dir = std::env::temp_dir().join(format!(
        "p2-determinism-store-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    let baseline = P2::new(config(0x5eed).with_threads(1))
        .unwrap()
        .run()
        .unwrap();
    let cold = P2::new(config(0x5eed).with_threads(1).with_table_store_dir(&dir))
        .unwrap()
        .run()
        .unwrap();
    let cold_stats = cold.table_store.clone().expect("store was active");
    assert!(!cold_stats.loaded);
    assert!(cold_stats.saved);
    assert!(cold_stats.saved_states > 0);
    assert_identical(&baseline, &cold);
    for threads in [1usize, 2, 8] {
        let warm = P2::new(
            config(0x5eed)
                .with_threads(threads)
                .with_table_store_dir(&dir),
        )
        .unwrap()
        .run()
        .unwrap();
        let stats = warm.table_store.clone().expect("store was active");
        assert!(stats.loaded, "threads={threads}: snapshot must load");
        assert_eq!(stats.table_key, cold_stats.table_key);
        assert_eq!(stats.warm_states, cold_stats.saved_states);
        assert!(stats.seeded_searches > 0, "threads={threads}");
        assert_identical(&baseline, &warm);
        // The warm interner starts from exactly the cold run's final state
        // set and produces the same states, so the final sizes agree too.
        assert_eq!(
            warm.shared_unique_device_states,
            cold.shared_unique_device_states
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn different_seeds_produce_different_measurements() {
    let a = P2::new(config(1)).unwrap().run().unwrap();
    let b = P2::new(config(2)).unwrap().run().unwrap();
    let measured = |r: &ExperimentResult| -> Vec<f64> {
        r.placements
            .iter()
            .flat_map(|p| p.programs.iter().map(|q| q.measured_seconds))
            .collect()
    };
    assert_ne!(measured(&a), measured(&b), "noise must depend on the seed");
    // Predictions are noise-free and must agree regardless of seed. Programs
    // are ranked by seed-dependent measured time, so compare order-free.
    let predicted = |r: &ExperimentResult| -> Vec<f64> {
        let mut p: Vec<f64> = r
            .placements
            .iter()
            .flat_map(|p| p.programs.iter().map(|q| q.predicted_seconds))
            .collect();
        p.sort_by(f64::total_cmp);
        p
    };
    assert_eq!(predicted(&a), predicted(&b));
}

#[test]
fn repeated_runs_of_the_same_tool_are_identical() {
    let tool = P2::new(config(0x7777)).unwrap();
    assert_identical(&tool.run().unwrap(), &tool.run().unwrap());
}

fn batch_config(axes: Vec<usize>, reduction: Vec<usize>) -> P2Config {
    P2Config::new(presets::a100_system(2), axes, reduction)
        .with_algo(NcclAlgo::Ring)
        .with_bytes_per_device(1.0e9)
        .with_repeats(2)
        .with_seed(0x5eed)
}

/// The batch-scheduling contract: a [`run_batch`] of several sessions on one
/// work-stealing pool is bit-identical to running each session alone with a
/// single thread — for 1, 2 and 8 workers and across steal-schedule seeds.
/// One session runs in `Shortlist` mode so the measurement stage is scheduled
/// through the shared pool too.
#[test]
fn batched_sessions_are_identical_to_serial_runs_for_any_thread_count() {
    let cases: [(Vec<usize>, Vec<usize>); 3] = [
        (vec![8, 4], vec![0]),
        (vec![16, 2], vec![1]),
        (vec![4, 8], vec![0]),
    ];
    let build = |axes: &Vec<usize>, reduction: &Vec<usize>, threads: usize| {
        let session =
            P2::new(batch_config(axes.clone(), reduction.clone()).with_threads(threads)).unwrap();
        if *axes == vec![16, 2] {
            session.with_mode(RunMode::Shortlist(5))
        } else {
            session
        }
    };
    let serial: Vec<ExperimentResult> = cases
        .iter()
        .map(|(axes, reduction)| build(axes, reduction, 1).run().unwrap())
        .collect();
    let sessions: Vec<P2> = cases
        .iter()
        .map(|(axes, reduction)| build(axes, reduction, 1))
        .collect();
    for threads in [1usize, 2, 8] {
        for steal_seed in [0u64, 0xdead_beef] {
            let options = BatchOptions {
                threads,
                steal_seed,
                ..BatchOptions::default()
            };
            let outcome = run_batch(&sessions, &options, &()).unwrap();
            assert_eq!(outcome.results.len(), serial.len());
            for (a, b) in serial.iter().zip(&outcome.results) {
                assert_identical(a, b);
            }
        }
    }
}
