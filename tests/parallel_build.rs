//! Cross-crate tests of the parallel level-synchronous DAG build: the
//! parallel construction must be bit-identical to the serial one for any
//! thread count and any steal schedule, and the shared tables it runs on
//! must stay consistent under arbitrary concurrent hammering.

use std::sync::Arc;

use proptest::prelude::*;

use p2::collectives::{Collective, SharedTables, State};
use p2::placement::{enumerate_matrices, ordered_factorizations, ParallelismMatrix};
use p2::presets;
use p2::synthesis::{HierarchyKind, SynthesisStats, Synthesizer};
use p2::topology::{Hierarchy, Interconnect, SystemTopology};
use p2_par::{scope_with, SchedulerOptions};

/// The statistics of a search that are deterministic for every thread count
/// and steal schedule (the apply hit/miss *split* and the shared-reuse count
/// legitimately depend on interleaving; their sums below do not).
fn deterministic_stats(
    stats: &SynthesisStats,
) -> (usize, usize, usize, usize, usize, usize, usize) {
    (
        stats.states_explored,
        stats.instructions_tried,
        stats.candidate_instructions,
        stats.programs_emitted,
        stats.unique_device_states,
        stats.goal_respects_entries,
        stats.apply_cache_hits + stats.apply_cache_misses,
    )
}

/// Strategy: a 2-level system, a factorization of its device count into 1–2
/// axes, and a reduction axis (same shape as the synthesis proptests).
fn small_scenario() -> impl Strategy<Value = (SystemTopology, Vec<usize>, usize)> {
    (2usize..=4, 2usize..=8, 1usize..=2).prop_flat_map(|(nodes, gpus, num_axes)| {
        let devices = nodes * gpus;
        let factorizations = ordered_factorizations(devices, num_axes);
        (0..factorizations.len(), 0..num_axes).prop_map(move |(fi, reduction_axis)| {
            let hierarchy = Hierarchy::from_pairs([("node", nodes), ("gpu", gpus)]).unwrap();
            let links = vec![
                Interconnect::new("nic", 8.0e9, 20.0e-6).unwrap(),
                Interconnect::new("nvlink", 150.0e9, 2.0e-6).unwrap(),
            ];
            let system = SystemTopology::new(hierarchy, links).unwrap();
            (system, factorizations[fi].clone(), reduction_axis)
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// For random small matrices, the parallel build reproduces the serial
    /// build bit for bit — same programs in the same order, same
    /// deterministic statistics — at thread counts 2 and 8 (and 0 = all
    /// cores), across sizes 1..=3.
    #[test]
    fn parallel_build_matches_serial_for_random_scenarios(
        (system, axes, reduction_axis) in small_scenario()
    ) {
        let arities = system.hierarchy().arities();
        for matrix in enumerate_matrices(&arities, &axes).unwrap().into_iter().take(2) {
            prop_assume!(matrix.axis_sizes()[reduction_axis] > 1);
            for max_size in 1..=3 {
                let serial =
                    Synthesizer::new(matrix.clone(), vec![reduction_axis], HierarchyKind::ReductionAxes)
                        .unwrap()
                        .synthesize(max_size);
                for threads in [0usize, 2, 8] {
                    let parallel = Synthesizer::new(
                        matrix.clone(),
                        vec![reduction_axis],
                        HierarchyKind::ReductionAxes,
                    )
                    .unwrap()
                    .with_build_threads(threads)
                    .synthesize(max_size);
                    prop_assert_eq!(&parallel.programs, &serial.programs);
                    prop_assert_eq!(
                        deterministic_stats(&parallel.stats),
                        deterministic_stats(&serial.stats)
                    );
                }
            }
        }
    }
}

/// The two pinned acceptance matrices: the figure-2d running example and the
/// heaviest rack/node/GPU placement.
fn pinned_cases() -> Vec<(ParallelismMatrix, Vec<usize>)> {
    let figure2d = ParallelismMatrix::new(
        vec![vec![1, 1, 2, 2], vec![1, 2, 1, 2]],
        vec![1, 2, 2, 4],
        vec![4, 4],
    )
    .unwrap();
    let rack = presets::rack_node_gpu_system(2, 2, 4);
    let rack_matrix = enumerate_matrices(&rack.hierarchy().arities(), &[16])
        .unwrap()
        .remove(0);
    vec![(figure2d, vec![1]), (rack_matrix, vec![0])]
}

/// The parallel build is bit-identical to the serial build for every steal
/// schedule: running inside pools seeded with arbitrary deque-assignment
/// permutations (so jobs land on different workers and steals happen in
/// different orders) never changes a program, its position, or a
/// deterministic statistic.
#[test]
fn parallel_build_is_bit_identical_across_steal_seeds() {
    for (matrix, reduction) in pinned_cases() {
        let serial = Synthesizer::new(
            matrix.clone(),
            reduction.clone(),
            HierarchyKind::ReductionAxes,
        )
        .unwrap()
        .synthesize(5);
        for seed in [0u64, 1, 0x5eed_5eed_5eed_5eed] {
            let (programs, stats) =
                scope_with(SchedulerOptions { threads: 4, seed }, |scheduler| {
                    let matrix = matrix.clone();
                    let reduction = reduction.clone();
                    scheduler
                        .spawn(move || {
                            // Running on a pool worker: the build recruits
                            // this pool's idle workers via nested batches.
                            let result =
                                Synthesizer::new(matrix, reduction, HierarchyKind::ReductionAxes)
                                    .unwrap()
                                    .with_build_threads(4)
                                    .synthesize(5);
                            (result.programs, result.stats)
                        })
                        .join()
                });
            assert_eq!(
                programs, serial.programs,
                "programs diverged at seed {seed:#x}"
            );
            assert_eq!(
                deterministic_stats(&stats),
                deterministic_stats(&serial.stats),
                "stats diverged at seed {seed:#x}"
            );
        }
    }
}

/// Several parallel builds over one shared table set, racing each other,
/// still each reproduce their serial result exactly.
#[test]
fn concurrent_parallel_builds_share_tables_without_divergence() {
    let tables = Arc::new(SharedTables::new());
    let cases = pinned_cases();
    let serial: Vec<_> = cases
        .iter()
        .map(|(matrix, reduction)| {
            Synthesizer::new(
                matrix.clone(),
                reduction.clone(),
                HierarchyKind::ReductionAxes,
            )
            .unwrap()
            .synthesize(4)
        })
        .collect();
    let tables_ref = &tables;
    scope_with(
        SchedulerOptions {
            threads: 4,
            seed: 7,
        },
        |scheduler| {
            let handles: Vec<_> = cases
                .iter()
                .enumerate()
                .flat_map(|(ci, (matrix, reduction))| {
                    (0..3).map(move |_| {
                        let matrix = matrix.clone();
                        let reduction = reduction.clone();
                        let tables = Arc::clone(tables_ref);
                        scheduler.spawn(move || {
                            let result =
                                Synthesizer::new(matrix, reduction, HierarchyKind::ReductionAxes)
                                    .unwrap()
                                    .with_shared_tables(tables)
                                    .with_build_threads(2)
                                    .synthesize(4);
                            (ci, result)
                        })
                    })
                })
                .collect();
            for handle in handles {
                let (ci, result) = handle.join();
                assert_eq!(result.programs, serial[ci].programs);
                assert_eq!(
                    result.stats.states_explored,
                    serial[ci].stats.states_explored
                );
                assert_eq!(
                    result.stats.goal_respects_entries,
                    serial[ci].stats.goal_respects_entries
                );
            }
        },
    );
}

/// Stress: eight threads hammer one [`SharedTables`] with interleaved
/// interning, lock-free gets and apply-cache lookups over overlapping state
/// sets. Every thread must observe the same id for the same state, every
/// apply must produce the same outputs no matter who computed it first, and
/// the final table must round-trip every id it handed out.
#[test]
fn shared_tables_survive_multithreaded_hammering() {
    const DEVICES: usize = 8;
    const THREADS: usize = 8;
    const ROUNDS: usize = 40;

    let tables = Arc::new(SharedTables::new());
    let results: Vec<Vec<(u32, Vec<u32>)>> = std::thread::scope(|ts| {
        let handles: Vec<_> = (0..THREADS)
            .map(|t| {
                let tables = Arc::clone(&tables);
                ts.spawn(move || {
                    let mut log = Vec::new();
                    for round in 0..ROUNDS {
                        // Every thread walks the same states in a different
                        // order, so first-interner races are constant.
                        for i in 0..DEVICES {
                            let device = (i + t + round) % DEVICES;
                            let (id, _) = tables.intern(State::initial(DEVICES, device));
                            // The id must immediately resolve, lock-free,
                            // to the state that was interned.
                            assert_eq!(tables.get(id).as_ref(), &State::initial(DEVICES, device));
                            let members: Vec<u32> = (0..DEVICES)
                                .map(|d| tables.intern(State::initial(DEVICES, d)).0)
                                .collect();
                            let (out, _) = tables.apply(Collective::AllReduce, &members);
                            let out = out.expect("all-reduce over initial states is valid");
                            log.push((id, out.to_vec()));
                        }
                    }
                    log
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    // Same state ⇒ same id, on every thread: re-intern serially and compare.
    let canonical: Vec<u32> = (0..DEVICES)
        .map(|d| tables.intern(State::initial(DEVICES, d)).0)
        .collect();
    for log in &results {
        for (round_offset, (id, out)) in log.iter().enumerate() {
            let device = {
                // Reconstruct which device this entry interned.
                let t = results.iter().position(|l| std::ptr::eq(l, log)).unwrap();
                let round = round_offset / DEVICES;
                let i = round_offset % DEVICES;
                (i + t + round) % DEVICES
            };
            assert_eq!(*id, canonical[device], "intern id diverged across threads");
            // All-reduce over all initial states yields one fully-reduced
            // replicated state per member — identical for every caller.
            assert_eq!(out, &log[0].1, "apply outputs diverged across threads");
        }
    }
    // Exactly the states we interned exist (DEVICES initial states plus the
    // all-reduce outputs), and every id round-trips.
    let n = tables.num_states();
    assert!(n >= DEVICES, "at least the initial states must be present");
    for id in 0..n as u32 {
        let state = tables.get(id);
        assert_eq!(tables.intern(state.as_ref().clone()).0, id);
    }
}
