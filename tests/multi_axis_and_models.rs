//! Integration tests for multi-axis reductions (the collapsed synthesis
//! hierarchy of Table 1) and for the agreement between the two performance
//! models on physically meaningful properties.

use p2::cost::{AlphaBetaModel, CostModel, NcclAlgo};
use p2::exec::{ExecConfig, Executor};
use p2::placement::ParallelismMatrix;
use p2::synthesis::{baseline_allreduce, HierarchyKind, Synthesizer};
use p2::topology::{presets, Hierarchy, Interconnect, SystemTopology};

/// A 3-axis placement on the 4-node A100 system, reducing on axes 0 and 2
/// (the Table 4 H/I shape): the collapsed hierarchy merges the two reduction
/// axes per hardware level and lowering instantiates the pattern once per
/// coordinate of the untouched middle axis.
#[test]
fn multi_axis_reduction_lowers_to_correct_groups() {
    let matrix = ParallelismMatrix::new(
        vec![vec![2, 8], vec![2, 1], vec![1, 2]],
        vec![4, 16],
        vec![16, 2, 2],
    )
    .unwrap();
    let synth = Synthesizer::new(matrix.clone(), vec![0, 2], HierarchyKind::ReductionAxes).unwrap();
    // Collapsed synthesis hierarchy: level 0 factor 2 (axis 0), level 1 factor 16 (8 * 2).
    assert_eq!(synth.context().hierarchy().factors(), vec![1, 2, 16]);
    assert_eq!(synth.context().space_size(), 32);
    // The middle axis (size 2) is untouched, so there are 2 cosets.
    assert_eq!(synth.context().cosets().len(), 2);

    let result = synth.synthesize(3);
    assert!(result.programs.iter().any(|p| p.signature() == "AllReduce"));
    // The lowered single AllReduce must match the placement's reduction groups.
    let reduction_groups = matrix.reduction_groups(&[0, 2]).unwrap();
    assert_eq!(reduction_groups.len(), 2);
    assert!(reduction_groups.iter().all(|g| g.len() == 32));
    let allreduce = result
        .programs
        .iter()
        .find(|p| p.signature() == "AllReduce")
        .unwrap();
    let lowered = synth.lower(allreduce).unwrap();
    assert_eq!(lowered.steps[0].groups.len(), 2);
    for group in &lowered.steps[0].groups {
        let mut devices = group.devices.clone();
        devices.sort_unstable();
        assert!(reduction_groups.contains(&devices));
    }
    // Hierarchical programs exist and validate too.
    assert!(result
        .programs
        .iter()
        .any(|p| p.signature() == "ReduceScatter-AllReduce-AllGather"));
}

/// Reducing over *all* axes of a multi-axis placement is the same reduction as
/// a single axis covering the whole machine, so the best synthesized times
/// should be close.
#[test]
fn reducing_all_axes_equals_single_axis_reduction() {
    let system = presets::v100_system(2);
    let bytes = 1.0e9;
    let single = ParallelismMatrix::new(vec![vec![2, 8]], vec![2, 8], vec![16]).unwrap();
    let double =
        ParallelismMatrix::new(vec![vec![2, 2], vec![1, 4]], vec![2, 8], vec![4, 4]).unwrap();
    let best_time = |matrix: &ParallelismMatrix, axes: Vec<usize>| -> f64 {
        let synth = Synthesizer::new(matrix.clone(), axes, HierarchyKind::ReductionAxes).unwrap();
        let model = AlphaBetaModel::new(system.clone(), NcclAlgo::Ring, bytes).unwrap();
        synth
            .synthesize(4)
            .programs
            .iter()
            .map(|p| model.program_time(&synth.lower(p).unwrap()))
            .fold(f64::INFINITY, f64::min)
    };
    let t_single = best_time(&single, vec![0]);
    let t_double = best_time(&double, vec![0, 1]);
    assert!(
        (t_single - t_double).abs() / t_single < 0.05,
        "equivalent reductions should cost the same: {t_single} vs {t_double}"
    );
}

/// Doubling every interconnect's bandwidth halves both the predicted and the
/// (noise-free) measured time of a bandwidth-bound program.
#[test]
fn both_models_scale_inversely_with_bandwidth() {
    let build = |scale: f64| -> SystemTopology {
        let hierarchy = Hierarchy::from_pairs([("node", 2), ("gpu", 8)]).unwrap();
        let links = vec![
            Interconnect::new("nic", 8.0e9 * scale, 0.0).unwrap(),
            Interconnect::new("nvlink", 135.0e9 * scale, 0.0).unwrap(),
        ];
        SystemTopology::new(hierarchy, links).unwrap()
    };
    let slow = build(1.0);
    let fast = build(2.0);
    let matrix = ParallelismMatrix::new(vec![vec![2, 8]], vec![2, 8], vec![16]).unwrap();
    let program = baseline_allreduce(&matrix, &[0]).unwrap();
    let bytes = 4.0e9;

    let cost_slow = AlphaBetaModel::new(slow.clone(), NcclAlgo::Ring, bytes)
        .unwrap()
        .program_time(&program);
    let cost_fast = AlphaBetaModel::new(fast.clone(), NcclAlgo::Ring, bytes)
        .unwrap()
        .program_time(&program);
    assert!((cost_slow / cost_fast - 2.0).abs() < 1e-6);

    let exec_config = ExecConfig::new(NcclAlgo::Ring, bytes)
        .with_noise(0.0)
        .with_repeats(1);
    let exec_slow = Executor::new(&slow, exec_config.clone())
        .unwrap()
        .measure(&program);
    let exec_fast = Executor::new(&fast, exec_config).unwrap().measure(&program);
    // Launch overhead is constant, so the ratio is slightly below 2.
    let ratio = exec_slow / exec_fast;
    assert!(ratio > 1.9 && ratio <= 2.0, "exec ratio {ratio}");
}

/// The AllGather cost grows with the group size for a fixed per-rank block
/// (each rank must receive n-1 blocks), in both models.
#[test]
fn allgather_cost_grows_with_group_size() {
    use p2::synthesis::{GroupExec, LoweredProgram, LoweredStep};
    let system = presets::a100_system(1);
    let bytes = 1.0e9;
    let model = AlphaBetaModel::new(system.clone(), NcclAlgo::Ring, bytes).unwrap();
    let exec = Executor::new(
        &system,
        ExecConfig::new(NcclAlgo::Ring, bytes)
            .with_noise(0.0)
            .with_repeats(1),
    )
    .unwrap();
    let program = |n: usize| LoweredProgram {
        steps: vec![LoweredStep {
            collective: p2::Collective::AllGather,
            groups: vec![GroupExec {
                devices: (0..n).collect(),
                input_fraction: 0.25,
            }],
        }],
        num_devices: 16,
    };
    let mut last_cost = 0.0;
    let mut last_exec = 0.0;
    for n in [2usize, 4, 8, 16] {
        let p = program(n);
        let c = model.program_time(&p);
        let e = exec.measure(&p);
        assert!(c > last_cost, "cost model AllGather not monotone at n={n}");
        assert!(e > last_exec, "exec AllGather not monotone at n={n}");
        last_cost = c;
        last_exec = e;
    }
}

/// The deeper V100 PCIe system model (node / CPU / GPU) works end to end and
/// keeping the reduction inside a PCIe domain is cheaper than crossing CPUs.
#[test]
fn three_level_hierarchy_end_to_end() {
    let system = presets::v100_pcie_system(2);
    assert_eq!(system.hierarchy().depth(), 3);
    let bytes = 1.0e9;
    let model = AlphaBetaModel::new(system.clone(), NcclAlgo::Ring, bytes).unwrap();
    // Axes [4, 4]: 4-way reduction axis placed either inside a PCIe domain or
    // across nodes, depending on the matrix.
    let local = ParallelismMatrix::new(
        vec![vec![1, 1, 4], vec![2, 2, 1]],
        vec![2, 2, 4],
        vec![4, 4],
    )
    .unwrap();
    let spread = ParallelismMatrix::new(
        vec![vec![2, 2, 1], vec![1, 1, 4]],
        vec![2, 2, 4],
        vec![4, 4],
    )
    .unwrap();
    let t_local = model.program_time(&baseline_allreduce(&local, &[0]).unwrap());
    let t_spread = model.program_time(&baseline_allreduce(&spread, &[0]).unwrap());
    assert!(
        t_spread / t_local > 5.0,
        "crossing nodes should be much slower: {t_local} vs {t_spread}"
    );
    // Synthesis also works on the deeper hierarchy.
    let synth = Synthesizer::new(spread, vec![0], HierarchyKind::ReductionAxes).unwrap();
    let result = synth.synthesize(4);
    assert!(result.programs.len() > 3);
    for p in &result.programs {
        assert!(synth.lower(p).unwrap().groups_are_disjoint());
    }
}
