//! Property-based pinning of the flat bit-matrix [`State`] against a naive
//! dense boolean-matrix reference model: the word-packed representation, its
//! cached non-empty-rows mask and the single-pass semantics pre-condition
//! checks must be observationally identical to `Vec<Vec<bool>>` arithmetic
//! for union / le / retain-rows (via `ReduceScatter`) / `apply_collective`
//! round-trips.

use proptest::prelude::*;

use p2::collectives::{apply_collective, Collective, State};

/// The reference model: a `k × k` dense boolean matrix with the Figure 8
/// semantics spelled out bit by bit.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Dense {
    k: usize,
    bits: Vec<Vec<bool>>,
}

impl Dense {
    fn empty(k: usize) -> Self {
        Dense {
            k,
            bits: vec![vec![false; k]; k],
        }
    }

    fn initial(k: usize, device: usize) -> Self {
        let mut d = Dense::empty(k);
        for r in 0..k {
            d.bits[r][device] = true;
        }
        d
    }

    fn from_state(state: &State) -> Self {
        let k = state.dim();
        let mut d = Dense::empty(k);
        for r in 0..k {
            for c in 0..k {
                d.bits[r][c] = state.get(r, c);
            }
        }
        d
    }

    fn to_state(&self) -> State {
        let mut s = State::empty(self.k);
        for r in 0..self.k {
            for c in 0..self.k {
                s.set(r, c, self.bits[r][c]);
            }
        }
        s
    }

    fn union_with(&mut self, other: &Dense) {
        for (a, b) in self.bits.iter_mut().zip(&other.bits) {
            for (x, y) in a.iter_mut().zip(b) {
                *x |= y;
            }
        }
    }

    fn le(&self, other: &Dense) -> bool {
        self.bits
            .iter()
            .zip(&other.bits)
            .all(|(a, b)| a.iter().zip(b).all(|(x, y)| !x | y))
    }

    fn row_nonempty(&self, r: usize) -> bool {
        self.bits[r].iter().any(|&b| b)
    }

    fn nonempty_rows(&self) -> Vec<usize> {
        (0..self.k).filter(|&r| self.row_nonempty(r)).collect()
    }

    fn retain_rows(&self, keep: &[usize]) -> Dense {
        let mut out = Dense::empty(self.k);
        for &r in keep {
            out.bits[r] = self.bits[r].clone();
        }
        out
    }
}

/// The Figure 8 semantics over the dense model, mirroring `apply_collective`
/// (returns `None` where the real semantics reports any error).
fn dense_apply(collective: Collective, states: &[Dense]) -> Option<Vec<Dense>> {
    if states.len() < 2 {
        return None;
    }
    let k = states[0].k;
    let reduction_sum = |states: &[Dense]| -> Option<Dense> {
        let rows = states[0].nonempty_rows();
        if states.iter().any(|s| s.nonempty_rows() != rows) {
            return None;
        }
        if rows.is_empty() {
            return None;
        }
        // Pairwise-disjoint contributions per chunk, spelled out bit by bit.
        for &r in &rows {
            for c in 0..k {
                if states.iter().filter(|s| s.bits[r][c]).count() > 1 {
                    return None;
                }
            }
        }
        let mut sum = Dense::empty(k);
        for s in states {
            sum.union_with(s);
        }
        Some(sum)
    };
    match collective {
        Collective::AllReduce => {
            let sum = reduction_sum(states)?;
            Some(vec![sum; states.len()])
        }
        Collective::Reduce => {
            let sum = reduction_sum(states)?;
            let mut out = vec![Dense::empty(k); states.len()];
            out[0] = sum;
            Some(out)
        }
        Collective::ReduceScatter => {
            let sum = reduction_sum(states)?;
            let rows = sum.nonempty_rows();
            if rows.len() % states.len() != 0 {
                return None;
            }
            let per = rows.len() / states.len();
            Some(
                (0..states.len())
                    .map(|i| sum.retain_rows(&rows[i * per..(i + 1) * per]))
                    .collect(),
            )
        }
        Collective::AllGather => {
            let count = states[0].nonempty_rows().len();
            if states.iter().any(|s| s.nonempty_rows().len() != count) || count == 0 {
                return None;
            }
            for r in 0..k {
                if states.iter().filter(|s| s.row_nonempty(r)).count() > 1 {
                    return None;
                }
            }
            let mut sum = Dense::empty(k);
            for s in states {
                sum.union_with(s);
            }
            Some(vec![sum; states.len()])
        }
        Collective::Broadcast => {
            let root = &states[0];
            if !states.iter().all(|s| s.le(root)) || !states.iter().any(|s| *s != *root) {
                return None;
            }
            Some(vec![root.clone(); states.len()])
        }
    }
}

/// Strategy: a scope size plus a short random script of collectives; applying
/// the script to the initial states (keeping only successful steps) walks both
/// models through a diverse set of reachable state shapes.
fn scope_and_script() -> impl Strategy<Value = (usize, Vec<usize>)> {
    (2usize..=8).prop_flat_map(|k| {
        proptest::collection::vec(0usize..5, 0..4).prop_map(move |script| (k, script))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// `apply_collective` agrees with the dense model bit for bit — both on
    /// which applications are valid and on every output matrix — along random
    /// collective scripts from the initial states.
    #[test]
    fn apply_collective_matches_dense_model((k, script) in scope_and_script()) {
        let mut states: Vec<State> = (0..k).map(|i| State::initial(k, i)).collect();
        let mut dense: Vec<Dense> = (0..k).map(|i| Dense::initial(k, i)).collect();
        for (d, s) in dense.iter().zip(&states) {
            prop_assert_eq!(d, &Dense::from_state(s));
        }
        for step in script {
            let collective = Collective::ALL[step];
            let real = apply_collective(collective, &states);
            let model = dense_apply(collective, &dense);
            prop_assert!(
                real.is_ok() == model.is_some(),
                "validity diverged for {collective}"
            );
            let (Ok(real), Some(model)) = (real, model) else { continue };
            for (s, d) in real.iter().zip(&model) {
                prop_assert_eq!(&Dense::from_state(s), d);
            }
            states = real;
            dense = model;
        }
    }

    /// Union and le agree with the dense model on arbitrary bit patterns, and
    /// the cached non-empty-rows bookkeeping matches a full scan.
    #[test]
    fn union_le_and_mask_match_dense_model(
        (k, bits_a, bits_b) in (1usize..=9).prop_flat_map(|k| {
            let cells = proptest::collection::vec(any::<bool>(), k * k);
            (Just(k), cells.clone(), cells)
        })
    ) {
        let build = |bits: &[bool]| {
            let mut d = Dense::empty(k);
            for r in 0..k {
                for c in 0..k {
                    d.bits[r][c] = bits[r * k + c];
                }
            }
            d
        };
        let da = build(&bits_a);
        let db = build(&bits_b);
        let sa = da.to_state();
        let sb = db.to_state();
        prop_assert_eq!(&Dense::from_state(&sa), &da);

        // Cached mask bookkeeping vs. a full dense scan.
        prop_assert_eq!(sa.nonempty_rows(), da.nonempty_rows());
        prop_assert_eq!(sa.num_nonempty_rows(), da.nonempty_rows().len());
        prop_assert_eq!(sa.is_empty(), da.nonempty_rows().is_empty());
        let mask = sa.rows_mask();
        for r in 0..k {
            prop_assert_eq!(mask.get(r), da.row_nonempty(r));
        }

        // le both ways, plus union.
        prop_assert_eq!(sa.le(&sb), da.le(&db));
        prop_assert_eq!(sb.le(&sa), db.le(&da));
        let mut su = sa.clone();
        su.union_with(&sb);
        let mut du = da.clone();
        du.union_with(&db);
        prop_assert_eq!(&Dense::from_state(&su), &du);
        prop_assert_eq!(su.num_nonempty_rows(), du.nonempty_rows().len());

        // Equality and hashing see exactly the matrix bits.
        prop_assert_eq!(sa == sb, da == db);
    }

    /// Clearing bits keeps the cached mask exact (the mutation path the
    /// synthesizer never takes but the public API allows).
    #[test]
    fn bit_clears_keep_the_mask_exact(
        (k, ops) in (1usize..=9).prop_flat_map(|k| {
            let ops = proptest::collection::vec(
                (0usize..k, 0usize..k, any::<bool>()), 0..24);
            (Just(k), ops)
        })
    ) {
        let mut s = State::empty(k);
        let mut d = Dense::empty(k);
        for (r, c, value) in ops {
            s.set(r, c, value);
            d.bits[r][c] = value;
            prop_assert_eq!(s.get(r, c), value);
        }
        prop_assert_eq!(&Dense::from_state(&s), &d);
        prop_assert_eq!(s.nonempty_rows(), d.nonempty_rows());
        prop_assert_eq!(s.data_fraction(), d.nonempty_rows().len() as f64 / k as f64);
    }
}
