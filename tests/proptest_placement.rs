//! Property-based tests for parallelism-matrix enumeration and the induced
//! device mapping.

use proptest::prelude::*;

use p2::placement::{
    enumerate_matrices, for_each_matrix, ordered_factorizations, MatrixControl, ParallelismMatrix,
};

/// Strategy: a small hierarchy (2–3 levels of cardinality 1–4) plus a split of
/// the device count into 1–3 parallelism axes.
fn hierarchy_and_axes() -> impl Strategy<Value = (Vec<usize>, Vec<usize>)> {
    (proptest::collection::vec(1usize..=4, 2..=3), 1usize..=3).prop_flat_map(|(arities, axes)| {
        let devices: usize = arities.iter().product();
        // Split `devices` into `axes` ordered factors, choosing one of the
        // possible factorizations uniformly.
        let factorizations = ordered_factorizations(devices, axes);
        let idx = 0..factorizations.len();
        (Just(arities), Just(factorizations), idx)
            .prop_map(|(arities, fs, i)| (arities, fs[i].clone()))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Equations (1) and (2) of the paper hold for every enumerated matrix,
    /// and no matrix is enumerated twice.
    #[test]
    fn enumerated_matrices_satisfy_row_and_column_products(
        (arities, axes) in hierarchy_and_axes()
    ) {
        let matrices = enumerate_matrices(&arities, &axes).unwrap();
        prop_assert!(!matrices.is_empty());
        let mut seen = std::collections::HashSet::new();
        for m in &matrices {
            prop_assert!(seen.insert(m.to_string()));
            for (i, row) in m.rows().iter().enumerate() {
                prop_assert_eq!(row.iter().product::<usize>(), axes[i]);
            }
            for (j, &arity) in arities.iter().enumerate() {
                let col: usize = (0..axes.len()).map(|i| m.factor(i, j)).product();
                prop_assert_eq!(col, arity);
            }
        }
    }

    /// The device ↔ axis-coordinate mapping is a bijection for every matrix.
    #[test]
    fn device_mapping_is_a_bijection((arities, axes) in hierarchy_and_axes()) {
        for m in enumerate_matrices(&arities, &axes).unwrap() {
            let mut seen = std::collections::HashSet::new();
            for rank in 0..m.num_devices() {
                let coords = m.axis_coords(rank).unwrap();
                prop_assert_eq!(coords.len(), axes.len());
                for (i, &c) in coords.iter().enumerate() {
                    prop_assert!(c < axes[i]);
                }
                prop_assert_eq!(m.device_for_axis_coords(&coords).unwrap(), rank);
                prop_assert!(seen.insert(coords));
            }
            prop_assert_eq!(seen.len(), m.num_devices());
        }
    }

    /// Reduction groups partition the devices, have the expected size, and
    /// members agree on every non-reduction coordinate.
    #[test]
    fn reduction_groups_partition_devices(
        (arities, axes) in hierarchy_and_axes(),
        axis_selector in any::<proptest::sample::Index>(),
    ) {
        for m in enumerate_matrices(&arities, &axes).unwrap() {
            let reduction_axis = axis_selector.index(axes.len());
            let groups = m.reduction_groups(&[reduction_axis]).unwrap();
            let expected_size = axes[reduction_axis];
            let mut all: Vec<usize> = Vec::new();
            for g in &groups {
                prop_assert_eq!(g.len(), expected_size);
                let reference = m.axis_coords(g[0]).unwrap();
                for &d in g {
                    let coords = m.axis_coords(d).unwrap();
                    for (i, (&a, &b)) in coords.iter().zip(&reference).enumerate() {
                        if i != reduction_axis {
                            prop_assert_eq!(a, b);
                        }
                    }
                }
                all.extend(g);
            }
            all.sort_unstable();
            prop_assert_eq!(all, (0..m.num_devices()).collect::<Vec<_>>());
        }
    }

    /// The streaming enumeration visits exactly `enumerate_matrices()`'s
    /// matrices, in the same order, and an early stop sees a strict prefix.
    #[test]
    fn streaming_enumeration_matches_materializing(
        (arities, axes) in hierarchy_and_axes(),
        stop_selector in any::<proptest::sample::Index>(),
    ) {
        let materialized = enumerate_matrices(&arities, &axes).unwrap();
        let mut streamed: Vec<ParallelismMatrix> = Vec::new();
        let emitted = for_each_matrix(&arities, &axes, &mut |m: &ParallelismMatrix| {
            streamed.push(m.clone());
            MatrixControl::Continue
        })
        .unwrap();
        prop_assert_eq!(emitted, materialized.len());
        prop_assert_eq!(&streamed, &materialized);

        // Stopping after the n-th matrix yields exactly the first n.
        let stop_after = stop_selector.index(materialized.len()) + 1;
        let mut prefix: Vec<ParallelismMatrix> = Vec::new();
        let emitted = for_each_matrix(&arities, &axes, &mut |m: &ParallelismMatrix| {
            prefix.push(m.clone());
            if prefix.len() == stop_after {
                MatrixControl::Stop
            } else {
                MatrixControl::Continue
            }
        })
        .unwrap();
        prop_assert_eq!(emitted, stop_after);
        prop_assert_eq!(&prefix[..], &materialized[..stop_after]);
    }

    /// Ordered factorizations multiply back to the original number.
    #[test]
    fn factorizations_multiply_back(n in 1usize..=64, parts in 1usize..=4) {
        let fs = ordered_factorizations(n, parts);
        prop_assert!(!fs.is_empty());
        for f in fs {
            prop_assert_eq!(f.len(), parts);
            prop_assert_eq!(f.iter().product::<usize>(), n);
        }
    }
}
