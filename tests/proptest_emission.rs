//! Property-based and pinned tests for the suffix-memoized emission engine:
//! the memoized production path must be bit-identical (programs and order) to
//! the `synthesize_reference` oracle, the count-only fast path must agree
//! with what a counting sink would see, and early [`SinkControl::Stop`]
//! prefixes must be exact prefixes of the full enumeration.

use proptest::prelude::*;

use p2::cost::{AlphaBetaModel, CostModel, NcclAlgo};
use p2::placement::{enumerate_matrices, ordered_factorizations, ParallelismMatrix};
use p2::synthesis::{HierarchyKind, Program, SinkControl, Synthesizer};
use p2::topology::{Hierarchy, Interconnect, SystemTopology};

/// Strategy: a 2-level system, a factorization of its device count into 1–2
/// axes, and a reduction axis (the same scenario space the synthesis
/// proptests use).
fn small_scenario() -> impl Strategy<Value = (SystemTopology, Vec<usize>, usize)> {
    (2usize..=4, 2usize..=8, 1usize..=2).prop_flat_map(|(nodes, gpus, num_axes)| {
        let devices = nodes * gpus;
        let factorizations = ordered_factorizations(devices, num_axes);
        (0..factorizations.len(), 0..num_axes).prop_map(move |(fi, reduction_axis)| {
            let hierarchy = Hierarchy::from_pairs([("node", nodes), ("gpu", gpus)]).unwrap();
            let links = vec![
                Interconnect::new("nic", 8.0e9, 20.0e-6).unwrap(),
                Interconnect::new("nvlink", 150.0e9, 2.0e-6).unwrap(),
            ];
            let system = SystemTopology::new(hierarchy, links).unwrap();
            (system, factorizations[fi].clone(), reduction_axis)
        })
    })
}

fn figure2d() -> ParallelismMatrix {
    ParallelismMatrix::new(
        vec![vec![1, 1, 2, 2], vec![1, 2, 1, 2]],
        vec![1, 2, 2, 4],
        vec![4, 4],
    )
    .unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The memoized emission is bit-identical to the reference oracle, and
    /// the count-only fast path agrees with the emitted stream, for random
    /// small matrices.
    #[test]
    fn memoized_emission_matches_reference_and_count((system, axes, reduction_axis) in small_scenario()) {
        let arities = system.hierarchy().arities();
        for matrix in enumerate_matrices(&arities, &axes).unwrap().into_iter().take(2) {
            prop_assume!(matrix.axis_sizes()[reduction_axis] > 1);
            let synth =
                Synthesizer::new(matrix, vec![reduction_axis], HierarchyKind::ReductionAxes)
                    .unwrap();
            for max_size in 1..=3 {
                let mut streamed: Vec<Program> = Vec::new();
                let stats = synth.for_each_program(max_size, &mut |p: &Program| {
                    streamed.push(p.clone());
                    SinkControl::Continue
                });
                let reference = synth.synthesize_reference(max_size);
                prop_assert_eq!(&streamed, &reference.programs);
                let count = synth.count_programs(max_size);
                prop_assert_eq!(count.total, stats.programs_emitted as u64);
                prop_assert_eq!(count.stats.states_explored, stats.states_explored);
            }
        }
    }

    /// A sink stopping after a random number of programs sees exactly that
    /// prefix of the full enumeration, and the count-only total predicts the
    /// full stream's `programs_emitted`.
    #[test]
    fn random_stop_prefixes_are_exact(
        (system, axes, reduction_axis) in small_scenario(),
        stop_after in 1usize..=64,
    ) {
        let arities = system.hierarchy().arities();
        let matrix = enumerate_matrices(&arities, &axes).unwrap().remove(0);
        prop_assume!(matrix.axis_sizes()[reduction_axis] > 1);
        let synth = Synthesizer::new(matrix, vec![reduction_axis], HierarchyKind::ReductionAxes)
            .unwrap();
        let full = synth.synthesize(3);
        let total = full.programs.len();
        let count = synth.count_programs(3);
        prop_assert_eq!(count.total, full.stats.programs_emitted as u64);
        prop_assume!(total > 0);
        let mut prefix: Vec<Program> = Vec::new();
        let stats = synth.for_each_program(3, &mut |p: &Program| {
            prefix.push(p.clone());
            if prefix.len() == stop_after {
                SinkControl::Stop
            } else {
                SinkControl::Continue
            }
        });
        let expected = stop_after.min(total);
        prop_assert_eq!(stats.programs_emitted, expected);
        prop_assert_eq!(&prefix[..], &full.programs[..expected]);
    }

    /// The best-cost DP returns exactly the minimum cost over the enumerated
    /// program set under the paper's α–β model (up to the DP's fixed
    /// floating-point association), and a program achieving it.
    #[test]
    fn best_cost_dp_matches_enumerated_minimum((system, axes, reduction_axis) in small_scenario()) {
        let arities = system.hierarchy().arities();
        let matrix = enumerate_matrices(&arities, &axes).unwrap().remove(0);
        prop_assume!(matrix.axis_sizes()[reduction_axis] > 1);
        let model = AlphaBetaModel::new(system.clone(), NcclAlgo::Ring, 1.0e8).unwrap();
        let synth = Synthesizer::new(matrix, vec![reduction_axis], HierarchyKind::ReductionAxes)
            .unwrap();
        let best = synth
            .best_cost_program(3, &mut |step| model.step_time(step))
            .unwrap()
            .expect("valid programs exist");
        let mut min = f64::INFINITY;
        for p in &synth.synthesize(3).programs {
            let lowered = synth.lower(p).unwrap();
            // The DP folds suffix-first; reproduce its association exactly.
            let total = lowered
                .steps
                .iter()
                .rev()
                .fold(0.0_f64, |acc, step| model.step_time(step) + acc);
            min = min.min(total);
        }
        prop_assert_eq!(best.cost, min);
        synth.validate(&best.program).unwrap();
        let relowered = synth.lower(&best.program).unwrap();
        let recost = relowered
            .steps
            .iter()
            .rev()
            .fold(0.0_f64, |acc, step| model.step_time(step) + acc);
        prop_assert_eq!(recost, best.cost);
    }
}

/// The deterministic acceptance pin for the suffix-memoized engine: on the
/// figure-2d running example and the heaviest rack/node/GPU placement, the
/// memoized emission must reproduce the reference oracle's program set and
/// order at every size up to 6, and the count-only fast path must partition
/// the same totals by length.
#[test]
fn memoized_emission_pinned_against_reference_at_sizes_1_to_6() {
    use p2::presets;

    let rack = presets::rack_node_gpu_system(2, 2, 4);
    let rack_matrix = enumerate_matrices(&rack.hierarchy().arities(), &[16])
        .unwrap()
        .remove(0);
    for (matrix, reduction) in [(figure2d(), vec![1usize]), (rack_matrix, vec![0])] {
        let synth = Synthesizer::new(matrix, reduction, HierarchyKind::ReductionAxes).unwrap();
        for max_size in 1..=6 {
            let mut streamed: Vec<Program> = Vec::new();
            let stats = synth.for_each_program(max_size, &mut |p: &Program| {
                streamed.push(p.clone());
                SinkControl::Continue
            });
            let reference = synth.synthesize_reference(max_size);
            assert_eq!(
                streamed, reference.programs,
                "program set or order diverged at size {max_size}"
            );
            let count = synth.count_programs(max_size);
            assert_eq!(
                count.total, stats.programs_emitted as u64,
                "count-only total diverged at size {max_size}"
            );
            for (n, &c) in count.by_length.iter().enumerate() {
                let at_n = streamed.iter().filter(|p| p.len() == n).count() as u64;
                assert_eq!(c, at_n, "count at length {n} diverged at size {max_size}");
            }
            if max_size >= 3 {
                assert!(
                    stats.suffix_memo_hits > 0,
                    "shared suffixes must be reused at size {max_size}"
                );
            }
        }
    }
}
