//! End-to-end pins of the planner service's cache contract:
//!
//! * a repeat request is answered from the plan store **without invoking
//!   synthesis** (counted by an observer, not inferred from timings),
//! * the on-disk store survives a planner restart,
//! * concurrent identical requests coalesce to exactly one synthesis,
//! * a cached plan is bit-identical to a fresh `P2` run of the same request,
//!   for any worker-thread count and steal seed, including after a disk
//!   round trip.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Barrier};
use std::thread;

use p2::placement::ParallelismMatrix;
use p2::topology::presets;
use p2::{Plan, PlanRequest, PlanSource, Planner, PlannerConfig, RunObserver};

/// Counts placement-sweep starts — any synthesis work at all shows up here.
#[derive(Default)]
struct SweepCounter(AtomicUsize);

impl RunObserver for SweepCounter {
    fn on_placement_start(&self, _index: usize, _matrix: &ParallelismMatrix) -> Option<f64> {
        self.0.fetch_add(1, Ordering::SeqCst);
        None
    }
}

/// The test request: the 2×2×4 rack preset — 3 hierarchy levels, 16 devices,
/// bounded retention so each cold synthesis stays fast.
fn rack_request() -> PlanRequest {
    PlanRequest::new(presets::rack_node_gpu_system(2, 2, 4), vec![4, 4], vec![0])
        .with_bytes_per_device(1.0e9)
        .with_repeats(2)
        .with_keep_top(8)
}

fn temp_store(name: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("p2-plan-test-{}-{name}", std::process::id()))
}

fn config(threads: usize, steal_seed: u64, dir: &std::path::Path) -> PlannerConfig {
    PlannerConfig {
        threads,
        steal_seed,
        store_dir: Some(dir.to_path_buf()),
        ..PlannerConfig::default()
    }
}

#[test]
fn repeat_requests_never_reinvoke_synthesis() {
    let dir = temp_store("repeat");
    let _ = std::fs::remove_dir_all(&dir);

    let counter = Arc::new(SweepCounter::default());
    let planner =
        Planner::with_observer(config(2, 0, &dir), counter.clone()).expect("planner starts");
    let cold = planner
        .plan("tenant-a", rack_request())
        .expect("cold plan succeeds");
    assert_eq!(cold.source, PlanSource::Synthesized);
    let sweeps_after_cold = counter.0.load(Ordering::SeqCst);
    assert!(sweeps_after_cold > 0, "cold miss must sweep placements");

    for _ in 0..3 {
        let warm = planner
            .plan("tenant-a", rack_request())
            .expect("warm plan succeeds");
        assert_eq!(warm.source, PlanSource::Warm);
        assert_eq!(warm.plan, cold.plan);
    }
    assert_eq!(
        counter.0.load(Ordering::SeqCst),
        sweeps_after_cold,
        "warm hits must not invoke synthesis"
    );
    planner.shutdown();

    // Restart on the same directory: the plan comes back from disk, still
    // without a single placement sweep on the fresh planner's observer.
    let restarted = Arc::new(SweepCounter::default());
    let planner =
        Planner::with_observer(config(2, 0, &dir), restarted.clone()).expect("planner restarts");
    let disk = planner
        .plan("tenant-b", rack_request())
        .expect("disk plan succeeds");
    assert_eq!(disk.source, PlanSource::Disk);
    assert_eq!(disk.plan.entries, cold.plan.entries);
    assert_eq!(
        restarted.0.load(Ordering::SeqCst),
        0,
        "a restart must serve the persisted plan without synthesizing"
    );
    planner.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn concurrent_identical_requests_coalesce_to_one_synthesis() {
    let dir = temp_store("coalesce");
    let _ = std::fs::remove_dir_all(&dir);

    let planner = Arc::new(Planner::new(config(2, 0, &dir)).expect("planner starts"));
    let clients = 4;
    let barrier = Arc::new(Barrier::new(clients));
    let handles: Vec<_> = (0..clients)
        .map(|i| {
            let planner = Arc::clone(&planner);
            let barrier = Arc::clone(&barrier);
            thread::spawn(move || {
                barrier.wait();
                planner
                    .plan(&format!("tenant-{i}"), rack_request())
                    .expect("plan succeeds")
            })
        })
        .collect();
    let responses: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();

    let first = &responses[0];
    for response in &responses {
        assert_eq!(response.plan, first.plan, "all clients get the same plan");
    }
    let stats = planner.stats();
    assert_eq!(
        stats.syntheses, 1,
        "identical in-flight requests must share one synthesis \
         ({} coalesced, {} warm)",
        stats.coalesced, stats.warm_hits
    );
    planner.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn cached_plans_are_bit_identical_to_fresh_runs_for_any_schedule() {
    let request = rack_request();
    // The reference: a fresh, planner-free pipeline run of the same request.
    let result = request
        .session()
        .expect("request builds")
        .run()
        .expect("pipeline runs");
    let reference = Plan::from_result(request.fingerprint(), &result, request.top_k);

    for (threads, steal_seed) in [(1usize, 0u64), (2, 0xdead_beef), (4, 1)] {
        let dir = temp_store(&format!("sched-{threads}-{steal_seed}"));
        let _ = std::fs::remove_dir_all(&dir);
        let planner = Planner::new(config(threads, steal_seed, &dir)).expect("planner starts");
        let cold = planner
            .plan("tenant", request.clone())
            .expect("cold plan succeeds");
        assert_eq!(cold.source, PlanSource::Synthesized);
        assert_eq!(
            cold.plan.entries, reference.entries,
            "threads={threads} steal_seed={steal_seed:#x}: planner result \
             must match the fresh run bit for bit"
        );
        assert_eq!(cold.plan.label, reference.label);
        planner.shutdown();

        // And the disk round trip preserves the bits exactly.
        let planner = Planner::new(config(threads, steal_seed, &dir)).expect("planner restarts");
        let disk = planner
            .plan("tenant", request.clone())
            .expect("disk plan succeeds");
        assert_eq!(disk.source, PlanSource::Disk);
        assert_eq!(disk.plan.entries, reference.entries);
        planner.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }
}
