//! Property-based tests for the collective semantics (Figure 8 of the paper).

use proptest::prelude::*;

use p2::collectives::{apply_collective, apply_to_groups, Collective, State};

/// Strategy: a scope size and a random partition of the devices into groups of
/// at least two (singletons are dropped).
fn scope_and_groups() -> impl Strategy<Value = (usize, Vec<Vec<usize>>)> {
    (2usize..=8).prop_flat_map(|k| {
        proptest::collection::vec(0usize..4, k).prop_map(move |labels| {
            let mut buckets: std::collections::BTreeMap<usize, Vec<usize>> = Default::default();
            for (device, label) in labels.iter().enumerate() {
                buckets.entry(*label).or_default().push(device);
            }
            let groups: Vec<Vec<usize>> = buckets.into_values().filter(|g| g.len() >= 2).collect();
            (k, groups)
        })
    })
}

/// Total number of set bits across a state context.
fn information(states: &[State]) -> usize {
    states
        .iter()
        .map(|s| (0..s.dim()).map(|r| s.row(r).count_ones()).sum::<usize>())
        .sum()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Applying any collective to fresh initial states either fails or
    /// produces states that (a) never lose a device's own contribution
    /// entirely from the context and (b) never exceed the all-ones goal.
    #[test]
    fn collectives_preserve_and_bound_information((k, groups) in scope_and_groups()) {
        prop_assume!(!groups.is_empty());
        let states: Vec<State> = (0..k).map(|i| State::initial(k, i)).collect();
        for collective in Collective::ALL {
            if let Ok(after) = apply_to_groups(collective, &states, &groups) {
                let goal = State::goal(k);
                for s in &after {
                    prop_assert!(s.le(&goal));
                }
                // Information in the whole context never decreases for the
                // "all" collectives; Reduce/ReduceScatter concentrate data but
                // never invent contributions that were not there.
                if matches!(collective, Collective::AllReduce | Collective::AllGather | Collective::Broadcast) {
                    prop_assert!(information(&after) >= information(&states));
                }
                // Non-participating devices are untouched.
                let members: std::collections::HashSet<usize> =
                    groups.iter().flatten().copied().collect();
                for d in 0..k {
                    if !members.contains(&d) {
                        prop_assert_eq!(&after[d], &states[d]);
                    }
                }
            }
        }
    }

    /// AllReduce is exactly ReduceScatter followed by AllGather (when the
    /// scatter divides evenly) — the decomposition the BlueConnect-style
    /// programs exploit.
    #[test]
    fn allreduce_equals_reducescatter_then_allgather(k in 2usize..=8) {
        let states: Vec<State> = (0..k).map(|i| State::initial(k, i)).collect();
        let direct = apply_collective(Collective::AllReduce, &states).unwrap();
        let scattered = apply_collective(Collective::ReduceScatter, &states).unwrap();
        let gathered = apply_collective(Collective::AllGather, &scattered).unwrap();
        prop_assert_eq!(direct, gathered);
    }

    /// Reduce followed by Broadcast is equivalent to AllReduce.
    #[test]
    fn reduce_then_broadcast_equals_allreduce(k in 2usize..=8) {
        let states: Vec<State> = (0..k).map(|i| State::initial(k, i)).collect();
        let direct = apply_collective(Collective::AllReduce, &states).unwrap();
        let reduced = apply_collective(Collective::Reduce, &states).unwrap();
        let broadcast = apply_collective(Collective::Broadcast, &reduced).unwrap();
        prop_assert_eq!(direct, broadcast);
    }

    /// Applying the same reduction twice is always rejected (Figure 4b).
    #[test]
    fn double_reduction_is_always_invalid(k in 2usize..=8) {
        let states: Vec<State> = (0..k).map(|i| State::initial(k, i)).collect();
        let once = apply_collective(Collective::AllReduce, &states).unwrap();
        prop_assert!(apply_collective(Collective::AllReduce, &once).is_err());
        prop_assert!(apply_collective(Collective::Reduce, &once).is_err());
        prop_assert!(apply_collective(Collective::ReduceScatter, &once).is_err());
    }

    /// The data fraction tracked for the cost model always lies in [0, 1] and
    /// matches the number of non-empty rows.
    #[test]
    fn data_fraction_is_consistent((k, groups) in scope_and_groups()) {
        prop_assume!(!groups.is_empty());
        let states: Vec<State> = (0..k).map(|i| State::initial(k, i)).collect();
        for collective in Collective::ALL {
            if let Ok(after) = apply_to_groups(collective, &states, &groups) {
                for s in &after {
                    let f = s.data_fraction();
                    prop_assert!((0.0..=1.0).contains(&f));
                    prop_assert!((f - s.num_nonempty_rows() as f64 / k as f64).abs() < 1e-12);
                }
            }
        }
    }
}
