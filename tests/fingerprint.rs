//! Property pins of the plan-request fingerprint — the content address the
//! planner service keys its cache with:
//!
//! * **Representation insensitivity**: semantically equal requests built
//!   through different setter orders or different constructors hash equal.
//! * **Knob sensitivity**: changing any single result-relevant knob changes
//!   the fingerprint.

use proptest::prelude::*;

use p2::service::PlanRequest;
use p2::topology::presets;
use p2::{CostModelKind, NcclAlgo, RunMode};

/// The index-encoded knob set a test case explores. Every index resolves to
/// an explicit value distinct from the paper defaults, so "cycle the index"
/// always means "change the request".
#[derive(Debug, Clone, Copy, PartialEq)]
struct Knobs {
    system: usize,
    algo: usize,
    bytes: usize,
    seed: usize,
    repeats: usize,
    keep_top: usize,
    mode: usize,
    cost_model: usize,
    top_k: usize,
}

/// Domain size per knob, in `Knobs` field order.
const DOMAIN: [usize; 9] = [3, 2, 3, 4, 3, 3, 3, 2, 4];

fn knobs() -> impl Strategy<Value = Knobs> {
    (
        (0usize..3, 0usize..2, 0usize..3, 0usize..4),
        (0usize..3, 0usize..3, 0usize..3, 0usize..2),
        0usize..4,
    )
        .prop_map(
            |((system, algo, bytes, seed), (repeats, keep_top, mode, cost_model), top_k)| Knobs {
                system,
                algo,
                bytes,
                seed,
                repeats,
                keep_top,
                mode,
                cost_model,
                top_k,
            },
        )
}

/// Cycles one knob to the next value of its domain — the minimal semantic
/// change the sensitivity property asserts on.
fn cycle(mut k: Knobs, which: usize) -> Knobs {
    let fields: [&mut usize; 9] = [
        &mut k.system,
        &mut k.algo,
        &mut k.bytes,
        &mut k.seed,
        &mut k.repeats,
        &mut k.keep_top,
        &mut k.mode,
        &mut k.cost_model,
        &mut k.top_k,
    ];
    *fields[which] = (*fields[which] + 1) % DOMAIN[which];
    k
}

fn base(k: &Knobs) -> PlanRequest {
    // Each system comes with axes matching its device count; two of the
    // three have identical axes so only the topology distinguishes them.
    let (system, axes) = match k.system {
        0 => (presets::a100_system(2), vec![8, 4]),
        1 => (presets::v100_system(2), vec![4, 4]),
        _ => (presets::rack_node_gpu_system(2, 2, 4), vec![4, 4]),
    };
    PlanRequest::new(system, axes, vec![0])
}

/// Knob values, all distinct from the implicit `P2Config` defaults (index 0
/// of the optional knobs means "leave the default in place").
fn algo(k: &Knobs) -> NcclAlgo {
    [NcclAlgo::Ring, NcclAlgo::Tree][k.algo]
}
const BYTES: [Option<f64>; 3] = [None, Some(1.0e9), Some(2.5e8)];
const SEEDS: [Option<u64>; 4] = [None, Some(1), Some(42), Some(0xffff)];
const REPEATS: [Option<usize>; 3] = [None, Some(2), Some(3)];
const KEEP_TOP: [Option<usize>; 3] = [None, Some(4), Some(12)];
fn mode(k: &Knobs) -> RunMode {
    [
        RunMode::Measure,
        RunMode::Shortlist(5),
        RunMode::PredictOnly,
    ][k.mode]
}
fn cost_model(k: &Knobs) -> CostModelKind {
    [CostModelKind::AlphaBeta, CostModelKind::LogGp][k.cost_model]
}
fn top_k(k: &Knobs) -> usize {
    [3, 1, 2, 5][k.top_k]
}

/// Builds the request through the `with_*` setters, front to back.
fn build_forward(k: &Knobs) -> PlanRequest {
    let mut request = base(k)
        .with_algo(algo(k))
        .with_mode(mode(k))
        .with_cost_model(cost_model(k))
        .with_top_k(top_k(k));
    if let Some(bytes) = BYTES[k.bytes] {
        request = request.with_bytes_per_device(bytes);
    }
    if let Some(seed) = SEEDS[k.seed] {
        request = request.with_seed(seed);
    }
    if let Some(repeats) = REPEATS[k.repeats] {
        request = request.with_repeats(repeats);
    }
    if let Some(keep_top) = KEEP_TOP[k.keep_top] {
        request = request.with_keep_top(keep_top);
    }
    request
}

/// The same request through the setters in the opposite order.
fn build_reverse(k: &Knobs) -> PlanRequest {
    let mut request = base(k);
    if let Some(keep_top) = KEEP_TOP[k.keep_top] {
        request = request.with_keep_top(keep_top);
    }
    if let Some(repeats) = REPEATS[k.repeats] {
        request = request.with_repeats(repeats);
    }
    if let Some(seed) = SEEDS[k.seed] {
        request = request.with_seed(seed);
    }
    if let Some(bytes) = BYTES[k.bytes] {
        request = request.with_bytes_per_device(bytes);
    }
    request
        .with_top_k(top_k(k))
        .with_cost_model(cost_model(k))
        .with_mode(mode(k))
        .with_algo(algo(k))
}

/// The same request through direct field assignment — a different
/// constructor path entirely.
fn build_fields(k: &Knobs) -> PlanRequest {
    let mut request = base(k);
    request.algo = algo(k);
    request.bytes_per_device = BYTES[k.bytes];
    request.seed = SEEDS[k.seed];
    request.repeats = REPEATS[k.repeats];
    request.keep_top = KEEP_TOP[k.keep_top];
    request.mode = mode(k);
    request.cost_model = cost_model(k);
    request.top_k = top_k(k);
    request
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Builder-call order and constructor choice are invisible to the
    /// content address.
    #[test]
    fn construction_path_is_fingerprint_invisible(k in knobs()) {
        let forward = build_forward(&k).fingerprint();
        prop_assert_eq!(build_reverse(&k).fingerprint(), forward);
        prop_assert_eq!(build_fields(&k).fingerprint(), forward);
    }

    /// Changing any single knob — and nothing else — changes the
    /// fingerprint.
    #[test]
    fn any_single_knob_change_changes_the_fingerprint(
        (k, which) in (knobs(), 0usize..9)
    ) {
        let changed = cycle(k, which);
        prop_assert!(changed != k, "cycle must change knob {}", which);
        prop_assert_ne!(
            build_forward(&changed).fingerprint(),
            build_forward(&k).fingerprint(),
            "knob {} changed but the fingerprint did not", which
        );
    }
}
