//! The streaming synthesis → evaluation pipeline: bounded top-K retention
//! (`P2Config::with_keep_top`) plus cost-bounded pruning must land on the
//! same best program as the exhaustive keep-everything pipeline while
//! retaining strictly fewer `ProgramEvaluation`s — the deployment contract
//! of P²'s "synthesize everything, measure a shortlist" story.

use p2::{presets, NcclAlgo, P2Config, RunMode, P2};

/// The tier-1 small configuration (same shape as the determinism suite).
fn config() -> P2Config {
    P2Config::new(presets::a100_system(2), vec![8, 4], vec![0])
        .with_algo(NcclAlgo::Ring)
        .with_bytes_per_device(1.0e9)
        .with_repeats(2)
        .with_seed(0x5eed)
}

#[test]
fn bounded_full_run_preserves_best_overall_for_any_keep_top() {
    let exhaustive = P2::new(config()).unwrap().run().unwrap();
    let best = exhaustive.best_overall().unwrap();
    for k in [1usize, 2, 4, 16] {
        let bounded = P2::new(config().with_keep_top(k)).unwrap().run().unwrap();
        // The search space is identical; only retention is bounded.
        assert_eq!(bounded.total_programs(), exhaustive.total_programs());
        assert!(
            bounded.total_programs_retained() < exhaustive.total_programs_retained(),
            "keep_top={k} must retain strictly fewer evaluations"
        );
        assert_eq!(
            bounded.total_programs_retained() + bounded.total_programs_pruned(),
            bounded.total_programs()
        );
        for pl in &bounded.placements {
            assert!(pl.programs.len() <= k);
            assert_eq!(pl.programs_retained, pl.programs.len());
        }
        // With the default slack, the overall winner always survives and its
        // measurement is bit-identical (noise is a pure function of seed and
        // program content).
        let bounded_best = bounded.best_overall().unwrap();
        assert_eq!(bounded_best.signature(), best.signature());
        assert_eq!(bounded_best.measured_seconds, best.measured_seconds);
    }
}

#[test]
fn bounded_shortlist_reaches_the_exhaustive_best_with_fewer_retained() {
    // The acceptance setting: prediction-ranked shortlist of 10, per-placement
    // retention bounded to the same 10. Every globally top-10 prediction is
    // within its own placement's top-10, so top-K displacement cannot change
    // the measured shortlist; on this configuration the slack bound prunes no
    // shortlist member either, so the chosen optimum matches the exhaustive
    // run exactly (this test pins that empirical contract).
    let exhaustive = P2::new(config())
        .unwrap()
        .with_mode(RunMode::Shortlist(10))
        .run()
        .unwrap();
    let bounded = P2::new(config().with_keep_top(10))
        .unwrap()
        .with_mode(RunMode::Shortlist(10))
        .run()
        .unwrap();

    let a = exhaustive.best_overall().unwrap();
    let b = bounded.best_overall().unwrap();
    assert_eq!(a.signature(), b.signature());
    assert_eq!(a.measured_seconds, b.measured_seconds);
    assert_eq!(a.predicted_seconds, b.predicted_seconds);

    // Strictly fewer evaluations survive, and the drop is accounted for by
    // the new pruning counters.
    assert!(bounded.total_programs_retained() < exhaustive.total_programs_retained());
    assert!(bounded.total_programs_pruned() > 0);
    assert_eq!(exhaustive.total_programs_pruned(), 0);
    assert_eq!(
        bounded.total_programs_retained() + bounded.total_programs_pruned(),
        bounded.total_programs()
    );
    // The bounded run still reports the full synthesis space.
    assert_eq!(bounded.total_programs(), exhaustive.total_programs());
}

#[test]
fn wider_slack_prunes_less() {
    let tight = P2::new(config().with_keep_top(8).with_prune_slack(0.0))
        .unwrap()
        .run()
        .unwrap();
    let wide = P2::new(config().with_keep_top(8).with_prune_slack(10.0))
        .unwrap()
        .run()
        .unwrap();
    // The slack bound is the only difference; a looser bound can only let
    // more candidates through to the retention heap.
    assert!(tight.total_programs_pruned() >= wide.total_programs_pruned());
    assert!(tight.total_programs_retained() <= wide.total_programs_retained());
    // Even the zero-slack run keeps at least the AllReduce program per
    // placement: its prediction ties the baseline bound instead of exceeding it.
    for pl in &tight.placements {
        assert!(pl.programs_retained >= 1, "placement lost all programs");
    }
}
