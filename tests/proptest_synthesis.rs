//! Property-based tests spanning synthesis, lowering, the cost model and the
//! execution substrate.

use proptest::prelude::*;

use p2::cost::{AlphaBetaModel, CostModel, NcclAlgo};
use p2::exec::{ExecConfig, Executor};
use p2::placement::{enumerate_matrices, ordered_factorizations};
use p2::synthesis::{baseline_allreduce, HierarchyKind, Program, SinkControl, Synthesizer};
use p2::topology::{Hierarchy, Interconnect, SystemTopology};

/// Strategy: a 2-level system with a fast local link and a slow global link,
/// a factorization of its device count into 1–2 axes, and a reduction axis.
fn small_scenario() -> impl Strategy<Value = (SystemTopology, Vec<usize>, usize)> {
    (2usize..=4, 2usize..=8, 1usize..=2).prop_flat_map(|(nodes, gpus, num_axes)| {
        let devices = nodes * gpus;
        let factorizations = ordered_factorizations(devices, num_axes);
        (0..factorizations.len(), 0..num_axes).prop_map(move |(fi, reduction_axis)| {
            let hierarchy = Hierarchy::from_pairs([("node", nodes), ("gpu", gpus)]).unwrap();
            let links = vec![
                Interconnect::new("nic", 8.0e9, 20.0e-6).unwrap(),
                Interconnect::new("nvlink", 150.0e9, 2.0e-6).unwrap(),
            ];
            let system = SystemTopology::new(hierarchy, links).unwrap();
            (system, factorizations[fi].clone(), reduction_axis)
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every synthesized program re-validates, lowers to disjoint groups whose
    /// devices lie in the system, costs a positive finite time, and is
    /// measured as a positive finite time by the execution substrate.
    #[test]
    fn synthesized_programs_are_well_formed((system, axes, reduction_axis) in small_scenario()) {
        let arities = system.hierarchy().arities();
        let matrices = enumerate_matrices(&arities, &axes).unwrap();
        let bytes = 1.0e8;
        let model = AlphaBetaModel::new(system.clone(), NcclAlgo::Ring, bytes).unwrap();
        let exec = Executor::new(&system, ExecConfig::new(NcclAlgo::Ring, bytes).with_repeats(1)).unwrap();
        for matrix in matrices.into_iter().take(3) {
            // A reduction over an axis of size 1 is a no-op: the only valid
            // "program" is empty, so there is nothing to cost.
            prop_assume!(matrix.axis_sizes()[reduction_axis] > 1);
            let synth =
                Synthesizer::new(matrix.clone(), vec![reduction_axis], HierarchyKind::ReductionAxes)
                    .unwrap();
            let result = synth.synthesize(3);
            prop_assert!(!result.programs.is_empty());
            for program in result.programs.iter().take(12) {
                synth.validate(program).unwrap();
                let lowered = synth.lower(program).unwrap();
                prop_assert!(lowered.groups_are_disjoint());
                for step in &lowered.steps {
                    for group in &step.groups {
                        prop_assert!(group.devices.iter().all(|&d| d < system.num_devices()));
                        prop_assert!(group.input_fraction > 0.0 && group.input_fraction <= 1.0);
                    }
                }
                let predicted = model.program_time(&lowered);
                prop_assert!(predicted.is_finite() && predicted > 0.0);
                let measured = exec.measure(&lowered);
                prop_assert!(measured.is_finite() && measured > 0.0);
            }
        }
    }

    /// The streaming visitor (`for_each_program`) yields exactly the same
    /// program set, in the same order, as the materializing `synthesize`, for
    /// random small matrices — the emission-order contract of the streaming
    /// engine. Early termination returns a strict prefix of that order.
    #[test]
    fn streaming_visitor_matches_materializing_synthesis((system, axes, reduction_axis) in small_scenario()) {
        let arities = system.hierarchy().arities();
        for matrix in enumerate_matrices(&arities, &axes).unwrap().into_iter().take(3) {
            prop_assume!(matrix.axis_sizes()[reduction_axis] > 1);
            let synth =
                Synthesizer::new(matrix, vec![reduction_axis], HierarchyKind::ReductionAxes)
                    .unwrap();
            let collected = synth.synthesize(3);
            let mut streamed: Vec<Program> = Vec::new();
            let stats = synth.for_each_program(3, &mut |p: &Program| {
                streamed.push(p.clone());
                SinkControl::Continue
            });
            prop_assert_eq!(&streamed, &collected.programs);
            prop_assert_eq!(stats.programs_emitted, collected.programs.len());
            prop_assert_eq!(stats.states_explored, collected.stats.states_explored);
            prop_assert_eq!(stats.instructions_tried, collected.stats.instructions_tried);
            // Stopping after the first program yields the head of the order.
            if !collected.programs.is_empty() {
                let mut first: Option<Program> = None;
                let stats = synth.for_each_program(3, &mut |p: &Program| {
                    first = Some(p.clone());
                    SinkControl::Stop
                });
                prop_assert_eq!(stats.programs_emitted, 1);
                prop_assert_eq!(first.as_ref(), collected.programs.first());
            }
        }
    }

    /// The hash-consed search engine is observationally identical to the
    /// no-interning reference path: same program set, same emission order,
    /// same `states_explored` and `instructions_tried`, for random small
    /// matrices — the contract that lets interning replace the
    /// `Vec<State>`-keyed memoization wholesale.
    #[test]
    fn interned_search_matches_reference_path((system, axes, reduction_axis) in small_scenario()) {
        let arities = system.hierarchy().arities();
        for matrix in enumerate_matrices(&arities, &axes).unwrap().into_iter().take(2) {
            prop_assume!(matrix.axis_sizes()[reduction_axis] > 1);
            let synth =
                Synthesizer::new(matrix, vec![reduction_axis], HierarchyKind::ReductionAxes)
                    .unwrap();
            for max_size in 1..=3 {
                let interned = synth.synthesize(max_size);
                let reference = synth.synthesize_reference(max_size);
                prop_assert_eq!(&interned.programs, &reference.programs);
                prop_assert_eq!(interned.stats.states_explored, reference.stats.states_explored);
                prop_assert_eq!(
                    interned.stats.instructions_tried,
                    reference.stats.instructions_tried
                );
                prop_assert!(interned.stats.unique_device_states > 0);
                prop_assert_eq!(reference.stats.unique_device_states, 0);
            }
        }
    }

    /// The plain AllReduce program is always among the synthesized programs,
    /// and its lowering matches the explicit baseline construction.
    #[test]
    fn baseline_allreduce_is_always_synthesized((system, axes, reduction_axis) in small_scenario()) {
        let arities = system.hierarchy().arities();
        for matrix in enumerate_matrices(&arities, &axes).unwrap().into_iter().take(3) {
            // Skip degenerate cases where the reduction axis has size 1.
            prop_assume!(matrix.axis_sizes()[reduction_axis] > 1);
            let synth =
                Synthesizer::new(matrix.clone(), vec![reduction_axis], HierarchyKind::ReductionAxes)
                    .unwrap();
            let result = synth.synthesize(2);
            let allreduce = result
                .programs
                .iter()
                .find(|p| p.signature() == "AllReduce")
                .expect("single AllReduce always valid");
            let lowered = synth.lower(allreduce).unwrap();
            let baseline = baseline_allreduce(&matrix, &[reduction_axis]).unwrap();
            // Same groups (up to ordering).
            let norm = |p: &p2::LoweredProgram| {
                let mut gs: Vec<Vec<usize>> = p.steps[0]
                    .groups
                    .iter()
                    .map(|g| {
                        let mut d = g.devices.clone();
                        d.sort_unstable();
                        d
                    })
                    .collect();
                gs.sort();
                gs
            };
            prop_assert_eq!(norm(&lowered), norm(&baseline));
        }
    }

    /// Cost predictions scale monotonically with the buffer size and are
    /// insensitive to group ordering within a step.
    #[test]
    fn cost_is_monotone_in_bytes((system, axes, reduction_axis) in small_scenario()) {
        let arities = system.hierarchy().arities();
        let matrix = enumerate_matrices(&arities, &axes).unwrap().remove(0);
        prop_assume!(matrix.axis_sizes()[reduction_axis] > 1);
        let baseline = baseline_allreduce(&matrix, &[reduction_axis]).unwrap();
        let mut last = 0.0;
        for bytes in [1.0e6, 1.0e7, 1.0e8, 1.0e9] {
            for algo in NcclAlgo::ALL {
                let model = AlphaBetaModel::new(system.clone(), algo, bytes).unwrap();
                let t = model.program_time(&baseline);
                prop_assert!(t.is_finite() && t > 0.0);
            }
            let t = AlphaBetaModel::new(system.clone(), NcclAlgo::Ring, bytes).unwrap().program_time(&baseline);
            prop_assert!(t >= last);
            last = t;
        }
    }

    /// The execution substrate is deterministic for a fixed seed and its
    /// repeated runs stay within the configured noise envelope.
    #[test]
    fn execution_is_deterministic_and_bounded_noise((system, axes, reduction_axis) in small_scenario()) {
        let arities = system.hierarchy().arities();
        let matrix = enumerate_matrices(&arities, &axes).unwrap().remove(0);
        prop_assume!(matrix.axis_sizes()[reduction_axis] > 1);
        let baseline = baseline_allreduce(&matrix, &[reduction_axis]).unwrap();
        let config = ExecConfig::new(NcclAlgo::Ring, 1.0e8).with_noise(0.05).with_repeats(4);
        let exec = Executor::new(&system, config.clone()).unwrap();
        let a = exec.measure(&baseline);
        let b = Executor::new(&system, config).unwrap().measure(&baseline);
        prop_assert_eq!(a, b);
        let runs = exec.measure_runs(&baseline);
        let min = runs.iter().copied().fold(f64::MAX, f64::min);
        let max = runs.iter().copied().fold(f64::MIN, f64::max);
        prop_assert!(max <= min / 0.95 * 1.05 + 1e-9, "noise envelope exceeded: {runs:?}");
    }
}

/// The deterministic acceptance pin for the hash-consed engine: on the
/// figure-2d running example and the heaviest rack/node/GPU placement, the
/// interned search must reproduce the reference path's program set, emission
/// order and `states_explored` at every size the paper (and our size-6
/// extension) uses.
#[test]
fn interned_search_pinned_against_reference_at_sizes_1_to_6() {
    use p2::placement::ParallelismMatrix;
    use p2::presets;

    let figure2d = ParallelismMatrix::new(
        vec![vec![1, 1, 2, 2], vec![1, 2, 1, 2]],
        vec![1, 2, 2, 4],
        vec![4, 4],
    )
    .unwrap();
    let rack = presets::rack_node_gpu_system(2, 2, 4);
    let rack_matrix = enumerate_matrices(&rack.hierarchy().arities(), &[16])
        .unwrap()
        .remove(0);
    for (matrix, reduction) in [(figure2d, vec![1usize]), (rack_matrix, vec![0])] {
        let synth = Synthesizer::new(matrix, reduction, HierarchyKind::ReductionAxes).unwrap();
        for max_size in 1..=6 {
            let interned = synth.synthesize(max_size);
            let reference = synth.synthesize_reference(max_size);
            assert_eq!(
                interned.programs, reference.programs,
                "program set or order diverged at size {max_size}"
            );
            assert_eq!(
                interned.stats.states_explored, reference.stats.states_explored,
                "states_explored diverged at size {max_size}"
            );
            assert_eq!(
                interned.stats.instructions_tried, reference.stats.instructions_tried,
                "instructions_tried diverged at size {max_size}"
            );
        }
    }
}
