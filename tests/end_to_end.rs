//! Cross-crate integration tests: the full P² pipeline on the paper's
//! running example and on scaled-down versions of the evaluated systems.

use p2::{presets, top_k_accuracy, HierarchyKind, NcclAlgo, P2Config, P2};

/// The Figure 2 / Figure 3 running example end to end.
#[test]
fn figure2_running_example() {
    let config = P2Config::new(presets::figure2a_system(), vec![4, 4], vec![1])
        .with_bytes_per_device(50.0e6)
        .with_repeats(2);
    let result = P2::new(config).unwrap().run().unwrap();

    // Figure 2 shows three placements; the enumeration finds them (plus one more).
    let matrices: Vec<String> = result
        .placements
        .iter()
        .map(|p| p.matrix.to_string())
        .collect();
    assert!(matrices.contains(&"[[1 2 2 1][1 1 1 4]]".to_string()));
    assert!(matrices.contains(&"[[1 2 1 2][1 1 2 2]]".to_string()));
    assert!(matrices.contains(&"[[1 1 2 2][1 2 1 2]]".to_string()));

    // Figure 3's reduction strategies are synthesized for the Figure 2d placement.
    let fig2d = result
        .placements
        .iter()
        .find(|p| p.matrix.to_string() == "[[1 1 2 2][1 2 1 2]]")
        .expect("figure 2d placement present");
    let signatures: Vec<String> = fig2d.programs.iter().map(|p| p.signature()).collect();
    assert!(signatures.contains(&"AllReduce".to_string()));
    assert!(signatures.contains(&"AllReduce-AllReduce".to_string()));
    assert!(signatures.contains(&"Reduce-AllReduce-Broadcast".to_string()));
    assert!(signatures.contains(&"ReduceScatter-AllReduce-AllGather".to_string()));

    // The placement that keeps shards inside a CPU (Figure 2b) has the fastest
    // AllReduce: its reduction never leaves the NVLink domain.
    let fig2b = result
        .placements
        .iter()
        .find(|p| p.matrix.to_string() == "[[1 2 2 1][1 1 1 4]]")
        .unwrap();
    for other in &result.placements {
        assert!(fig2b.allreduce_measured <= other.allreduce_measured * 1.01);
    }
}

/// Result 1 of the paper: the parallelism matrix changes AllReduce time by
/// orders of magnitude, and the best matrix depends on the reduction axis.
#[test]
fn placement_impact_spans_orders_of_magnitude() {
    let system = presets::a100_system(2);
    let mut spreads = Vec::new();
    for reduction in [vec![0], vec![1]] {
        let config = P2Config::new(system.clone(), vec![4, 8], reduction)
            .with_bytes_per_device(2.0e9)
            .with_repeats(2);
        let result = P2::new(config).unwrap().run().unwrap();
        let times: Vec<f64> = result
            .placements
            .iter()
            .map(|p| p.allreduce_measured)
            .collect();
        let max = times.iter().copied().fold(f64::MIN, f64::max);
        let min = times.iter().copied().fold(f64::MAX, f64::min);
        spreads.push(max / min);
    }
    assert!(
        spreads.iter().any(|&s| s > 20.0),
        "expected a large placement impact, got spreads {spreads:?}"
    );
}

/// Result 5 of the paper: cross-node reductions are improved by synthesized
/// hierarchical programs; Result 3: intra-node reductions are not.
#[test]
fn synthesis_helps_exactly_where_the_paper_says() {
    let config = P2Config::new(presets::v100_system(2), vec![16], vec![0])
        .with_bytes_per_device(2.0e9)
        .with_repeats(3);
    let result = P2::new(config).unwrap().run().unwrap();
    let placement = &result.placements[0];
    // The single axis spans both nodes, so a hierarchical program must win.
    assert!(placement.programs_beating_allreduce() > 0);
    let speedup = placement.speedup();
    assert!(
        speedup > 1.1 && speedup < 5.0,
        "speedup {speedup} outside the paper's ballpark"
    );

    // Intra-node reduction: the placement [[1 8][2 1]] keeps the reduction
    // axis inside one node; AllReduce is already optimal there.
    let config = P2Config::new(presets::v100_system(2), vec![8, 2], vec![0])
        .with_bytes_per_device(2.0e9)
        .with_repeats(3);
    let result = P2::new(config).unwrap().run().unwrap();
    let local = result
        .placements
        .iter()
        .find(|p| p.matrix.to_string() == "[[1 8][2 1]]")
        .expect("local placement enumerated");
    assert!(
        local.speedup() < 1.1,
        "local reduction should not benefit: {}",
        local.speedup()
    );
}

/// Table 5's headline: the analytic simulator identifies near-optimal programs
/// (high top-10 accuracy) even though its top-1 choice is sometimes wrong.
#[test]
fn simulator_top_k_accuracy_is_high() {
    let mut results = Vec::new();
    for (axes, reduction) in [
        (vec![8, 4], vec![0]),
        (vec![8, 4], vec![1]),
        (vec![4, 8], vec![0]),
        (vec![2, 16], vec![1]),
    ] {
        let config = P2Config::new(presets::a100_system(2), axes, reduction)
            .with_bytes_per_device(1.0e9)
            .with_repeats(2);
        results.push(P2::new(config).unwrap().run().unwrap());
    }
    let report = top_k_accuracy(&results, &[1, 5, 10]);
    let top10 = report.accuracy_for(10).unwrap();
    assert!(top10 >= 0.75, "top-10 accuracy {top10} too low: {report}");
    // Accuracy is monotone in k by construction.
    assert!(report.accuracy_for(1).unwrap() <= top10);
}

/// The synthesis hierarchy ablation of §3.4 holds on the running example:
/// hierarchy (d) searches a smaller space but finds every lowered program of
/// the other hierarchies.
#[test]
fn reduction_hierarchy_is_smallest_and_most_expressive() {
    use p2::{ParallelismMatrix, Synthesizer};
    let matrix = ParallelismMatrix::new(
        vec![vec![1, 1, 2, 2], vec![1, 2, 1, 2]],
        vec![1, 2, 2, 4],
        vec![4, 4],
    )
    .unwrap();
    let canonical = |s: &p2::synthesis::LoweredProgram| -> String {
        s.steps
            .iter()
            .map(|st| {
                let mut gs: Vec<Vec<usize>> = st
                    .groups
                    .iter()
                    .map(|g| {
                        let mut d = g.devices.clone();
                        d.sort_unstable();
                        d
                    })
                    .collect();
                gs.sort();
                format!("{}{:?}", st.collective, gs)
            })
            .collect::<Vec<_>>()
            .join("|")
    };
    let mut sets = std::collections::HashMap::new();
    let mut space_sizes = std::collections::HashMap::new();
    for kind in HierarchyKind::ALL {
        let synth = Synthesizer::new(matrix.clone(), vec![1], kind).unwrap();
        let set: std::collections::HashSet<String> = synth
            .synthesize(3)
            .programs
            .iter()
            .map(|p| canonical(&synth.lower(p).unwrap()))
            .collect();
        space_sizes.insert(kind, synth.context().space_size());
        sets.insert(kind, set);
    }
    let d = &sets[&HierarchyKind::ReductionAxes];
    for kind in [
        HierarchyKind::System,
        HierarchyKind::ColumnMajor,
        HierarchyKind::RowMajor,
    ] {
        assert!(
            sets[&kind].is_subset(d),
            "hierarchy (d) must cover {kind:?}"
        );
        assert!(space_sizes[&HierarchyKind::ReductionAxes] <= space_sizes[&kind]);
    }
}

/// Both NCCL algorithms run end to end and produce different but plausible numbers.
#[test]
fn ring_and_tree_both_supported() {
    let mut totals = Vec::new();
    for algo in NcclAlgo::ALL {
        let config = P2Config::new(presets::v100_system(2), vec![4, 4], vec![0])
            .with_algo(algo)
            .with_bytes_per_device(1.0e9)
            .with_repeats(2);
        let result = P2::new(config).unwrap().run().unwrap();
        totals.push(result.best_overall().unwrap().measured_seconds);
    }
    assert!(totals.iter().all(|&t| t > 0.0));
}
