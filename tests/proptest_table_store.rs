//! Property-based pinning of the cross-run table store: any snapshot
//! reachable through real interning / apply-cache / suffix-memo traffic
//! must survive serialize → parse bit-exactly, canonical serialization must
//! be a fixed point, and installing a snapshot into fresh tables must
//! reproduce the exact snapshot on re-capture (the warm-start identity the
//! pipeline's determinism pins rely on).

use proptest::prelude::*;

use p2::collectives::{Collective, SharedTables, State};
use p2::{Fingerprint, MemoBank, MemoSlab, TableSnapshot, TableStoreStats};

/// Strategy: a scope size, a script of collective applications over the
/// initial states (member lists may repeat devices, so both `Ok` results
/// and cached errors appear), and a handful of memo slabs mixing known
/// counts with `MEMO_UNKNOWN`.
#[allow(clippy::type_complexity)]
fn snapshot_ingredients() -> impl Strategy<
    Value = (
        usize,
        Vec<(usize, Vec<usize>)>,
        Vec<(usize, usize, Vec<(u64, bool)>)>,
    ),
> {
    (2usize..=6).prop_flat_map(|k| {
        let script = proptest::collection::vec(
            (0usize..5, proptest::collection::vec(0usize..k, 2..=k)),
            0..6,
        );
        let slabs = proptest::collection::vec(
            (1usize..=4, 1usize..=3).prop_flat_map(|(states, width)| {
                let counts = proptest::collection::vec(
                    (0u64..u64::MAX, proptest::prelude::any::<bool>()),
                    states * width,
                );
                (Just(states), Just(width), counts)
            }),
            0..3,
        );
        (Just(k), script, slabs)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// serialize → parse is the identity, canonical serialization is a
    /// fixed point, and install-then-recapture reproduces the snapshot.
    #[test]
    fn snapshots_round_trip_bit_exactly(
        (k, script, slabs) in snapshot_ingredients()
    ) {
        let tables = SharedTables::new();
        let members: Vec<u32> = (0..k)
            .map(|device| tables.intern(State::initial(k, device)).0)
            .collect();
        for (step, chosen) in script {
            let collective = Collective::ALL[step];
            let ids: Vec<u32> = chosen.iter().map(|&i| members[i]).collect();
            // Both outcomes land in the apply cache; the snapshot must
            // carry each verbatim.
            let _ = tables.apply(collective, &ids);
        }
        let bank = MemoBank::new();
        for (i, (num_states, width, counts)) in slabs.iter().enumerate() {
            let counts: Vec<u64> = counts
                .iter()
                .map(|&(value, unknown)| if unknown { p2::synthesis::MEMO_UNKNOWN } else { value })
                .collect();
            bank.publish(
                &format!("proptest-ctx-{i}"),
                MemoSlab {
                    num_states: *num_states,
                    width: *width,
                    counts: counts.into(),
                },
            );
        }

        let snapshot = TableSnapshot::capture(Some(&tables), &bank);
        let key = Fingerprint::of_bytes(b"proptest-table-store");
        let text = snapshot.to_json_string(key);
        let parsed = TableSnapshot::from_json_str(&text, key).expect("snapshot parses back");

        // Bit-exact payloads through the JSON (u64 state words and memo
        // counts travel as hex strings, never as f64).
        prop_assert_eq!(&snapshot.states, &parsed.states);
        prop_assert_eq!(&snapshot.apply, &parsed.apply);
        prop_assert_eq!(snapshot.memo.len(), parsed.memo.len());
        for ((key_a, slab_a), (key_b, slab_b)) in snapshot.memo.iter().zip(&parsed.memo) {
            prop_assert_eq!(key_a, key_b);
            prop_assert_eq!(slab_a.num_states, slab_b.num_states);
            prop_assert_eq!(slab_a.width, slab_b.width);
            prop_assert_eq!(&slab_a.counts, &slab_b.counts);
        }

        // Canonical serialization: re-serializing reproduces the bytes.
        prop_assert_eq!(parsed.to_json_string(key), text);

        // Warm-start identity: installing into fresh tables and a fresh
        // bank reproduces the exact snapshot on re-capture.
        let warm_tables = SharedTables::new();
        let warm_bank = MemoBank::new();
        let mut stats = TableStoreStats::default();
        parsed.install(Some(&warm_tables), &warm_bank, &mut stats);
        prop_assert_eq!(stats.warm_states, snapshot.states.len());
        prop_assert_eq!(stats.warm_apply_entries, snapshot.apply.len());
        let recaptured = TableSnapshot::capture(Some(&warm_tables), &warm_bank);
        prop_assert_eq!(recaptured.to_json_string(key), snapshot.to_json_string(key));
    }

    /// A corrupted byte anywhere in the record is a miss, never a panic or
    /// a half-loaded table.
    #[test]
    fn corruption_is_a_miss(flip in 0usize..4096, with_tables in proptest::prelude::any::<bool>()) {
        let tables = SharedTables::new();
        let (a, _) = tables.intern(State::initial(3, 0));
        let (b, _) = tables.intern(State::initial(3, 1));
        let _ = tables.apply(Collective::AllReduce, &[a, b]);
        let bank = MemoBank::new();
        bank.publish(
            "corrupt-ctx",
            MemoSlab { num_states: 2, width: 2, counts: vec![1, 2, 3, 4].into() },
        );
        let source = if with_tables { Some(&tables) } else { None };
        let snapshot = TableSnapshot::capture(source, &bank);
        let key = Fingerprint::of_bytes(b"corruption-case");
        let text = snapshot.to_json_string(key);
        let mut bytes = text.into_bytes();
        let at = flip % bytes.len();
        bytes[at] = bytes[at].wrapping_add(13);
        let torn = String::from_utf8_lossy(&bytes);
        // Either the mutation still parses to the identical snapshot (it
        // hit insignificant whitespace — impossible in this compact form —
        // or produced an equivalent token) or the load is a clean miss.
        if let Some(parsed) = TableSnapshot::from_json_str(&torn, key) {
            let _ = parsed; // parsed without panicking: acceptable
        }
    }
}
