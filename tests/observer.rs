//! The run-observer contract: per-placement event sequences are complete and
//! deterministic, the single-pass `SharedBoundObserver` implements
//! cross-placement pruning deterministically inside one sweep — landing on
//! the same retained best as the reference `TwoPassSharedBound` while issuing
//! strictly fewer predictions — and the two-pass reference itself still lands
//! on the exhaustive sweep's best program.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use p2::synthesis::LoweredStep;
use p2::{
    presets, AlphaBetaModel, CostModel, ExperimentResult, NcclAlgo, ParallelismMatrix,
    PlacementEvaluation, Program, RunObserver, SharedBoundObserver, StepCost, SystemTopology,
    TwoPassSharedBound, P2,
};

fn builder(threads: usize) -> p2::P2Builder {
    P2::builder(presets::a100_system(2))
        .parallelism_axes([8, 4])
        .reduction_axes([0])
        .algo(NcclAlgo::Ring)
        .bytes_per_device(1.0e9)
        .repeats(2)
        .seed(0x5eed)
        .threads(threads)
}

fn session(threads: usize) -> P2 {
    builder(threads).build().unwrap()
}

/// Records every event, bucketed per placement index so the parallel sweep's
/// cross-placement interleaving cannot blur the per-placement sequences.
#[derive(Default)]
struct Recorder {
    /// Per placement index: (started, retained count, done count, retained
    /// events seen after done).
    events: Mutex<Vec<(usize, usize, usize, usize)>>,
}

impl Recorder {
    fn slot(
        events: &mut Vec<(usize, usize, usize, usize)>,
        index: usize,
    ) -> &mut (usize, usize, usize, usize) {
        if events.len() <= index {
            events.resize(index + 1, (0, 0, 0, 0));
        }
        &mut events[index]
    }
}

impl RunObserver for Recorder {
    fn on_placement_start(&self, index: usize, _matrix: &ParallelismMatrix) -> Option<f64> {
        let mut events = self.events.lock().unwrap();
        Self::slot(&mut events, index).0 += 1;
        None
    }

    fn on_program_retained(
        &self,
        index: usize,
        _program: &Program,
        predicted_seconds: f64,
        measured_seconds: f64,
    ) {
        assert!(predicted_seconds > 0.0 && measured_seconds > 0.0);
        let mut events = self.events.lock().unwrap();
        let slot = Self::slot(&mut events, index);
        slot.1 += 1;
        if slot.2 > 0 {
            slot.3 += 1;
        }
    }

    fn on_placement_done(&self, index: usize, evaluation: &PlacementEvaluation) {
        let mut events = self.events.lock().unwrap();
        let slot = Self::slot(&mut events, index);
        assert_eq!(
            slot.0, 1,
            "placement {index} finished without exactly one start event"
        );
        assert!(
            evaluation.programs_retained <= slot.1,
            "placement {index} reports more retained programs than events"
        );
        slot.2 += 1;
    }
}

#[test]
fn observer_sees_a_complete_deterministic_sequence_per_placement() {
    for threads in [1usize, 4] {
        let recorder = Recorder::default();
        let result = session(threads).run_observed(&recorder).unwrap();
        let events = recorder.events.into_inner().unwrap();
        assert_eq!(events.len(), result.placements.len());
        for (index, &(started, retained, done, after_done)) in events.iter().enumerate() {
            assert_eq!(started, 1, "placement {index} started {started} times");
            assert_eq!(done, 1, "placement {index} finished {done} times");
            assert_eq!(after_done, 0, "placement {index} retained after done");
            // The exhaustive default retains everything, so events and final
            // retention agree exactly.
            assert_eq!(retained, result.placements[index].programs_retained);
        }
    }
}

fn assert_identical(a: &ExperimentResult, b: &ExperimentResult) {
    assert_eq!(a.placements.len(), b.placements.len());
    for (pa, pb) in a.placements.iter().zip(&b.placements) {
        assert_eq!(pa.matrix, pb.matrix);
        assert_eq!(pa.num_programs, pb.num_programs);
        assert_eq!(pa.programs_pruned, pb.programs_pruned);
        assert_eq!(pa.programs_retained, pb.programs_retained);
        for (qa, qb) in pa.programs.iter().zip(&pb.programs) {
            assert_eq!(qa.signature(), qb.signature());
            assert_eq!(qa.predicted_seconds, qb.predicted_seconds);
            assert_eq!(qa.measured_seconds, qb.measured_seconds);
        }
    }
}

#[test]
fn single_pass_shared_bound_is_bit_identical_across_thread_counts() {
    let mut serial_observer = SharedBoundObserver::new();
    let serial = serial_observer.run(&session(1)).unwrap();
    let serial_bound = serial_observer.bound().unwrap();
    for threads in [0usize, 2, 4] {
        let mut observer = SharedBoundObserver::new();
        let parallel = observer.run(&session(threads)).unwrap();
        assert_eq!(observer.bound().unwrap(), serial_bound);
        assert_identical(&serial, &parallel);
    }
}

#[test]
fn single_pass_prunes_and_keeps_the_best_program() {
    let exhaustive = session(1).run().unwrap();
    let mut observer = SharedBoundObserver::new();
    let pruned = observer.run(&session(1)).unwrap();

    // Same search space, fewer retained evaluations: later placements prune
    // against the published minima of their dyadic prefix.
    assert_eq!(pruned.total_programs(), exhaustive.total_programs());
    assert!(pruned.total_programs_retained() < exhaustive.total_programs_retained());
    assert!(pruned.total_programs_pruned() > 0);

    // The globally best program survives — its own prediction is below every
    // published bound — and its measurement is bit-identical.
    let a = exhaustive.best_overall().unwrap();
    let b = pruned.best_overall().unwrap();
    assert_eq!(a.signature(), b.signature());
    assert_eq!(a.measured_seconds, b.measured_seconds);
}

#[test]
fn two_pass_shared_bound_is_deterministic_and_prunes_whole_placements() {
    let exhaustive = session(1).run().unwrap();
    let mut serial_observer = TwoPassSharedBound::new();
    let serial = serial_observer.run(&session(1)).unwrap();
    let serial_bound = serial_observer.bound().unwrap();
    for threads in [0usize, 4] {
        let mut observer = TwoPassSharedBound::new();
        let parallel = observer.run(&session(threads)).unwrap();
        assert_eq!(observer.bound().unwrap(), serial_bound);
        assert_identical(&serial, &parallel);
    }

    // The frozen global bound prunes placements whose programs all predict
    // worse than it — the cross-placement pruning a per-placement bound
    // cannot do.
    assert_eq!(serial.total_programs(), exhaustive.total_programs());
    assert!(serial.total_programs_retained() < exhaustive.total_programs_retained());
    assert!(
        serial.placements.iter().any(|pl| pl.programs_retained == 0),
        "expected at least one placement to be pruned away entirely"
    );
    let a = exhaustive.best_overall().unwrap();
    let b = serial.best_overall().unwrap();
    assert_eq!(a.signature(), b.signature());
    assert_eq!(a.measured_seconds, b.measured_seconds);
}

#[test]
fn observer_bound_alone_activates_pruning_without_keep_top() {
    // An observer returning a tight bound prunes even in the default
    // keep-everything configuration.
    struct TightBound(f64);
    impl RunObserver for TightBound {
        fn on_placement_start(&self, _index: usize, _matrix: &ParallelismMatrix) -> Option<f64> {
            Some(self.0)
        }
    }
    let exhaustive = session(1).run().unwrap();
    let global_best_predicted = exhaustive
        .placements
        .iter()
        .flat_map(|pl| pl.programs.iter().map(|p| p.predicted_seconds))
        .fold(f64::INFINITY, f64::min);
    let pruned = session(1)
        .run_observed(&TightBound(global_best_predicted))
        .unwrap();
    assert_eq!(pruned.total_programs(), exhaustive.total_programs());
    assert!(pruned.total_programs_retained() < exhaustive.total_programs_retained());
    // Survivors are exactly the programs within the slack envelope.
    let slack = session(1).config().prune_slack;
    for pl in &pruned.placements {
        for p in &pl.programs {
            assert!(p.predicted_seconds <= global_best_predicted * (1.0 + slack) * (1.0 + 1e-12));
        }
    }
}

/// An α–β model that counts every step prediction it serves — the counter
/// behind the "single pass issues strictly fewer predictions" pin.
#[derive(Debug)]
struct CountingModel {
    inner: AlphaBetaModel,
    step_predictions: AtomicUsize,
}

impl CountingModel {
    fn new() -> Arc<Self> {
        Arc::new(CountingModel {
            inner: AlphaBetaModel::new(presets::a100_system(2), NcclAlgo::Ring, 1.0e9).unwrap(),
            step_predictions: AtomicUsize::new(0),
        })
    }

    fn count(&self) -> usize {
        self.step_predictions.load(Ordering::Relaxed)
    }
}

impl CostModel for CountingModel {
    fn name(&self) -> &str {
        "counting(alpha-beta)"
    }

    fn system(&self) -> &SystemTopology {
        self.inner.system()
    }

    fn bytes_per_device(&self) -> f64 {
        self.inner.bytes_per_device()
    }

    fn step_cost(&self, step: &LoweredStep) -> StepCost {
        self.step_predictions.fetch_add(1, Ordering::Relaxed);
        self.inner.step_cost(step)
    }
}

/// A model whose predictions blow up mid-sweep: the sweep must fail fast —
/// the abort guard publishes the panicking placement's slot so workers
/// blocked on the shared-bound reduction tree drain instead of hanging.
#[derive(Debug)]
struct ExplodingModel {
    inner: AlphaBetaModel,
    calls_left: AtomicUsize,
}

impl CostModel for ExplodingModel {
    fn name(&self) -> &str {
        "exploding(alpha-beta)"
    }

    fn system(&self) -> &SystemTopology {
        self.inner.system()
    }

    fn bytes_per_device(&self) -> f64 {
        self.inner.bytes_per_device()
    }

    fn step_cost(&self, step: &LoweredStep) -> StepCost {
        assert!(
            self.calls_left.fetch_sub(1, Ordering::Relaxed) > 1,
            "injected mid-sweep prediction failure"
        );
        self.inner.step_cost(step)
    }
}

#[test]
fn panicking_worker_fails_the_shared_bound_run_instead_of_hanging() {
    let model = Arc::new(ExplodingModel {
        inner: AlphaBetaModel::new(presets::a100_system(2), NcclAlgo::Ring, 1.0e9).unwrap(),
        // Enough predictions to complete some placements, then blow up while
        // later placements wait on the reduction tree.
        calls_left: AtomicUsize::new(50),
    });
    let session = builder(4)
        .cost_model(model as Arc<dyn CostModel>)
        .cost_cache(false)
        .build()
        .unwrap();
    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        SharedBoundObserver::new().run(&session)
    }));
    // A hang would time this test out; the pin is that the panic surfaces.
    assert!(outcome.is_err(), "injected panic must propagate");
}

/// For any thread count, the single-pass bound lands on the same retained
/// best as the two-pass reference while issuing strictly fewer step
/// predictions (the cost cache is disabled so the counter sees every
/// prediction the engine asks for).
#[test]
fn single_pass_matches_two_pass_best_with_strictly_fewer_predictions() {
    let mut single_counts = Vec::new();
    let mut two_pass_counts = Vec::new();
    for threads in [1usize, 4] {
        let single_model = CountingModel::new();
        let single_session = builder(threads)
            .cost_model(Arc::clone(&single_model) as Arc<dyn CostModel>)
            .cost_cache(false)
            .build()
            .unwrap();
        let single = SharedBoundObserver::new().run(&single_session).unwrap();

        let two_pass_model = CountingModel::new();
        let two_pass_session = builder(threads)
            .cost_model(Arc::clone(&two_pass_model) as Arc<dyn CostModel>)
            .cost_cache(false)
            .build()
            .unwrap();
        let two_pass = TwoPassSharedBound::new().run(&two_pass_session).unwrap();

        // Same retained best, bit-identical measurement.
        let a = single.best_overall().unwrap();
        let b = two_pass.best_overall().unwrap();
        assert_eq!(a.signature(), b.signature());
        assert_eq!(a.measured_seconds, b.measured_seconds);
        assert_eq!(a.predicted_seconds, b.predicted_seconds);

        // Strictly fewer predictions: nothing is predicted twice.
        let single_count = single_model.count();
        let two_pass_count = two_pass_model.count();
        assert!(
            single_count < two_pass_count,
            "single pass issued {single_count} step predictions, \
             two-pass {two_pass_count}"
        );
        single_counts.push(single_count);
        two_pass_counts.push(two_pass_count);
    }
    // The prediction workload itself is thread-count-deterministic.
    assert!(single_counts.windows(2).all(|w| w[0] == w[1]));
    assert!(two_pass_counts.windows(2).all(|w| w[0] == w[1]));
}
