//! The run-observer contract: per-placement event sequences are complete and
//! deterministic, and the bundled `SharedBoundObserver` implements
//! cross-placement pruning as a deterministic two-pass run that still lands
//! on the exhaustive sweep's best program.

use std::sync::Mutex;

use p2::{
    presets, ExperimentResult, NcclAlgo, ParallelismMatrix, PlacementEvaluation, Program,
    RunObserver, SharedBoundObserver, P2,
};

fn session(threads: usize) -> P2 {
    P2::builder(presets::a100_system(2))
        .parallelism_axes([8, 4])
        .reduction_axes([0])
        .algo(NcclAlgo::Ring)
        .bytes_per_device(1.0e9)
        .repeats(2)
        .seed(0x5eed)
        .threads(threads)
        .build()
        .unwrap()
}

/// Records every event, bucketed per placement index so the parallel sweep's
/// cross-placement interleaving cannot blur the per-placement sequences.
#[derive(Default)]
struct Recorder {
    /// Per placement index: (started, retained count, done count, retained
    /// events seen after done).
    events: Mutex<Vec<(usize, usize, usize, usize)>>,
}

impl Recorder {
    fn slot(
        events: &mut Vec<(usize, usize, usize, usize)>,
        index: usize,
    ) -> &mut (usize, usize, usize, usize) {
        if events.len() <= index {
            events.resize(index + 1, (0, 0, 0, 0));
        }
        &mut events[index]
    }
}

impl RunObserver for Recorder {
    fn on_placement_start(&self, index: usize, _matrix: &ParallelismMatrix) -> Option<f64> {
        let mut events = self.events.lock().unwrap();
        Self::slot(&mut events, index).0 += 1;
        None
    }

    fn on_program_retained(
        &self,
        index: usize,
        _program: &Program,
        predicted_seconds: f64,
        measured_seconds: f64,
    ) {
        assert!(predicted_seconds > 0.0 && measured_seconds > 0.0);
        let mut events = self.events.lock().unwrap();
        let slot = Self::slot(&mut events, index);
        slot.1 += 1;
        if slot.2 > 0 {
            slot.3 += 1;
        }
    }

    fn on_placement_done(&self, index: usize, evaluation: &PlacementEvaluation) {
        let mut events = self.events.lock().unwrap();
        let slot = Self::slot(&mut events, index);
        assert_eq!(
            slot.0, 1,
            "placement {index} finished without exactly one start event"
        );
        assert!(
            evaluation.programs_retained <= slot.1,
            "placement {index} reports more retained programs than events"
        );
        slot.2 += 1;
    }
}

#[test]
fn observer_sees_a_complete_deterministic_sequence_per_placement() {
    for threads in [1usize, 4] {
        let recorder = Recorder::default();
        let result = session(threads).run_observed(&recorder).unwrap();
        let events = recorder.events.into_inner().unwrap();
        assert_eq!(events.len(), result.placements.len());
        for (index, &(started, retained, done, after_done)) in events.iter().enumerate() {
            assert_eq!(started, 1, "placement {index} started {started} times");
            assert_eq!(done, 1, "placement {index} finished {done} times");
            assert_eq!(after_done, 0, "placement {index} retained after done");
            // The exhaustive default retains everything, so events and final
            // retention agree exactly.
            assert_eq!(retained, result.placements[index].programs_retained);
        }
    }
}

fn assert_identical(a: &ExperimentResult, b: &ExperimentResult) {
    assert_eq!(a.placements.len(), b.placements.len());
    for (pa, pb) in a.placements.iter().zip(&b.placements) {
        assert_eq!(pa.matrix, pb.matrix);
        assert_eq!(pa.num_programs, pb.num_programs);
        assert_eq!(pa.programs_pruned, pb.programs_pruned);
        assert_eq!(pa.programs_retained, pb.programs_retained);
        for (qa, qb) in pa.programs.iter().zip(&pb.programs) {
            assert_eq!(qa.signature(), qb.signature());
            assert_eq!(qa.predicted_seconds, qb.predicted_seconds);
            assert_eq!(qa.measured_seconds, qb.measured_seconds);
        }
    }
}

#[test]
fn shared_bound_two_pass_is_deterministic_across_thread_counts() {
    let mut serial_observer = SharedBoundObserver::new();
    let serial = serial_observer.run(&session(1)).unwrap();
    let serial_bound = serial_observer.bound().unwrap();
    for threads in [0usize, 2, 4] {
        let mut observer = SharedBoundObserver::new();
        let parallel = observer.run(&session(threads)).unwrap();
        assert_eq!(observer.bound().unwrap(), serial_bound);
        assert_identical(&serial, &parallel);
    }
}

#[test]
fn shared_bound_prunes_across_placements_and_keeps_the_best_program() {
    let exhaustive = session(1).run().unwrap();
    let mut observer = SharedBoundObserver::new();
    let pruned = observer.run(&session(1)).unwrap();

    // Same search space, fewer retained evaluations: placements whose
    // programs all predict worse than the global bound retain nothing — the
    // cross-placement pruning the per-placement bound cannot do.
    assert_eq!(pruned.total_programs(), exhaustive.total_programs());
    assert!(pruned.total_programs_retained() < exhaustive.total_programs_retained());
    assert!(pruned.total_programs_pruned() > 0);
    assert!(
        pruned.placements.iter().any(|pl| pl.programs_retained == 0),
        "expected at least one placement to be pruned away entirely"
    );

    // The globally best program survives (its prediction *is* the bound's
    // neighbourhood) and its measurement is bit-identical.
    let a = exhaustive.best_overall().unwrap();
    let b = pruned.best_overall().unwrap();
    assert_eq!(a.signature(), b.signature());
    assert_eq!(a.measured_seconds, b.measured_seconds);
}

#[test]
fn observer_bound_alone_activates_pruning_without_keep_top() {
    // An observer returning a tight bound prunes even in the default
    // keep-everything configuration.
    struct TightBound(f64);
    impl RunObserver for TightBound {
        fn on_placement_start(&self, _index: usize, _matrix: &ParallelismMatrix) -> Option<f64> {
            Some(self.0)
        }
    }
    let exhaustive = session(1).run().unwrap();
    let global_best_predicted = exhaustive
        .placements
        .iter()
        .flat_map(|pl| pl.programs.iter().map(|p| p.predicted_seconds))
        .fold(f64::INFINITY, f64::min);
    let pruned = session(1)
        .run_observed(&TightBound(global_best_predicted))
        .unwrap();
    assert_eq!(pruned.total_programs(), exhaustive.total_programs());
    assert!(pruned.total_programs_retained() < exhaustive.total_programs_retained());
    // Survivors are exactly the programs within the slack envelope.
    let slack = session(1).config().prune_slack;
    for pl in &pruned.placements {
        for p in &pl.programs {
            assert!(p.predicted_seconds <= global_best_predicted * (1.0 + slack) * (1.0 + 1e-12));
        }
    }
}
