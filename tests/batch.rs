//! The batch-scheduling contract of [`p2::run_batch`]: one global thread
//! budget for a whole batch of sessions (the nested-parallelism
//! oversubscription regression), retained-program sets that are invariant
//! under randomized steal schedules, and cross-spec bound sharing that issues
//! strictly fewer predictions than per-spec bounds while keeping the group's
//! best program.

use std::collections::BTreeSet;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use p2::synthesis::LoweredStep;
use p2::{
    presets, run_batch, AlphaBetaModel, BatchOptions, CostModel, ExperimentResult, NcclAlgo,
    ParallelismMatrix, PlacementEvaluation, RunObserver, SharedBoundObserver, StepCost,
    SystemTopology, P2,
};

fn session(axes: Vec<usize>, reduction: Vec<usize>, bytes: f64) -> P2 {
    P2::builder(presets::a100_system(2))
        .parallelism_axes(axes)
        .reduction_axes(reduction)
        .algo(NcclAlgo::Ring)
        .bytes_per_device(bytes)
        .repeats(2)
        .seed(0x5eed)
        .build()
        .unwrap()
}

/// Counts placement evaluations in flight across ALL sessions of a batch —
/// the independent witness (next to the scheduler's own telemetry) that a
/// batch never runs more evaluations at once than its thread budget.
#[derive(Default)]
struct ConcurrencyObserver {
    current: AtomicUsize,
    peak: AtomicUsize,
    done: AtomicUsize,
}

impl RunObserver for ConcurrencyObserver {
    fn on_placement_start(&self, _index: usize, _matrix: &ParallelismMatrix) -> Option<f64> {
        let now = self.current.fetch_add(1, Ordering::SeqCst) + 1;
        self.peak.fetch_max(now, Ordering::SeqCst);
        None
    }

    fn on_placement_done(&self, _index: usize, _evaluation: &PlacementEvaluation) {
        self.current.fetch_sub(1, Ordering::SeqCst);
        self.done.fetch_add(1, Ordering::SeqCst);
    }

    fn on_placement_aborted(&self, _index: usize) {
        self.current.fetch_sub(1, Ordering::SeqCst);
    }
}

/// The oversubscription regression: four sessions batched onto two workers
/// must never evaluate more than two placements simultaneously — the old
/// per-spec nested pools would have run up to `4 × threads` at once.
#[test]
fn batch_never_exceeds_its_global_thread_budget() {
    let sessions: Vec<P2> = [
        (vec![8, 4], vec![0]),
        (vec![16, 2], vec![0]),
        (vec![4, 8], vec![1]),
        (vec![2, 16], vec![0]),
    ]
    .into_iter()
    .map(|(axes, reduction)| session(axes, reduction, 1.0e8))
    .collect();
    let observer = ConcurrencyObserver::default();
    let outcome = run_batch(&sessions, &BatchOptions::with_threads(2), &observer).unwrap();
    assert_eq!(outcome.threads, 2);
    assert!(
        observer.peak.load(Ordering::SeqCst) <= 2,
        "batch ran {} placement evaluations at once on a 2-thread budget",
        observer.peak.load(Ordering::SeqCst)
    );
    assert!(outcome.peak_in_flight <= 2);
    let placements: usize = outcome.results.iter().map(|r| r.placements.len()).sum();
    assert_eq!(observer.done.load(Ordering::SeqCst), placements);
}

/// Per-placement retained-program signature sets, in placement order.
fn retained_sets(result: &ExperimentResult) -> Vec<BTreeSet<String>> {
    result
        .placements
        .iter()
        .map(|p| p.programs.iter().map(|q| q.signature()).collect())
        .collect()
}

proptest::proptest! {
    #![proptest_config(proptest::prelude::ProptestConfig::with_cases(8))]

    /// Randomized steal schedules (deque-scatter seed × thread count) never
    /// change what a batch retains: every placement's retained-program set —
    /// and every ranking field — matches the single-threaded reference.
    #[test]
    fn steal_schedules_preserve_retained_program_sets(
        threads in 1usize..5,
        steal_seed in 0u64..u64::MAX,
    ) {
        let sessions = vec![
            session(vec![8, 4], vec![0], 1.0e8),
            session(vec![16, 2], vec![1], 1.0e8),
        ];
        let reference = run_batch(&sessions, &BatchOptions::with_threads(1), &()).unwrap();
        let options = BatchOptions { threads, steal_seed, ..BatchOptions::default() };
        let outcome = run_batch(&sessions, &options, &()).unwrap();
        for (a, b) in reference.results.iter().zip(&outcome.results) {
            proptest::prop_assert_eq!(retained_sets(a), retained_sets(b));
            for (pa, pb) in a.placements.iter().zip(&b.placements) {
                proptest::prop_assert_eq!(pa.programs_pruned, pb.programs_pruned);
                for (qa, qb) in pa.programs.iter().zip(&pb.programs) {
                    proptest::prop_assert_eq!(qa.signature(), qb.signature());
                    proptest::prop_assert_eq!(qa.predicted_seconds, qb.predicted_seconds);
                    proptest::prop_assert_eq!(qa.measured_seconds, qb.measured_seconds);
                }
            }
        }
    }
}

/// An α–β model that counts every step prediction it serves.
#[derive(Debug)]
struct CountingModel {
    inner: AlphaBetaModel,
    step_predictions: AtomicUsize,
}

impl CountingModel {
    fn new() -> Arc<Self> {
        Arc::new(CountingModel {
            inner: AlphaBetaModel::new(presets::a100_system(2), NcclAlgo::Ring, 1.0e9).unwrap(),
            step_predictions: AtomicUsize::new(0),
        })
    }

    fn count(&self) -> usize {
        self.step_predictions.load(Ordering::Relaxed)
    }
}

impl CostModel for CountingModel {
    fn name(&self) -> &str {
        "counting(alpha-beta)"
    }

    fn system(&self) -> &SystemTopology {
        self.inner.system()
    }

    fn bytes_per_device(&self) -> f64 {
        self.inner.bytes_per_device()
    }

    fn step_cost(&self, step: &LoweredStep) -> StepCost {
        self.step_predictions.fetch_add(1, Ordering::Relaxed);
        self.inner.step_cost(step)
    }
}

fn counting_sessions(model: &Arc<CountingModel>) -> Vec<P2> {
    // Same axes, both reduction choices: the second spec's search space prices
    // like the first's, so the cross-spec seed undercuts its per-placement
    // AllReduce starting bounds.
    [(vec![8, 4], vec![0]), (vec![8, 4], vec![1])]
        .into_iter()
        .map(|(axes, reduction)| {
            P2::builder(presets::a100_system(2))
                .parallelism_axes(axes)
                .reduction_axes(reduction)
                .algo(NcclAlgo::Ring)
                .bytes_per_device(1.0e9)
                .repeats(2)
                .seed(0x5eed)
                .cost_model(Arc::clone(model) as Arc<dyn CostModel>)
                .cost_cache(false)
                .build()
                .unwrap()
        })
        .collect()
}

/// Cross-spec bound sharing generalizes the single-sweep shared bound: two
/// specs over the same machine and model, batched with `share_bounds`, issue
/// strictly fewer step predictions than the same two specs each running under
/// their own per-spec [`SharedBoundObserver`] — and the group still lands on
/// the same overall best program.
#[test]
fn cross_spec_bound_sharing_issues_strictly_fewer_predictions() {
    // Per-spec bounds: each session reduces through its own tree.
    let per_spec_model = CountingModel::new();
    let per_spec: Vec<ExperimentResult> = counting_sessions(&per_spec_model)
        .iter()
        .map(|s| SharedBoundObserver::new().run(s).unwrap())
        .collect();
    let per_spec_count = per_spec_model.count();

    // One shared tree across the group.
    let batch_model = CountingModel::new();
    let options = BatchOptions {
        threads: 1,
        share_bounds: true,
        ..BatchOptions::default()
    };
    let outcome = run_batch(&counting_sessions(&batch_model), &options, &()).unwrap();
    let batch_count = batch_model.count();

    assert_eq!(outcome.groups, 1, "same machine + same model: one group");
    assert!(
        batch_count < per_spec_count,
        "cross-spec bounds issued {batch_count} step predictions, \
         per-spec bounds {per_spec_count}"
    );
    assert!(outcome.bounds[0].is_some(), "the group published a bound");

    // The group's overall best survives sharing, bit for bit.
    let best = |results: &[ExperimentResult]| {
        results
            .iter()
            .filter_map(|r| r.best_overall())
            .min_by(|a, b| a.measured_seconds.total_cmp(&b.measured_seconds))
            .map(|p| (p.signature(), p.measured_seconds.to_bits()))
            .unwrap()
    };
    assert_eq!(best(&per_spec), best(&outcome.results));
}
