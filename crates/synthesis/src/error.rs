use std::fmt;

use p2_collectives::SemanticsError;
use p2_placement::PlacementError;

/// Errors produced while building synthesis hierarchies, synthesizing or
/// lowering reduction programs.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SynthesisError {
    /// A reduction-axis index was out of range or the list was empty.
    InvalidReductionAxes {
        /// The offending axes.
        axes: Vec<usize>,
    },
    /// A DSL instruction referenced a synthesis-hierarchy level that does not exist.
    LevelOutOfRange {
        /// The offending level index.
        level: usize,
    },
    /// A form's ancestor level must be a strict ancestor of the slice level.
    NotAnAncestor {
        /// Slice level.
        slice: usize,
        /// Claimed ancestor level.
        ancestor: usize,
    },
    /// A program failed the collective semantics when re-validated or lowered.
    Semantics(SemanticsError),
    /// A program executed without errors but did not end in the requested
    /// reduction state.
    GoalNotReached,
    /// An underlying placement query failed.
    Placement(PlacementError),
}

impl fmt::Display for SynthesisError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SynthesisError::InvalidReductionAxes { axes } => {
                write!(f, "invalid reduction axes {axes:?}")
            }
            SynthesisError::LevelOutOfRange { level } => {
                write!(f, "synthesis-hierarchy level {level} out of range")
            }
            SynthesisError::NotAnAncestor { slice, ancestor } => {
                write!(
                    f,
                    "level {ancestor} is not a strict ancestor of slice level {slice}"
                )
            }
            SynthesisError::Semantics(e) => write!(f, "semantics violation: {e}"),
            SynthesisError::GoalNotReached => {
                write!(f, "program does not end in the requested reduction state")
            }
            SynthesisError::Placement(e) => write!(f, "placement error: {e}"),
        }
    }
}

impl std::error::Error for SynthesisError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SynthesisError::Semantics(e) => Some(e),
            SynthesisError::Placement(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SemanticsError> for SynthesisError {
    fn from(e: SemanticsError) -> Self {
        SynthesisError::Semantics(e)
    }
}

impl From<PlacementError> for SynthesisError {
    fn from(e: PlacementError) -> Self {
        SynthesisError::Placement(e)
    }
}
