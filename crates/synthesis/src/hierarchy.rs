//! Synthesis hierarchies (paper §2.5 and §3.4).
//!
//! The synthesizer needs a flat hierarchy of *parallelism factors* to slice
//! devices into groups. The paper compares four choices and proves that (d)
//! is the most expressive while having the smallest search space:
//!
//! * (a) the system hierarchy itself,
//! * (b) column-based parallelism factors,
//! * (c) row-based parallelism factors,
//! * (d) the parallelism factors of the reduction axes only, collapsed per
//!   hardware level.

use p2_placement::ParallelismMatrix;

use crate::dsl::Form;
use crate::error::SynthesisError;

/// Which synthesis hierarchy to build (paper §3.4, items (a)–(d)).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum HierarchyKind {
    /// (a) The raw system hierarchy.
    System,
    /// (b) Column-based parallelism factors: for each hardware level, the
    /// factors of every axis at that level.
    ColumnMajor,
    /// (c) Row-based parallelism factors: for each axis, its factors at every
    /// hardware level.
    RowMajor,
    /// (d) The reduction-axis parallelism factors, collapsed per hardware
    /// level. This is what P² uses.
    ReductionAxes,
}

impl HierarchyKind {
    /// All four kinds, in the paper's (a)–(d) order.
    pub const ALL: [HierarchyKind; 4] = [
        HierarchyKind::System,
        HierarchyKind::ColumnMajor,
        HierarchyKind::RowMajor,
        HierarchyKind::ReductionAxes,
    ];

    /// The paper's letter for this hierarchy, `'a'`–`'d'`.
    pub fn letter(self) -> char {
        match self {
            HierarchyKind::System => 'a',
            HierarchyKind::ColumnMajor => 'b',
            HierarchyKind::RowMajor => 'c',
            HierarchyKind::ReductionAxes => 'd',
        }
    }
}

/// One level of a synthesis hierarchy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SynthLevel {
    /// The parallelism factor at this level (how many children per parent).
    pub factor: usize,
    /// The hardware-hierarchy level this factor came from, if any (the
    /// prepended root has none).
    pub hw_level: Option<usize>,
    /// For [`HierarchyKind::ReductionAxes`], the `(axis, factor)` pairs that
    /// were collapsed into this level, in increasing axis order. Empty for the
    /// other kinds and for the root.
    pub axis_factors: Vec<(usize, usize)>,
}

/// A flat synthesis hierarchy: an ordered list of parallelism factors,
/// outermost first, always starting with a root factor of 1.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SynthesisHierarchy {
    kind: HierarchyKind,
    levels: Vec<SynthLevel>,
}

impl SynthesisHierarchy {
    /// Builds the synthesis hierarchy of the given kind for a parallelism
    /// matrix and a set of reduction axes.
    ///
    /// # Errors
    ///
    /// Returns [`SynthesisError::InvalidReductionAxes`] when the axis list is
    /// empty, contains duplicates, or mentions an axis the matrix does not
    /// have.
    pub fn build(
        matrix: &ParallelismMatrix,
        reduction_axes: &[usize],
        kind: HierarchyKind,
    ) -> Result<Self, SynthesisError> {
        validate_axes(matrix, reduction_axes)?;
        let mut levels: Vec<SynthLevel> = Vec::new();
        match kind {
            HierarchyKind::System => {
                for (j, &h) in matrix.arities().iter().enumerate() {
                    levels.push(SynthLevel {
                        factor: h,
                        hw_level: Some(j),
                        axis_factors: vec![],
                    });
                }
            }
            HierarchyKind::ColumnMajor => {
                for j in 0..matrix.num_levels() {
                    for i in 0..matrix.num_axes() {
                        levels.push(SynthLevel {
                            factor: matrix.factor(i, j),
                            hw_level: Some(j),
                            axis_factors: vec![],
                        });
                    }
                }
            }
            HierarchyKind::RowMajor => {
                for i in 0..matrix.num_axes() {
                    for j in 0..matrix.num_levels() {
                        levels.push(SynthLevel {
                            factor: matrix.factor(i, j),
                            hw_level: Some(j),
                            axis_factors: vec![],
                        });
                    }
                }
            }
            HierarchyKind::ReductionAxes => {
                for j in 0..matrix.num_levels() {
                    let axis_factors: Vec<(usize, usize)> = reduction_axes
                        .iter()
                        .copied()
                        .filter(|&i| matrix.factor(i, j) > 1)
                        .map(|i| (i, matrix.factor(i, j)))
                        .collect();
                    let factor: usize = axis_factors.iter().map(|(_, f)| f).product();
                    if factor > 1 {
                        levels.push(SynthLevel {
                            factor,
                            hw_level: Some(j),
                            axis_factors,
                        });
                    }
                }
            }
        }
        // Always start from a root level of 1 so "everything" is a slice group
        // (the paper appends (root, 1) to hierarchy (d)).
        if levels.first().map(|l| l.factor) != Some(1) {
            levels.insert(
                0,
                SynthLevel {
                    factor: 1,
                    hw_level: None,
                    axis_factors: vec![],
                },
            );
        }
        Ok(SynthesisHierarchy { kind, levels })
    }

    /// Which of the paper's hierarchies this is.
    pub fn kind(&self) -> HierarchyKind {
        self.kind
    }

    /// The levels, outermost first.
    pub fn levels(&self) -> &[SynthLevel] {
        &self.levels
    }

    /// The per-level factors, outermost first.
    pub fn factors(&self) -> Vec<usize> {
        self.levels.iter().map(|l| l.factor).collect()
    }

    /// Number of levels.
    pub fn depth(&self) -> usize {
        self.levels.len()
    }

    /// The size of the synthesis space: the product of all factors. For
    /// hierarchy (d) this is the reduction-group size; for (a)–(c) it is the
    /// total device count.
    pub fn space_size(&self) -> usize {
        self.levels.iter().map(|l| l.factor).product()
    }

    /// Derives the device groups (as synthesis-space indices) named by a
    /// `slice`/`form` pair, following Table 2 of the paper.
    ///
    /// Space indices enumerate the leaves of the synthesis hierarchy in
    /// row-major order (level 0 most significant). Every returned group is
    /// sorted; groups are pairwise disjoint by construction.
    ///
    /// # Errors
    ///
    /// Returns [`SynthesisError::LevelOutOfRange`] for an invalid slice or
    /// ancestor level and [`SynthesisError::NotAnAncestor`] when the form's
    /// level is not a strict ancestor of the slice.
    pub fn derive_groups(
        &self,
        slice: usize,
        form: Form,
    ) -> Result<Vec<Vec<usize>>, SynthesisError> {
        let depth = self.depth();
        if slice >= depth {
            return Err(SynthesisError::LevelOutOfRange { level: slice });
        }
        let factors = self.factors();
        let total: usize = factors.iter().product();
        // Size of a slice group: devices sharing the prefix up to `slice`.
        let slice_block: usize = factors[slice + 1..].iter().product();
        match form {
            Form::InsideGroup => {
                let groups = (0..total / slice_block.max(1))
                    .map(|g| (g * slice_block..(g + 1) * slice_block).collect())
                    .collect();
                Ok(groups)
            }
            Form::Parallel(ancestor) | Form::Master(ancestor) => {
                if ancestor >= depth {
                    return Err(SynthesisError::LevelOutOfRange { level: ancestor });
                }
                if ancestor >= slice {
                    return Err(SynthesisError::NotAnAncestor { slice, ancestor });
                }
                // Devices sharing the prefix up to `ancestor` form one block.
                let ancestor_block: usize = factors[ancestor + 1..].iter().product();
                let num_ancestor_blocks = total / ancestor_block;
                let mut groups = Vec::new();
                for block in 0..num_ancestor_blocks {
                    let base = block * ancestor_block;
                    let offsets: Box<dyn Iterator<Item = usize>> = match form {
                        Form::Master(_) => Box::new(std::iter::once(0)),
                        _ => Box::new(0..slice_block),
                    };
                    for offset in offsets {
                        let group: Vec<usize> = (0..ancestor_block / slice_block)
                            .map(|i| base + i * slice_block + offset)
                            .collect();
                        groups.push(group);
                    }
                }
                Ok(groups)
            }
        }
    }
}

fn validate_axes(
    matrix: &ParallelismMatrix,
    reduction_axes: &[usize],
) -> Result<(), SynthesisError> {
    let bad = reduction_axes.is_empty()
        || reduction_axes.iter().any(|&a| a >= matrix.num_axes())
        || (1..reduction_axes.len()).any(|i| reduction_axes[i..].contains(&reduction_axes[i - 1]));
    if bad {
        Err(SynthesisError::InvalidReductionAxes {
            axes: reduction_axes.to_vec(),
        })
    } else {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Figure 2d / Table 1 matrix: [[1 1 2 2][1 2 1 2]] on [1 2 2 4].
    fn figure2d() -> ParallelismMatrix {
        ParallelismMatrix::new(
            vec![vec![1, 1, 2, 2], vec![1, 2, 1, 2]],
            vec![1, 2, 2, 4],
            vec![4, 4],
        )
        .unwrap()
    }

    #[test]
    fn table1_hierarchies() {
        let m = figure2d();
        let a = SynthesisHierarchy::build(&m, &[1], HierarchyKind::System).unwrap();
        assert_eq!(a.factors(), vec![1, 2, 2, 4]);
        let b = SynthesisHierarchy::build(&m, &[1], HierarchyKind::ColumnMajor).unwrap();
        assert_eq!(b.factors(), vec![1, 1, 1, 2, 2, 1, 2, 2]);
        let c = SynthesisHierarchy::build(&m, &[1], HierarchyKind::RowMajor).unwrap();
        assert_eq!(c.factors(), vec![1, 1, 2, 2, 1, 2, 1, 2]);
        let d = SynthesisHierarchy::build(&m, &[1], HierarchyKind::ReductionAxes).unwrap();
        // [1 2 1 2] with the 1-factors dropped and a root of 1 prepended.
        assert_eq!(d.factors(), vec![1, 2, 2]);
        assert_eq!(d.space_size(), 4);
        assert_eq!(a.space_size(), 16);
        assert_eq!(b.space_size(), 16);
        assert_eq!(c.space_size(), 16);
    }

    #[test]
    fn multi_axis_collapse_matches_table1() {
        // Table 1 second half: rows [1 2 3][4 5 6][7 8 9], reduce axes {0, 2};
        // the collapsed hierarchy is [7 16 27].
        let m = ParallelismMatrix::new(
            vec![vec![1, 2, 3], vec![4, 5, 6], vec![7, 8, 9]],
            vec![28, 80, 162],
            vec![6, 120, 504],
        )
        .unwrap();
        let d = SynthesisHierarchy::build(&m, &[0, 2], HierarchyKind::ReductionAxes).unwrap();
        assert_eq!(d.factors(), vec![1, 7, 16, 27]);
        // Level 1 collapsed (axis0=1 dropped, axis2=7); level 2 collapsed 2*8 = 16.
        assert_eq!(d.levels()[2].axis_factors, vec![(0, 2), (2, 8)]);
    }

    #[test]
    fn invalid_axes_rejected() {
        let m = figure2d();
        assert!(SynthesisHierarchy::build(&m, &[], HierarchyKind::ReductionAxes).is_err());
        assert!(SynthesisHierarchy::build(&m, &[2], HierarchyKind::ReductionAxes).is_err());
        assert!(SynthesisHierarchy::build(&m, &[0, 0], HierarchyKind::ReductionAxes).is_err());
    }

    #[test]
    fn table2_groups_on_the_system_hierarchy() {
        let m = figure2d();
        let h = SynthesisHierarchy::build(&m, &[1], HierarchyKind::System).unwrap();
        // slice = CPU (level 2), InsideGroup: the four CPUs' GPU quartets.
        let g = h.derive_groups(2, Form::InsideGroup).unwrap();
        assert_eq!(
            g,
            vec![
                vec![0, 1, 2, 3],
                vec![4, 5, 6, 7],
                vec![8, 9, 10, 11],
                vec![12, 13, 14, 15]
            ]
        );
        // slice = CPU, Parallel(server = level 1): {A0,B0} {A1,B1} ... {C0,D0} ...
        let g = h.derive_groups(2, Form::Parallel(1)).unwrap();
        assert!(g.contains(&vec![0, 4]));
        assert!(g.contains(&vec![3, 7]));
        assert!(g.contains(&vec![8, 12]));
        assert_eq!(g.len(), 8);
        // slice = CPU, Parallel(rack = level 0): {A0,B0,C0,D0} ...
        let g = h.derive_groups(2, Form::Parallel(0)).unwrap();
        assert!(g.contains(&vec![0, 4, 8, 12]));
        assert_eq!(g.len(), 4);
        // slice = CPU, Master(rack): only the first of those groups.
        let g = h.derive_groups(2, Form::Master(0)).unwrap();
        assert_eq!(g, vec![vec![0, 4, 8, 12]]);
        // slice = server (level 1), InsideGroup: halves of the rack.
        let g = h.derive_groups(1, Form::InsideGroup).unwrap();
        assert_eq!(
            g,
            vec![(0..8).collect::<Vec<_>>(), (8..16).collect::<Vec<_>>()]
        );
        // slice = server, Parallel(rack): {A0,C0} {A1,C1} ... {B0,D0} ...
        let g = h.derive_groups(1, Form::Parallel(0)).unwrap();
        assert!(g.contains(&vec![0, 8]));
        assert!(g.contains(&vec![4, 12]));
        assert_eq!(g.len(), 8);
        // slice = rack, InsideGroup: everything.
        let g = h.derive_groups(0, Form::InsideGroup).unwrap();
        assert_eq!(g, vec![(0..16).collect::<Vec<_>>()]);
    }

    #[test]
    fn groups_are_disjoint_and_cover_uniform_sizes() {
        let m = figure2d();
        for kind in HierarchyKind::ALL {
            let h = SynthesisHierarchy::build(&m, &[1], kind).unwrap();
            for slice in 0..h.depth() {
                let mut forms = vec![Form::InsideGroup];
                for a in 0..slice {
                    forms.push(Form::Parallel(a));
                    forms.push(Form::Master(a));
                }
                for form in forms {
                    let groups = h.derive_groups(slice, form).unwrap();
                    let mut seen = std::collections::HashSet::new();
                    for g in &groups {
                        for &d in g {
                            assert!(
                                seen.insert(d),
                                "device {d} appears twice ({kind:?}, {slice}, {form})"
                            );
                            assert!(d < h.space_size());
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn bad_slice_and_ancestor_rejected() {
        let m = figure2d();
        let h = SynthesisHierarchy::build(&m, &[1], HierarchyKind::ReductionAxes).unwrap();
        assert!(matches!(
            h.derive_groups(9, Form::InsideGroup),
            Err(SynthesisError::LevelOutOfRange { level: 9 })
        ));
        assert!(matches!(
            h.derive_groups(1, Form::Parallel(1)),
            Err(SynthesisError::NotAnAncestor {
                slice: 1,
                ancestor: 1
            })
        ));
        assert!(matches!(
            h.derive_groups(1, Form::Parallel(7)),
            Err(SynthesisError::LevelOutOfRange { level: 7 })
        ));
    }

    #[test]
    fn letters_match_paper() {
        assert_eq!(HierarchyKind::System.letter(), 'a');
        assert_eq!(HierarchyKind::ReductionAxes.letter(), 'd');
    }
}
