//! The reduction DSL of paper §3.3: a program is a list of
//! `(slice, form, collective)` instructions over the synthesis hierarchy.

use std::fmt;

use p2_collectives::Collective;

/// How the reduction groups derived from a slice are combined (paper §3.3,
/// Table 2).
///
/// The `usize` carried by [`Form::Parallel`] and [`Form::Master`] is the index
/// of a synthesis-hierarchy level that must be a strict ancestor of the
/// instruction's slice level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Form {
    /// Perform the collective within each slice group.
    InsideGroup,
    /// Perform the collective across the i-th members of the slice groups that
    /// share the given ancestor level, for every i simultaneously.
    Parallel(usize),
    /// Like [`Form::Parallel`] but only the first member group per ancestor
    /// instance participates.
    Master(usize),
}

impl fmt::Display for Form {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Form::InsideGroup => write!(f, "InsideGroup"),
            Form::Parallel(level) => write!(f, "Parallel(L{level})"),
            Form::Master(level) => write!(f, "Master(L{level})"),
        }
    }
}

/// One reduction instruction: a slice level, a form and a collective.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Instruction {
    /// Index of the synthesis-hierarchy level whose instances are the slice groups.
    pub slice: usize,
    /// How the slice groups are combined into device groups.
    pub form: Form,
    /// The collective performed by every derived device group.
    pub collective: Collective,
}

impl Instruction {
    /// Creates an instruction.
    pub fn new(slice: usize, form: Form, collective: Collective) -> Self {
        Instruction {
            slice,
            form,
            collective,
        }
    }
}

impl fmt::Display for Instruction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(L{}, {}, {})", self.slice, self.form, self.collective)
    }
}

/// A reduction program: an ordered list of instructions (paper §3.3).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct Program {
    /// The instructions, executed in order.
    pub instructions: Vec<Instruction>,
}

impl Program {
    /// Creates a program from a list of instructions.
    pub fn new(instructions: Vec<Instruction>) -> Self {
        Program { instructions }
    }

    /// The empty program.
    pub fn empty() -> Self {
        Program {
            instructions: Vec::new(),
        }
    }

    /// Number of instructions.
    pub fn len(&self) -> usize {
        self.instructions.len()
    }

    /// Whether the program has no instructions.
    pub fn is_empty(&self) -> bool {
        self.instructions.is_empty()
    }

    /// The sequence of collectives, e.g. `"Reduce-AllReduce-Broadcast"` —
    /// the notation used in the paper's Figure 3 and Figure 10.
    pub fn signature(&self) -> String {
        self.instructions
            .iter()
            .map(|i| i.collective.to_string())
            .collect::<Vec<_>>()
            .join("-")
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, instr) in self.instructions.iter().enumerate() {
            if i > 0 {
                write!(f, "; ")?;
            }
            write!(f, "{instr}")?;
        }
        write!(f, "]")
    }
}

impl FromIterator<Instruction> for Program {
    fn from_iter<T: IntoIterator<Item = Instruction>>(iter: T) -> Self {
        Program::new(iter.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_signature() {
        let p = Program::new(vec![
            Instruction::new(1, Form::InsideGroup, Collective::Reduce),
            Instruction::new(0, Form::Parallel(0), Collective::AllReduce),
            Instruction::new(1, Form::InsideGroup, Collective::Broadcast),
        ]);
        assert_eq!(p.signature(), "Reduce-AllReduce-Broadcast");
        assert_eq!(p.len(), 3);
        assert!(!p.is_empty());
        assert!(p.to_string().contains("InsideGroup"));
        assert!(Program::empty().is_empty());
    }

    #[test]
    fn collects_from_iterator() {
        let p: Program = std::iter::once(Instruction::new(
            0,
            Form::InsideGroup,
            Collective::AllReduce,
        ))
        .collect();
        assert_eq!(p.len(), 1);
    }
}
