//! Lowered reduction programs: explicit per-step physical device groups.

use p2_collectives::Collective;
use p2_placement::ParallelismMatrix;

use crate::error::SynthesisError;

/// One device group executing a collective in one step of a lowered program.
#[derive(Debug, Clone, PartialEq)]
pub struct GroupExec {
    /// Physical device ranks, in root-first order (`devices[0]` is the root
    /// for `Reduce`/`Broadcast`).
    pub devices: Vec<usize>,
    /// Fraction of the full per-device buffer each participant contributes to
    /// this step (1.0 for a full-buffer AllReduce, 0.5 after a ReduceScatter
    /// over two devices, …).
    pub input_fraction: f64,
}

/// One step of a lowered program: every group runs the same collective
/// concurrently.
#[derive(Debug, Clone, PartialEq)]
pub struct LoweredStep {
    /// The collective performed in this step.
    pub collective: Collective,
    /// The concurrently-communicating device groups.
    pub groups: Vec<GroupExec>,
}

impl LoweredStep {
    /// The largest group size in this step.
    pub fn max_group_size(&self) -> usize {
        self.groups
            .iter()
            .map(|g| g.devices.len())
            .max()
            .unwrap_or(0)
    }
}

/// A reduction program lowered to sequences of collectives over physical
/// device groups — the representation consumed by the cost model and the
/// execution simulator, and ultimately what would be handed to NCCL.
#[derive(Debug, Clone, PartialEq)]
pub struct LoweredProgram {
    /// The steps, executed in order; groups within one step run concurrently.
    pub steps: Vec<LoweredStep>,
    /// Total number of physical devices in the system the program targets.
    pub num_devices: usize,
}

impl LoweredProgram {
    /// Number of steps.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// Whether the program has no steps.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// The `Collective-Collective-…` signature (Figure 10 notation).
    pub fn signature(&self) -> String {
        self.steps
            .iter()
            .map(|s| s.collective.to_string())
            .collect::<Vec<_>>()
            .join("-")
    }

    /// Whether every step's groups are pairwise disjoint (a well-formedness
    /// invariant of lowering; exposed for tests and debugging).
    pub fn groups_are_disjoint(&self) -> bool {
        self.steps.iter().all(|step| {
            let mut seen = std::collections::HashSet::new();
            step.groups
                .iter()
                .flat_map(|g| &g.devices)
                .all(|&d| seen.insert(d))
        })
    }
}

/// The default reduction the paper compares against: a single `AllReduce`
/// within every reduction group of the placement (paper §2.2, Figure 3a).
///
/// # Errors
///
/// Propagates placement errors for invalid reduction axes.
pub fn baseline_allreduce(
    matrix: &ParallelismMatrix,
    reduction_axes: &[usize],
) -> Result<LoweredProgram, SynthesisError> {
    let groups = matrix
        .reduction_groups(reduction_axes)?
        .into_iter()
        .filter(|g| g.len() >= 2)
        .map(|devices| GroupExec {
            devices,
            input_fraction: 1.0,
        })
        .collect();
    Ok(LoweredProgram {
        steps: vec![LoweredStep {
            collective: Collective::AllReduce,
            groups,
        }],
        num_devices: matrix.num_devices(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn figure2d() -> ParallelismMatrix {
        ParallelismMatrix::new(
            vec![vec![1, 1, 2, 2], vec![1, 2, 1, 2]],
            vec![1, 2, 2, 4],
            vec![4, 4],
        )
        .unwrap()
    }

    #[test]
    fn baseline_is_one_allreduce_over_reduction_groups() {
        let p = baseline_allreduce(&figure2d(), &[1]).unwrap();
        assert_eq!(p.len(), 1);
        assert_eq!(p.signature(), "AllReduce");
        assert_eq!(p.steps[0].groups.len(), 4);
        assert_eq!(p.steps[0].max_group_size(), 4);
        assert!(p.groups_are_disjoint());
        assert!(!p.is_empty());
    }

    #[test]
    fn disjointness_check_detects_overlap() {
        let p = LoweredProgram {
            steps: vec![LoweredStep {
                collective: Collective::AllReduce,
                groups: vec![
                    GroupExec {
                        devices: vec![0, 1],
                        input_fraction: 1.0,
                    },
                    GroupExec {
                        devices: vec![1, 2],
                        input_fraction: 1.0,
                    },
                ],
            }],
            num_devices: 4,
        };
        assert!(!p.groups_are_disjoint());
    }
}
