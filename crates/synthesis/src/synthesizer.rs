//! Syntax-guided enumerative synthesis of reduction programs (paper §3.5).

use std::collections::HashMap;
use std::rc::Rc;
use std::time::{Duration, Instant};

use p2_collectives::{apply_to_groups, Collective, State};
use p2_placement::ParallelismMatrix;

use crate::context::SynthesisContext;
use crate::dsl::{Form, Instruction, Program};
use crate::error::SynthesisError;
use crate::hierarchy::HierarchyKind;
use crate::lowered::LoweredProgram;

/// Statistics about one synthesis run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SynthesisStats {
    /// Distinct synthesis-space states visited during the search.
    pub states_explored: usize,
    /// Candidate instructions whose semantics was evaluated.
    pub instructions_tried: usize,
    /// Distinct candidate instructions available per state (after group
    /// deduplication).
    pub candidate_instructions: usize,
    /// Wall-clock time of the search.
    pub duration: Duration,
}

/// The outcome of a synthesis run: every semantically valid program that
/// implements the requested reduction within the size limit, sorted by size.
#[derive(Debug, Clone)]
pub struct SynthesisResult {
    /// All synthesized programs, shortest first.
    pub programs: Vec<Program>,
    /// Search statistics.
    pub stats: SynthesisStats,
}

impl SynthesisResult {
    /// The number of synthesized programs.
    pub fn len(&self) -> usize {
        self.programs.len()
    }

    /// Whether no program was found.
    pub fn is_empty(&self) -> bool {
        self.programs.is_empty()
    }
}

/// The P² reduction-program synthesizer for one parallelism matrix and one
/// set of reduction axes.
///
/// Programs are enumerated in increasing size over the DSL of §3.3; every
/// instruction's device groups are checked against the collective semantics
/// and states that can no longer reach the goal are pruned, so the output
/// contains exactly the semantically valid programs (up to instruction
/// deduplication: two instructions that derive identical device groups are
/// considered the same).
#[derive(Debug, Clone)]
pub struct Synthesizer {
    ctx: SynthesisContext,
}

impl Synthesizer {
    /// Creates a synthesizer for a matrix, reduction axes and hierarchy kind.
    ///
    /// # Errors
    ///
    /// Propagates context-construction errors (invalid axes).
    pub fn new(
        matrix: ParallelismMatrix,
        reduction_axes: Vec<usize>,
        kind: HierarchyKind,
    ) -> Result<Self, SynthesisError> {
        Ok(Synthesizer {
            ctx: SynthesisContext::new(matrix, reduction_axes, kind)?,
        })
    }

    /// Creates a synthesizer from an existing context.
    pub fn from_context(ctx: SynthesisContext) -> Self {
        Synthesizer { ctx }
    }

    /// The underlying synthesis context.
    pub fn context(&self) -> &SynthesisContext {
        &self.ctx
    }

    /// The candidate instructions considered at every search step: all
    /// `(slice, form, collective)` triples whose derived groups are
    /// non-trivial, deduplicated by the groups they derive.
    pub fn candidate_instructions(&self) -> Vec<(Instruction, Vec<Vec<usize>>)> {
        let depth = self.ctx.hierarchy().depth();
        let mut seen_groupings: Vec<Vec<Vec<usize>>> = Vec::new();
        let mut shapes: Vec<(usize, Form)> = Vec::new();
        for slice in 0..depth {
            let mut forms = vec![Form::InsideGroup];
            for ancestor in 0..slice {
                forms.push(Form::Parallel(ancestor));
                forms.push(Form::Master(ancestor));
            }
            for form in forms {
                let groups = self
                    .ctx
                    .derive_groups(slice, form)
                    .expect("slice and ancestor indices are generated in range");
                let groups: Vec<Vec<usize>> = groups.into_iter().filter(|g| g.len() >= 2).collect();
                if groups.is_empty() {
                    continue;
                }
                // Keep only the first (canonical) instruction shape per grouping:
                // two instructions that derive the same device groups are the
                // same program step.
                if seen_groupings.contains(&groups) {
                    continue;
                }
                seen_groupings.push(groups);
                shapes.push((slice, form));
            }
        }
        let mut out = Vec::new();
        for ((slice, form), groups) in shapes.into_iter().zip(seen_groupings) {
            for collective in Collective::ALL {
                out.push((Instruction::new(slice, form, collective), groups.clone()));
            }
        }
        out
    }

    /// Synthesizes every valid program of at most `max_size` instructions
    /// (the paper uses a limit of 5).
    pub fn synthesize(&self, max_size: usize) -> SynthesisResult {
        let start = Instant::now();
        let initial = self.ctx.initial_states();
        let goals = self.ctx.goal_states();
        let candidates = self.candidate_instructions();
        let mut stats = SynthesisStats {
            candidate_instructions: candidates.len() / Collective::ALL.len().max(1)
                * Collective::ALL.len(),
            ..SynthesisStats::default()
        };
        let mut memo: HashMap<(Vec<State>, usize), Rc<Vec<Program>>> = HashMap::new();
        let programs = self.search(
            &initial,
            &goals,
            max_size,
            &candidates,
            &mut memo,
            &mut stats,
        );
        let mut programs = (*programs).clone();
        programs.sort_by_key(|p| (p.len(), p.to_string()));
        stats.states_explored = memo
            .keys()
            .map(|(s, _)| s.clone())
            .collect::<std::collections::HashSet<_>>()
            .len();
        stats.duration = start.elapsed();
        SynthesisResult { programs, stats }
    }

    fn search(
        &self,
        states: &[State],
        goals: &[State],
        remaining: usize,
        candidates: &[(Instruction, Vec<Vec<usize>>)],
        memo: &mut HashMap<(Vec<State>, usize), Rc<Vec<Program>>>,
        stats: &mut SynthesisStats,
    ) -> Rc<Vec<Program>> {
        if states == goals {
            return Rc::new(vec![Program::empty()]);
        }
        if remaining == 0 {
            return Rc::new(vec![]);
        }
        let key = (states.to_vec(), remaining);
        if let Some(found) = memo.get(&key) {
            return Rc::clone(found);
        }
        let mut programs = Vec::new();
        for (instr, groups) in candidates {
            stats.instructions_tried += 1;
            let Ok(next) = apply_to_groups(instr.collective, states, groups) else {
                continue;
            };
            // Prune states that can no longer reach the goal (Lemma B.3).
            if !self.ctx.respects_goal(&next, goals) {
                continue;
            }
            if next == states {
                continue;
            }
            let suffixes = self.search(&next, goals, remaining - 1, candidates, memo, stats);
            for suffix in suffixes.iter() {
                let mut instructions = Vec::with_capacity(1 + suffix.len());
                instructions.push(*instr);
                instructions.extend(suffix.instructions.iter().copied());
                programs.push(Program::new(instructions));
            }
        }
        let rc = Rc::new(programs);
        memo.insert(key, Rc::clone(&rc));
        rc
    }

    /// Lowers a program to physical device groups.
    ///
    /// # Errors
    ///
    /// Same as [`SynthesisContext::lower`].
    pub fn lower(&self, program: &Program) -> Result<LoweredProgram, SynthesisError> {
        self.ctx.lower(program)
    }

    /// Re-validates a program (semantics plus goal).
    ///
    /// # Errors
    ///
    /// Returns the violation, if any.
    pub fn validate(&self, program: &Program) -> Result<(), SynthesisError> {
        self.ctx.trace(program).map(|_| ())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn figure2d() -> ParallelismMatrix {
        ParallelismMatrix::new(
            vec![vec![1, 1, 2, 2], vec![1, 2, 1, 2]],
            vec![1, 2, 2, 4],
            vec![4, 4],
        )
        .unwrap()
    }

    fn synth_d() -> Synthesizer {
        Synthesizer::new(figure2d(), vec![1], HierarchyKind::ReductionAxes).unwrap()
    }

    #[test]
    fn finds_the_paper_figure3_programs() {
        let result = synth_d().synthesize(5);
        let signatures: Vec<String> = result.programs.iter().map(|p| p.signature()).collect();
        // Figure 3a: a single AllReduce.
        assert!(signatures.contains(&"AllReduce".to_string()));
        // Figure 3b: AllReduce-AllReduce (local, then across).
        assert!(signatures.contains(&"AllReduce-AllReduce".to_string()));
        // Figure 3c / 10i: Reduce-AllReduce-Broadcast.
        assert!(signatures.contains(&"Reduce-AllReduce-Broadcast".to_string()));
        // Figure 10ii: ReduceScatter-AllReduce-AllGather.
        assert!(signatures.contains(&"ReduceScatter-AllReduce-AllGather".to_string()));
    }

    #[test]
    fn all_programs_validate_and_lower() {
        let s = synth_d();
        let result = s.synthesize(5);
        assert!(!result.is_empty());
        for p in &result.programs {
            s.validate(p)
                .unwrap_or_else(|e| panic!("program {p} failed validation: {e}"));
            let lowered = s.lower(p).unwrap();
            assert!(lowered.groups_are_disjoint());
        }
    }

    #[test]
    fn programs_are_unique() {
        let result = synth_d().synthesize(5);
        let mut seen = std::collections::HashSet::new();
        for p in &result.programs {
            assert!(seen.insert(p.clone()), "duplicate program {p}");
        }
    }

    #[test]
    fn larger_size_limit_finds_at_least_as_many_programs() {
        let s = synth_d();
        let small = s.synthesize(2).len();
        let medium = s.synthesize(3).len();
        let large = s.synthesize(5).len();
        assert!(small <= medium && medium <= large);
        assert!(small >= 1, "a single AllReduce must always be found");
    }

    #[test]
    fn size_one_synthesis_finds_exactly_the_single_allreduce() {
        let result = synth_d().synthesize(1);
        assert_eq!(result.len(), 1);
        assert_eq!(result.programs[0].signature(), "AllReduce");
    }

    #[test]
    fn reduction_hierarchy_finds_every_system_hierarchy_program() {
        // Theorem 3.2: hierarchy (d) is at least as expressive as (a). We check
        // it empirically: every *lowered* program synthesized under (a) also
        // appears among the lowered programs of (d).
        let matrix = figure2d();
        let synth_a = Synthesizer::new(matrix.clone(), vec![1], HierarchyKind::System).unwrap();
        let synth_d = Synthesizer::new(matrix, vec![1], HierarchyKind::ReductionAxes).unwrap();
        let lowered_a: Vec<_> = synth_a
            .synthesize(3)
            .programs
            .iter()
            .map(|p| synth_a.lower(p).unwrap())
            .collect();
        let lowered_d: Vec<_> = synth_d
            .synthesize(3)
            .programs
            .iter()
            .map(|p| synth_d.lower(p).unwrap())
            .collect();
        for la in &lowered_a {
            assert!(
                lowered_d.iter().any(|ld| lowered_equivalent(la, ld)),
                "program {} from hierarchy (a) not found under (d)",
                la.signature()
            );
        }
        // And (d) finds strictly more in this example.
        assert!(lowered_d.len() >= lowered_a.len());
    }

    fn lowered_equivalent(
        a: &crate::lowered::LoweredProgram,
        b: &crate::lowered::LoweredProgram,
    ) -> bool {
        if a.steps.len() != b.steps.len() {
            return false;
        }
        a.steps.iter().zip(&b.steps).all(|(sa, sb)| {
            if sa.collective != sb.collective {
                return false;
            }
            let norm = |s: &crate::lowered::LoweredStep| {
                let mut gs: Vec<Vec<usize>> = s
                    .groups
                    .iter()
                    .map(|g| {
                        let mut d = g.devices.clone();
                        d.sort_unstable();
                        d
                    })
                    .collect();
                gs.sort();
                gs
            };
            norm(sa) == norm(sb)
        })
    }

    #[test]
    fn stats_are_populated() {
        let result = synth_d().synthesize(4);
        assert!(result.stats.instructions_tried > 0);
        assert!(result.stats.states_explored > 0);
        assert!(result.stats.candidate_instructions > 0);
    }

    #[test]
    fn single_axis_whole_machine_reduction() {
        // One parallelism axis covering a [2, 8] system: reduction over everything.
        let matrix = ParallelismMatrix::new(vec![vec![2, 8]], vec![2, 8], vec![16]).unwrap();
        let s = Synthesizer::new(matrix, vec![0], HierarchyKind::ReductionAxes).unwrap();
        let result = s.synthesize(5);
        let signatures: Vec<String> = result.programs.iter().map(|p| p.signature()).collect();
        assert!(signatures.contains(&"AllReduce".to_string()));
        assert!(signatures.contains(&"ReduceScatter-AllReduce-AllGather".to_string()));
        for p in &result.programs {
            let lowered = s.lower(p).unwrap();
            assert!(lowered.groups_are_disjoint());
        }
    }
}
