//! Syntax-guided enumerative synthesis of reduction programs (paper §3.5).
//!
//! The search engine is *streaming*: [`Synthesizer::for_each_program`] walks a
//! memoized search DAG over interned synthesis states and emits each valid
//! program exactly once, shortest first, without ever materializing the full
//! program set. [`Synthesizer::synthesize`] is a thin collecting wrapper for
//! callers that do want the whole set.

use std::collections::{HashMap, HashSet, VecDeque};
use std::time::{Duration, Instant};

use p2_collectives::{apply_to_groups, ApplyCache, Collective, FxHashMap, State, StateInterner};
use p2_placement::ParallelismMatrix;

use crate::context::SynthesisContext;
use crate::dsl::{Form, Instruction, Program};
use crate::error::SynthesisError;
use crate::hierarchy::HierarchyKind;
use crate::lowered::LoweredProgram;

/// Statistics about one synthesis run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SynthesisStats {
    /// Distinct synthesis-space states expanded during the search, counted
    /// incrementally as each state is first reached (never by a post-hoc scan).
    pub states_explored: usize,
    /// Candidate instructions whose semantics was evaluated; every distinct
    /// state expands each candidate exactly once.
    pub instructions_tried: usize,
    /// Distinct candidate instructions available per state (after group
    /// deduplication).
    pub candidate_instructions: usize,
    /// Programs handed to the sink (equals the program count unless the sink
    /// stopped the enumeration early).
    pub programs_emitted: usize,
    /// Distinct device states hash-consed by the search's [`StateInterner`]
    /// (its peak size — the interner only grows). Zero on the reference
    /// (no-interning) path.
    pub unique_device_states: usize,
    /// Collective applications answered from the transposition cache without
    /// running the semantics. Zero on the reference path.
    pub apply_cache_hits: usize,
    /// Collective applications that ran the semantics and were then memoized.
    /// Zero on the reference path.
    pub apply_cache_misses: usize,
    /// Wall-clock time of the search.
    pub duration: Duration,
}

/// The outcome of a synthesis run: every semantically valid program that
/// implements the requested reduction within the size limit, sorted by size.
#[derive(Debug, Clone)]
pub struct SynthesisResult {
    /// All synthesized programs, shortest first.
    pub programs: Vec<Program>,
    /// Search statistics.
    pub stats: SynthesisStats,
}

impl SynthesisResult {
    /// The number of synthesized programs.
    pub fn len(&self) -> usize {
        self.programs.len()
    }

    /// Whether no program was found.
    pub fn is_empty(&self) -> bool {
        self.programs.is_empty()
    }
}

/// Whether the synthesizer should keep streaming programs into a sink.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SinkControl {
    /// Keep enumerating.
    Continue,
    /// Stop the enumeration; [`Synthesizer::for_each_program`] returns with
    /// the statistics gathered so far.
    Stop,
}

/// A visitor receiving synthesized programs one at a time (the worklist idiom
/// of enumerative synthesis engines): the streaming counterpart of collecting
/// a [`SynthesisResult`].
///
/// Any `FnMut(&Program) -> SinkControl` closure is a sink.
pub trait ProgramSink {
    /// Called once per valid program, in the same order `synthesize` sorts:
    /// shorter programs first, ties in display order. The reference is only
    /// valid for the duration of the call — clone the program to keep it.
    fn accept(&mut self, program: &Program) -> SinkControl;
}

impl<F: FnMut(&Program) -> SinkControl> ProgramSink for F {
    fn accept(&mut self, program: &Program) -> SinkControl {
        self(program)
    }
}

/// The memoized search DAG: every reachable synthesis state interned to a
/// dense id, each expanded once. Memory is `O(states × candidates)` — the
/// program *set* (worst-case exponential in the state count) is never stored.
struct SearchGraph {
    /// Per state: valid `(candidate index, successor id)` edges in candidate
    /// order, or `None` for frontier states that were never expanded (reached
    /// only at the maximum depth).
    edges: Vec<Option<Vec<(usize, usize)>>>,
    /// Whether each state is the goal (the goal is absorbing: programs end
    /// there and never extend past it).
    is_goal: Vec<bool>,
    /// Minimal number of instructions from each state to the goal
    /// (`usize::MAX` when the goal is unreachable from it).
    min_steps: Vec<usize>,
}

/// Interns `states`, returning `(id, was_new)` — the `Vec<State>`-keyed
/// memoization of the reference (no-interning) search path.
fn intern_state_reference(
    states: &[State],
    goals: &[State],
    ids: &mut HashMap<Vec<State>, usize>,
    is_goal: &mut Vec<bool>,
    edges: &mut Vec<Option<Vec<(usize, usize)>>>,
) -> (usize, bool) {
    if let Some(&id) = ids.get(states) {
        return (id, false);
    }
    let id = is_goal.len();
    ids.insert(states.to_vec(), id);
    is_goal.push(states == goals);
    edges.push(None);
    (id, true)
}

/// The P² reduction-program synthesizer for one parallelism matrix and one
/// set of reduction axes.
///
/// Programs are enumerated in increasing size over the DSL of §3.3; every
/// instruction's device groups are checked against the collective semantics
/// and states that can no longer reach the goal are pruned, so the output
/// contains exactly the semantically valid programs (up to instruction
/// deduplication: two instructions that derive identical device groups are
/// considered the same).
#[derive(Debug, Clone)]
pub struct Synthesizer {
    ctx: SynthesisContext,
}

impl Synthesizer {
    /// Creates a synthesizer for a matrix, reduction axes and hierarchy kind.
    ///
    /// # Errors
    ///
    /// Propagates context-construction errors (invalid axes).
    pub fn new(
        matrix: ParallelismMatrix,
        reduction_axes: Vec<usize>,
        kind: HierarchyKind,
    ) -> Result<Self, SynthesisError> {
        Ok(Synthesizer {
            ctx: SynthesisContext::new(matrix, reduction_axes, kind)?,
        })
    }

    /// Creates a synthesizer from an existing context.
    pub fn from_context(ctx: SynthesisContext) -> Self {
        Synthesizer { ctx }
    }

    /// The underlying synthesis context.
    pub fn context(&self) -> &SynthesisContext {
        &self.ctx
    }

    /// The candidate instructions considered at every search step: all
    /// `(slice, form, collective)` triples whose derived groups are
    /// non-trivial, deduplicated by the groups they derive.
    pub fn candidate_instructions(&self) -> Vec<(Instruction, Vec<Vec<usize>>)> {
        /// Device groups (synthesis-space indices) derived by one shape.
        type Grouping = Vec<Vec<usize>>;
        let depth = self.ctx.hierarchy().depth();
        let mut seen_groupings: HashSet<Grouping> = HashSet::new();
        let mut shapes: Vec<((usize, Form), Grouping)> = Vec::new();
        for slice in 0..depth {
            let mut forms = vec![Form::InsideGroup];
            for ancestor in 0..slice {
                forms.push(Form::Parallel(ancestor));
                forms.push(Form::Master(ancestor));
            }
            for form in forms {
                let groups = self
                    .ctx
                    .derive_groups(slice, form)
                    .expect("slice and ancestor indices are generated in range");
                let groups: Vec<Vec<usize>> = groups.into_iter().filter(|g| g.len() >= 2).collect();
                if groups.is_empty() {
                    continue;
                }
                // Keep only the first (canonical) instruction shape per grouping:
                // two instructions that derive the same device groups are the
                // same program step.
                if !seen_groupings.insert(groups.clone()) {
                    continue;
                }
                shapes.push(((slice, form), groups));
            }
        }
        let mut out = Vec::new();
        for ((slice, form), groups) in shapes {
            for collective in Collective::ALL {
                out.push((Instruction::new(slice, form, collective), groups.clone()));
            }
        }
        out
    }

    /// Streams every valid program of at most `max_size` instructions into
    /// `sink`, shortest first and ties in display order — exactly the order
    /// (and set) [`Synthesizer::synthesize`] returns — without materializing
    /// the program set. Returns the search statistics.
    ///
    /// The sink can abort the enumeration by returning [`SinkControl::Stop`].
    /// Only `programs_emitted` and `duration` then reflect the early stop:
    /// the state-graph exploration behind `states_explored` and
    /// `instructions_tried` always runs to completion before emission starts.
    pub fn for_each_program<S>(&self, max_size: usize, sink: &mut S) -> SynthesisStats
    where
        S: ProgramSink + ?Sized,
    {
        self.for_each_program_impl(max_size, sink, true)
    }

    /// The shared engine behind the interned production path and the
    /// pre-interning reference path.
    fn for_each_program_impl<S>(
        &self,
        max_size: usize,
        sink: &mut S,
        interned: bool,
    ) -> SynthesisStats
    where
        S: ProgramSink + ?Sized,
    {
        let start = Instant::now();
        let mut candidates = self.candidate_instructions();
        // Sorting candidates by their rendered form makes the depth-first
        // emission below produce programs in display order within each length
        // (instruction strings are prefix-free, so per-position instruction
        // order and whole-program string order coincide).
        candidates.sort_by_cached_key(|(instr, _)| instr.to_string());
        let mut stats = SynthesisStats {
            candidate_instructions: candidates.len(),
            ..SynthesisStats::default()
        };
        let (graph, init_id) = if interned {
            self.build_graph(&candidates, max_size, &mut stats)
        } else {
            self.build_graph_reference(&candidates, max_size, &mut stats)
        };
        let mut stack: Vec<Instruction> = Vec::with_capacity(max_size);
        let mut scratch = Program::empty();
        // Iterative deepening over exact program lengths: paths of length
        // `target` from the initial state to the (absorbing) goal state are
        // exactly the valid programs of that length.
        for target in 0..=max_size {
            if graph.min_steps[init_id] > target {
                continue;
            }
            let ctrl = emit_exact(
                &graph,
                &candidates,
                init_id,
                0,
                target,
                &mut stack,
                &mut scratch,
                sink,
                &mut stats,
            );
            if ctrl == SinkControl::Stop {
                break;
            }
        }
        stats.duration = start.elapsed();
        stats
    }

    /// Explores the state space once (breadth-first, each state expanded a
    /// single time) and computes per-state distances to the goal.
    ///
    /// Device states are hash-consed to dense `u32` ids by a
    /// [`StateInterner`], so a synthesis-space state is a flat id slice:
    /// memoizing a state hashes a few words instead of k×k bit matrices, and
    /// devices sharing a state (the common case after collectives on
    /// symmetric groups) share storage. Collective applications go through
    /// an [`ApplyCache`] transposition table keyed by `(collective,
    /// participant ids)` — strictly finer than a per-`(collective,
    /// grouping)` memo, since the semantics only sees the ordered
    /// participants — so symmetric groupings and convergent paths skip the
    /// semantics entirely, and goal reachability (Lemma B.3) is a per-id
    /// table lookup. The expansion loop reuses its scratch buffers across
    /// candidates: a cache-hit application allocates nothing.
    fn build_graph(
        &self,
        candidates: &[(Instruction, Vec<Vec<usize>>)],
        max_size: usize,
        stats: &mut SynthesisStats,
    ) -> (SearchGraph, usize) {
        let mut interner = StateInterner::new();
        let mut apply_cache = ApplyCache::new();
        let (distinct_goals, goal_index) = self.ctx.distinct_goal_states();
        // respects[id][g]: whether interned state `id` is ≤ distinct goal `g`
        // (extended whenever the interner grows).
        let mut respects: Vec<Box<[bool]>> = Vec::new();

        let init_ids: Box<[u32]> = self
            .ctx
            .initial_states()
            .into_iter()
            .map(|s| interner.intern(s))
            .collect();
        let goal_ids: Box<[u32]> = self
            .ctx
            .goal_states()
            .into_iter()
            .map(|s| interner.intern(s))
            .collect();

        let mut ids: FxHashMap<Box<[u32]>, usize> = FxHashMap::default();
        let mut is_goal: Vec<bool> = Vec::new();
        let mut edges: Vec<Option<Vec<(usize, usize)>>> = Vec::new();
        let mut queue: VecDeque<(usize, usize, Box<[u32]>)> = VecDeque::new();

        let init_id = 0usize;
        is_goal.push(init_ids == goal_ids);
        edges.push(None);
        ids.insert(init_ids.clone(), init_id);
        queue.push_back((init_id, 0, init_ids));

        // Scratch buffers reused across every candidate expansion.
        let mut next_ids: Vec<u32> = Vec::new();
        let mut member_ids: Vec<u32> = Vec::new();

        while let Some((id, depth, state_ids)) = queue.pop_front() {
            // The goal is absorbing, and states first reached at the size
            // limit can never be extended — neither is expanded.
            if is_goal[id] || depth >= max_size {
                continue;
            }
            stats.states_explored += 1;
            let mut out = Vec::new();
            'candidate: for (ci, (instr, groups)) in candidates.iter().enumerate() {
                stats.instructions_tried += 1;
                next_ids.clear();
                next_ids.extend_from_slice(&state_ids);
                for group in groups {
                    member_ids.clear();
                    member_ids.extend(group.iter().map(|&d| state_ids[d]));
                    match apply_cache.apply(&mut interner, instr.collective, &member_ids) {
                        Ok(after) => {
                            for (&d, &sid) in group.iter().zip(after) {
                                next_ids[d] = sid;
                            }
                        }
                        Err(_) => continue 'candidate,
                    }
                }
                for sid in respects.len()..interner.len() {
                    let state = interner.get(sid as u32);
                    respects.push(distinct_goals.iter().map(|g| state.le(g)).collect());
                }
                // Prune states that can no longer reach the goal (Lemma B.3).
                if !next_ids
                    .iter()
                    .enumerate()
                    .all(|(d, &sid)| respects[sid as usize][goal_index[d]])
                {
                    continue;
                }
                if next_ids[..] == state_ids[..] {
                    continue;
                }
                let next_id = match ids.get(next_ids.as_slice()) {
                    Some(&existing) => existing,
                    None => {
                        let new_id = is_goal.len();
                        let key: Box<[u32]> = next_ids.as_slice().into();
                        is_goal.push(key == goal_ids);
                        edges.push(None);
                        ids.insert(key.clone(), new_id);
                        queue.push_back((new_id, depth + 1, key));
                        new_id
                    }
                };
                out.push((ci, next_id));
            }
            edges[id] = Some(out);
        }

        stats.unique_device_states = interner.len();
        stats.apply_cache_hits = apply_cache.hits();
        stats.apply_cache_misses = apply_cache.misses();
        (Self::finish_graph(is_goal, edges), init_id)
    }

    /// The pre-interning search: synthesis states memoized by their full
    /// `Vec<State>`, every collective application re-run through the
    /// semantics. Kept as the oracle [`Synthesizer::synthesize_reference`]
    /// and the `state_intern` bench compare the interned engine against.
    fn build_graph_reference(
        &self,
        candidates: &[(Instruction, Vec<Vec<usize>>)],
        max_size: usize,
        stats: &mut SynthesisStats,
    ) -> (SearchGraph, usize) {
        let initial = self.ctx.initial_states();
        let goals = self.ctx.goal_states();
        let mut ids: HashMap<Vec<State>, usize> = HashMap::new();
        let mut is_goal: Vec<bool> = Vec::new();
        let mut edges: Vec<Option<Vec<(usize, usize)>>> = Vec::new();
        let mut queue: VecDeque<(usize, usize, Vec<State>)> = VecDeque::new();

        let (init_id, _) =
            intern_state_reference(&initial, &goals, &mut ids, &mut is_goal, &mut edges);
        queue.push_back((init_id, 0, initial));
        while let Some((id, depth, states)) = queue.pop_front() {
            // The goal is absorbing, and states first reached at the size
            // limit can never be extended — neither is expanded.
            if is_goal[id] || depth >= max_size {
                continue;
            }
            stats.states_explored += 1;
            let mut out = Vec::new();
            for (ci, (instr, groups)) in candidates.iter().enumerate() {
                stats.instructions_tried += 1;
                let Ok(next) = apply_to_groups(instr.collective, &states, groups) else {
                    continue;
                };
                // Prune states that can no longer reach the goal (Lemma B.3).
                if !self.ctx.respects_goal(&next, &goals) {
                    continue;
                }
                if next == states {
                    continue;
                }
                let (next_id, new) =
                    intern_state_reference(&next, &goals, &mut ids, &mut is_goal, &mut edges);
                if new {
                    queue.push_back((next_id, depth + 1, next));
                }
                out.push((ci, next_id));
            }
            edges[id] = Some(out);
        }

        (Self::finish_graph(is_goal, edges), init_id)
    }

    /// Computes per-state distances to the goal, completing a [`SearchGraph`].
    fn finish_graph(is_goal: Vec<bool>, edges: Vec<Option<Vec<(usize, usize)>>>) -> SearchGraph {
        // Reverse breadth-first search from the goal: minimal steps-to-goal is
        // the admissible pruning bound for the emission pass.
        let n = is_goal.len();
        let mut rev: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (id, out) in edges.iter().enumerate() {
            if let Some(out) = out {
                for &(_, next) in out {
                    rev[next].push(id);
                }
            }
        }
        let mut min_steps = vec![usize::MAX; n];
        let mut q: VecDeque<usize> = VecDeque::new();
        for (id, &g) in is_goal.iter().enumerate() {
            if g {
                min_steps[id] = 0;
                q.push_back(id);
            }
        }
        while let Some(id) = q.pop_front() {
            for &p in &rev[id] {
                if min_steps[p] == usize::MAX {
                    min_steps[p] = min_steps[id] + 1;
                    q.push_back(p);
                }
            }
        }

        SearchGraph {
            edges,
            is_goal,
            min_steps,
        }
    }

    /// Synthesizes every valid program of at most `max_size` instructions
    /// (the paper uses a limit of 5).
    ///
    /// This is a thin collecting wrapper over
    /// [`Synthesizer::for_each_program`]; the final sort documents (and
    /// defends) the emission-order contract at negligible cost, since the
    /// stream already arrives sorted.
    pub fn synthesize(&self, max_size: usize) -> SynthesisResult {
        let mut programs: Vec<Program> = Vec::new();
        let stats = self.for_each_program(max_size, &mut |p: &Program| {
            programs.push(p.clone());
            SinkControl::Continue
        });
        programs.sort_by_cached_key(|p| (p.len(), p.to_string()));
        SynthesisResult { programs, stats }
    }

    /// [`Synthesizer::synthesize`] through the pre-interning reference
    /// search: synthesis states memoized by their full `Vec<State>`, no
    /// device-state hash-consing, no transposition cache. Slower by design —
    /// it exists as the oracle the interned engine is pinned against (same
    /// program set, same order, same `states_explored`) in the test suite
    /// and as the "old" side of the `state_intern` bench.
    pub fn synthesize_reference(&self, max_size: usize) -> SynthesisResult {
        let mut programs: Vec<Program> = Vec::new();
        let stats = self.for_each_program_impl(
            max_size,
            &mut |p: &Program| {
                programs.push(p.clone());
                SinkControl::Continue
            },
            false,
        );
        programs.sort_by_cached_key(|p| (p.len(), p.to_string()));
        SynthesisResult { programs, stats }
    }

    /// Lowers a program to physical device groups.
    ///
    /// # Errors
    ///
    /// Same as [`SynthesisContext::lower`].
    pub fn lower(&self, program: &Program) -> Result<LoweredProgram, SynthesisError> {
        self.ctx.lower(program)
    }

    /// Re-validates a program (semantics plus goal).
    ///
    /// # Errors
    ///
    /// Returns the violation, if any.
    pub fn validate(&self, program: &Program) -> Result<(), SynthesisError> {
        self.ctx.trace(program).map(|_| ())
    }
}

/// Depth-first emission of every goal-reaching path of exactly `target`
/// instructions, reusing one instruction stack and one scratch program.
#[allow(clippy::too_many_arguments)]
fn emit_exact<S>(
    graph: &SearchGraph,
    candidates: &[(Instruction, Vec<Vec<usize>>)],
    id: usize,
    depth: usize,
    target: usize,
    stack: &mut Vec<Instruction>,
    scratch: &mut Program,
    sink: &mut S,
    stats: &mut SynthesisStats,
) -> SinkControl
where
    S: ProgramSink + ?Sized,
{
    if graph.is_goal[id] {
        if depth == target {
            scratch.instructions.clear();
            scratch.instructions.extend_from_slice(stack);
            stats.programs_emitted += 1;
            return sink.accept(scratch);
        }
        return SinkControl::Continue;
    }
    if depth == target {
        return SinkControl::Continue;
    }
    let Some(edges) = &graph.edges[id] else {
        return SinkControl::Continue;
    };
    let remaining = target - depth - 1;
    for &(ci, next) in edges {
        if graph.min_steps[next] > remaining {
            continue;
        }
        stack.push(candidates[ci].0);
        let ctrl = emit_exact(
            graph,
            candidates,
            next,
            depth + 1,
            target,
            stack,
            scratch,
            sink,
            stats,
        );
        stack.pop();
        if ctrl == SinkControl::Stop {
            return SinkControl::Stop;
        }
    }
    SinkControl::Continue
}

#[cfg(test)]
mod tests {
    use super::*;

    fn figure2d() -> ParallelismMatrix {
        ParallelismMatrix::new(
            vec![vec![1, 1, 2, 2], vec![1, 2, 1, 2]],
            vec![1, 2, 2, 4],
            vec![4, 4],
        )
        .unwrap()
    }

    fn synth_d() -> Synthesizer {
        Synthesizer::new(figure2d(), vec![1], HierarchyKind::ReductionAxes).unwrap()
    }

    #[test]
    fn finds_the_paper_figure3_programs() {
        let result = synth_d().synthesize(5);
        let signatures: Vec<String> = result.programs.iter().map(|p| p.signature()).collect();
        // Figure 3a: a single AllReduce.
        assert!(signatures.contains(&"AllReduce".to_string()));
        // Figure 3b: AllReduce-AllReduce (local, then across).
        assert!(signatures.contains(&"AllReduce-AllReduce".to_string()));
        // Figure 3c / 10i: Reduce-AllReduce-Broadcast.
        assert!(signatures.contains(&"Reduce-AllReduce-Broadcast".to_string()));
        // Figure 10ii: ReduceScatter-AllReduce-AllGather.
        assert!(signatures.contains(&"ReduceScatter-AllReduce-AllGather".to_string()));
    }

    #[test]
    fn all_programs_validate_and_lower() {
        let s = synth_d();
        let result = s.synthesize(5);
        assert!(!result.is_empty());
        for p in &result.programs {
            s.validate(p)
                .unwrap_or_else(|e| panic!("program {p} failed validation: {e}"));
            let lowered = s.lower(p).unwrap();
            assert!(lowered.groups_are_disjoint());
        }
    }

    #[test]
    fn programs_are_unique() {
        let result = synth_d().synthesize(5);
        let mut seen = std::collections::HashSet::new();
        for p in &result.programs {
            assert!(seen.insert(p.clone()), "duplicate program {p}");
        }
    }

    #[test]
    fn larger_size_limit_finds_at_least_as_many_programs() {
        let s = synth_d();
        let small = s.synthesize(2).len();
        let medium = s.synthesize(3).len();
        let large = s.synthesize(5).len();
        assert!(small <= medium && medium <= large);
        assert!(small >= 1, "a single AllReduce must always be found");
    }

    #[test]
    fn size_one_synthesis_finds_exactly_the_single_allreduce() {
        let result = synth_d().synthesize(1);
        assert_eq!(result.len(), 1);
        assert_eq!(result.programs[0].signature(), "AllReduce");
    }

    #[test]
    fn streaming_emits_the_synthesize_order_exactly() {
        // The visitor must produce the same programs, in the same order, as
        // the collecting wrapper's documented (length, display) sort.
        let s = synth_d();
        for max_size in 1..=5 {
            let mut streamed: Vec<Program> = Vec::new();
            let stats = s.for_each_program(max_size, &mut |p: &Program| {
                streamed.push(p.clone());
                SinkControl::Continue
            });
            let collected = s.synthesize(max_size);
            assert_eq!(streamed, collected.programs, "order diverged at {max_size}");
            assert_eq!(stats.programs_emitted, streamed.len());
            assert_eq!(stats.states_explored, collected.stats.states_explored);
        }
    }

    #[test]
    fn sink_stop_aborts_the_enumeration() {
        let s = synth_d();
        let total = s.synthesize(5).len();
        assert!(total > 3);
        let mut taken: Vec<Program> = Vec::new();
        let stats = s.for_each_program(5, &mut |p: &Program| {
            taken.push(p.clone());
            if taken.len() == 3 {
                SinkControl::Stop
            } else {
                SinkControl::Continue
            }
        });
        assert_eq!(taken.len(), 3);
        assert_eq!(stats.programs_emitted, 3);
        // The prefix matches the full enumeration.
        assert_eq!(taken, s.synthesize(5).programs[..3].to_vec());
    }

    #[test]
    fn reduction_hierarchy_finds_every_system_hierarchy_program() {
        // Theorem 3.2: hierarchy (d) is at least as expressive as (a). We check
        // it empirically: every *lowered* program synthesized under (a) also
        // appears among the lowered programs of (d).
        let matrix = figure2d();
        let synth_a = Synthesizer::new(matrix.clone(), vec![1], HierarchyKind::System).unwrap();
        let synth_d = Synthesizer::new(matrix, vec![1], HierarchyKind::ReductionAxes).unwrap();
        let lowered_a: Vec<_> = synth_a
            .synthesize(3)
            .programs
            .iter()
            .map(|p| synth_a.lower(p).unwrap())
            .collect();
        let lowered_d: Vec<_> = synth_d
            .synthesize(3)
            .programs
            .iter()
            .map(|p| synth_d.lower(p).unwrap())
            .collect();
        for la in &lowered_a {
            assert!(
                lowered_d.iter().any(|ld| lowered_equivalent(la, ld)),
                "program {} from hierarchy (a) not found under (d)",
                la.signature()
            );
        }
        // And (d) finds strictly more in this example.
        assert!(lowered_d.len() >= lowered_a.len());
    }

    fn lowered_equivalent(
        a: &crate::lowered::LoweredProgram,
        b: &crate::lowered::LoweredProgram,
    ) -> bool {
        if a.steps.len() != b.steps.len() {
            return false;
        }
        a.steps.iter().zip(&b.steps).all(|(sa, sb)| {
            if sa.collective != sb.collective {
                return false;
            }
            let norm = |s: &crate::lowered::LoweredStep| {
                let mut gs: Vec<Vec<usize>> = s
                    .groups
                    .iter()
                    .map(|g| {
                        let mut d = g.devices.clone();
                        d.sort_unstable();
                        d
                    })
                    .collect();
                gs.sort();
                gs
            };
            norm(sa) == norm(sb)
        })
    }

    #[test]
    fn stats_are_populated() {
        let result = synth_d().synthesize(4);
        assert!(result.stats.instructions_tried > 0);
        assert!(result.stats.states_explored > 0);
        assert!(result.stats.candidate_instructions > 0);
        assert_eq!(result.stats.programs_emitted, result.len());
    }

    #[test]
    fn single_axis_whole_machine_reduction() {
        // One parallelism axis covering a [2, 8] system: reduction over everything.
        let matrix = ParallelismMatrix::new(vec![vec![2, 8]], vec![2, 8], vec![16]).unwrap();
        let s = Synthesizer::new(matrix, vec![0], HierarchyKind::ReductionAxes).unwrap();
        let result = s.synthesize(5);
        let signatures: Vec<String> = result.programs.iter().map(|p| p.signature()).collect();
        assert!(signatures.contains(&"AllReduce".to_string()));
        assert!(signatures.contains(&"ReduceScatter-AllReduce-AllGather".to_string()));
        for p in &result.programs {
            let lowered = s.lower(p).unwrap();
            assert!(lowered.groups_are_disjoint());
        }
    }
}
