//! Syntax-guided enumerative synthesis of reduction programs (paper §3.5).
//!
//! The search engine is *streaming*: [`Synthesizer::for_each_program`] walks a
//! memoized search DAG over interned synthesis states and emits each valid
//! program exactly once, shortest first, without ever materializing the full
//! program set. [`Synthesizer::synthesize`] is a thin collecting wrapper for
//! callers that do want the whole set.

use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::Arc;
use std::time::{Duration, Instant};

use p2_collectives::{
    apply_to_groups, ApplyCache, Collective, FxHashMap, SharedTables, State, StateInterner,
};
use p2_placement::ParallelismMatrix;

use crate::context::SynthesisContext;
use crate::dsl::{Form, Instruction, Program};
use crate::error::SynthesisError;
use crate::hierarchy::HierarchyKind;
use crate::lowered::{LoweredProgram, LoweredStep};
use crate::memo::{MemoBank, MemoSlab};

/// A `HashSet` through the same hasher as [`FxHashMap`].
type FxHashSet<T> = HashSet<T, std::hash::BuildHasherDefault<p2_collectives::FxHasher>>;

/// Statistics about one synthesis run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SynthesisStats {
    /// Distinct synthesis-space states expanded during the search, counted
    /// incrementally as each state is first reached (never by a post-hoc scan).
    pub states_explored: usize,
    /// Candidate instructions whose semantics was evaluated; every distinct
    /// state expands each candidate exactly once.
    pub instructions_tried: usize,
    /// Distinct candidate instructions available per state (after group
    /// deduplication).
    pub candidate_instructions: usize,
    /// Programs handed to the sink (equals the program count unless the sink
    /// stopped the enumeration early).
    pub programs_emitted: usize,
    /// Distinct device states hash-consed by the search's [`StateInterner`]
    /// (its peak size — the interner only grows). Zero on the reference
    /// (no-interning) path.
    pub unique_device_states: usize,
    /// Collective applications answered from the transposition cache without
    /// running the semantics. Zero on the reference path.
    pub apply_cache_hits: usize,
    /// Collective applications that ran the semantics and were then memoized.
    /// Zero on the reference path.
    pub apply_cache_misses: usize,
    /// Suffix-memo entries answered without recomputation during emission:
    /// `(state, remaining budget)` pairs whose completion count was already
    /// known. Zero on the reference path, which walks every suffix.
    pub suffix_memo_hits: usize,
    /// Suffix-memo entries computed for the first time (the number of
    /// distinct `(state, budget)` pairs the emission actually touched).
    pub suffix_memo_misses: usize,
    /// Known suffix-memo entries this search started from, when a
    /// [`MemoBank`] held a slab for its context (zero without a bank or on a
    /// bank miss). Seeding shifts lookups from `suffix_memo_misses` to
    /// `suffix_memo_hits`; it never changes a count or an emitted program.
    pub suffix_memo_preloaded: usize,
    /// Device states this search observed that were already present in a
    /// sweep-shared [`SharedTables`] (interned by another placement, or by an
    /// earlier search over the same tables). Zero without shared tables; under
    /// a parallel sweep the split between "reused" and "added" depends on
    /// worker interleaving, though their sum (`unique_device_states`) does not.
    pub shared_states_reused: usize,
    /// Distinct device states whose goal-compatibility row was computed by
    /// the build's lazy `respects` table. Deterministic for any thread count,
    /// and bounded by the states *this* search touches — never by the size of
    /// a shared or warm-started interner.
    pub goal_respects_entries: usize,
    /// Wall-clock time of candidate-instruction generation (derivation,
    /// deduplication and the display-order sort).
    pub candidate_duration: Duration,
    /// Wall-clock time of the state-graph construction (exploration) phase.
    pub build_duration: Duration,
    /// Wall-clock time of the emission (or counting) phase.
    pub emit_duration: Duration,
    /// Wall-clock time of the search.
    pub duration: Duration,
}

/// The outcome of a synthesis run: every semantically valid program that
/// implements the requested reduction within the size limit, sorted by size.
#[derive(Debug, Clone)]
pub struct SynthesisResult {
    /// All synthesized programs, shortest first.
    pub programs: Vec<Program>,
    /// Search statistics.
    pub stats: SynthesisStats,
}

impl SynthesisResult {
    /// The number of synthesized programs.
    pub fn len(&self) -> usize {
        self.programs.len()
    }

    /// Whether no program was found.
    pub fn is_empty(&self) -> bool {
        self.programs.is_empty()
    }
}

/// Whether the synthesizer should keep streaming programs into a sink.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SinkControl {
    /// Keep enumerating.
    Continue,
    /// Stop the enumeration; [`Synthesizer::for_each_program`] returns with
    /// the statistics gathered so far.
    Stop,
}

/// A visitor receiving synthesized programs one at a time (the worklist idiom
/// of enumerative synthesis engines): the streaming counterpart of collecting
/// a [`SynthesisResult`].
///
/// Any `FnMut(&Program) -> SinkControl` closure is a sink.
pub trait ProgramSink {
    /// Called once per valid program, in the same order `synthesize` sorts:
    /// shorter programs first, ties in display order. The reference is only
    /// valid for the duration of the call — clone the program to keep it.
    fn accept(&mut self, program: &Program) -> SinkControl;
}

impl<F: FnMut(&Program) -> SinkControl> ProgramSink for F {
    fn accept(&mut self, program: &Program) -> SinkControl {
        self(program)
    }
}

/// The memoized search DAG: every reachable synthesis state interned to a
/// dense id, each expanded once. Memory is `O(states × candidates)` — the
/// program *set* (worst-case exponential in the state count) is never stored.
struct SearchGraph {
    /// Per state: valid `(candidate index, successor id)` edges in candidate
    /// order, or `None` for frontier states that were never expanded (reached
    /// only at the maximum depth).
    edges: Vec<Option<Vec<(usize, usize)>>>,
    /// Whether each state is the goal (the goal is absorbing: programs end
    /// there and never extend past it).
    is_goal: Vec<bool>,
    /// Minimal number of instructions from each state to the goal
    /// (`usize::MAX` when the goal is unreachable from it).
    min_steps: Vec<usize>,
}

impl SearchGraph {
    /// Number of synthesis states in the graph.
    fn len(&self) -> usize {
        self.is_goal.len()
    }
}

/// The suffix memo at the heart of the memoized emission: for every
/// `(synthesis state, remaining budget)` pair, the number of goal-reaching
/// paths of *exactly* that many further instructions. Shared DAG suffixes are
/// thereby counted once, no matter how many prefixes reach them, and
/// `completions(next, remaining) == 0` is an exact (not merely admissible)
/// emission prune: every edge the DFS descends leads to at least one emitted
/// program.
struct SuffixMemo {
    /// Row-major `[state][budget]` table; [`SuffixMemo::UNKNOWN`] marks
    /// entries not yet computed. Counts saturate just below the sentinel.
    counts: Vec<u64>,
    width: usize,
    hits: usize,
    misses: usize,
}

impl SuffixMemo {
    const UNKNOWN: u64 = crate::memo::MEMO_UNKNOWN;

    fn new(num_states: usize, max_size: usize) -> Self {
        let width = max_size + 1;
        SuffixMemo {
            counts: vec![Self::UNKNOWN; num_states * width],
            width,
            hits: 0,
            misses: 0,
        }
    }

    /// A memo warm-started from a bank slab when the dimensions match (they
    /// always do for a slab published by the same context key — the graph is
    /// deterministic — so a mismatch means a stale or corrupt slab, ignored).
    /// Returns the memo plus the number of known entries seeded.
    fn seeded(num_states: usize, max_size: usize, slab: Option<&MemoSlab>) -> (Self, usize) {
        let width = max_size + 1;
        if let Some(slab) = slab {
            if slab.num_states == num_states && slab.width == width && slab.is_well_formed() {
                let memo = SuffixMemo {
                    counts: slab.counts.to_vec(),
                    width,
                    hits: 0,
                    misses: 0,
                };
                let known = slab.known_entries();
                return (memo, known);
            }
        }
        (SuffixMemo::new(num_states, max_size), 0)
    }

    /// Packs the (possibly partially filled) table into a bank slab.
    fn into_slab(self, num_states: usize) -> MemoSlab {
        MemoSlab {
            num_states,
            width: self.width,
            counts: self.counts.into(),
        }
    }

    /// The number of goal-reaching paths of exactly `budget` instructions
    /// from `id`, memoized. Recursion is bounded by `budget` (≤ the synthesis
    /// size limit): budgets strictly decrease along edges, so cycles in the
    /// search graph (e.g. a ReduceScatter later undone by an AllGather)
    /// terminate like any other path.
    fn completions(&mut self, graph: &SearchGraph, id: usize, budget: usize) -> u64 {
        let slot = id * self.width + budget;
        if self.counts[slot] != Self::UNKNOWN {
            self.hits += 1;
            return self.counts[slot];
        }
        self.misses += 1;
        let count = if graph.is_goal[id] {
            // The goal is absorbing: it completes only a zero-length suffix.
            u64::from(budget == 0)
        } else if budget == 0 {
            0
        } else {
            match &graph.edges[id] {
                // Frontier states (never expanded) have no outgoing paths.
                None => 0,
                Some(edges) => edges.iter().fold(0u64, |acc, &(_, next)| {
                    acc.saturating_add(self.completions(graph, next, budget - 1))
                }),
            }
        }
        .min(Self::UNKNOWN - 1);
        self.counts[slot] = count;
        count
    }
}

/// The outcome of [`Synthesizer::count_programs`]: program counts aggregated
/// from the suffix memo without materializing a single path.
#[derive(Debug, Clone)]
pub struct ProgramCount {
    /// Total number of valid programs within the size limit (saturating).
    pub total: u64,
    /// Counts by exact program length; `by_length[n]` is the number of valid
    /// `n`-instruction programs, so `by_length.len() == max_size + 1`.
    pub by_length: Vec<u64>,
    /// Search statistics (`programs_emitted` stays 0: nothing is emitted).
    pub stats: SynthesisStats,
}

/// The outcome of [`Synthesizer::best_cost_program`]: a provably minimum-cost
/// program extracted from the search DAG by dynamic programming.
#[derive(Debug, Clone)]
pub struct BestCostProgram {
    /// A minimum-cost program (the shortest such program, ties broken by the
    /// emission order of the enumeration).
    pub program: Program,
    /// Its cost: the sum of per-step costs, folded from the last step to the
    /// first (the DP recurrence's association).
    pub cost: f64,
    /// Search statistics.
    pub stats: SynthesisStats,
}

/// Interns `states`, returning `(id, was_new)` — the `Vec<State>`-keyed
/// memoization of the reference (no-interning) search path.
fn intern_state_reference(
    states: &[State],
    goals: &[State],
    ids: &mut HashMap<Vec<State>, usize>,
    is_goal: &mut Vec<bool>,
    edges: &mut Vec<Option<Vec<(usize, usize)>>>,
) -> (usize, bool) {
    if let Some(&id) = ids.get(states) {
        return (id, false);
    }
    let id = is_goal.len();
    ids.insert(states.to_vec(), id);
    is_goal.push(states == goals);
    edges.push(None);
    (id, true)
}

/// The hash-consing tables a graph build runs against: either private to this
/// search, or a sweep-shared [`SharedTables`] every placement reads and grows
/// concurrently. All consumers use interned ids only for equality and
/// memoization, so the nondeterministic id assignment of the shared mode
/// cannot leak into the search's observable results.
enum Tables<'a> {
    Local {
        interner: StateInterner,
        cache: ApplyCache,
    },
    Shared {
        tables: &'a SharedTables,
        /// Ids observed by *this* search — the same universe a local interner
        /// would hold (initial ∪ goal ∪ successful application outputs), so
        /// `seen.len()` keeps `unique_device_states` deterministic and
        /// mode-independent.
        seen: FxHashSet<u32>,
        reused: usize,
        hits: usize,
        misses: usize,
    },
}

impl Tables<'_> {
    fn intern(&mut self, state: State) -> u32 {
        match self {
            Tables::Local { interner, .. } => interner.intern(state),
            Tables::Shared {
                tables,
                seen,
                reused,
                ..
            } => {
                let (id, was_present) = tables.intern(state);
                if seen.insert(id) && was_present {
                    *reused += 1;
                }
                id
            }
        }
    }

    /// Applies `collective` to `members`, appending the post-state ids to
    /// `out` on success.
    fn apply(&mut self, collective: Collective, members: &[u32], out: &mut Vec<u32>) -> bool {
        match self {
            Tables::Local {
                interner, cache, ..
            } => match cache.apply(interner, collective, members) {
                Ok(after) => {
                    out.extend_from_slice(after);
                    true
                }
                Err(_) => false,
            },
            Tables::Shared {
                tables,
                seen,
                reused,
                hits,
                misses,
            } => {
                let (result, hit) = tables.apply(collective, members);
                if hit {
                    *hits += 1;
                } else {
                    *misses += 1;
                }
                match result {
                    Ok(after) => {
                        for &id in after.iter() {
                            // A cache hit's outputs were necessarily already
                            // interned (by whoever populated the entry).
                            if seen.insert(id) && hit {
                                *reused += 1;
                            }
                        }
                        out.extend_from_slice(&after);
                        true
                    }
                    Err(_) => false,
                }
            }
        }
    }

    fn with_state<R>(&self, id: u32, f: impl FnOnce(&State) -> R) -> R {
        match self {
            Tables::Local { interner, .. } => f(interner.get(id)),
            Tables::Shared { tables, .. } => f(&tables.get(id)),
        }
    }

    /// Folds the table counters into `stats` at the end of a build.
    fn finish(self, stats: &mut SynthesisStats) {
        match self {
            Tables::Local {
                interner, cache, ..
            } => {
                stats.unique_device_states = interner.len();
                stats.apply_cache_hits = cache.hits();
                stats.apply_cache_misses = cache.misses();
            }
            Tables::Shared {
                seen,
                reused,
                hits,
                misses,
                ..
            } => {
                stats.unique_device_states = seen.len();
                stats.apply_cache_hits = hits;
                stats.apply_cache_misses = misses;
                stats.shared_states_reused = reused;
            }
        }
    }
}

/// The completed product of a graph build: the search DAG plus (optionally)
/// the per-state interned id tuples and per-id data fractions the best-cost
/// DP needs to cost individual edges.
struct BuiltGraph {
    graph: SearchGraph,
    init_id: usize,
    /// Per synthesis state: the interned device-state id tuple (only kept
    /// when requested — the enumeration paths never need it).
    tuples: Option<Vec<Box<[u32]>>>,
    /// Data fraction of every device-state id appearing in `tuples`.
    fractions: Option<FxHashMap<u32, f64>>,
}

/// The P² reduction-program synthesizer for one parallelism matrix and one
/// set of reduction axes.
///
/// Programs are enumerated in increasing size over the DSL of §3.3; every
/// instruction's device groups are checked against the collective semantics
/// and states that can no longer reach the goal are pruned, so the output
/// contains exactly the semantically valid programs (up to instruction
/// deduplication: two instructions that derive identical device groups are
/// considered the same).
#[derive(Debug, Clone)]
pub struct Synthesizer {
    ctx: SynthesisContext,
    /// Sweep-shared hash-consing tables, when the owning sweep provides them.
    shared: Option<Arc<SharedTables>>,
    /// Sweep-shared suffix-memo bank: searches seed their counting DP from
    /// slabs published by earlier searches over the same context (this run,
    /// or a previous one through the table store).
    memo_bank: Option<Arc<MemoBank>>,
    /// Worker budget for the level-synchronous parallel DAG build: `1`
    /// (default) runs the serial build, `0` means all cores, `n > 1` a pool
    /// of `n`. See [`Synthesizer::with_build_threads`].
    build_threads: usize,
}

impl Synthesizer {
    /// Creates a synthesizer for a matrix, reduction axes and hierarchy kind.
    ///
    /// # Errors
    ///
    /// Propagates context-construction errors (invalid axes).
    pub fn new(
        matrix: ParallelismMatrix,
        reduction_axes: Vec<usize>,
        kind: HierarchyKind,
    ) -> Result<Self, SynthesisError> {
        Ok(Synthesizer {
            ctx: SynthesisContext::new(matrix, reduction_axes, kind)?,
            shared: None,
            memo_bank: None,
            build_threads: 1,
        })
    }

    /// Creates a synthesizer from an existing context.
    pub fn from_context(ctx: SynthesisContext) -> Self {
        Synthesizer {
            ctx,
            shared: None,
            memo_bank: None,
            build_threads: 1,
        }
    }

    /// Sets the worker budget for the level-synchronous parallel DAG build.
    ///
    /// `1` (the default) keeps the serial breadth-first build; `0` resolves
    /// to all cores; `n > 1` expands each BFS level's states concurrently on
    /// `n` workers. When the calling thread is already a [`p2_par::scope`]
    /// pool worker (a placement job inside a sweep), the *ambient* pool's
    /// idle workers are recruited instead of creating a nested pool, so
    /// inter- and intra-placement work share one thread budget.
    ///
    /// Results are **bit-identical** for any value: each level's expansions
    /// are merged in (parent index, candidate index) order, reproducing the
    /// serial build's state numbering, edges, counts and programs exactly.
    pub fn with_build_threads(mut self, threads: usize) -> Self {
        self.build_threads = threads;
        self
    }

    /// The configured parallel-build worker budget (see
    /// [`Synthesizer::with_build_threads`]).
    pub fn build_threads(&self) -> usize {
        self.build_threads
    }

    /// Runs this synthesizer's searches against sweep-shared hash-consing
    /// tables instead of private ones: device states and collective
    /// applications discovered by any search over the same tables are reused
    /// by all of them. The search's observable results (programs, order,
    /// `states_explored`, `unique_device_states`) are identical either way —
    /// only `apply_cache_*` and `shared_states_reused` reflect the sharing.
    pub fn with_shared_tables(mut self, tables: Arc<SharedTables>) -> Self {
        self.shared = Some(tables);
        self
    }

    /// The sweep-shared tables, if any were attached.
    pub fn shared_tables(&self) -> Option<&Arc<SharedTables>> {
        self.shared.as_ref()
    }

    /// Seeds and publishes this synthesizer's suffix memos through a shared
    /// [`MemoBank`]: the counting/emission DP of a context already solved
    /// over the same bank (this run or a warm-started previous one) becomes
    /// pure lookups. Results are bit-identical with or without a bank — the
    /// memo's values are deterministic; only `suffix_memo_hits/misses` and
    /// `suffix_memo_preloaded` reflect the seeding.
    pub fn with_memo_bank(mut self, bank: Arc<MemoBank>) -> Self {
        self.memo_bank = Some(bank);
        self
    }

    /// The shared suffix-memo bank, if one was attached.
    pub fn memo_bank(&self) -> Option<&Arc<MemoBank>> {
        self.memo_bank.as_ref()
    }

    /// Looks up the bank slab for this context at `max_size`, building the
    /// (seeded or empty) suffix memo, and notes the seeding in `stats`.
    fn seeded_memo(
        &self,
        num_states: usize,
        max_size: usize,
        stats: &mut SynthesisStats,
    ) -> SuffixMemo {
        let slab = self
            .memo_bank
            .as_ref()
            .and_then(|bank| bank.lookup(&MemoBank::key_for(&self.ctx, max_size)));
        let (memo, preloaded) = SuffixMemo::seeded(num_states, max_size, slab.as_ref());
        if preloaded > 0 {
            if let Some(bank) = &self.memo_bank {
                bank.note_seeded(preloaded);
            }
        }
        stats.suffix_memo_preloaded = preloaded;
        memo
    }

    /// Publishes a finished memo back into the bank (a no-op without one).
    fn publish_memo(&self, memo: SuffixMemo, num_states: usize, max_size: usize) {
        if let Some(bank) = &self.memo_bank {
            bank.publish(
                &MemoBank::key_for(&self.ctx, max_size),
                memo.into_slab(num_states),
            );
        }
    }

    /// The underlying synthesis context.
    pub fn context(&self) -> &SynthesisContext {
        &self.ctx
    }

    /// The candidate instructions considered at every search step: all
    /// `(slice, form, collective)` triples whose derived groups are
    /// non-trivial, deduplicated by the groups they derive.
    pub fn candidate_instructions(&self) -> Vec<(Instruction, Vec<Vec<usize>>)> {
        /// Device groups (synthesis-space indices) derived by one shape.
        type Grouping = Vec<Vec<usize>>;
        let depth = self.ctx.hierarchy().depth();
        let mut seen_groupings: HashSet<Grouping> = HashSet::new();
        let mut shapes: Vec<((usize, Form), Grouping)> = Vec::new();
        for slice in 0..depth {
            let mut forms = vec![Form::InsideGroup];
            for ancestor in 0..slice {
                forms.push(Form::Parallel(ancestor));
                forms.push(Form::Master(ancestor));
            }
            for form in forms {
                let groups = self
                    .ctx
                    .derive_groups(slice, form)
                    .expect("slice and ancestor indices are generated in range");
                let groups: Vec<Vec<usize>> = groups.into_iter().filter(|g| g.len() >= 2).collect();
                if groups.is_empty() {
                    continue;
                }
                // Keep only the first (canonical) instruction shape per grouping:
                // two instructions that derive the same device groups are the
                // same program step.
                if !seen_groupings.insert(groups.clone()) {
                    continue;
                }
                shapes.push(((slice, form), groups));
            }
        }
        let mut out = Vec::new();
        for ((slice, form), groups) in shapes {
            for collective in Collective::ALL {
                out.push((Instruction::new(slice, form, collective), groups.clone()));
            }
        }
        out
    }

    /// Streams every valid program of at most `max_size` instructions into
    /// `sink`, shortest first and ties in display order — exactly the order
    /// (and set) [`Synthesizer::synthesize`] returns — without materializing
    /// the program set. Returns the search statistics.
    ///
    /// The sink can abort the enumeration by returning [`SinkControl::Stop`].
    /// Only `programs_emitted` and `duration` then reflect the early stop:
    /// the state-graph exploration behind `states_explored` and
    /// `instructions_tried` always runs to completion before emission starts.
    pub fn for_each_program<S>(&self, max_size: usize, sink: &mut S) -> SynthesisStats
    where
        S: ProgramSink + ?Sized,
    {
        self.for_each_program_impl(max_size, sink, true)
    }

    /// The shared engine behind the interned production path and the
    /// pre-interning reference path.
    fn for_each_program_impl<S>(
        &self,
        max_size: usize,
        sink: &mut S,
        interned: bool,
    ) -> SynthesisStats
    where
        S: ProgramSink + ?Sized,
    {
        let start = Instant::now();
        let mut candidates = self.candidate_instructions();
        // Sorting candidates by their rendered form makes the depth-first
        // emission below produce programs in display order within each length
        // (instruction strings are prefix-free, so per-position instruction
        // order and whole-program string order coincide).
        candidates.sort_by_cached_key(|(instr, _)| instr.to_string());
        let mut stats = SynthesisStats {
            candidate_instructions: candidates.len(),
            candidate_duration: start.elapsed(),
            ..SynthesisStats::default()
        };
        let build_start = Instant::now();
        let (graph, init_id) = if interned {
            let built = self.build_graph(&candidates, max_size, &mut stats, false);
            (built.graph, built.init_id)
        } else {
            self.build_graph_reference(&candidates, max_size, &mut stats)
        };
        stats.build_duration = build_start.elapsed();
        let emit_start = Instant::now();
        let mut stack: Vec<Instruction> = Vec::with_capacity(max_size);
        let mut scratch = Program::empty();
        // Iterative deepening over exact program lengths: paths of length
        // `target` from the initial state to the (absorbing) goal state are
        // exactly the valid programs of that length.
        if interned {
            // Memoized emission: descend only into suffixes whose completion
            // count for the exact remaining budget is nonzero.
            let mut memo = self.seeded_memo(graph.len(), max_size, &mut stats);
            for target in 0..=max_size {
                if memo.completions(&graph, init_id, target) == 0 {
                    continue;
                }
                let ctrl = emit_memoized(
                    &graph,
                    &mut memo,
                    &candidates,
                    init_id,
                    target,
                    &mut stack,
                    &mut scratch,
                    sink,
                    &mut stats,
                );
                if ctrl == SinkControl::Stop {
                    break;
                }
            }
            stats.suffix_memo_hits = memo.hits;
            stats.suffix_memo_misses = memo.misses;
            self.publish_memo(memo, graph.len(), max_size);
        } else {
            for target in 0..=max_size {
                if graph.min_steps[init_id] > target {
                    continue;
                }
                let ctrl = emit_exact(
                    &graph,
                    &candidates,
                    init_id,
                    0,
                    target,
                    &mut stack,
                    &mut scratch,
                    sink,
                    &mut stats,
                );
                if ctrl == SinkControl::Stop {
                    break;
                }
            }
        }
        stats.emit_duration = emit_start.elapsed();
        stats.duration = start.elapsed();
        stats
    }

    /// Counts the valid programs of at most `max_size` instructions by
    /// aggregating the suffix memo — no path is ever walked, so counting
    /// stays cheap even at sizes where the program set itself is beyond
    /// enumeration (the count-only fast path of the streaming engine: the
    /// answer a sink that always returns [`SinkControl::Continue`] and merely
    /// increments a counter would compute, at graph-size cost).
    pub fn count_programs(&self, max_size: usize) -> ProgramCount {
        let start = Instant::now();
        // Warm fast path: a bank slab whose initial-state row is fully known
        // answers the count without building the graph at all. The initial
        // synthesis state always has id 0 (it seeds the BFS), and the memo's
        // values are deterministic per context, so the answer is identical
        // to a cold count — only the stats reflect the shortcut.
        if let Some(bank) = &self.memo_bank {
            let key = MemoBank::key_for(&self.ctx, max_size);
            if let Some(slab) = bank.lookup(&key) {
                let width = max_size + 1;
                if slab.is_well_formed() && slab.width == width && slab.num_states > 0 {
                    let by_length: Vec<u64> = slab.counts[..width].to_vec();
                    if by_length.iter().all(|&c| c != SuffixMemo::UNKNOWN) {
                        bank.note_seeded(slab.known_entries());
                        let total = by_length
                            .iter()
                            .fold(0u64, |acc, &count| acc.saturating_add(count));
                        let mut stats = SynthesisStats {
                            suffix_memo_preloaded: slab.known_entries(),
                            suffix_memo_hits: width,
                            ..SynthesisStats::default()
                        };
                        stats.emit_duration = start.elapsed();
                        stats.duration = start.elapsed();
                        return ProgramCount {
                            total,
                            by_length,
                            stats,
                        };
                    }
                }
            }
        }
        let mut candidates = self.candidate_instructions();
        candidates.sort_by_cached_key(|(instr, _)| instr.to_string());
        let mut stats = SynthesisStats {
            candidate_instructions: candidates.len(),
            candidate_duration: start.elapsed(),
            ..SynthesisStats::default()
        };
        let build_start = Instant::now();
        let built = self.build_graph(&candidates, max_size, &mut stats, false);
        stats.build_duration = build_start.elapsed();
        let emit_start = Instant::now();
        let mut memo = self.seeded_memo(built.graph.len(), max_size, &mut stats);
        let by_length: Vec<u64> = (0..=max_size)
            .map(|b| memo.completions(&built.graph, built.init_id, b))
            .collect();
        let total = by_length
            .iter()
            .fold(0u64, |acc, &count| acc.saturating_add(count));
        stats.suffix_memo_hits = memo.hits;
        stats.suffix_memo_misses = memo.misses;
        self.publish_memo(memo, built.graph.len(), max_size);
        stats.emit_duration = emit_start.elapsed();
        stats.duration = start.elapsed();
        ProgramCount {
            total,
            by_length,
            stats,
        }
    }

    /// Finds a minimum-cost program of at most `max_size` instructions by
    /// dynamic programming over the search DAG, costing each edge once via
    /// `step_cost` — the best-cost fast path of the streaming engine. The
    /// returned cost folds per-step costs from the last instruction to the
    /// first; among minimum-cost programs the shortest is returned, ties
    /// broken by emission order.
    ///
    /// An edge's lowered step is fully determined by its pre-state and
    /// instruction (a group's input fraction is the maximum of its members'
    /// data fractions in the pre-state), so per-edge costing is exact: the
    /// result matches costing every enumerated program, up to floating-point
    /// association of the per-step sum.
    ///
    /// Returns `None` when no valid program exists within the size limit.
    ///
    /// # Errors
    ///
    /// Propagates lowering errors.
    pub fn best_cost_program(
        &self,
        max_size: usize,
        step_cost: &mut dyn FnMut(&LoweredStep) -> f64,
    ) -> Result<Option<BestCostProgram>, SynthesisError> {
        let start = Instant::now();
        let mut candidates = self.candidate_instructions();
        candidates.sort_by_cached_key(|(instr, _)| instr.to_string());
        let mut stats = SynthesisStats {
            candidate_instructions: candidates.len(),
            candidate_duration: start.elapsed(),
            ..SynthesisStats::default()
        };
        let build_start = Instant::now();
        let built = self.build_graph(&candidates, max_size, &mut stats, true);
        stats.build_duration = build_start.elapsed();
        let emit_start = Instant::now();
        let graph = &built.graph;
        let tuples = built.tuples.as_deref().expect("tuples kept for best-cost");
        let fractions = built
            .fractions
            .as_ref()
            .expect("fractions kept for best-cost");

        // Edge costs, memoized by (candidate, participating member states):
        // two states agreeing on a candidate's participants share its cost.
        let members_of: Vec<Vec<usize>> = candidates
            .iter()
            .map(|(_, groups)| groups.iter().flatten().copied().collect())
            .collect();
        let mut cost_memo: FxHashMap<Box<[u32]>, f64> = FxHashMap::default();
        let mut key: Vec<u32> = Vec::new();
        let mut edge_costs: Vec<Vec<f64>> = Vec::with_capacity(graph.len());
        for (id, edges) in graph.edges.iter().enumerate() {
            let Some(edges) = edges else {
                edge_costs.push(Vec::new());
                continue;
            };
            let tuple = &tuples[id];
            let mut costs = Vec::with_capacity(edges.len());
            for &(ci, _) in edges {
                key.clear();
                key.push(u32::try_from(ci).expect("candidate index fits u32"));
                key.extend(members_of[ci].iter().map(|&d| tuple[d]));
                let cost = match cost_memo.get(key.as_slice()) {
                    Some(&cost) => cost,
                    None => {
                        let step = self
                            .ctx
                            .lower_step(&candidates[ci].0, &mut |idx| fractions[&tuple[idx]])?;
                        let cost = step_cost(&step);
                        cost_memo.insert(key.as_slice().into(), cost);
                        cost
                    }
                };
                costs.push(cost);
            }
            edge_costs.push(costs);
        }

        // best[id][b]: minimum cost of a goal-reaching path of exactly `b`
        // steps from `id` (∞ when none exists). Budgets strictly decrease
        // along edges, so the bottom-up sweep is safe on cyclic graphs.
        let width = max_size + 1;
        let mut best = vec![f64::INFINITY; graph.len() * width];
        for (id, &goal) in graph.is_goal.iter().enumerate() {
            if goal {
                best[id * width] = 0.0;
            }
        }
        for b in 1..=max_size {
            for id in 0..graph.len() {
                // The goal is absorbing; frontier states have no edges.
                if graph.is_goal[id] {
                    continue;
                }
                let Some(edges) = &graph.edges[id] else {
                    continue;
                };
                let mut min = f64::INFINITY;
                for (&(_, next), &cost) in edges.iter().zip(&edge_costs[id]) {
                    let suffix = best[next * width + b - 1];
                    if suffix.is_finite() {
                        min = min.min(cost + suffix);
                    }
                }
                best[id * width + b] = min;
            }
        }

        // Shortest length first makes the < comparison pick the shortest
        // among equal-cost programs.
        let mut best_cost = f64::INFINITY;
        let mut best_len = None;
        for b in 0..=max_size {
            let cost = best[built.init_id * width + b];
            if cost < best_cost {
                best_cost = cost;
                best_len = Some(b);
            }
        }
        let Some(len) = best_len else {
            return Ok(None);
        };

        // Reconstruct by following, at every state, the first edge achieving
        // the memoized optimum (the same f64 sums recomputed, so the equality
        // test is exact) — the emission-order tie-break.
        let mut instructions = Vec::with_capacity(len);
        let mut id = built.init_id;
        for remaining in (1..=len).rev() {
            let target = best[id * width + remaining];
            let edges = graph.edges[id].as_ref().expect("optimal state expanded");
            let (ci, next) = edges
                .iter()
                .zip(&edge_costs[id])
                .find_map(|(&(ci, next), &cost)| {
                    let suffix = best[next * width + remaining - 1];
                    (suffix.is_finite() && cost + suffix == target).then_some((ci, next))
                })
                .expect("an edge achieves the memoized optimum");
            instructions.push(candidates[ci].0);
            id = next;
        }
        stats.emit_duration = emit_start.elapsed();
        stats.duration = start.elapsed();
        Ok(Some(BestCostProgram {
            program: Program { instructions },
            cost: best_cost,
            stats,
        }))
    }

    /// Explores the state space once (breadth-first, each state expanded a
    /// single time) and computes per-state distances to the goal — serially
    /// or level-synchronously in parallel, per
    /// [`Synthesizer::with_build_threads`]. Both paths produce bit-identical
    /// graphs (state numbering, edges, counts) and deterministic stats.
    fn build_graph(
        &self,
        candidates: &[(Instruction, Vec<Vec<usize>>)],
        max_size: usize,
        stats: &mut SynthesisStats,
        keep_tuples: bool,
    ) -> BuiltGraph {
        if self.build_threads == 1 {
            return self.build_graph_serial(candidates, max_size, stats, keep_tuples);
        }
        if p2_par::on_pool_worker() {
            // Inside a sweep's placement job: recruit the ambient pool's idle
            // workers instead of spawning a nested pool, so inter- and
            // intra-placement work share one thread budget.
            return self.build_graph_parallel(candidates, max_size, stats, keep_tuples);
        }
        let threads = if self.build_threads == 0 {
            p2_par::default_threads()
        } else {
            self.build_threads
        };
        if threads <= 1 {
            return self.build_graph_serial(candidates, max_size, stats, keep_tuples);
        }
        p2_par::with_pool(threads, || {
            self.build_graph_parallel(candidates, max_size, stats, keep_tuples)
        })
    }

    /// The serial breadth-first build.
    ///
    /// Device states are hash-consed to dense `u32` ids by a
    /// [`StateInterner`], so a synthesis-space state is a flat id slice:
    /// memoizing a state hashes a few words instead of k×k bit matrices, and
    /// devices sharing a state (the common case after collectives on
    /// symmetric groups) share storage. Collective applications go through
    /// an [`ApplyCache`] transposition table keyed by `(collective,
    /// participant ids)` — strictly finer than a per-`(collective,
    /// grouping)` memo, since the semantics only sees the ordered
    /// participants — so symmetric groupings and convergent paths skip the
    /// semantics entirely, and goal reachability (Lemma B.3) is a per-id
    /// table lookup. The expansion loop reuses its scratch buffers across
    /// candidates: a cache-hit application allocates nothing.
    fn build_graph_serial(
        &self,
        candidates: &[(Instruction, Vec<Vec<usize>>)],
        max_size: usize,
        stats: &mut SynthesisStats,
        keep_tuples: bool,
    ) -> BuiltGraph {
        let mut tables = match &self.shared {
            Some(shared) => Tables::Shared {
                tables: shared,
                seen: FxHashSet::default(),
                reused: 0,
                hits: 0,
                misses: 0,
            },
            None => Tables::Local {
                interner: StateInterner::new(),
                cache: ApplyCache::new(),
            },
        };
        let (distinct_goals, goal_index) = self.ctx.distinct_goal_states();
        // respects[id][g]: whether interned state `id` is ≤ distinct goal `g`,
        // computed lazily per id and stored in a map keyed by id — a shared
        // or warm-started interner also holds other placements' states, which
        // this search must never scan *or allocate slots for* (an id-indexed
        // dense table would grow with the global interner, not this search).
        let mut respects: FxHashMap<u32, Box<[bool]>> = FxHashMap::default();

        let init_ids: Box<[u32]> = self
            .ctx
            .initial_states()
            .into_iter()
            .map(|s| tables.intern(s))
            .collect();
        let goal_ids: Box<[u32]> = self
            .ctx
            .goal_states()
            .into_iter()
            .map(|s| tables.intern(s))
            .collect();

        let mut ids: FxHashMap<Box<[u32]>, usize> = FxHashMap::default();
        let mut is_goal: Vec<bool> = Vec::new();
        let mut edges: Vec<Option<Vec<(usize, usize)>>> = Vec::new();
        let mut tuples: Vec<Box<[u32]>> = Vec::new();
        let mut queue: VecDeque<(usize, usize, Box<[u32]>)> = VecDeque::new();

        let init_id = 0usize;
        is_goal.push(init_ids == goal_ids);
        edges.push(None);
        if keep_tuples {
            tuples.push(init_ids.clone());
        }
        ids.insert(init_ids.clone(), init_id);
        queue.push_back((init_id, 0, init_ids));

        // Scratch buffers reused across every candidate expansion.
        let mut next_ids: Vec<u32> = Vec::new();
        let mut member_ids: Vec<u32> = Vec::new();

        while let Some((id, depth, state_ids)) = queue.pop_front() {
            // The goal is absorbing, and states first reached at the size
            // limit can never be extended — neither is expanded.
            if is_goal[id] || depth >= max_size {
                continue;
            }
            stats.states_explored += 1;
            let mut out = Vec::new();
            'candidate: for (ci, (instr, groups)) in candidates.iter().enumerate() {
                stats.instructions_tried += 1;
                next_ids.clear();
                next_ids.extend_from_slice(&state_ids);
                for group in groups {
                    member_ids.clear();
                    member_ids.extend(group.iter().map(|&d| state_ids[d]));
                    let base = next_ids.len();
                    if !tables.apply(instr.collective, &member_ids, &mut next_ids) {
                        continue 'candidate;
                    }
                    for (i, &d) in group.iter().enumerate() {
                        next_ids[d] = next_ids[base + i];
                    }
                    next_ids.truncate(base);
                }
                // Prune states that can no longer reach the goal (Lemma B.3).
                let respects_all = (0..next_ids.len()).all(|d| {
                    let sid = next_ids[d];
                    let row = respects.entry(sid).or_insert_with(|| {
                        tables.with_state(sid, |state| {
                            distinct_goals.iter().map(|g| state.le(g)).collect()
                        })
                    });
                    row[goal_index[d]]
                });
                if !respects_all {
                    continue;
                }
                if next_ids[..] == state_ids[..] {
                    continue;
                }
                let next_id = match ids.get(next_ids.as_slice()) {
                    Some(&existing) => existing,
                    None => {
                        let new_id = is_goal.len();
                        let key: Box<[u32]> = next_ids.as_slice().into();
                        is_goal.push(key == goal_ids);
                        edges.push(None);
                        if keep_tuples {
                            tuples.push(key.clone());
                        }
                        ids.insert(key.clone(), new_id);
                        queue.push_back((new_id, depth + 1, key));
                        new_id
                    }
                };
                out.push((ci, next_id));
            }
            edges[id] = Some(out);
        }

        let fractions = keep_tuples.then(|| {
            let mut fractions: FxHashMap<u32, f64> = FxHashMap::default();
            for tuple in &tuples {
                for &sid in tuple.iter() {
                    fractions
                        .entry(sid)
                        .or_insert_with(|| tables.with_state(sid, State::data_fraction));
                }
            }
            fractions
        });
        stats.goal_respects_entries = respects.len();
        tables.finish(stats);
        BuiltGraph {
            graph: Self::finish_graph(is_goal, edges),
            init_id,
            tuples: keep_tuples.then_some(tuples),
            fractions,
        }
    }

    /// The level-synchronous parallel build: all states of one BFS level are
    /// expanded concurrently (each expansion job produces its candidate-
    /// ordered list of surviving successor tuples), then merged *serially* in
    /// (parent index, candidate index) order — exactly the order the serial
    /// FIFO build discovers states in, so state numbering, edges, `is_goal`,
    /// and every downstream artifact are bit-identical to
    /// [`Synthesizer::build_graph_serial`] for any worker count and steal
    /// seed.
    ///
    /// Expansions run against [`SharedTables`] (the sweep's, or private fresh
    /// ones): its sharded maps and lock-free id → state arena are what let
    /// concurrent expanders interleave without serializing on one lock.
    /// Device-state ids are assigned in thread-arrival order — observable
    /// results never depend on them (they are used for equality and
    /// memoization only), but the `apply_cache_hits`/`misses` *split* becomes
    /// interleaving-dependent (two workers can race to the same miss); the
    /// sum stays deterministic, as do all other stats.
    fn build_graph_parallel(
        &self,
        candidates: &[(Instruction, Vec<Vec<usize>>)],
        max_size: usize,
        stats: &mut SynthesisStats,
        keep_tuples: bool,
    ) -> BuiltGraph {
        use std::sync::atomic::{AtomicUsize, Ordering};
        use std::sync::{Mutex, RwLock};

        /// Shard count for the per-build tracking maps (`seen`, `respects`):
        /// small enough to sum cheaply, large enough that expanders rarely
        /// collide on a shard lock.
        const TRACK_SHARDS: usize = 64;

        let private;
        let (tables, sweep_shared): (&SharedTables, bool) = match &self.shared {
            Some(shared) => (shared.as_ref(), true),
            None => {
                private = SharedTables::new();
                (&private, false)
            }
        };
        let (distinct_goals, goal_index) = self.ctx.distinct_goal_states();

        // Ids observed by *this* search, tracked only in sweep-shared mode —
        // private tables start empty, so there `num_states()` is the same
        // universe. The set's *size* is deterministic (it is the search's
        // device-state universe); the reused/hit split is not.
        let seen: Option<Vec<Mutex<FxHashSet<u32>>>> = sweep_shared.then(|| {
            (0..TRACK_SHARDS)
                .map(|_| Mutex::new(FxHashSet::default()))
                .collect()
        });
        let reused = AtomicUsize::new(0);
        let apply_hits = AtomicUsize::new(0);
        let apply_misses = AtomicUsize::new(0);
        let note_seen = |id: u32, already_present: bool| {
            if let Some(seen) = &seen {
                let mut shard = seen[id as usize % TRACK_SHARDS]
                    .lock()
                    .expect("seen shard poisoned");
                if shard.insert(id) && already_present {
                    reused.fetch_add(1, Ordering::Relaxed);
                }
            }
        };

        // Lazy goal-compatibility rows (Lemma B.3), sharded by id. Racing
        // workers may compute the same row twice — the row is a pure function
        // of the state, so whichever insert wins is identical and the table
        // stays deterministic in content and size.
        let respects: Vec<RwLock<FxHashMap<u32, Box<[bool]>>>> = (0..TRACK_SHARDS)
            .map(|_| RwLock::new(FxHashMap::default()))
            .collect();
        let respects_row = |sid: u32, g: usize| -> bool {
            let shard = &respects[sid as usize % TRACK_SHARDS];
            if let Some(row) = shard.read().expect("respects shard poisoned").get(&sid) {
                return row[g];
            }
            let state = tables.get(sid);
            let row: Box<[bool]> = distinct_goals.iter().map(|goal| state.le(goal)).collect();
            let mut shard = shard.write().expect("respects shard poisoned");
            shard.entry(sid).or_insert(row)[g]
        };

        let init_ids: Box<[u32]> = self
            .ctx
            .initial_states()
            .into_iter()
            .map(|s| {
                let (id, present) = tables.intern(s);
                note_seen(id, present);
                id
            })
            .collect();
        let goal_ids: Box<[u32]> = self
            .ctx
            .goal_states()
            .into_iter()
            .map(|s| {
                let (id, present) = tables.intern(s);
                note_seen(id, present);
                id
            })
            .collect();

        let mut ids: FxHashMap<Box<[u32]>, usize> = FxHashMap::default();
        let mut is_goal: Vec<bool> = vec![init_ids == goal_ids];
        let mut edges: Vec<Option<Vec<(usize, usize)>>> = vec![None];
        let mut tuples: Vec<Box<[u32]>> = Vec::new();
        if keep_tuples {
            tuples.push(init_ids.clone());
        }
        ids.insert(init_ids.clone(), 0);

        // The current BFS level's unexpanded states, in discovery order.
        let mut frontier: Vec<(usize, Box<[u32]>)> = Vec::new();
        if !is_goal[0] && max_size > 0 {
            frontier.push((0, init_ids));
        }
        let mut depth = 0usize;
        while !frontier.is_empty() {
            // Expand every frontier state concurrently; each job writes its
            // surviving `(candidate index, successor tuple)` list — already
            // in candidate order — into its own slot.
            type Successors = Vec<(usize, Box<[u32]>)>;
            let slots: Vec<Mutex<Option<Successors>>> =
                frontier.iter().map(|_| Mutex::new(None)).collect();
            {
                let frontier = &frontier;
                let slots = &slots;
                p2_par::nested_for_each(frontier.len(), &|fi| {
                    let (_, state_ids) = &frontier[fi];
                    let mut out: Vec<(usize, Box<[u32]>)> = Vec::new();
                    let mut next_ids: Vec<u32> = Vec::new();
                    let mut member_ids: Vec<u32> = Vec::new();
                    'candidate: for (ci, (instr, groups)) in candidates.iter().enumerate() {
                        next_ids.clear();
                        next_ids.extend_from_slice(state_ids);
                        for group in groups {
                            member_ids.clear();
                            member_ids.extend(group.iter().map(|&d| state_ids[d]));
                            let base = next_ids.len();
                            let (result, hit) = tables.apply(instr.collective, &member_ids);
                            if hit {
                                apply_hits.fetch_add(1, Ordering::Relaxed);
                            } else {
                                apply_misses.fetch_add(1, Ordering::Relaxed);
                            }
                            match result {
                                Ok(after) => {
                                    for &id in after.iter() {
                                        // A cache hit's outputs were already
                                        // interned by whoever filled the entry.
                                        note_seen(id, hit);
                                    }
                                    next_ids.extend_from_slice(&after);
                                }
                                Err(_) => continue 'candidate,
                            }
                            for (i, &d) in group.iter().enumerate() {
                                next_ids[d] = next_ids[base + i];
                            }
                            next_ids.truncate(base);
                        }
                        let respects_all =
                            (0..next_ids.len()).all(|d| respects_row(next_ids[d], goal_index[d]));
                        if !respects_all {
                            continue;
                        }
                        if next_ids[..] == state_ids[..] {
                            continue;
                        }
                        out.push((ci, next_ids.as_slice().into()));
                    }
                    *slots[fi].lock().expect("expansion slot poisoned") = Some(out);
                });
            }

            // Serial merge in (parent index, candidate index) order — the
            // exact discovery order of the serial FIFO build, so new ids come
            // out identical.
            let mut next_frontier: Vec<(usize, Box<[u32]>)> = Vec::new();
            for (fi, (id, _)) in frontier.iter().enumerate() {
                let surviving = slots[fi]
                    .lock()
                    .expect("expansion slot poisoned")
                    .take()
                    .expect("every expansion slot is filled");
                stats.states_explored += 1;
                stats.instructions_tried += candidates.len();
                let mut out = Vec::with_capacity(surviving.len());
                for (ci, key) in surviving {
                    let next_id = match ids.get(&key) {
                        Some(&existing) => existing,
                        None => {
                            let new_id = is_goal.len();
                            let goal = key == goal_ids;
                            is_goal.push(goal);
                            edges.push(None);
                            if keep_tuples {
                                tuples.push(key.clone());
                            }
                            ids.insert(key.clone(), new_id);
                            // The goal is absorbing, and states first reached
                            // at the size limit can never be extended —
                            // neither joins the next frontier.
                            if !goal && depth + 1 < max_size {
                                next_frontier.push((new_id, key));
                            }
                            new_id
                        }
                    };
                    out.push((ci, next_id));
                }
                edges[*id] = Some(out);
            }
            frontier = next_frontier;
            depth += 1;
        }

        let fractions = keep_tuples.then(|| {
            let mut fractions: FxHashMap<u32, f64> = FxHashMap::default();
            for tuple in &tuples {
                for &sid in tuple.iter() {
                    fractions
                        .entry(sid)
                        .or_insert_with(|| tables.get(sid).data_fraction());
                }
            }
            fractions
        });
        stats.goal_respects_entries = respects
            .iter()
            .map(|shard| shard.read().expect("respects shard poisoned").len())
            .sum();
        stats.apply_cache_hits = apply_hits.load(Ordering::Relaxed);
        stats.apply_cache_misses = apply_misses.load(Ordering::Relaxed);
        match &seen {
            Some(shards) => {
                stats.unique_device_states = shards
                    .iter()
                    .map(|shard| shard.lock().expect("seen shard poisoned").len())
                    .sum();
                stats.shared_states_reused = reused.load(Ordering::Relaxed);
            }
            None => stats.unique_device_states = tables.num_states(),
        }
        BuiltGraph {
            graph: Self::finish_graph(is_goal, edges),
            init_id: 0,
            tuples: keep_tuples.then_some(tuples),
            fractions,
        }
    }

    /// The pre-interning search: synthesis states memoized by their full
    /// `Vec<State>`, every collective application re-run through the
    /// semantics. Kept as the oracle [`Synthesizer::synthesize_reference`]
    /// and the `state_intern` bench compare the interned engine against.
    fn build_graph_reference(
        &self,
        candidates: &[(Instruction, Vec<Vec<usize>>)],
        max_size: usize,
        stats: &mut SynthesisStats,
    ) -> (SearchGraph, usize) {
        let initial = self.ctx.initial_states();
        let goals = self.ctx.goal_states();
        let mut ids: HashMap<Vec<State>, usize> = HashMap::new();
        let mut is_goal: Vec<bool> = Vec::new();
        let mut edges: Vec<Option<Vec<(usize, usize)>>> = Vec::new();
        let mut queue: VecDeque<(usize, usize, Vec<State>)> = VecDeque::new();

        let (init_id, _) =
            intern_state_reference(&initial, &goals, &mut ids, &mut is_goal, &mut edges);
        queue.push_back((init_id, 0, initial));
        while let Some((id, depth, states)) = queue.pop_front() {
            // The goal is absorbing, and states first reached at the size
            // limit can never be extended — neither is expanded.
            if is_goal[id] || depth >= max_size {
                continue;
            }
            stats.states_explored += 1;
            let mut out = Vec::new();
            for (ci, (instr, groups)) in candidates.iter().enumerate() {
                stats.instructions_tried += 1;
                let Ok(next) = apply_to_groups(instr.collective, &states, groups) else {
                    continue;
                };
                // Prune states that can no longer reach the goal (Lemma B.3).
                if !self.ctx.respects_goal(&next, &goals) {
                    continue;
                }
                if next == states {
                    continue;
                }
                let (next_id, new) =
                    intern_state_reference(&next, &goals, &mut ids, &mut is_goal, &mut edges);
                if new {
                    queue.push_back((next_id, depth + 1, next));
                }
                out.push((ci, next_id));
            }
            edges[id] = Some(out);
        }

        (Self::finish_graph(is_goal, edges), init_id)
    }

    /// Computes per-state distances to the goal, completing a [`SearchGraph`].
    fn finish_graph(is_goal: Vec<bool>, edges: Vec<Option<Vec<(usize, usize)>>>) -> SearchGraph {
        // Reverse breadth-first search from the goal: minimal steps-to-goal is
        // the admissible pruning bound for the emission pass.
        let n = is_goal.len();
        let mut rev: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (id, out) in edges.iter().enumerate() {
            if let Some(out) = out {
                for &(_, next) in out {
                    rev[next].push(id);
                }
            }
        }
        let mut min_steps = vec![usize::MAX; n];
        let mut q: VecDeque<usize> = VecDeque::new();
        for (id, &g) in is_goal.iter().enumerate() {
            if g {
                min_steps[id] = 0;
                q.push_back(id);
            }
        }
        while let Some(id) = q.pop_front() {
            for &p in &rev[id] {
                if min_steps[p] == usize::MAX {
                    min_steps[p] = min_steps[id] + 1;
                    q.push_back(p);
                }
            }
        }

        SearchGraph {
            edges,
            is_goal,
            min_steps,
        }
    }

    /// Synthesizes every valid program of at most `max_size` instructions
    /// (the paper uses a limit of 5).
    ///
    /// This is a thin collecting wrapper over
    /// [`Synthesizer::for_each_program`]; the final sort documents (and
    /// defends) the emission-order contract at negligible cost, since the
    /// stream already arrives sorted.
    pub fn synthesize(&self, max_size: usize) -> SynthesisResult {
        let mut programs: Vec<Program> = Vec::new();
        let stats = self.for_each_program(max_size, &mut |p: &Program| {
            programs.push(p.clone());
            SinkControl::Continue
        });
        programs.sort_by_cached_key(|p| (p.len(), p.to_string()));
        SynthesisResult { programs, stats }
    }

    /// [`Synthesizer::synthesize`] through the pre-interning reference
    /// search: synthesis states memoized by their full `Vec<State>`, no
    /// device-state hash-consing, no transposition cache. Slower by design —
    /// it exists as the oracle the interned engine is pinned against (same
    /// program set, same order, same `states_explored`) in the test suite
    /// and as the "old" side of the `state_intern` bench.
    pub fn synthesize_reference(&self, max_size: usize) -> SynthesisResult {
        let mut programs: Vec<Program> = Vec::new();
        let stats = self.for_each_program_impl(
            max_size,
            &mut |p: &Program| {
                programs.push(p.clone());
                SinkControl::Continue
            },
            false,
        );
        programs.sort_by_cached_key(|p| (p.len(), p.to_string()));
        SynthesisResult { programs, stats }
    }

    /// Lowers a program to physical device groups.
    ///
    /// # Errors
    ///
    /// Same as [`SynthesisContext::lower`].
    pub fn lower(&self, program: &Program) -> Result<LoweredProgram, SynthesisError> {
        self.ctx.lower(program)
    }

    /// Re-validates a program (semantics plus goal).
    ///
    /// # Errors
    ///
    /// Returns the violation, if any.
    pub fn validate(&self, program: &Program) -> Result<(), SynthesisError> {
        self.ctx.trace(program).map(|_| ())
    }
}

/// Depth-first emission of every goal-reaching path of exactly `remaining`
/// further instructions, pruned by the suffix memo: an edge is descended only
/// when its successor completes a nonzero number of programs in the exact
/// remaining budget, so (unlike the `min_steps` bound of the reference
/// emission) every recursive call ends in at least one emission. Callers
/// guarantee `memo.completions(graph, id, remaining) > 0`.
#[allow(clippy::too_many_arguments)]
fn emit_memoized<S>(
    graph: &SearchGraph,
    memo: &mut SuffixMemo,
    candidates: &[(Instruction, Vec<Vec<usize>>)],
    id: usize,
    remaining: usize,
    stack: &mut Vec<Instruction>,
    scratch: &mut Program,
    sink: &mut S,
    stats: &mut SynthesisStats,
) -> SinkControl
where
    S: ProgramSink + ?Sized,
{
    if remaining == 0 {
        // Positive completions with no budget left means this is the goal.
        debug_assert!(graph.is_goal[id]);
        scratch.instructions.clear();
        scratch.instructions.extend_from_slice(stack);
        stats.programs_emitted += 1;
        return sink.accept(scratch);
    }
    let Some(edges) = &graph.edges[id] else {
        debug_assert!(false, "a state with completions left was never expanded");
        return SinkControl::Continue;
    };
    for &(ci, next) in edges {
        if memo.completions(graph, next, remaining - 1) == 0 {
            continue;
        }
        stack.push(candidates[ci].0);
        let ctrl = emit_memoized(
            graph,
            memo,
            candidates,
            next,
            remaining - 1,
            stack,
            scratch,
            sink,
            stats,
        );
        stack.pop();
        if ctrl == SinkControl::Stop {
            return SinkControl::Stop;
        }
    }
    SinkControl::Continue
}

/// Depth-first emission of every goal-reaching path of exactly `target`
/// instructions, reusing one instruction stack and one scratch program —
/// pruned only by the admissible `min_steps` bound. Kept as the reference
/// path's emission, the oracle the memoized engine is pinned against.
#[allow(clippy::too_many_arguments)]
fn emit_exact<S>(
    graph: &SearchGraph,
    candidates: &[(Instruction, Vec<Vec<usize>>)],
    id: usize,
    depth: usize,
    target: usize,
    stack: &mut Vec<Instruction>,
    scratch: &mut Program,
    sink: &mut S,
    stats: &mut SynthesisStats,
) -> SinkControl
where
    S: ProgramSink + ?Sized,
{
    if graph.is_goal[id] {
        if depth == target {
            scratch.instructions.clear();
            scratch.instructions.extend_from_slice(stack);
            stats.programs_emitted += 1;
            return sink.accept(scratch);
        }
        return SinkControl::Continue;
    }
    if depth == target {
        return SinkControl::Continue;
    }
    let Some(edges) = &graph.edges[id] else {
        return SinkControl::Continue;
    };
    let remaining = target - depth - 1;
    for &(ci, next) in edges {
        if graph.min_steps[next] > remaining {
            continue;
        }
        stack.push(candidates[ci].0);
        let ctrl = emit_exact(
            graph,
            candidates,
            next,
            depth + 1,
            target,
            stack,
            scratch,
            sink,
            stats,
        );
        stack.pop();
        if ctrl == SinkControl::Stop {
            return SinkControl::Stop;
        }
    }
    SinkControl::Continue
}

#[cfg(test)]
mod tests {
    use super::*;

    fn figure2d() -> ParallelismMatrix {
        ParallelismMatrix::new(
            vec![vec![1, 1, 2, 2], vec![1, 2, 1, 2]],
            vec![1, 2, 2, 4],
            vec![4, 4],
        )
        .unwrap()
    }

    fn synth_d() -> Synthesizer {
        Synthesizer::new(figure2d(), vec![1], HierarchyKind::ReductionAxes).unwrap()
    }

    #[test]
    fn finds_the_paper_figure3_programs() {
        let result = synth_d().synthesize(5);
        let signatures: Vec<String> = result.programs.iter().map(|p| p.signature()).collect();
        // Figure 3a: a single AllReduce.
        assert!(signatures.contains(&"AllReduce".to_string()));
        // Figure 3b: AllReduce-AllReduce (local, then across).
        assert!(signatures.contains(&"AllReduce-AllReduce".to_string()));
        // Figure 3c / 10i: Reduce-AllReduce-Broadcast.
        assert!(signatures.contains(&"Reduce-AllReduce-Broadcast".to_string()));
        // Figure 10ii: ReduceScatter-AllReduce-AllGather.
        assert!(signatures.contains(&"ReduceScatter-AllReduce-AllGather".to_string()));
    }

    #[test]
    fn all_programs_validate_and_lower() {
        let s = synth_d();
        let result = s.synthesize(5);
        assert!(!result.is_empty());
        for p in &result.programs {
            s.validate(p)
                .unwrap_or_else(|e| panic!("program {p} failed validation: {e}"));
            let lowered = s.lower(p).unwrap();
            assert!(lowered.groups_are_disjoint());
        }
    }

    #[test]
    fn programs_are_unique() {
        let result = synth_d().synthesize(5);
        let mut seen = std::collections::HashSet::new();
        for p in &result.programs {
            assert!(seen.insert(p.clone()), "duplicate program {p}");
        }
    }

    #[test]
    fn larger_size_limit_finds_at_least_as_many_programs() {
        let s = synth_d();
        let small = s.synthesize(2).len();
        let medium = s.synthesize(3).len();
        let large = s.synthesize(5).len();
        assert!(small <= medium && medium <= large);
        assert!(small >= 1, "a single AllReduce must always be found");
    }

    #[test]
    fn size_one_synthesis_finds_exactly_the_single_allreduce() {
        let result = synth_d().synthesize(1);
        assert_eq!(result.len(), 1);
        assert_eq!(result.programs[0].signature(), "AllReduce");
    }

    #[test]
    fn streaming_emits_the_synthesize_order_exactly() {
        // The visitor must produce the same programs, in the same order, as
        // the collecting wrapper's documented (length, display) sort.
        let s = synth_d();
        for max_size in 1..=5 {
            let mut streamed: Vec<Program> = Vec::new();
            let stats = s.for_each_program(max_size, &mut |p: &Program| {
                streamed.push(p.clone());
                SinkControl::Continue
            });
            let collected = s.synthesize(max_size);
            assert_eq!(streamed, collected.programs, "order diverged at {max_size}");
            assert_eq!(stats.programs_emitted, streamed.len());
            assert_eq!(stats.states_explored, collected.stats.states_explored);
        }
    }

    #[test]
    fn sink_stop_aborts_the_enumeration() {
        let s = synth_d();
        let total = s.synthesize(5).len();
        assert!(total > 3);
        let mut taken: Vec<Program> = Vec::new();
        let stats = s.for_each_program(5, &mut |p: &Program| {
            taken.push(p.clone());
            if taken.len() == 3 {
                SinkControl::Stop
            } else {
                SinkControl::Continue
            }
        });
        assert_eq!(taken.len(), 3);
        assert_eq!(stats.programs_emitted, 3);
        // The prefix matches the full enumeration.
        assert_eq!(taken, s.synthesize(5).programs[..3].to_vec());
    }

    #[test]
    fn reduction_hierarchy_finds_every_system_hierarchy_program() {
        // Theorem 3.2: hierarchy (d) is at least as expressive as (a). We check
        // it empirically: every *lowered* program synthesized under (a) also
        // appears among the lowered programs of (d).
        let matrix = figure2d();
        let synth_a = Synthesizer::new(matrix.clone(), vec![1], HierarchyKind::System).unwrap();
        let synth_d = Synthesizer::new(matrix, vec![1], HierarchyKind::ReductionAxes).unwrap();
        let lowered_a: Vec<_> = synth_a
            .synthesize(3)
            .programs
            .iter()
            .map(|p| synth_a.lower(p).unwrap())
            .collect();
        let lowered_d: Vec<_> = synth_d
            .synthesize(3)
            .programs
            .iter()
            .map(|p| synth_d.lower(p).unwrap())
            .collect();
        for la in &lowered_a {
            assert!(
                lowered_d.iter().any(|ld| lowered_equivalent(la, ld)),
                "program {} from hierarchy (a) not found under (d)",
                la.signature()
            );
        }
        // And (d) finds strictly more in this example.
        assert!(lowered_d.len() >= lowered_a.len());
    }

    fn lowered_equivalent(
        a: &crate::lowered::LoweredProgram,
        b: &crate::lowered::LoweredProgram,
    ) -> bool {
        if a.steps.len() != b.steps.len() {
            return false;
        }
        a.steps.iter().zip(&b.steps).all(|(sa, sb)| {
            if sa.collective != sb.collective {
                return false;
            }
            let norm = |s: &crate::lowered::LoweredStep| {
                let mut gs: Vec<Vec<usize>> = s
                    .groups
                    .iter()
                    .map(|g| {
                        let mut d = g.devices.clone();
                        d.sort_unstable();
                        d
                    })
                    .collect();
                gs.sort();
                gs
            };
            norm(sa) == norm(sb)
        })
    }

    #[test]
    fn count_only_agrees_with_full_enumeration() {
        let s = synth_d();
        for max_size in 0..=6 {
            let full = s.synthesize(max_size);
            let count = s.count_programs(max_size);
            assert_eq!(count.total, full.len() as u64, "size {max_size}");
            assert_eq!(count.by_length.len(), max_size + 1);
            assert_eq!(
                count.total,
                count.by_length.iter().sum::<u64>(),
                "by_length must partition the total"
            );
            for (n, &c) in count.by_length.iter().enumerate() {
                let at_n = full.programs.iter().filter(|p| p.len() == n).count() as u64;
                assert_eq!(c, at_n, "length {n} at size {max_size}");
            }
            assert_eq!(count.stats.programs_emitted, 0);
            assert_eq!(count.stats.states_explored, full.stats.states_explored);
        }
    }

    #[test]
    fn suffix_memo_counters_are_populated() {
        let s = synth_d();
        let mut emitted = 0usize;
        let stats = s.for_each_program(5, &mut |_: &Program| {
            emitted += 1;
            SinkControl::Continue
        });
        assert!(emitted > 0);
        assert!(stats.suffix_memo_misses > 0);
        assert!(stats.suffix_memo_hits > 0, "shared suffixes must be reused");
        assert!(stats.build_duration <= stats.duration);
    }

    #[test]
    fn best_cost_program_matches_exhaustive_minimum() {
        // Cost each step by (groups × max group size): an arbitrary but
        // prefix-sensitive stand-in for a real cost model (fractions shrink
        // after a ReduceScatter, so identical instructions cost differently
        // at different states).
        let mut cost = |step: &LoweredStep| {
            step.groups
                .iter()
                .map(|g| g.input_fraction * g.devices.len() as f64)
                .sum::<f64>()
        };
        let s = synth_d();
        for max_size in 1..=5 {
            let best = s
                .best_cost_program(max_size, &mut cost)
                .unwrap()
                .expect("programs exist");
            // Exhaustive check: fold each enumerated program's step costs in
            // the DP's (suffix-first) association and take the minimum.
            let mut min = f64::INFINITY;
            let mut min_lens: Vec<usize> = Vec::new();
            for p in &s.synthesize(max_size).programs {
                let lowered = s.lower(p).unwrap();
                let total = lowered
                    .steps
                    .iter()
                    .rev()
                    .fold(0.0_f64, |acc, step| cost(step) + acc);
                if total < min {
                    min = total;
                    min_lens.clear();
                }
                if total == min {
                    min_lens.push(p.len());
                }
            }
            assert_eq!(best.cost, min, "cost diverged at size {max_size}");
            assert_eq!(
                best.program.len(),
                min_lens.iter().copied().min().unwrap(),
                "tie-break must pick the shortest minimum at size {max_size}"
            );
            s.validate(&best.program).unwrap();
        }
    }

    #[test]
    fn best_cost_program_handles_unreachable_goals() {
        // Size 0 with a non-trivial reduction: no program reaches the goal.
        let s = synth_d();
        let best = s.best_cost_program(0, &mut |_| 1.0).unwrap();
        assert!(best.is_none());
    }

    #[test]
    fn shared_tables_do_not_change_results() {
        use p2_collectives::SharedTables;
        let local = synth_d();
        let shared_tables = Arc::new(SharedTables::new());
        let shared = synth_d().with_shared_tables(Arc::clone(&shared_tables));
        assert!(shared.shared_tables().is_some());
        for max_size in 1..=5 {
            let a = local.synthesize(max_size);
            let b = shared.synthesize(max_size);
            assert_eq!(a.programs, b.programs, "programs diverged at {max_size}");
            assert_eq!(a.stats.states_explored, b.stats.states_explored);
            assert_eq!(a.stats.unique_device_states, b.stats.unique_device_states);
            assert_eq!(a.stats.programs_emitted, b.stats.programs_emitted);
        }
        assert!(shared_tables.num_states() > 0);
        // A second synthesizer over the same tables reuses every state.
        let again = synth_d().with_shared_tables(Arc::clone(&shared_tables));
        let rerun = again.synthesize(5);
        assert_eq!(
            rerun.stats.shared_states_reused, rerun.stats.unique_device_states,
            "an identical search must find its whole universe already interned"
        );
        assert_eq!(rerun.stats.apply_cache_misses, 0);
    }

    #[test]
    fn memo_bank_preserves_results_and_records_seeding() {
        let bank = Arc::new(MemoBank::new());
        let cold = synth_d().with_memo_bank(Arc::clone(&bank));
        assert!(cold.memo_bank().is_some());
        let bankless = synth_d();
        for max_size in 1..=5 {
            // Cold through the bank == bankless.
            let through_bank = cold.synthesize(max_size);
            let reference = bankless.synthesize(max_size);
            assert_eq!(through_bank.programs, reference.programs);
            let cold_count = bankless.count_programs(max_size);
            // The bank now holds the memo; a warm search hits it everywhere.
            let warm = synth_d().with_memo_bank(Arc::clone(&bank));
            let warm_result = warm.synthesize(max_size);
            assert_eq!(warm_result.programs, reference.programs);
            assert!(warm_result.stats.suffix_memo_preloaded > 0);
            assert_eq!(warm_result.stats.suffix_memo_misses, 0);
            // Warm count-only takes the graphless fast path, same answer.
            let warm_count = warm.count_programs(max_size);
            assert_eq!(warm_count.total, cold_count.total);
            assert_eq!(warm_count.by_length, cold_count.by_length);
            assert_eq!(warm_count.stats.states_explored, 0, "graph must be skipped");
        }
        assert!(bank.seeded_searches() > 0);
        assert!(bank.seeded_entries() > 0);
        // Export/preload into a fresh bank reproduces the warm behavior —
        // the in-memory form of the table store round trip.
        let fresh = Arc::new(MemoBank::new());
        for (key, slab) in bank.export() {
            fresh.publish(&key, slab);
        }
        let rewarmed = synth_d().with_memo_bank(Arc::clone(&fresh));
        let count = rewarmed.count_programs(5);
        assert_eq!(count.total, bankless.count_programs(5).total);
        assert_eq!(count.stats.states_explored, 0);
    }

    /// The deterministic subset of build stats: everything except timings,
    /// the interleaving-dependent `apply_cache_*` split and
    /// `shared_states_reused`.
    fn deterministic_stats(
        s: &SynthesisStats,
    ) -> (usize, usize, usize, usize, usize, usize, usize) {
        (
            s.states_explored,
            s.instructions_tried,
            s.candidate_instructions,
            s.programs_emitted,
            s.unique_device_states,
            s.goal_respects_entries,
            s.apply_cache_hits + s.apply_cache_misses,
        )
    }

    #[test]
    fn parallel_build_matches_serial_bit_for_bit() {
        let serial = synth_d();
        assert_eq!(serial.build_threads(), 1);
        for threads in [0usize, 2, 8] {
            let parallel = synth_d().with_build_threads(threads);
            for max_size in 1..=5 {
                let a = serial.synthesize(max_size);
                let b = parallel.synthesize(max_size);
                assert_eq!(
                    a.programs, b.programs,
                    "programs diverged at threads={threads} size={max_size}"
                );
                assert_eq!(
                    deterministic_stats(&a.stats),
                    deterministic_stats(&b.stats),
                    "stats diverged at threads={threads} size={max_size}"
                );
            }
        }
    }

    #[test]
    fn parallel_build_count_and_best_cost_agree_with_serial() {
        let serial = synth_d();
        let parallel = synth_d().with_build_threads(8);
        let mut cost = |step: &LoweredStep| {
            step.groups
                .iter()
                .map(|g| g.input_fraction * g.devices.len() as f64)
                .sum::<f64>()
        };
        for max_size in 0..=6 {
            let a = serial.count_programs(max_size);
            let b = parallel.count_programs(max_size);
            assert_eq!(a.total, b.total, "count diverged at size {max_size}");
            assert_eq!(a.by_length, b.by_length);
            assert_eq!(a.stats.states_explored, b.stats.states_explored);
        }
        for max_size in 1..=5 {
            let a = serial.best_cost_program(max_size, &mut cost).unwrap();
            let b = parallel.best_cost_program(max_size, &mut cost).unwrap();
            match (a, b) {
                (Some(a), Some(b)) => {
                    assert_eq!(a.program, b.program, "best program diverged at {max_size}");
                    assert_eq!(a.cost, b.cost);
                }
                (None, None) => {}
                (a, b) => panic!("best-cost presence diverged: {a:?} vs {b:?}"),
            }
        }
    }

    #[test]
    fn parallel_build_over_shared_tables_matches_serial() {
        use p2_collectives::SharedTables;
        let serial = synth_d();
        let tables = Arc::new(SharedTables::new());
        let parallel = synth_d()
            .with_shared_tables(Arc::clone(&tables))
            .with_build_threads(4);
        for max_size in 1..=5 {
            let a = serial.synthesize(max_size);
            let b = parallel.synthesize(max_size);
            assert_eq!(a.programs, b.programs, "size {max_size}");
            assert_eq!(
                deterministic_stats(&a.stats),
                deterministic_stats(&b.stats),
                "size {max_size}"
            );
        }
        // A rerun over the now-warm tables still matches and reuses the
        // whole universe (sum of reused + fresh is deterministic even though
        // the split per state is not: everything is present, so every seen
        // insert is a reuse).
        let rerun = synth_d()
            .with_shared_tables(Arc::clone(&tables))
            .with_build_threads(4)
            .synthesize(5);
        assert_eq!(rerun.programs, serial.synthesize(5).programs);
        assert_eq!(
            rerun.stats.shared_states_reused,
            rerun.stats.unique_device_states
        );
    }

    #[test]
    fn respects_table_stays_small_under_a_bloated_shared_interner() {
        use p2_collectives::SharedTables;
        // Pre-intern a large population of foreign device states, then run a
        // small search over the same tables: the lazy respects table (and the
        // search results) must be invariant to the foreign states.
        let baseline = synth_d().synthesize(4);
        assert!(baseline.stats.goal_respects_entries > 0);
        assert!(
            baseline.stats.goal_respects_entries <= baseline.stats.unique_device_states,
            "respects rows are only computed for states this search touches"
        );
        let tables = Arc::new(SharedTables::new());
        for devices in 2..=40usize {
            for device in 0..devices {
                tables.intern(State::initial(devices, device));
            }
        }
        let foreign = tables.num_states();
        assert!(foreign > 500);
        let bloated = synth_d()
            .with_shared_tables(Arc::clone(&tables))
            .synthesize(4);
        assert_eq!(baseline.programs, bloated.programs);
        assert_eq!(
            baseline.stats.goal_respects_entries, bloated.stats.goal_respects_entries,
            "foreign interner states must not grow the respects table"
        );
        assert_eq!(
            baseline.stats.unique_device_states,
            bloated.stats.unique_device_states
        );
    }

    #[test]
    fn stats_are_populated() {
        let result = synth_d().synthesize(4);
        assert!(result.stats.instructions_tried > 0);
        assert!(result.stats.states_explored > 0);
        assert!(result.stats.candidate_instructions > 0);
        assert_eq!(result.stats.programs_emitted, result.len());
    }

    #[test]
    fn single_axis_whole_machine_reduction() {
        // One parallelism axis covering a [2, 8] system: reduction over everything.
        let matrix = ParallelismMatrix::new(vec![vec![2, 8]], vec![2, 8], vec![16]).unwrap();
        let s = Synthesizer::new(matrix, vec![0], HierarchyKind::ReductionAxes).unwrap();
        let result = s.synthesize(5);
        let signatures: Vec<String> = result.programs.iter().map(|p| p.signature()).collect();
        assert!(signatures.contains(&"AllReduce".to_string()));
        assert!(signatures.contains(&"ReduceScatter-AllReduce-AllGather".to_string()));
        for p in &result.programs {
            let lowered = s.lower(p).unwrap();
            assert!(lowered.groups_are_disjoint());
        }
    }
}
