//! Cross-search persistence of the suffix-completion memo.
//!
//! The emission engine's suffix memo (`[synthesis state][remaining budget]` →
//! number of goal-reaching completions) is a pure function of the search
//! graph, and the graph itself is built deterministically: states get ids in
//! BFS discovery order over candidates sorted by display form, so the memo
//! table of one `(matrix, reduction axes, hierarchy, max size)` context is
//! identical across processes, thread counts, and interner modes. That makes
//! it persistable — a [`MemoBank`] holds one slab per context key, the table
//! store serializes banks alongside the interner tables, and a warm-started
//! search turns its counting DP into pure lookups without any observable
//! result changing.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, RwLock};

use p2_collectives::FxHashMap;

use crate::context::SynthesisContext;
use crate::hierarchy::HierarchyKind;

/// The sentinel marking a `(state, budget)` pair whose completion count has
/// not been computed. Mirrors the emission engine's internal sentinel; part
/// of the persisted format (slabs store unknown entries as this value).
pub const MEMO_UNKNOWN: u64 = u64::MAX;

/// One context's completed (or partially completed) suffix-memo table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MemoSlab {
    /// Number of synthesis states in the context's search graph.
    pub num_states: usize,
    /// Budget axis length (`max_size + 1`).
    pub width: usize,
    /// Row-major `[state][budget]` counts; [`MEMO_UNKNOWN`] marks entries the
    /// publishing search never touched.
    pub counts: Arc<[u64]>,
}

impl MemoSlab {
    /// Number of known (non-sentinel) entries.
    pub fn known_entries(&self) -> usize {
        self.counts.iter().filter(|&&c| c != MEMO_UNKNOWN).count()
    }

    /// Whether the slab's dimensions are mutually consistent.
    pub fn is_well_formed(&self) -> bool {
        self.width > 0 && self.counts.len() == self.num_states * self.width
    }
}

/// A shared, growable map from context keys to [`MemoSlab`]s — the
/// suffix-memo counterpart of `SharedTables`, held by a sweep (or the
/// planner) and threaded into every `Synthesizer` so searches over contexts
/// already solved (this run or a previous one, via the table store) start
/// from a filled memo.
///
/// Slabs for the same key are merged entry-wise: the counts are deterministic
/// per context, so two publishers can only ever fill in each other's unknown
/// entries, never disagree.
#[derive(Debug, Default)]
pub struct MemoBank {
    slabs: RwLock<FxHashMap<String, MemoSlab>>,
    seeded_searches: AtomicUsize,
    seeded_entries: AtomicUsize,
}

impl MemoBank {
    /// An empty bank.
    pub fn new() -> Self {
        MemoBank::default()
    }

    /// The canonical key of one search context at one size limit: every
    /// input the search graph (and therefore the memo) is a function of,
    /// rendered stably. Two equal keys mean bit-identical memo tables.
    pub fn key_for(ctx: &SynthesisContext, max_size: usize) -> String {
        use std::fmt::Write as _;
        let matrix = ctx.matrix();
        let mut key = String::from("memo-v1|rows=");
        for axis in 0..matrix.num_axes() {
            let _ = write!(key, "{:?};", matrix.row(axis));
        }
        let _ = write!(
            key,
            "|arities={:?}|red={:?}|hier={}|size={max_size}",
            matrix.arities(),
            ctx.reduction_axes(),
            hierarchy_token(ctx.hierarchy().kind()),
        );
        key
    }

    /// The slab stored for `key`, if any.
    pub fn lookup(&self, key: &str) -> Option<MemoSlab> {
        self.slabs.read().expect("memo bank lock").get(key).cloned()
    }

    /// Records a (possibly partial) memo table for `key`, merging entry-wise
    /// with any slab already present. Malformed slabs and dimension
    /// mismatches are ignored — the bank only ever grows consistent data.
    pub fn publish(&self, key: &str, slab: MemoSlab) {
        if !slab.is_well_formed() {
            return;
        }
        let mut slabs = self.slabs.write().expect("memo bank lock");
        match slabs.get_mut(key) {
            None => {
                slabs.insert(key.to_string(), slab);
            }
            Some(existing) => {
                if existing.num_states != slab.num_states || existing.width != slab.width {
                    return;
                }
                if slab
                    .counts
                    .iter()
                    .zip(existing.counts.iter())
                    .any(|(&new, &old)| old == MEMO_UNKNOWN && new != MEMO_UNKNOWN)
                {
                    let merged: Arc<[u64]> = existing
                        .counts
                        .iter()
                        .zip(slab.counts.iter())
                        .map(|(&old, &new)| if old == MEMO_UNKNOWN { new } else { old })
                        .collect();
                    existing.counts = merged;
                }
            }
        }
    }

    /// Every slab in key order — the serialization order of the table store.
    pub fn export(&self) -> Vec<(String, MemoSlab)> {
        let slabs = self.slabs.read().expect("memo bank lock");
        let mut out: Vec<(String, MemoSlab)> =
            slabs.iter().map(|(k, v)| (k.clone(), v.clone())).collect();
        out.sort_by(|(a, _), (b, _)| a.cmp(b));
        out
    }

    /// Number of contexts with a stored slab.
    pub fn len(&self) -> usize {
        self.slabs.read().expect("memo bank lock").len()
    }

    /// Whether no slab is stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Searches that started from a warm slab (see
    /// [`note_seeded`](MemoBank::note_seeded)).
    pub fn seeded_searches(&self) -> usize {
        self.seeded_searches.load(Ordering::Relaxed)
    }

    /// Known memo entries handed to warm-started searches, summed.
    pub fn seeded_entries(&self) -> usize {
        self.seeded_entries.load(Ordering::Relaxed)
    }

    /// Counts one warm-started search that was seeded `entries` known
    /// entries (called by the synthesizer when a lookup hits).
    pub fn note_seeded(&self, entries: usize) {
        self.seeded_searches.fetch_add(1, Ordering::Relaxed);
        self.seeded_entries.fetch_add(entries, Ordering::Relaxed);
    }
}

/// Stable one-word token per hierarchy kind, part of the memo key format.
fn hierarchy_token(kind: HierarchyKind) -> &'static str {
    match kind {
        HierarchyKind::System => "system",
        HierarchyKind::ColumnMajor => "column-major",
        HierarchyKind::RowMajor => "row-major",
        HierarchyKind::ReductionAxes => "reduction-axes",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use p2_placement::ParallelismMatrix;

    fn ctx() -> SynthesisContext {
        let matrix = ParallelismMatrix::new(
            vec![vec![1, 1, 2, 2], vec![1, 2, 1, 2]],
            vec![1, 2, 2, 4],
            vec![4, 4],
        )
        .unwrap();
        SynthesisContext::new(matrix, vec![1], HierarchyKind::ReductionAxes).unwrap()
    }

    fn slab(counts: &[u64], width: usize) -> MemoSlab {
        MemoSlab {
            num_states: counts.len() / width,
            width,
            counts: counts.into(),
        }
    }

    #[test]
    fn keys_distinguish_every_input() {
        let base = MemoBank::key_for(&ctx(), 5);
        assert_eq!(MemoBank::key_for(&ctx(), 5), base);
        assert_ne!(MemoBank::key_for(&ctx(), 6), base);
        let other_kind =
            SynthesisContext::new(ctx().matrix().clone(), vec![1], HierarchyKind::System).unwrap();
        assert_ne!(MemoBank::key_for(&other_kind, 5), base);
        let other_axes = SynthesisContext::new(
            ctx().matrix().clone(),
            vec![0],
            HierarchyKind::ReductionAxes,
        )
        .unwrap();
        assert_ne!(MemoBank::key_for(&other_axes, 5), base);
    }

    #[test]
    fn publish_merges_unknown_entries_and_rejects_mismatches() {
        let bank = MemoBank::new();
        assert!(bank.is_empty());
        bank.publish("k", slab(&[1, MEMO_UNKNOWN, 3, MEMO_UNKNOWN], 2));
        bank.publish("k", slab(&[1, 2, MEMO_UNKNOWN, MEMO_UNKNOWN], 2));
        let merged = bank.lookup("k").unwrap();
        assert_eq!(&merged.counts[..], &[1, 2, 3, MEMO_UNKNOWN]);
        assert_eq!(merged.known_entries(), 3);
        // Wrong dimensions never clobber a stored slab.
        bank.publish("k", slab(&[9, 9], 2));
        assert_eq!(
            &bank.lookup("k").unwrap().counts[..],
            &[1, 2, 3, MEMO_UNKNOWN]
        );
        // Malformed slabs are dropped.
        bank.publish(
            "bad",
            MemoSlab {
                num_states: 3,
                width: 2,
                counts: vec![0; 5].into(),
            },
        );
        assert!(bank.lookup("bad").is_none());
        assert_eq!(bank.len(), 1);
        // Export is key-ordered.
        bank.publish("a", slab(&[7], 1));
        let exported = bank.export();
        assert_eq!(exported[0].0, "a");
        assert_eq!(exported[1].0, "k");
    }

    #[test]
    fn seed_counters_accumulate() {
        let bank = MemoBank::new();
        bank.note_seeded(10);
        bank.note_seeded(5);
        assert_eq!(bank.seeded_searches(), 2);
        assert_eq!(bank.seeded_entries(), 15);
    }
}
