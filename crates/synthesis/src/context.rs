//! The synthesis context: synthesis-space states, goal, and lowering to
//! physical device groups (paper §3.5).

use p2_collectives::{apply_to_groups, State};
use p2_placement::ParallelismMatrix;

use crate::dsl::{Form, Instruction, Program};
use crate::error::SynthesisError;
use crate::hierarchy::{HierarchyKind, SynthesisHierarchy};
use crate::lowered::{GroupExec, LoweredProgram, LoweredStep};

/// Everything the synthesizer and the lowering need to know about one
/// (parallelism matrix, reduction axes, synthesis hierarchy) combination.
///
/// The *synthesis space* is the set of abstract devices the hierarchy
/// enumerates: for hierarchy (d) these are the members of one reduction group
/// (the pattern is later repeated over every replica, Figure 6 of the paper);
/// for hierarchies (a)–(c) they are all physical devices.
#[derive(Debug, Clone)]
pub struct SynthesisContext {
    matrix: ParallelismMatrix,
    reduction_axes: Vec<usize>,
    hierarchy: SynthesisHierarchy,
    /// Goal groups over synthesis-space indices.
    goal_groups: Vec<Vec<usize>>,
}

impl SynthesisContext {
    /// Builds the context for a matrix, reduction axes and hierarchy kind.
    ///
    /// # Errors
    ///
    /// Returns [`SynthesisError::InvalidReductionAxes`] for bad axes and
    /// propagates placement errors.
    pub fn new(
        matrix: ParallelismMatrix,
        reduction_axes: Vec<usize>,
        kind: HierarchyKind,
    ) -> Result<Self, SynthesisError> {
        let hierarchy = SynthesisHierarchy::build(&matrix, &reduction_axes, kind)?;
        let goal_groups = match kind {
            HierarchyKind::ReductionAxes => vec![(0..hierarchy.space_size()).collect()],
            HierarchyKind::System | HierarchyKind::ColumnMajor => {
                matrix.reduction_groups(&reduction_axes)?
            }
            HierarchyKind::RowMajor => {
                // Space indices are the axis-coordinate linearization; group
                // them by their non-reduction coordinates.
                let mut groups: std::collections::BTreeMap<Vec<usize>, Vec<usize>> =
                    std::collections::BTreeMap::new();
                for idx in 0..hierarchy.space_size() {
                    let coords = axis_coords_from_linear(&matrix, idx);
                    let key: Vec<usize> = (0..matrix.num_axes())
                        .filter(|i| !reduction_axes.contains(i))
                        .map(|i| coords[i])
                        .collect();
                    groups.entry(key).or_default().push(idx);
                }
                groups.into_values().collect()
            }
        };
        Ok(SynthesisContext {
            matrix,
            reduction_axes,
            hierarchy,
            goal_groups,
        })
    }

    /// The parallelism matrix this context was built for.
    pub fn matrix(&self) -> &ParallelismMatrix {
        &self.matrix
    }

    /// The reduction axes this context was built for.
    pub fn reduction_axes(&self) -> &[usize] {
        &self.reduction_axes
    }

    /// The synthesis hierarchy in use.
    pub fn hierarchy(&self) -> &SynthesisHierarchy {
        &self.hierarchy
    }

    /// Number of abstract devices in the synthesis space.
    pub fn space_size(&self) -> usize {
        self.hierarchy.space_size()
    }

    /// The goal groups over synthesis-space indices: each abstract device must
    /// end up reduced with exactly the other members of its group.
    pub fn goal_groups(&self) -> &[Vec<usize>] {
        &self.goal_groups
    }

    /// The initial state of every abstract device: it holds only its own data
    /// (paper §3.5).
    pub fn initial_states(&self) -> Vec<State> {
        let k = self.space_size();
        (0..k).map(|i| State::initial(k, i)).collect()
    }

    /// The desired final state of every abstract device: every chunk reduced
    /// over exactly its goal group (paper §3.5).
    pub fn goal_states(&self) -> Vec<State> {
        let k = self.space_size();
        let mut goals = vec![State::empty(k); k];
        for group in &self.goal_groups {
            for &d in group {
                for r in 0..k {
                    for &other in group {
                        goals[d].set(r, other, true);
                    }
                }
            }
        }
        goals
    }

    /// Derives the synthesis-space device groups of one `slice`/`form` pair.
    ///
    /// # Errors
    ///
    /// Same as [`SynthesisHierarchy::derive_groups`].
    pub fn derive_groups(
        &self,
        slice: usize,
        form: Form,
    ) -> Result<Vec<Vec<usize>>, SynthesisError> {
        self.hierarchy.derive_groups(slice, form)
    }

    /// Maps a synthesis-space index to the physical device rank it denotes
    /// when the non-reduction axes take the coordinates given by `coset`
    /// (one coordinate per non-reduction axis, in increasing axis order).
    ///
    /// For hierarchies (a)–(c) the mapping ignores `coset` because the space
    /// already covers every physical device.
    ///
    /// # Errors
    ///
    /// Propagates placement errors for out-of-range coordinates.
    pub fn space_to_physical(
        &self,
        index: usize,
        coset: &[usize],
    ) -> Result<usize, SynthesisError> {
        match self.hierarchy.kind() {
            HierarchyKind::System | HierarchyKind::ColumnMajor => Ok(index),
            HierarchyKind::RowMajor => {
                let coords = axis_coords_from_linear(&self.matrix, index);
                Ok(self.matrix.device_for_axis_coords(&coords)?)
            }
            HierarchyKind::ReductionAxes => {
                let coords = self.reduction_space_coords(index, coset);
                Ok(self.matrix.device_for_axis_coords(&coords)?)
            }
        }
    }

    /// The list of cosets the synthesis-space pattern must be instantiated
    /// over: every combination of non-reduction axis coordinates for
    /// hierarchy (d), and the single empty coset for (a)–(c).
    pub fn cosets(&self) -> Vec<Vec<usize>> {
        if self.hierarchy.kind() != HierarchyKind::ReductionAxes {
            return vec![vec![]];
        }
        let free_axes: Vec<usize> = (0..self.matrix.num_axes())
            .filter(|i| !self.reduction_axes.contains(i))
            .collect();
        let mut cosets = vec![vec![]];
        for &axis in &free_axes {
            let size = self.matrix.axis_sizes()[axis];
            cosets = cosets
                .into_iter()
                .flat_map(|prefix| {
                    (0..size).map(move |c| {
                        let mut v = prefix.clone();
                        v.push(c);
                        v
                    })
                })
                .collect();
        }
        cosets
    }

    /// Full per-axis coordinates for a synthesis-space index of hierarchy (d)
    /// combined with a coset of non-reduction coordinates.
    fn reduction_space_coords(&self, index: usize, coset: &[usize]) -> Vec<usize> {
        let levels = self.hierarchy.levels();
        // Decompose the space index into per-level digits (level 0 most significant).
        let mut digits = vec![0usize; levels.len()];
        let mut rest = index;
        for (l, level) in levels.iter().enumerate().rev() {
            digits[l] = rest % level.factor;
            rest /= level.factor;
        }
        // Per reduction axis, per hardware level digit.
        let mut axis_level_digit =
            vec![vec![0usize; self.matrix.num_levels()]; self.matrix.num_axes()];
        for (l, level) in levels.iter().enumerate() {
            let Some(hw) = level.hw_level else { continue };
            // The collapsed digit decomposes over the collapsed axes in order.
            let mut rem = digits[l];
            for &(axis, factor) in level.axis_factors.iter().rev() {
                axis_level_digit[axis][hw] = rem % factor;
                rem /= factor;
            }
        }
        // Combine per-level digits into each reduction axis's coordinate.
        let mut coords = vec![0usize; self.matrix.num_axes()];
        for &axis in &self.reduction_axes {
            let mut a = 0usize;
            for (j, &digit) in axis_level_digit[axis].iter().enumerate() {
                a = a * self.matrix.factor(axis, j) + digit;
            }
            coords[axis] = a;
        }
        // Fill in the non-reduction coordinates from the coset.
        let mut it = coset.iter();
        for (axis, coord) in coords.iter_mut().enumerate() {
            if !self.reduction_axes.contains(&axis) {
                *coord = *it.next().expect("coset has one coordinate per free axis");
            }
        }
        coords
    }

    /// The deduplicated goal states plus, per abstract device, the index of
    /// its goal in the deduplicated list. Devices of one goal group share a
    /// goal state, so reachability pruning (Lemma B.3) only ever compares
    /// against `#goal groups` distinct matrices instead of `k`.
    pub fn distinct_goal_states(&self) -> (Vec<State>, Vec<usize>) {
        let goals = self.goal_states();
        let mut distinct: Vec<State> = Vec::new();
        let mut index = Vec::with_capacity(goals.len());
        for goal in goals {
            match distinct.iter().position(|d| *d == goal) {
                Some(i) => index.push(i),
                None => {
                    index.push(distinct.len());
                    distinct.push(goal);
                }
            }
        }
        (distinct, index)
    }

    /// Checks whether `states` equals the goal.
    pub fn is_goal(&self, states: &[State]) -> bool {
        states == self.goal_states()
    }

    /// A necessary condition for the goal to still be reachable: no device may
    /// hold a contribution from outside its goal group (Lemma B.3 of the
    /// paper). Used by the synthesizer to prune.
    pub fn respects_goal(&self, states: &[State], goals: &[State]) -> bool {
        states.iter().zip(goals).all(|(s, g)| s.le(g))
    }

    /// Re-validates a program against the collective semantics and the goal,
    /// returning the per-step states of the synthesis space (the state after
    /// step `i` is at position `i + 1`; position 0 is the initial state).
    ///
    /// # Errors
    ///
    /// Returns a [`SynthesisError`] if any instruction is invalid or the final
    /// state is not the goal.
    pub fn trace(&self, program: &Program) -> Result<Vec<Vec<State>>, SynthesisError> {
        let mut states = self.initial_states();
        let mut trace = vec![states.clone()];
        for instr in &program.instructions {
            let groups = self.derive_groups(instr.slice, instr.form)?;
            let groups: Vec<Vec<usize>> = groups.into_iter().filter(|g| g.len() >= 2).collect();
            states = apply_to_groups(instr.collective, &states, &groups)?;
            trace.push(states.clone());
        }
        if !self.is_goal(&states) {
            return Err(SynthesisError::GoalNotReached);
        }
        Ok(trace)
    }

    /// Lowers a synthesized program to physical device groups with per-group
    /// data fractions (paper §3.4: "lowers synthesized programs to the full
    /// system hierarchy").
    ///
    /// # Errors
    ///
    /// Returns a [`SynthesisError`] if the program does not validate or a
    /// mapping to physical devices fails.
    pub fn lower(&self, program: &Program) -> Result<LoweredProgram, SynthesisError> {
        let trace = self.trace(program)?;
        let cosets = self.cosets();
        let mut steps = Vec::with_capacity(program.len());
        for (step_idx, instr) in program.instructions.iter().enumerate() {
            let before = &trace[step_idx];
            steps.push(
                self.lower_step_with(instr, &cosets, &mut |idx| before[idx].data_fraction())?,
            );
        }
        Ok(LoweredProgram {
            steps,
            num_devices: self.matrix.num_devices(),
        })
    }

    /// Lowers one instruction to a [`LoweredStep`], with each group member's
    /// data fraction supplied by `data_fraction` (called with the member's
    /// synthesis-space index). This is the per-step core of
    /// [`SynthesisContext::lower`], exposed so the best-cost search can cost
    /// a single DAG edge: an edge's lowered step depends only on the
    /// instruction and the pre-state's per-device fractions, never on how the
    /// search reached that state.
    ///
    /// # Errors
    ///
    /// Same as [`SynthesisContext::lower`] for one step.
    pub fn lower_step(
        &self,
        instr: &Instruction,
        data_fraction: &mut dyn FnMut(usize) -> f64,
    ) -> Result<LoweredStep, SynthesisError> {
        self.lower_step_with(instr, &self.cosets(), data_fraction)
    }

    fn lower_step_with(
        &self,
        instr: &Instruction,
        cosets: &[Vec<usize>],
        data_fraction: &mut dyn FnMut(usize) -> f64,
    ) -> Result<LoweredStep, SynthesisError> {
        let space_groups: Vec<Vec<usize>> = self
            .derive_groups(instr.slice, instr.form)?
            .into_iter()
            .filter(|g| g.len() >= 2)
            .collect();
        let mut groups = Vec::new();
        for coset in cosets {
            for space_group in &space_groups {
                let devices: Result<Vec<usize>, SynthesisError> = space_group
                    .iter()
                    .map(|&idx| self.space_to_physical(idx, coset))
                    .collect();
                let devices = devices?;
                let input_fraction = space_group
                    .iter()
                    .map(|&idx| data_fraction(idx))
                    .fold(0.0_f64, f64::max);
                groups.push(GroupExec {
                    devices,
                    input_fraction,
                });
            }
        }
        Ok(LoweredStep {
            collective: instr.collective,
            groups,
        })
    }
}

/// Decomposes a row-major (hierarchy (c)) space index into per-axis coordinates.
fn axis_coords_from_linear(matrix: &ParallelismMatrix, index: usize) -> Vec<usize> {
    let sizes = matrix.axis_sizes();
    let mut coords = vec![0usize; sizes.len()];
    let mut rest = index;
    for i in (0..sizes.len()).rev() {
        coords[i] = rest % sizes[i];
        rest /= sizes[i];
    }
    coords
}

#[cfg(test)]
mod tests {
    use super::*;
    use p2_collectives::Collective;

    use crate::dsl::Instruction;

    fn figure2d() -> ParallelismMatrix {
        ParallelismMatrix::new(
            vec![vec![1, 1, 2, 2], vec![1, 2, 1, 2]],
            vec![1, 2, 2, 4],
            vec![4, 4],
        )
        .unwrap()
    }

    fn ctx_d() -> SynthesisContext {
        SynthesisContext::new(figure2d(), vec![1], HierarchyKind::ReductionAxes).unwrap()
    }

    #[test]
    fn space_and_goal_for_reduction_hierarchy() {
        let ctx = ctx_d();
        assert_eq!(ctx.space_size(), 4);
        assert_eq!(ctx.goal_groups(), &[vec![0, 1, 2, 3]]);
        assert_eq!(ctx.goal_states()[0], State::goal(4));
        assert_eq!(ctx.cosets().len(), 4);
    }

    #[test]
    fn space_to_physical_matches_reduction_groups() {
        // Lowering the whole synthesis space over every coset must reproduce
        // exactly the reduction groups of the matrix.
        let ctx = ctx_d();
        let groups = ctx.matrix().reduction_groups(&[1]).unwrap();
        let lowered: Vec<Vec<usize>> = ctx
            .cosets()
            .iter()
            .map(|coset| {
                (0..ctx.space_size())
                    .map(|i| ctx.space_to_physical(i, coset).unwrap())
                    .collect()
            })
            .collect();
        for g in &lowered {
            let mut sorted = g.clone();
            sorted.sort_unstable();
            assert!(
                groups.contains(&sorted),
                "lowered group {g:?} not a reduction group"
            );
        }
        assert_eq!(lowered.len(), groups.len());
    }

    #[test]
    fn single_allreduce_program_lowers_to_reduction_groups() {
        let ctx = ctx_d();
        let program = Program::new(vec![Instruction::new(
            0,
            Form::InsideGroup,
            Collective::AllReduce,
        )]);
        let lowered = ctx.lower(&program).unwrap();
        assert_eq!(lowered.steps.len(), 1);
        assert_eq!(lowered.steps[0].groups.len(), 4);
        assert!(lowered.steps[0].groups.iter().all(|g| g.devices.len() == 4));
        assert!(lowered.steps[0]
            .groups
            .iter()
            .all(|g| (g.input_fraction - 1.0).abs() < 1e-12));
    }

    #[test]
    fn reduce_scatter_then_gather_has_partial_fractions() {
        // ReduceScatter over half the hierarchy, AllReduce across, AllGather back:
        // the Figure 10ii pattern on the Figure 2d placement.
        let ctx = ctx_d();
        let program = Program::new(vec![
            Instruction::new(1, Form::InsideGroup, Collective::ReduceScatter),
            Instruction::new(1, Form::Parallel(0), Collective::AllReduce),
            Instruction::new(1, Form::InsideGroup, Collective::AllGather),
        ]);
        let lowered = ctx.lower(&program).unwrap();
        assert_eq!(lowered.steps.len(), 3);
        // After the ReduceScatter each device holds half the chunks, so the
        // middle AllReduce moves half the data.
        assert!((lowered.steps[0].groups[0].input_fraction - 1.0).abs() < 1e-12);
        assert!((lowered.steps[1].groups[0].input_fraction - 0.5).abs() < 1e-12);
        assert!((lowered.steps[2].groups[0].input_fraction - 0.5).abs() < 1e-12);
        // Every step's groups are disjoint and lie inside the reduction scope.
        for step in &lowered.steps {
            let mut seen = std::collections::HashSet::new();
            for g in &step.groups {
                for &d in &g.devices {
                    assert!(seen.insert(d), "device {d} in two groups of one step");
                    assert!(d < 16);
                }
            }
        }
    }

    #[test]
    fn invalid_program_fails_to_lower() {
        let ctx = ctx_d();
        // AllReduce twice over the same groups double-counts.
        let program = Program::new(vec![
            Instruction::new(0, Form::InsideGroup, Collective::AllReduce),
            Instruction::new(0, Form::InsideGroup, Collective::AllReduce),
        ]);
        assert!(ctx.lower(&program).is_err());
        // An incomplete program does not reach the goal.
        let partial = Program::new(vec![Instruction::new(
            1,
            Form::InsideGroup,
            Collective::Reduce,
        )]);
        assert!(ctx.lower(&partial).is_err());
    }

    #[test]
    fn row_major_context_covers_all_devices() {
        let ctx = SynthesisContext::new(figure2d(), vec![1], HierarchyKind::RowMajor).unwrap();
        assert_eq!(ctx.space_size(), 16);
        assert_eq!(ctx.goal_groups().len(), 4);
        // The physical mapping is a bijection.
        let mut seen = std::collections::HashSet::new();
        for i in 0..16 {
            assert!(seen.insert(ctx.space_to_physical(i, &[]).unwrap()));
        }
    }

    #[test]
    fn system_context_uses_identity_mapping() {
        let ctx = SynthesisContext::new(figure2d(), vec![1], HierarchyKind::System).unwrap();
        assert_eq!(ctx.space_to_physical(7, &[]).unwrap(), 7);
        assert_eq!(ctx.cosets(), vec![Vec::<usize>::new()]);
    }
}
