//! Reduction DSL, synthesis hierarchies and syntax-guided program synthesis
//! for the P² reproduction (paper §2.4, §2.5, §3.3, §3.4, §3.5).
//!
//! Given a [`p2_placement::ParallelismMatrix`] and the axes to reduce over,
//! this crate:
//!
//! 1. builds a *synthesis hierarchy* — by default hierarchy (d) of the paper,
//!    the parallelism factors of the reduction axes collapsed per hardware
//!    level (the other hierarchies (a)–(c) are available for ablations);
//! 2. enumerates reduction [`Program`]s in the `slice × form × collective`
//!    DSL, in increasing program size, pruning every instruction whose device
//!    groups violate the collective semantics of
//!    [`p2_collectives`];
//! 3. lowers each program to a [`LoweredProgram`]: explicit per-step groups of
//!    physical device ranks plus the per-device data fraction each step moves,
//!    which is what the cost model and the execution simulator consume.
//!
//! # Example
//!
//! ```
//! use p2_placement::ParallelismMatrix;
//! use p2_synthesis::{HierarchyKind, Synthesizer};
//!
//! // Figure 2d placement on the Figure 2a system, reducing along axis 1.
//! let matrix = ParallelismMatrix::new(
//!     vec![vec![1, 1, 2, 2], vec![1, 2, 1, 2]],
//!     vec![1, 2, 2, 4],
//!     vec![4, 4],
//! ).unwrap();
//! let synthesizer = Synthesizer::new(matrix, vec![1], HierarchyKind::ReductionAxes).unwrap();
//! let result = synthesizer.synthesize(5);
//! assert!(!result.programs.is_empty());
//! // Every synthesized program lowers to concrete device groups.
//! let lowered = synthesizer.lower(&result.programs[0]).unwrap();
//! assert!(!lowered.steps.is_empty());
//! ```

#![deny(missing_docs)]

mod context;
mod dsl;
mod error;
mod hierarchy;
mod lowered;
mod memo;
mod synthesizer;

pub use context::SynthesisContext;
pub use dsl::{Form, Instruction, Program};
pub use error::SynthesisError;
pub use hierarchy::{HierarchyKind, SynthLevel, SynthesisHierarchy};
pub use lowered::{baseline_allreduce, GroupExec, LoweredProgram, LoweredStep};
pub use memo::{MemoBank, MemoSlab, MEMO_UNKNOWN};
pub use synthesizer::{
    BestCostProgram, ProgramCount, ProgramSink, SinkControl, SynthesisResult, SynthesisStats,
    Synthesizer,
};
