//! Smoke test: synthesis stays fast on the paper's largest configurations.
use std::time::Instant;

use p2_placement::enumerate_matrices;
use p2_synthesis::{HierarchyKind, Synthesizer};

#[test]
fn large_single_axis_synthesis_terminates_quickly() {
    // [64] on the 4-node A100 system [4, 16]: the largest reduction scope in Table 4.
    let matrices = enumerate_matrices(&[4, 16], &[64]).unwrap();
    assert_eq!(matrices.len(), 1);
    let start = Instant::now();
    let mut total = 0usize;
    for m in matrices {
        let s = Synthesizer::new(m, vec![0], HierarchyKind::ReductionAxes).unwrap();
        let r = s.synthesize(5);
        total += r.len();
    }
    let elapsed = start.elapsed();
    println!("[64] on [4,16]: {total} programs in {elapsed:?}");
    assert!(total >= 3);
    assert!(elapsed.as_secs() < 120, "synthesis too slow: {elapsed:?}");
}

#[test]
fn three_axis_synthesis_terminates_quickly() {
    // [16 2 2] reduction on axes 0 and 2 (Table 4 row H) across all matrices.
    let matrices = enumerate_matrices(&[4, 16], &[16, 2, 2]).unwrap();
    let start = Instant::now();
    let mut total = 0usize;
    for m in matrices {
        let s = Synthesizer::new(m, vec![0, 2], HierarchyKind::ReductionAxes).unwrap();
        total += s.synthesize(5).len();
    }
    let elapsed = start.elapsed();
    println!("[16 2 2] on [4,16]: {total} programs across matrices in {elapsed:?}");
    assert!(total > 10);
    assert!(elapsed.as_secs() < 120, "synthesis too slow: {elapsed:?}");
}
