//! Expansion of collective calls into rounds of point-to-point transfers.

use p2_collectives::Collective;
use p2_cost::NcclAlgo;
use p2_synthesis::GroupExec;

/// One point-to-point transfer: `bytes` moved from device `src` to `dst`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Transfer {
    /// Sending device rank.
    pub src: usize,
    /// Receiving device rank.
    pub dst: usize,
    /// Payload size in bytes.
    pub bytes: f64,
}

/// One communication round: transfers that happen concurrently.
pub type Round = Vec<Transfer>;

/// Expands one collective over one device group into its rounds of
/// point-to-point transfers, following the structure of NCCL's ring and tree
/// algorithms.
///
/// `bytes` is the per-participant payload of the call (the full buffer for an
/// AllReduce, the per-rank block for an AllGather, …). Groups with fewer than
/// two devices produce no rounds.
pub fn collective_rounds(
    collective: Collective,
    algo: NcclAlgo,
    group: &GroupExec,
    bytes: f64,
) -> Vec<Round> {
    let n = group.devices.len();
    if n < 2 || bytes <= 0.0 {
        return Vec::new();
    }
    // NCCL builds topology-aware rings/chains/trees: ordering the group by
    // physical rank keeps locality domains contiguous, so every domain is
    // entered and left once. Rooted collectives keep the designated root
    // (the group's first device) in front.
    let ring_order = {
        let mut o = group.devices.clone();
        o.sort_unstable();
        o
    };
    let rooted = {
        let mut o = group.devices.clone();
        if o.len() > 1 {
            o[1..].sort_unstable();
        }
        o
    };
    match (collective, algo) {
        (Collective::AllReduce, NcclAlgo::Ring) => {
            // Reduce-scatter phase then all-gather phase: 2(n-1) rounds of S/n.
            ring_rounds(&ring_order, 2 * (n - 1), bytes / n as f64)
        }
        (Collective::ReduceScatter, _) => ring_rounds(&ring_order, n - 1, bytes / n as f64),
        (Collective::AllGather, _) => ring_rounds(&ring_order, n - 1, bytes),
        (Collective::AllReduce, NcclAlgo::Tree) => {
            let mut rounds = reduce_tree_rounds(&ring_order, bytes);
            rounds.extend(broadcast_tree_rounds(&ring_order, bytes));
            rounds
        }
        (Collective::Reduce, NcclAlgo::Tree) => reduce_tree_rounds(&rooted, bytes),
        (Collective::Broadcast, NcclAlgo::Tree) => broadcast_tree_rounds(&rooted, bytes),
        (Collective::Reduce, NcclAlgo::Ring) => chain_rounds(&rooted, bytes, true),
        (Collective::Broadcast, NcclAlgo::Ring) => chain_rounds(&rooted, bytes, false),
    }
}

/// `rounds` rounds in which every device sends `bytes_per_round` to its ring
/// successor.
fn ring_rounds(devices: &[usize], rounds: usize, bytes_per_round: f64) -> Vec<Round> {
    let n = devices.len();
    (0..rounds)
        .map(|_| {
            (0..n)
                .map(|i| Transfer {
                    src: devices[i],
                    dst: devices[(i + 1) % n],
                    bytes: bytes_per_round,
                })
                .collect()
        })
        .collect()
}

/// A pipelined chain toward (`toward_root = true`) or away from the root:
/// `n - 1` rounds in which every chain link carries an equal share of the
/// payload, so each link moves `bytes` in total.
fn chain_rounds(devices: &[usize], bytes: f64, toward_root: bool) -> Vec<Round> {
    let n = devices.len();
    let per_round = bytes / (n - 1) as f64;
    (0..n - 1)
        .map(|_| {
            (1..n)
                .map(|i| {
                    if toward_root {
                        Transfer {
                            src: devices[i],
                            dst: devices[i - 1],
                            bytes: per_round,
                        }
                    } else {
                        Transfer {
                            src: devices[i - 1],
                            dst: devices[i],
                            bytes: per_round,
                        }
                    }
                })
                .collect()
        })
        .collect()
}

/// Binomial-tree reduction toward `devices[0]`: `ceil(log2 n)` rounds of
/// full-payload transfers.
fn reduce_tree_rounds(devices: &[usize], bytes: f64) -> Vec<Round> {
    let n = devices.len();
    let mut rounds = Vec::new();
    let mut step = 1usize;
    while step < n {
        let mut round = Vec::new();
        let mut i = 0usize;
        while i + step < n {
            round.push(Transfer {
                src: devices[i + step],
                dst: devices[i],
                bytes,
            });
            i += 2 * step;
        }
        rounds.push(round);
        step *= 2;
    }
    rounds
}

/// Binomial-tree broadcast from `devices[0]`: the reverse of
/// [`reduce_tree_rounds`].
fn broadcast_tree_rounds(devices: &[usize], bytes: f64) -> Vec<Round> {
    let mut rounds = reduce_tree_rounds(devices, bytes);
    rounds.reverse();
    for round in &mut rounds {
        for t in round.iter_mut() {
            std::mem::swap(&mut t.src, &mut t.dst);
        }
    }
    rounds
}

#[cfg(test)]
mod tests {
    use super::*;

    fn group(devices: Vec<usize>) -> GroupExec {
        GroupExec {
            devices,
            input_fraction: 1.0,
        }
    }

    #[test]
    fn ring_allreduce_round_structure() {
        let g = group(vec![0, 1, 2, 3]);
        let rounds = collective_rounds(Collective::AllReduce, NcclAlgo::Ring, &g, 4.0);
        assert_eq!(rounds.len(), 6); // 2 * (4 - 1)
        for round in &rounds {
            assert_eq!(round.len(), 4);
            assert!(round.iter().all(|t| (t.bytes - 1.0).abs() < 1e-12));
        }
        // Total bytes leaving device 0: 6 rounds * 1 byte = 2 * (n-1)/n * total.
        let sent: f64 = rounds
            .iter()
            .flatten()
            .filter(|t| t.src == 0)
            .map(|t| t.bytes)
            .sum();
        assert!((sent - 6.0).abs() < 1e-12);
    }

    #[test]
    fn tree_allreduce_is_reduce_then_broadcast() {
        let g = group(vec![0, 1, 2, 3, 4]);
        let rounds = collective_rounds(Collective::AllReduce, NcclAlgo::Tree, &g, 8.0);
        assert_eq!(rounds.len(), 6); // ceil(log2 5) = 3 up + 3 down
                                     // The first reduce round pairs neighbours; the final broadcast round mirrors it.
        assert!(rounds[0].iter().all(|t| t.dst < t.src || t.bytes == 8.0));
        let total_up: f64 = rounds[..3].iter().flatten().map(|t| t.bytes).sum();
        let total_down: f64 = rounds[3..].iter().flatten().map(|t| t.bytes).sum();
        assert!((total_up - total_down).abs() < 1e-12);
    }

    #[test]
    fn reduce_tree_converges_on_root() {
        let g = group(vec![10, 11, 12, 13]);
        let rounds = collective_rounds(Collective::Reduce, NcclAlgo::Tree, &g, 1.0);
        assert_eq!(rounds.len(), 2);
        // Last round must deliver into the root (device 10).
        assert!(rounds.last().unwrap().iter().any(|t| t.dst == 10));
        // No transfer ever sends *from* the root in a reduce.
        assert!(rounds.iter().flatten().all(|t| t.src != 10));
    }

    #[test]
    fn broadcast_chain_moves_full_payload_over_each_link() {
        let g = group(vec![0, 1, 2]);
        let rounds = collective_rounds(Collective::Broadcast, NcclAlgo::Ring, &g, 6.0);
        assert_eq!(rounds.len(), 2);
        let over_first_link: f64 = rounds
            .iter()
            .flatten()
            .filter(|t| t.src == 0 && t.dst == 1)
            .map(|t| t.bytes)
            .sum();
        assert!((over_first_link - 6.0).abs() < 1e-12);
    }

    #[test]
    fn allgather_rounds_carry_per_rank_blocks() {
        let g = group(vec![0, 1, 2, 3]);
        let rounds = collective_rounds(Collective::AllGather, NcclAlgo::Ring, &g, 2.0);
        assert_eq!(rounds.len(), 3);
        assert!(rounds
            .iter()
            .flatten()
            .all(|t| (t.bytes - 2.0).abs() < 1e-12));
    }

    #[test]
    fn trivial_groups_produce_no_rounds() {
        let g = group(vec![5]);
        assert!(collective_rounds(Collective::AllReduce, NcclAlgo::Ring, &g, 1.0).is_empty());
        let g2 = group(vec![0, 1]);
        assert!(collective_rounds(Collective::AllReduce, NcclAlgo::Ring, &g2, 0.0).is_empty());
    }
}
