use p2_cost::NcclAlgo;

use crate::error::ExecError;

/// Configuration of the execution simulator.
///
/// The defaults model a well-behaved cluster: 3 % measurement noise, a 50 µs
/// launch overhead per collective step, and 5 repetitions per measurement
/// (the paper runs every program 10 times; 5 keeps the full sweeps fast while
/// still averaging the noise down).
#[derive(Debug, Clone, PartialEq)]
pub struct ExecConfig {
    /// The NCCL algorithm every collective call is executed with.
    pub algo: NcclAlgo,
    /// Per-device buffer size in bytes.
    pub bytes_per_device: f64,
    /// Relative standard deviation of the per-step multiplicative noise.
    pub noise_fraction: f64,
    /// Fixed overhead added to every collective step (kernel launches, NCCL
    /// setup), in seconds.
    pub launch_overhead: f64,
    /// Seed of the deterministic noise generator.
    pub seed: u64,
    /// Number of simulated runs averaged per measurement.
    pub repeats: usize,
}

impl ExecConfig {
    /// Creates a configuration with the default noise, overhead and repeat
    /// settings.
    pub fn new(algo: NcclAlgo, bytes_per_device: f64) -> Self {
        ExecConfig {
            algo,
            bytes_per_device,
            noise_fraction: 0.03,
            launch_overhead: 50.0e-6,
            seed: 0x9e37_79b9,
            repeats: 5,
        }
    }

    /// Sets the noise fraction.
    pub fn with_noise(mut self, noise_fraction: f64) -> Self {
        self.noise_fraction = noise_fraction;
        self
    }

    /// Sets the noise seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the number of repetitions per measurement.
    pub fn with_repeats(mut self, repeats: usize) -> Self {
        self.repeats = repeats;
        self
    }

    /// Sets the per-step launch overhead in seconds.
    pub fn with_launch_overhead(mut self, seconds: f64) -> Self {
        self.launch_overhead = seconds;
        self
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns an [`ExecError`] describing the first invalid field.
    pub fn validate(&self) -> Result<(), ExecError> {
        if !(self.bytes_per_device.is_finite() && self.bytes_per_device > 0.0) {
            return Err(ExecError::InvalidBytes {
                bytes: self.bytes_per_device,
            });
        }
        if !(self.noise_fraction.is_finite() && (0.0..1.0).contains(&self.noise_fraction)) {
            return Err(ExecError::InvalidNoise {
                noise: self.noise_fraction,
            });
        }
        if self.repeats == 0 {
            return Err(ExecError::ZeroRepeats);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_valid() {
        assert!(ExecConfig::new(NcclAlgo::Ring, 1.0e9).validate().is_ok());
    }

    #[test]
    fn builders_set_fields() {
        let c = ExecConfig::new(NcclAlgo::Tree, 1.0)
            .with_noise(0.1)
            .with_seed(7)
            .with_repeats(3)
            .with_launch_overhead(1e-3);
        assert_eq!(c.noise_fraction, 0.1);
        assert_eq!(c.seed, 7);
        assert_eq!(c.repeats, 3);
        assert_eq!(c.launch_overhead, 1e-3);
    }

    #[test]
    fn invalid_configs_rejected() {
        assert!(ExecConfig::new(NcclAlgo::Ring, 0.0).validate().is_err());
        assert!(ExecConfig::new(NcclAlgo::Ring, 1.0)
            .with_noise(1.5)
            .validate()
            .is_err());
        assert!(ExecConfig::new(NcclAlgo::Ring, 1.0)
            .with_repeats(0)
            .validate()
            .is_err());
    }
}
