//! The round-based execution engine.

use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};

use p2_synthesis::{LoweredProgram, LoweredStep};
use p2_topology::{SystemTopology, Uplink};

use crate::config::ExecConfig;
use crate::error::ExecError;
use crate::rng::NoiseRng;
use crate::schedule::collective_rounds;

/// The execution simulator: "runs" lowered reduction programs on a modelled
/// system and reports wall-clock seconds, playing the role of the paper's GCP
/// measurements.
#[derive(Debug, Clone)]
pub struct Executor<'a> {
    system: &'a SystemTopology,
    config: ExecConfig,
}

impl<'a> Executor<'a> {
    /// Creates an executor for a system and a configuration.
    ///
    /// # Errors
    ///
    /// Returns an [`ExecError`] if the configuration is invalid.
    pub fn new(system: &'a SystemTopology, config: ExecConfig) -> Result<Self, ExecError> {
        config.validate()?;
        Ok(Executor { system, config })
    }

    /// The configuration in use.
    pub fn config(&self) -> &ExecConfig {
        &self.config
    }

    /// The system programs are executed on.
    pub fn system(&self) -> &SystemTopology {
        self.system
    }

    /// Measures a program: simulates `repeats` runs and returns their mean, in
    /// seconds (the paper averages 10 real runs per program).
    pub fn measure(&self, program: &LoweredProgram) -> f64 {
        let runs = self.measure_runs(program);
        runs.iter().sum::<f64>() / runs.len() as f64
    }

    /// Measures a program and returns every simulated run.
    pub fn measure_runs(&self, program: &LoweredProgram) -> Vec<f64> {
        (0..self.config.repeats)
            .map(|run| self.measure_once(program, run as u64))
            .collect()
    }

    /// Simulates a single run of a program.
    pub fn measure_once(&self, program: &LoweredProgram, run: u64) -> f64 {
        let mut rng = self.rng_for(program, run);
        program
            .steps
            .iter()
            .map(|step| self.step_time(step, &mut rng))
            .sum()
    }

    /// Checks that a program only references devices of this system.
    ///
    /// # Errors
    ///
    /// Returns [`ExecError::DeviceOutOfRange`] for the first offending rank.
    pub fn validate_program(&self, program: &LoweredProgram) -> Result<(), ExecError> {
        let num_devices = self.system.num_devices();
        for step in &program.steps {
            for group in &step.groups {
                for &d in &group.devices {
                    if d >= num_devices {
                        return Err(ExecError::DeviceOutOfRange {
                            rank: d,
                            num_devices,
                        });
                    }
                }
            }
        }
        Ok(())
    }

    fn rng_for(&self, program: &LoweredProgram, run: u64) -> NoiseRng {
        let mut hasher = DefaultHasher::new();
        self.config.seed.hash(&mut hasher);
        run.hash(&mut hasher);
        for step in &program.steps {
            step.collective.hash(&mut hasher);
            for group in &step.groups {
                group.devices.hash(&mut hasher);
            }
        }
        NoiseRng::seed_from_u64(hasher.finish())
    }

    /// Simulated time of one step: the groups' round schedules are advanced in
    /// lockstep, and within each global round every uplink's bandwidth is
    /// shared by the bytes crossing it.
    fn step_time(&self, step: &LoweredStep, rng: &mut NoiseRng) -> f64 {
        // Expand every group into its rounds.
        let group_rounds: Vec<Vec<crate::schedule::Round>> = step
            .groups
            .iter()
            .map(|g| {
                let bytes = self.config.bytes_per_device * g.input_fraction;
                collective_rounds(step.collective, self.config.algo, g, bytes)
            })
            .collect();
        let max_rounds = group_rounds.iter().map(Vec::len).max().unwrap_or(0);
        let mut total = 0.0;
        for round_idx in 0..max_rounds {
            // Aggregate the directional load on every uplink across all groups
            // (uplinks are full-duplex: inbound and outbound bytes do not
            // compete with each other).
            let mut load: HashMap<(Uplink, bool), f64> = HashMap::new();
            let mut latency = 0.0_f64;
            for rounds in &group_rounds {
                let Some(round) = rounds.get(round_idx) else {
                    continue;
                };
                for transfer in round {
                    if transfer.src == transfer.dst {
                        continue;
                    }
                    for uplink in self.system.used_uplinks(&[transfer.src, transfer.dst]) {
                        let outbound = self
                            .system
                            .ancestor_instance(transfer.src, uplink.level)
                            .map(|inst| inst == uplink.instance)
                            .unwrap_or(false);
                        *load.entry((uplink, outbound)).or_insert(0.0) += transfer.bytes;
                        latency = latency.max(self.system.link(uplink.level).latency());
                    }
                }
            }
            let round_time = load
                .iter()
                .map(|((uplink, _), bytes)| bytes / self.system.link(uplink.level).bandwidth())
                .fold(0.0, f64::max);
            total += round_time + latency;
        }
        if max_rounds == 0 {
            return 0.0;
        }
        // Launch overhead plus multiplicative measurement noise.
        let noise: f64 = if self.config.noise_fraction > 0.0 {
            // `next_f64` yields a uniform in [0, 1); centre it and scale.
            let z = rng.next_f64();
            1.0 + self.config.noise_fraction * (2.0 * z - 1.0)
        } else {
            1.0
        };
        (total + self.config.launch_overhead) * noise.max(0.5)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use p2_cost::{AlphaBetaModel, CostModel, NcclAlgo};
    use p2_placement::ParallelismMatrix;
    use p2_synthesis::{baseline_allreduce, GroupExec, HierarchyKind, Synthesizer};
    use p2_topology::presets;

    const GB: f64 = 1.0e9;

    #[test]
    fn measurement_is_deterministic_for_a_seed() {
        let sys = presets::a100_system(2);
        let matrix = ParallelismMatrix::new(vec![vec![2, 16]], vec![2, 16], vec![32]).unwrap();
        let program = baseline_allreduce(&matrix, &[0]).unwrap();
        let exec = Executor::new(&sys, ExecConfig::new(NcclAlgo::Ring, GB).with_seed(42)).unwrap();
        assert_eq!(exec.measure(&program), exec.measure(&program));
        let other = Executor::new(&sys, ExecConfig::new(NcclAlgo::Ring, GB).with_seed(43)).unwrap();
        assert_ne!(exec.measure(&program), other.measure(&program));
    }

    #[test]
    fn measured_times_correlate_with_the_cost_model() {
        // The execution substrate and the analytic model must agree on the
        // broad ordering (that is what gives Table 5 its high top-10 accuracy).
        let sys = presets::a100_system(2);
        let bytes = 4.0 * GB;
        let matrix =
            ParallelismMatrix::new(vec![vec![2, 4], vec![1, 4]], vec![2, 16], vec![8, 4]).unwrap();
        let synth = Synthesizer::new(matrix, vec![0], HierarchyKind::ReductionAxes).unwrap();
        let programs = synth.synthesize(4).programs;
        let model = AlphaBetaModel::new(sys.clone(), NcclAlgo::Ring, bytes).unwrap();
        let exec = Executor::new(&sys, ExecConfig::new(NcclAlgo::Ring, bytes)).unwrap();
        let mut pairs: Vec<(f64, f64)> = programs
            .iter()
            .map(|p| {
                let lowered = synth.lower(p).unwrap();
                (model.program_time(&lowered), exec.measure(&lowered))
            })
            .collect();
        assert!(pairs.len() >= 5);
        // Spearman-style check: sort by prediction, require measured values to
        // be broadly increasing (average of the second half larger than the
        // first half).
        pairs.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
        let half = pairs.len() / 2;
        let first: f64 = pairs[..half].iter().map(|p| p.1).sum::<f64>() / half as f64;
        let second: f64 =
            pairs[half..].iter().map(|p| p.1).sum::<f64>() / (pairs.len() - half) as f64;
        assert!(
            second > first,
            "measured times do not follow predicted ordering"
        );
    }

    #[test]
    fn cross_node_contention_shows_up_in_measurements() {
        let sys = presets::a100_system(4);
        let bytes = 4.0 * GB;
        let exec = Executor::new(&sys, ExecConfig::new(NcclAlgo::Ring, bytes)).unwrap();
        let local =
            ParallelismMatrix::new(vec![vec![1, 4], vec![4, 4]], vec![4, 16], vec![4, 16]).unwrap();
        let spread =
            ParallelismMatrix::new(vec![vec![4, 1], vec![1, 16]], vec![4, 16], vec![4, 16])
                .unwrap();
        let t_local = exec.measure(&baseline_allreduce(&local, &[0]).unwrap());
        let t_spread = exec.measure(&baseline_allreduce(&spread, &[0]).unwrap());
        assert!(
            t_spread / t_local > 50.0,
            "placement impact should be large: {t_local} vs {t_spread}"
        );
    }

    #[test]
    fn empty_programs_take_no_time() {
        let sys = presets::v100_system(2);
        let exec = Executor::new(&sys, ExecConfig::new(NcclAlgo::Tree, GB)).unwrap();
        let empty = LoweredProgram {
            steps: vec![],
            num_devices: 16,
        };
        assert_eq!(exec.measure(&empty), 0.0);
    }

    #[test]
    fn validate_program_catches_bad_ranks() {
        let sys = presets::v100_system(2);
        let exec = Executor::new(&sys, ExecConfig::new(NcclAlgo::Ring, GB)).unwrap();
        let bad = LoweredProgram {
            steps: vec![LoweredStep {
                collective: p2_collectives::Collective::AllReduce,
                groups: vec![GroupExec {
                    devices: vec![0, 31],
                    input_fraction: 1.0,
                }],
            }],
            num_devices: 16,
        };
        assert!(matches!(
            exec.validate_program(&bad),
            Err(ExecError::DeviceOutOfRange { rank: 31, .. })
        ));
    }

    #[test]
    fn noise_free_measurements_have_zero_variance() {
        let sys = presets::v100_system(2);
        let matrix = ParallelismMatrix::new(vec![vec![2, 8]], vec![2, 8], vec![16]).unwrap();
        let program = baseline_allreduce(&matrix, &[0]).unwrap();
        let exec = Executor::new(
            &sys,
            ExecConfig::new(NcclAlgo::Ring, GB)
                .with_noise(0.0)
                .with_repeats(3),
        )
        .unwrap();
        let runs = exec.measure_runs(&program);
        assert!(runs.windows(2).all(|w| (w[0] - w[1]).abs() < 1e-15));
    }

    #[test]
    fn tree_and_ring_differ() {
        let sys = presets::a100_system(4);
        let matrix = ParallelismMatrix::new(vec![vec![4, 16]], vec![4, 16], vec![64]).unwrap();
        let program = baseline_allreduce(&matrix, &[0]).unwrap();
        let ring = Executor::new(&sys, ExecConfig::new(NcclAlgo::Ring, GB)).unwrap();
        let tree = Executor::new(&sys, ExecConfig::new(NcclAlgo::Tree, GB)).unwrap();
        let (t_ring, t_tree) = (ring.measure(&program), tree.measure(&program));
        assert!(t_ring > 0.0 && t_tree > 0.0);
        assert!(
            (t_ring - t_tree).abs() / t_ring > 0.01,
            "algorithms should not be identical"
        );
    }
}
