//! Deterministic noise generator for the execution simulator.
//!
//! A tiny SplitMix64 generator stands in for `rand::rngs::StdRng` (the
//! workspace builds offline, without crates.io dependencies). Determinism for
//! a given seed is the only property the simulator needs: the noise stream is
//! derived purely from the seed, so measurements are reproducible regardless
//! of thread count or evaluation order.

/// Seeded pseudo-random generator producing uniform `f64` noise samples.
#[derive(Debug, Clone)]
pub(crate) struct NoiseRng(u64);

impl NoiseRng {
    /// Creates a generator from a 64-bit seed.
    pub(crate) fn seed_from_u64(seed: u64) -> Self {
        NoiseRng(seed)
    }

    /// Next raw 64-bit value (SplitMix64).
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform sample in `[0, 1)` with 53 bits of precision.
    pub(crate) fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = NoiseRng::seed_from_u64(42);
        let mut b = NoiseRng::seed_from_u64(42);
        for _ in 0..1000 {
            assert_eq!(a.next_f64(), b.next_f64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = NoiseRng::seed_from_u64(1);
        let mut b = NoiseRng::seed_from_u64(2);
        assert!((0..10).any(|_| a.next_f64() != b.next_f64()));
    }

    #[test]
    fn samples_are_uniform_in_unit_interval() {
        let mut rng = NoiseRng::seed_from_u64(7);
        let n = 10_000;
        let mean = (0..n).map(|_| rng.next_f64()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} far from 0.5");
        let mut rng = NoiseRng::seed_from_u64(7);
        assert!((0..n).all(|_| {
            let x = rng.next_f64();
            (0.0..1.0).contains(&x)
        }));
    }
}
