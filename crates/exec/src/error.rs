use std::fmt;

/// Errors produced when configuring or running the execution simulator.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ExecError {
    /// The per-device buffer size must be positive and finite.
    InvalidBytes {
        /// The offending value.
        bytes: f64,
    },
    /// The noise fraction must be a finite value in `[0, 1)`.
    InvalidNoise {
        /// The offending value.
        noise: f64,
    },
    /// The number of measurement repetitions must be at least one.
    ZeroRepeats,
    /// A lowered program referenced a device rank outside the system.
    DeviceOutOfRange {
        /// The offending rank.
        rank: usize,
        /// Devices in the system.
        num_devices: usize,
    },
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::InvalidBytes { bytes } => {
                write!(
                    f,
                    "per-device byte count {bytes} is not a positive finite number"
                )
            }
            ExecError::InvalidNoise { noise } => {
                write!(f, "noise fraction {noise} is not a finite value in [0, 1)")
            }
            ExecError::ZeroRepeats => write!(f, "at least one measurement repetition is required"),
            ExecError::DeviceOutOfRange { rank, num_devices } => {
                write!(
                    f,
                    "device rank {rank} out of range for {num_devices} devices"
                )
            }
        }
    }
}

impl std::error::Error for ExecError {}
