//! Discrete-event execution simulator — the measurement substrate of this
//! reproduction.
//!
//! The paper evaluates synthesized reduction programs by compiling them to
//! NCCL calls and running them on GCP A100/V100 clusters. This crate replaces
//! that testbed with a chunk-level network simulator: every collective call is
//! expanded into the rounds of point-to-point transfers its NCCL algorithm
//! (ring or tree) would perform, rounds of concurrently-communicating groups
//! share uplink bandwidth fairly, and a small seeded noise plus per-step launch
//! overhead model the measurement variation of a real cluster. Because the
//! mechanism that drives the paper's results — which interconnects a device
//! group spans and how many groups contend for the same NIC — is modelled
//! explicitly, the *relative* behaviour of placements and programs matches the
//! paper even though absolute seconds differ (see DESIGN.md, substitution
//! table).
//!
//! The analytic model in [`p2_cost`] plays the role of the paper's simulator;
//! this crate plays the role of the paper's measurements.
//!
//! # Example
//!
//! ```
//! use p2_exec::{ExecConfig, Executor};
//! use p2_cost::NcclAlgo;
//! use p2_placement::ParallelismMatrix;
//! use p2_synthesis::baseline_allreduce;
//! use p2_topology::presets;
//!
//! let system = presets::a100_system(2);
//! let matrix = ParallelismMatrix::new(vec![vec![2, 16]], vec![2, 16], vec![32]).unwrap();
//! let program = baseline_allreduce(&matrix, &[0]).unwrap();
//! let exec = Executor::new(&system, ExecConfig::new(NcclAlgo::Ring, 1.0e9)).unwrap();
//! let seconds = exec.measure(&program);
//! assert!(seconds > 0.0);
//! ```

#![deny(missing_docs)]

mod config;
mod error;
mod executor;
mod rng;
mod schedule;

pub use config::ExecConfig;
pub use error::ExecError;
pub use executor::Executor;
pub use schedule::{Round, Transfer};
