//! Collective-operation state matrices and Hoare-triple semantics
//! (paper §2.3 and §3.2, Figure 8).
//!
//! Each device's state is a `k × k` boolean [`State`] matrix, `k` being the
//! number of devices in the reduction scope. Data is treated as `k` chunks:
//! row `r` of the matrix describes chunk `r`, and bit `s[r][j] = 1` means
//! device `j` has contributed its original chunk `r` to the data this device
//! currently holds. The five common collectives — [`Collective::AllReduce`],
//! [`Collective::ReduceScatter`], [`Collective::AllGather`],
//! [`Collective::Reduce`] and [`Collective::Broadcast`] — are given a checked
//! small-step semantics: applying one to a group of device states either
//! yields the post-condition states or a [`SemanticsError`] explaining which
//! pre-condition failed. Sequences of operationally valid collectives that can
//! never reach the requested reduction result (Figure 4 of the paper) are
//! rejected by exactly these checks.
//!
//! # Example
//!
//! ```
//! use p2_collectives::{Collective, State, apply_collective};
//!
//! // Two devices, each holding its own data.
//! let states = vec![State::initial(2, 0), State::initial(2, 1)];
//! let after = apply_collective(Collective::AllReduce, &states).unwrap();
//! assert!(after.iter().all(|s| *s == State::goal(2)));
//! // Reducing again would double-count: the semantics rejects it.
//! assert!(apply_collective(Collective::AllReduce, &after).is_err());
//! ```

#![deny(missing_docs)]

mod bitset;
mod collective;
mod intern;
mod semantics;
mod state;

pub use bitset::Bitset;
pub use collective::Collective;
pub use intern::{ApplyCache, FxHashMap, FxHasher, SharedTables, StateInterner};
pub use semantics::{apply_collective, apply_collective_refs, apply_to_groups, SemanticsError};
pub use state::{Row, State};
