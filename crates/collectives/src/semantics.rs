//! The Hoare-triple semantics of the five collectives (paper Figure 8).

use std::fmt;

use crate::collective::Collective;
use crate::state::State;

/// Why a collective cannot be applied to a group of device states — i.e.
/// which pre-condition of Figure 8 failed.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SemanticsError {
    /// A group must contain at least two devices for a collective to do work.
    TrivialGroup,
    /// The device states in the group do not all have the same dimension.
    DimensionMismatch,
    /// Reduction-style collectives require every participant to hold data for
    /// exactly the same set of chunks.
    RowsMismatch,
    /// Two participants hold overlapping contributions for the same chunk, so
    /// reducing them would count some data twice (Figure 4b).
    OverlappingContributions,
    /// `AllGather` requires the participants' chunk sets to be disjoint.
    RowsNotDisjoint,
    /// `AllGather` requires every participant to hold the same number of chunks.
    RowCountMismatch,
    /// `ReduceScatter` requires the number of chunks to be divisible by the
    /// group size.
    ScatterIndivisible,
    /// `Broadcast` requires the root to be at least as informed as everyone
    /// else and strictly more informed than someone (information increase).
    NotInformative,
    /// The operation would be a no-op because no participant holds any data.
    EmptyStates,
}

impl SemanticsError {
    /// A short stable token naming the variant, part of the table-store
    /// snapshot format: memoized semantic errors persist as these strings,
    /// so the spelling must never change for an existing variant.
    pub fn stable_token(&self) -> &'static str {
        match self {
            SemanticsError::TrivialGroup => "trivial-group",
            SemanticsError::DimensionMismatch => "dimension-mismatch",
            SemanticsError::RowsMismatch => "rows-mismatch",
            SemanticsError::OverlappingContributions => "overlapping-contributions",
            SemanticsError::RowsNotDisjoint => "rows-not-disjoint",
            SemanticsError::RowCountMismatch => "row-count-mismatch",
            SemanticsError::ScatterIndivisible => "scatter-indivisible",
            SemanticsError::NotInformative => "not-informative",
            SemanticsError::EmptyStates => "empty-states",
        }
    }

    /// The inverse of [`stable_token`](SemanticsError::stable_token):
    /// `None` for unknown tokens (e.g. a snapshot written by a newer build).
    pub fn from_stable_token(token: &str) -> Option<SemanticsError> {
        Some(match token {
            "trivial-group" => SemanticsError::TrivialGroup,
            "dimension-mismatch" => SemanticsError::DimensionMismatch,
            "rows-mismatch" => SemanticsError::RowsMismatch,
            "overlapping-contributions" => SemanticsError::OverlappingContributions,
            "rows-not-disjoint" => SemanticsError::RowsNotDisjoint,
            "row-count-mismatch" => SemanticsError::RowCountMismatch,
            "scatter-indivisible" => SemanticsError::ScatterIndivisible,
            "not-informative" => SemanticsError::NotInformative,
            "empty-states" => SemanticsError::EmptyStates,
            _ => return None,
        })
    }
}

impl fmt::Display for SemanticsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let msg = match self {
            SemanticsError::TrivialGroup => "group has fewer than two devices",
            SemanticsError::DimensionMismatch => "device states have different dimensions",
            SemanticsError::RowsMismatch => "participants hold different chunk sets",
            SemanticsError::OverlappingContributions => {
                "participants hold overlapping contributions for the same chunk"
            }
            SemanticsError::RowsNotDisjoint => "participants' chunk sets overlap",
            SemanticsError::RowCountMismatch => "participants hold different numbers of chunks",
            SemanticsError::ScatterIndivisible => {
                "number of chunks is not divisible by the group size"
            }
            SemanticsError::NotInformative => "broadcast root is not strictly more informed",
            SemanticsError::EmptyStates => "no participant holds any data",
        };
        write!(f, "{msg}")
    }
}

impl std::error::Error for SemanticsError {}

fn check_common(states: &[&State]) -> Result<usize, SemanticsError> {
    if states.len() < 2 {
        return Err(SemanticsError::TrivialGroup);
    }
    let k = states[0].dim();
    if states.iter().any(|s| s.dim() != k) {
        return Err(SemanticsError::DimensionMismatch);
    }
    Ok(k)
}

/// Pre-conditions shared by `AllReduce`, `ReduceScatter` and `Reduce`:
/// identical chunk sets and pairwise-disjoint contributions per chunk.
///
/// A single pass per row replaces the former O(n²) pairwise disjointness
/// test: n sets of one row are pairwise disjoint exactly when the popcount of
/// their union equals the sum of their popcounts, and the union is the
/// reduction result we have to build anyway.
fn check_reduction_preconditions(states: &[&State]) -> Result<State, SemanticsError> {
    check_common(states)?;
    let first = states[0];
    if states[1..]
        .iter()
        .any(|s| s.mask_words() != first.mask_words())
    {
        return Err(SemanticsError::RowsMismatch);
    }
    if first.is_empty() {
        return Err(SemanticsError::EmptyStates);
    }
    let mut sum = first.clone();
    for r in crate::bitset::iter_word_ones(first.mask_words()) {
        let mut ones: usize = first.row(r).count_ones();
        for s in &states[1..] {
            for (acc, &w) in sum.row_words_mut(r).iter_mut().zip(s.row_words(r)) {
                ones += w.count_ones() as usize;
                *acc |= w;
            }
        }
        if sum.row(r).count_ones() != ones {
            return Err(SemanticsError::OverlappingContributions);
        }
    }
    Ok(sum)
}

/// Applies one collective to the states of a device group, returning the
/// post-condition states in the same order.
///
/// The group's first element is the root for [`Collective::Reduce`] and
/// [`Collective::Broadcast`], as in the paper.
///
/// # Errors
///
/// Returns a [`SemanticsError`] describing the violated pre-condition of
/// Figure 8; in that case the input states are unchanged and the instruction
/// is semantically invalid for this group.
///
/// # Examples
///
/// ```
/// use p2_collectives::{apply_collective, Collective, State};
/// let states = vec![State::initial(4, 0), State::initial(4, 1)];
/// let after = apply_collective(Collective::ReduceScatter, &states).unwrap();
/// // Each device now owns half of the partially-reduced chunks.
/// assert_eq!(after[0].nonempty_rows(), vec![0, 1]);
/// assert_eq!(after[1].nonempty_rows(), vec![2, 3]);
/// ```
pub fn apply_collective(
    collective: Collective,
    states: &[State],
) -> Result<Vec<State>, SemanticsError> {
    let refs: Vec<&State> = states.iter().collect();
    apply_collective_refs(collective, &refs)
}

/// [`apply_collective`] over borrowed device states, so callers assembling a
/// group from a larger context (or from a [`crate::StateInterner`]) never
/// clone the inputs.
///
/// # Errors
///
/// Same as [`apply_collective`].
pub fn apply_collective_refs(
    collective: Collective,
    states: &[&State],
) -> Result<Vec<State>, SemanticsError> {
    match collective {
        Collective::AllReduce => {
            let sum = check_reduction_preconditions(states)?;
            Ok(vec![sum; states.len()])
        }
        Collective::Reduce => {
            let sum = check_reduction_preconditions(states)?;
            let k = sum.dim();
            let mut out = vec![State::empty(k); states.len()];
            out[0] = sum;
            Ok(out)
        }
        Collective::ReduceScatter => {
            let sum = check_reduction_preconditions(states)?;
            let rows = sum.nonempty_rows();
            let n = states.len();
            if rows.len() % n != 0 {
                return Err(SemanticsError::ScatterIndivisible);
            }
            let per = rows.len() / n;
            let out = (0..n)
                .map(|i| sum.retain_rows(&rows[i * per..(i + 1) * per]))
                .collect();
            Ok(out)
        }
        Collective::AllGather => {
            check_common(states)?;
            let first = states[0];
            let count = first.num_nonempty_rows();
            if states.iter().any(|s| s.num_nonempty_rows() != count) {
                return Err(SemanticsError::RowCountMismatch);
            }
            if count == 0 {
                return Err(SemanticsError::EmptyStates);
            }
            // Single pass over the cached masks: the chunk sets are pairwise
            // disjoint exactly when their union has `n * count` rows.
            let mut sum = first.clone();
            for s in &states[1..] {
                sum.union_with(s);
            }
            if sum.num_nonempty_rows() != count * states.len() {
                return Err(SemanticsError::RowsNotDisjoint);
            }
            Ok(vec![sum; states.len()])
        }
        Collective::Broadcast => {
            check_common(states)?;
            let root = states[0];
            if !states.iter().all(|s| s.le(root)) {
                return Err(SemanticsError::NotInformative);
            }
            if !states.iter().any(|s| s.lt(root)) {
                return Err(SemanticsError::NotInformative);
            }
            Ok(vec![root.clone(); states.len()])
        }
    }
}

/// Applies one collective simultaneously to several disjoint device groups of
/// a state context (the semantics of a DSL reduction instruction, §3.3):
/// devices not named by any group keep their state unchanged.
///
/// # Errors
///
/// Returns the first [`SemanticsError`] raised by any group, leaving
/// `states` unchanged in that case.
///
/// # Panics
///
/// Panics if any group mentions a device index outside `states`.
pub fn apply_to_groups(
    collective: Collective,
    states: &[State],
    groups: &[Vec<usize>],
) -> Result<Vec<State>, SemanticsError> {
    // Members are always read from the *input* context and errors abandon
    // `out` before the caller sees it, so the update stays atomic without
    // cloning any member state up front.
    let mut out = states.to_vec();
    for group in groups {
        let members: Vec<&State> = group.iter().map(|&d| &states[d]).collect();
        let after = apply_collective_refs(collective, &members)?;
        for (&device, state) in group.iter().zip(after) {
            out[device] = state;
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn initial(k: usize) -> Vec<State> {
        (0..k).map(|i| State::initial(k, i)).collect()
    }

    #[test]
    fn allreduce_reaches_goal() {
        let after = apply_collective(Collective::AllReduce, &initial(4)).unwrap();
        assert!(after.iter().all(|s| *s == State::goal(4)));
    }

    #[test]
    fn allreduce_twice_is_invalid() {
        // Figure 4b: reducing the same data twice is rejected.
        let once = apply_collective(Collective::AllReduce, &initial(2)).unwrap();
        assert_eq!(
            apply_collective(Collective::AllReduce, &once),
            Err(SemanticsError::OverlappingContributions)
        );
    }

    #[test]
    fn reduce_clears_non_roots() {
        let after = apply_collective(Collective::Reduce, &initial(3)).unwrap();
        assert_eq!(after[0], State::goal(3));
        assert!(after[1].is_empty() && after[2].is_empty());
    }

    #[test]
    fn reduce_scatter_splits_rows_in_order() {
        let after = apply_collective(Collective::ReduceScatter, &initial(4)).unwrap();
        assert_eq!(after[0].nonempty_rows(), vec![0]);
        assert_eq!(after[3].nonempty_rows(), vec![3]);
        for (i, s) in after.iter().enumerate() {
            // The retained row is fully reduced over the group.
            assert_eq!(s.row(i).count_ones(), 4);
        }
    }

    #[test]
    fn reduce_scatter_indivisible_is_error() {
        // 3 devices, 4 chunks each... build a 4-dim scope with only 3 participants.
        let states: Vec<State> = (0..3).map(|i| State::initial(4, i)).collect();
        assert_eq!(
            apply_collective(Collective::ReduceScatter, &states),
            Err(SemanticsError::ScatterIndivisible)
        );
    }

    #[test]
    fn allgather_requires_disjoint_rows() {
        let scattered = apply_collective(Collective::ReduceScatter, &initial(4)).unwrap();
        let gathered = apply_collective(Collective::AllGather, &scattered).unwrap();
        assert!(gathered.iter().all(|s| *s == State::goal(4)));
        // Gathering identical states is invalid.
        assert_eq!(
            apply_collective(Collective::AllGather, &gathered),
            Err(SemanticsError::RowsNotDisjoint)
        );
    }

    #[test]
    fn allgather_requires_equal_row_counts() {
        let k = 4;
        let a = State::goal(k).retain_rows(&[0]);
        let b = State::goal(k).retain_rows(&[1, 2]);
        assert_eq!(
            apply_collective(Collective::AllGather, &[a, b]),
            Err(SemanticsError::RowCountMismatch)
        );
    }

    #[test]
    fn broadcast_requires_information_increase() {
        let k = 3;
        // Root has everything, others are empty (post-Reduce situation).
        let reduced = apply_collective(Collective::Reduce, &initial(k)).unwrap();
        let broadcast = apply_collective(Collective::Broadcast, &reduced).unwrap();
        assert!(broadcast.iter().all(|s| *s == State::goal(k)));
        // Broadcasting again gains nothing and is rejected.
        assert_eq!(
            apply_collective(Collective::Broadcast, &broadcast),
            Err(SemanticsError::NotInformative)
        );
        // Broadcasting when the root knows *less* than a peer is rejected.
        let mut states = initial(k);
        states[1] = State::goal(k);
        assert_eq!(
            apply_collective(Collective::Broadcast, &states),
            Err(SemanticsError::NotInformative)
        );
    }

    #[test]
    fn mixing_chunks_is_invalid() {
        // Figure 4a: ReduceScatter then AllReduce over the same pair mixes
        // different chunks and must be rejected.
        let scattered = apply_collective(Collective::ReduceScatter, &initial(2)).unwrap();
        assert_eq!(
            apply_collective(Collective::AllReduce, &scattered),
            Err(SemanticsError::RowsMismatch)
        );
    }

    #[test]
    fn trivial_and_mismatched_groups_rejected() {
        assert_eq!(
            apply_collective(Collective::AllReduce, &[State::initial(2, 0)]),
            Err(SemanticsError::TrivialGroup)
        );
        assert_eq!(
            apply_collective(
                Collective::AllReduce,
                &[State::initial(2, 0), State::initial(3, 1)]
            ),
            Err(SemanticsError::DimensionMismatch)
        );
    }

    #[test]
    fn empty_states_rejected() {
        let empties = vec![State::empty(2), State::empty(2)];
        assert_eq!(
            apply_collective(Collective::AllReduce, &empties),
            Err(SemanticsError::EmptyStates)
        );
        assert_eq!(
            apply_collective(Collective::AllGather, &empties),
            Err(SemanticsError::EmptyStates)
        );
    }

    #[test]
    fn apply_to_groups_updates_only_members() {
        let k = 4;
        let states = initial(k);
        let after = apply_to_groups(Collective::AllReduce, &states, &[vec![0, 1]]).unwrap();
        assert_eq!(after[0], after[1]);
        assert_eq!(after[2], State::initial(k, 2));
        assert_eq!(after[3], State::initial(k, 3));
        // Two disjoint groups at once.
        let after2 =
            apply_to_groups(Collective::AllReduce, &states, &[vec![0, 1], vec![2, 3]]).unwrap();
        assert_eq!(after2[0], after2[1]);
        assert_eq!(after2[2], after2[3]);
        assert_ne!(after2[0], after2[2]);
    }

    #[test]
    fn apply_to_groups_is_atomic_on_error() {
        let k = 4;
        let states = initial(k);
        // Second group is trivial, so the whole instruction fails and nothing changes.
        let result = apply_to_groups(Collective::AllReduce, &states, &[vec![0, 1], vec![2]]);
        assert_eq!(result, Err(SemanticsError::TrivialGroup));
    }

    #[test]
    fn reduce_allreduce_broadcast_program_reaches_goal() {
        // The Figure 3c / Figure 10i pattern on 4 devices arranged as 2x2:
        // local Reduce, AllReduce between roots, local Broadcast.
        let states = initial(4);
        let s1 = apply_to_groups(Collective::Reduce, &states, &[vec![0, 1], vec![2, 3]]).unwrap();
        let s2 = apply_to_groups(Collective::AllReduce, &s1, &[vec![0, 2]]).unwrap();
        let s3 = apply_to_groups(Collective::Broadcast, &s2, &[vec![0, 1], vec![2, 3]]).unwrap();
        assert!(s3.iter().all(|s| *s == State::goal(4)));
    }

    #[test]
    fn reducescatter_allreduce_allgather_program_reaches_goal() {
        // The Figure 10ii / BlueConnect pattern on 4 devices arranged as 2x2.
        let states = initial(4);
        let s1 = apply_to_groups(
            Collective::ReduceScatter,
            &states,
            &[vec![0, 1], vec![2, 3]],
        )
        .unwrap();
        let s2 = apply_to_groups(Collective::AllReduce, &s1, &[vec![0, 2], vec![1, 3]]).unwrap();
        let s3 = apply_to_groups(Collective::AllGather, &s2, &[vec![0, 1], vec![2, 3]]).unwrap();
        assert!(s3.iter().all(|s| *s == State::goal(4)));
    }
}
