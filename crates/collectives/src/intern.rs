//! Hash-consing of device states and memoized collective application.
//!
//! The synthesizer explores a DAG whose nodes are *tuples* of device
//! [`State`]s. After collectives on symmetric groups most devices share
//! identical states, so hash-consing each device state to a dense `u32` id
//! turns a synthesis-space state into a flat `[u32]` slice: interning hashes
//! a few words instead of k×k bit matrices, equality is a word compare, and
//! devices sharing a state share its storage. The [`ApplyCache`] layers a
//! transposition table on top: the semantics of a collective depend only on
//! the ordered participant states, so one `(collective, participant ids)`
//! key memoizes [`apply_collective_refs`] across every grouping and every
//! synthesis state that reproduces the same participants — the cache-hit
//! path allocates nothing.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, RwLock};

use crate::collective::Collective;
use crate::semantics::{apply_collective_refs, SemanticsError};
use crate::state::State;

// The word-folding hasher these tables key through lives in `p2_hash` (it is
// also the core of the plan service's persisted content addresses); the
// re-export keeps the long-standing `p2_collectives::{FxHasher, FxHashMap}`
// paths working.
pub use p2_hash::{FxHashMap, FxHasher};

/// The [`SharedTables`] transposition map: `[collective tag, participant
/// ids...]` → interned post-state ids or the memoized semantic error.
type SharedApplyMap = FxHashMap<Box<[u32]>, Result<Arc<[u32]>, SemanticsError>>;

/// An arena hash-consing device [`State`]s to dense `u32` ids.
///
/// # Examples
///
/// ```
/// use p2_collectives::{State, StateInterner};
/// let mut interner = StateInterner::new();
/// let a = interner.intern(State::initial(4, 0));
/// let b = interner.intern(State::initial(4, 1));
/// assert_ne!(a, b);
/// assert_eq!(interner.intern(State::initial(4, 0)), a);
/// assert_eq!(interner.len(), 2);
/// assert_eq!(*interner.get(a), State::initial(4, 0));
/// ```
#[derive(Debug, Clone, Default)]
pub struct StateInterner {
    /// Id-indexed view; each `Arc` is shared with the map key below, so every
    /// distinct state owns exactly one word buffer.
    states: Vec<Arc<State>>,
    ids: FxHashMap<Arc<State>, u32>,
}

impl StateInterner {
    /// Creates an empty interner.
    pub fn new() -> Self {
        StateInterner::default()
    }

    /// Interns a state, returning its dense id (allocating a new id only for
    /// states never seen before).
    ///
    /// # Panics
    ///
    /// Panics if more than `u32::MAX` distinct states are interned.
    pub fn intern(&mut self, state: State) -> u32 {
        // `Arc<State>: Borrow<State>`, so the lookup needs no allocation.
        if let Some(&id) = self.ids.get(&state) {
            return id;
        }
        let id = u32::try_from(self.states.len()).expect("more than u32::MAX distinct states");
        let state = Arc::new(state);
        self.states.push(Arc::clone(&state));
        self.ids.insert(state, id);
        id
    }

    /// The state an id was assigned to.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not returned by this interner.
    pub fn get(&self, id: u32) -> &State {
        self.states[id as usize].as_ref()
    }

    /// A shared handle to the state an id was assigned to, for callers that
    /// must outlive a lock on the interner.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not returned by this interner.
    pub fn get_arc(&self, id: u32) -> Arc<State> {
        Arc::clone(&self.states[id as usize])
    }

    /// The id of an already-interned state, without interning it.
    pub fn lookup(&self, state: &State) -> Option<u32> {
        self.ids.get(state).copied()
    }

    /// Number of distinct states interned.
    pub fn len(&self) -> usize {
        self.states.len()
    }

    /// Whether nothing has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.states.is_empty()
    }

    /// The interned states in id order (state `i` has id `i`): ids *are*
    /// positions in the arena, so this is the dense serialization order and
    /// re-interning the list into an empty interner reassigns identical ids.
    pub fn states_in_id_order(&self) -> &[Arc<State>] {
        &self.states
    }
}

/// A memoized application result: the members' interned post-state ids, or
/// the semantic error the collective raised.
type CachedApply = Result<Box<[u32]>, SemanticsError>;

/// A transposition cache for [`apply_collective_refs`] over interned states.
///
/// Keyed by the collective and the ordered participant ids (the only inputs
/// the semantics sees), so symmetric groupings and convergent search paths
/// re-deriving the same participants hit the cache instead of re-running the
/// pre-condition checks. Both successful post-states and semantic errors are
/// memoized. Lookups reuse an internal key buffer: a hit performs no
/// allocation.
#[derive(Debug, Clone, Default)]
pub struct ApplyCache {
    /// `[collective tag, participant ids...]` → interned post-state ids.
    map: FxHashMap<Box<[u32]>, CachedApply>,
    key: Vec<u32>,
    hits: usize,
    misses: usize,
}

impl ApplyCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        ApplyCache::default()
    }

    /// Applies `collective` to the devices holding the interned states
    /// `members` (in group order), memoized. Returns the members'
    /// post-condition state ids, in the same order.
    ///
    /// # Errors
    ///
    /// The [`SemanticsError`] of the violated pre-condition, exactly as
    /// [`apply_collective_refs`] reports it (and memoized just the same).
    ///
    /// # Panics
    ///
    /// Panics if any id in `members` was not produced by `interner`.
    pub fn apply(
        &mut self,
        interner: &mut StateInterner,
        collective: Collective,
        members: &[u32],
    ) -> Result<&[u32], SemanticsError> {
        self.key.clear();
        self.key.push(collective as u32);
        self.key.extend_from_slice(members);
        // `contains_key` first sidesteps the borrow checker's refusal to let
        // a conditionally-returned `get` borrow coexist with the insert below.
        if self.map.contains_key(self.key.as_slice()) {
            self.hits += 1;
            return self.map[self.key.as_slice()]
                .as_deref()
                .map_err(|e| e.clone());
        }
        self.misses += 1;
        let result = {
            let states: Vec<&State> = members.iter().map(|&id| interner.get(id)).collect();
            apply_collective_refs(collective, &states)
        };
        let entry = result.map(|after| {
            after
                .into_iter()
                .map(|s| interner.intern(s))
                .collect::<Box<[u32]>>()
        });
        self.map
            .entry(self.key.as_slice().into())
            .or_insert(entry)
            .as_deref()
            .map_err(|e| e.clone())
    }

    /// Number of memoized lookups served.
    pub fn hits(&self) -> usize {
        self.hits
    }

    /// Number of lookups that ran the semantics.
    pub fn misses(&self) -> usize {
        self.misses
    }

    /// Number of distinct `(collective, participants)` keys cached.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

/// Number of shards in each [`SharedTables`] map (state → id and apply). A
/// power of two so the shard index is the hash's top bits; 64 is comfortably
/// above any worker count this workspace runs, so two workers rarely contend
/// on one shard lock.
const SHARD_BITS: u32 = 6;
/// `1 << SHARD_BITS`.
const SHARDS: usize = 1 << SHARD_BITS;
/// Capacity of the first [`StateArena`] chunk; chunk `c` holds
/// `ARENA_CHUNK0 << c` slots, so 32 doubling chunks cover the entire `u32`
/// id space.
const ARENA_CHUNK0: usize = 1024;
/// Number of doubling chunks in a [`StateArena`].
const ARENA_CHUNKS: usize = 32;

/// Lock-free append-only id → state storage: a sequence of doubling chunks,
/// each allocated at most once, with every slot written at most once.
///
/// Chunks never move once allocated, so `get` takes no lock: readers walk
/// `chunks[c][offset]` through two [`OnceLock`]s (acquire loads) while
/// writers fill slots they own exclusively (each id is handed out by one
/// `fetch_add`). This is what keeps [`SharedTables::apply`]'s participant
/// fetch off the interner locks entirely — the hottest read path of the
/// parallel DAG build.
///
/// [`OnceLock`]: std::sync::OnceLock
#[derive(Debug)]
struct StateArena {
    #[allow(clippy::type_complexity)]
    chunks: [std::sync::OnceLock<Box<[std::sync::OnceLock<Arc<State>>]>>; ARENA_CHUNKS],
    /// The next unassigned id; slots below this are set or about to be set by
    /// the worker that claimed them.
    len: AtomicUsize,
}

impl Default for StateArena {
    fn default() -> Self {
        StateArena {
            chunks: std::array::from_fn(|_| std::sync::OnceLock::new()),
            len: AtomicUsize::new(0),
        }
    }
}

impl StateArena {
    /// `(chunk, offset)` of an id: chunk `c` covers ids
    /// `[ARENA_CHUNK0 * (2^c - 1), ARENA_CHUNK0 * (2^(c+1) - 1))`.
    fn locate(id: u32) -> (usize, usize) {
        let n = id as usize / ARENA_CHUNK0 + 1;
        let chunk = (usize::BITS - 1 - n.leading_zeros()) as usize;
        let base = ARENA_CHUNK0 * ((1usize << chunk) - 1);
        (chunk, id as usize - base)
    }

    /// Claims the next id. The caller must follow up with `set`.
    fn claim_id(&self) -> u32 {
        let id = self.len.fetch_add(1, Ordering::Relaxed);
        u32::try_from(id).expect("more than u32::MAX distinct states")
    }

    /// Publishes the state for an id claimed by this thread.
    fn set(&self, id: u32, state: Arc<State>) {
        let (chunk, offset) = Self::locate(id);
        let slots = self.chunks[chunk].get_or_init(|| {
            (0..ARENA_CHUNK0 << chunk)
                .map(|_| std::sync::OnceLock::new())
                .collect()
        });
        slots[offset]
            .set(state)
            .expect("arena slot published twice");
    }

    /// The state an id was assigned to, without taking any lock.
    ///
    /// Ids only reach other threads *after* their slot is published (the
    /// publishing thread sets the slot before releasing the shard lock that
    /// makes the id visible), so the spin below only covers the sliver where
    /// an id raced here through a relaxed counter read; it cannot spin on an
    /// id that was never claimed — that panics instead.
    fn get(&self, id: u32) -> Arc<State> {
        assert!(
            (id as usize) < self.len.load(Ordering::Acquire),
            "unknown state id {id}"
        );
        let (chunk, offset) = Self::locate(id);
        loop {
            if let Some(slots) = self.chunks[chunk].get() {
                if let Some(state) = slots[offset].get() {
                    return Arc::clone(state);
                }
            }
            std::hint::spin_loop();
        }
    }

    fn len(&self) -> usize {
        self.len.load(Ordering::Acquire)
    }
}

/// Sweep-wide hash-consing tables: one device-state interner and one
/// collective transposition table shared by every concurrent worker — across
/// placements of a sweep *and* across the intra-placement expanders of a
/// parallel DAG build.
///
/// Every placement of one sweep reduces over the same k×k device-state
/// universe, so sharing the tables means the second placement onward mostly
/// *reads*: states and `(collective, participants)` entries discovered by one
/// worker are reused by all. Both maps are split into 64 independent
/// `RwLock`ed shards keyed by the hash's top bits, and the id → state arena
/// is lock-free (an append-only chunked `OnceLock` arena), so concurrent
/// expanders don't serialize on
/// a single lock. Ids are assigned in thread-arrival order and are therefore
/// nondeterministic under parallelism — which is sound, because every
/// consumer uses ids only for equality and memoization, never for ordering.
/// The final table *sizes* are deterministic: they are set unions over the
/// (deterministic) per-placement universes.
#[derive(Debug)]
pub struct SharedTables {
    /// state → id, sharded by state hash. Each distinct state lives in
    /// exactly one shard, so that shard's write lock serializes its id
    /// assignment.
    state_shards: Vec<RwLock<FxHashMap<Arc<State>, u32>>>,
    arena: StateArena,
    /// `[collective tag, participant ids...]` → interned post-state ids
    /// (`Arc`ed so a hit clones a pointer, not the slice) or the memoized
    /// semantic error; sharded by key hash.
    apply_shards: Vec<RwLock<SharedApplyMap>>,
    apply_hits: AtomicUsize,
    apply_misses: AtomicUsize,
}

impl Default for SharedTables {
    fn default() -> Self {
        SharedTables {
            state_shards: (0..SHARDS).map(|_| RwLock::default()).collect(),
            arena: StateArena::default(),
            apply_shards: (0..SHARDS).map(|_| RwLock::default()).collect(),
            apply_hits: AtomicUsize::new(0),
            apply_misses: AtomicUsize::new(0),
        }
    }
}

impl SharedTables {
    /// Creates empty shared tables.
    pub fn new() -> Self {
        SharedTables::default()
    }

    /// The shard a state's map entry lives in (top hash bits).
    fn state_shard(state: &State) -> usize {
        use std::hash::{Hash, Hasher};
        let mut hasher = FxHasher::default();
        state.hash(&mut hasher);
        (hasher.finish() >> (64 - SHARD_BITS)) as usize
    }

    /// The shard an apply key's entry lives in (top hash bits).
    fn apply_shard(key: &[u32]) -> usize {
        use std::hash::{Hash, Hasher};
        let mut hasher = FxHasher::default();
        key.hash(&mut hasher);
        (hasher.finish() >> (64 - SHARD_BITS)) as usize
    }

    /// Interns a state, returning `(id, was_present)`: `was_present` is true
    /// when the state was already in the table (interned by this or any other
    /// worker).
    ///
    /// # Panics
    ///
    /// Panics if a lock is poisoned or the interner overflows `u32` ids.
    pub fn intern(&self, state: State) -> (u32, bool) {
        let shard = &self.state_shards[Self::state_shard(&state)];
        if let Some(&id) = shard.read().expect("interner shard lock").get(&state) {
            return (id, true);
        }
        let mut map = shard.write().expect("interner shard lock");
        // Double-checked: another worker may have interned it since the read.
        if let Some(&id) = map.get(&state) {
            return (id, true);
        }
        let id = self.arena.claim_id();
        let state = Arc::new(state);
        // Publish the arena slot *before* the map insert makes the id
        // visible to other workers.
        self.arena.set(id, Arc::clone(&state));
        map.insert(state, id);
        (id, false)
    }

    /// A shared handle to the state an id was assigned to. Lock-free.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not produced by this table.
    pub fn get(&self, id: u32) -> Arc<State> {
        self.arena.get(id)
    }

    /// Applies `collective` to the devices holding the interned states
    /// `members` (in group order), memoized across all workers. Returns the
    /// members' post-condition state ids in order, plus whether the entry was
    /// already cached (`hit`).
    ///
    /// # Errors
    ///
    /// The [`SemanticsError`] of the violated pre-condition, memoized exactly
    /// like a success.
    ///
    /// # Panics
    ///
    /// Panics if a lock is poisoned or any id in `members` was not produced
    /// by this table.
    #[allow(clippy::type_complexity)]
    pub fn apply(
        &self,
        collective: Collective,
        members: &[u32],
    ) -> (Result<Arc<[u32]>, SemanticsError>, bool) {
        let mut key = Vec::with_capacity(members.len() + 1);
        key.push(collective as u32);
        key.extend_from_slice(members);
        let shard = &self.apply_shards[Self::apply_shard(&key)];
        if let Some(entry) = shard.read().expect("apply shard lock").get(key.as_slice()) {
            self.apply_hits.fetch_add(1, Ordering::Relaxed);
            return (entry.clone(), true);
        }
        self.apply_misses.fetch_add(1, Ordering::Relaxed);
        // Run the semantics outside every lock; the participant fetch is
        // lock-free through the arena.
        let states: Vec<Arc<State>> = members.iter().map(|&id| self.arena.get(id)).collect();
        let refs: Vec<&State> = states.iter().map(Arc::as_ref).collect();
        let result = apply_collective_refs(collective, &refs);
        let entry: Result<Arc<[u32]>, SemanticsError> =
            result.map(|after| after.into_iter().map(|s| self.intern(s).0).collect());
        // Racing workers compute identical entries (same interner), so
        // keeping the first insert is purely cosmetic.
        let out = shard
            .write()
            .expect("apply shard lock")
            .entry(key.into_boxed_slice())
            .or_insert(entry)
            .clone();
        (out, false)
    }

    /// Number of distinct device states interned so far. Deterministic once a
    /// sweep has drained, for any worker count.
    pub fn num_states(&self) -> usize {
        self.arena.len()
    }

    /// Number of distinct `(collective, participants)` entries memoized.
    pub fn num_apply_entries(&self) -> usize {
        self.apply_shards
            .iter()
            .map(|shard| shard.read().expect("apply shard lock").len())
            .sum()
    }

    /// Total applications answered from the shared cache, across all workers.
    pub fn apply_hits(&self) -> usize {
        self.apply_hits.load(Ordering::Relaxed)
    }

    /// Total applications that ran the semantics, across all workers.
    pub fn apply_misses(&self) -> usize {
        self.apply_misses.load(Ordering::Relaxed)
    }

    /// A consistent copy of both tables for serialization: the interned
    /// states in id order plus every memoized `[collective tag, participant
    /// ids...]` → post-state-ids-or-error entry. The apply entries are copied
    /// *before* the state count is read, so every id an entry references is
    /// inside the exported state list — concurrent interning can only add
    /// states the entries don't mention.
    #[allow(clippy::type_complexity)]
    pub fn export(
        &self,
    ) -> (
        Vec<Arc<State>>,
        Vec<(Box<[u32]>, Result<Arc<[u32]>, SemanticsError>)>,
    ) {
        let mut entries = Vec::new();
        for shard in &self.apply_shards {
            let map = shard.read().expect("apply shard lock");
            entries.extend(map.iter().map(|(key, value)| (key.clone(), value.clone())));
        }
        let num_states = self.arena.len();
        let states = (0..num_states as u32)
            .map(|id| self.arena.get(id))
            .collect();
        (states, entries)
    }

    /// Seeds *empty* tables from an [`export`](SharedTables::export)-shaped
    /// snapshot: states are interned in list order (reassigning the dense
    /// ids the apply entries reference) and the apply entries installed
    /// verbatim. Warm-seeding only changes which lookups hit — every entry a
    /// cold run would derive is identical — so results stay bit-identical.
    ///
    /// Returns `false` without modifying anything when the tables are
    /// non-empty or the snapshot is internally inconsistent (duplicate
    /// states, or an apply entry referencing an id outside the state list);
    /// the caller then proceeds cold.
    #[allow(clippy::type_complexity)]
    pub fn preload(
        &self,
        states: Vec<State>,
        entries: Vec<(Box<[u32]>, Result<Arc<[u32]>, SemanticsError>)>,
    ) -> bool {
        let num_states = states.len();
        let valid_id = |id: &u32| (*id as usize) < num_states;
        let consistent = entries.iter().all(|(key, value)| {
            // A key is the collective tag plus at least two participants.
            key.len() >= 3
                && key[1..].iter().all(valid_id)
                && value.as_ref().map_or(true, |out| out.iter().all(valid_id))
        });
        if !consistent {
            return false;
        }
        // Build the sharded maps outside the locks; installation is then a
        // plain swap per shard.
        let mut shard_maps: Vec<FxHashMap<Arc<State>, u32>> =
            (0..SHARDS).map(|_| FxHashMap::default()).collect();
        let mut arcs: Vec<Arc<State>> = Vec::with_capacity(num_states);
        for (position, state) in states.into_iter().enumerate() {
            let state = Arc::new(state);
            let shard = Self::state_shard(&state);
            if shard_maps[shard]
                .insert(Arc::clone(&state), position as u32)
                .is_some()
            {
                // A duplicate state collapsed — the snapshot's ids would be
                // dangling. Reject rather than guess.
                return false;
            }
            arcs.push(state);
        }
        let mut apply_maps: Vec<SharedApplyMap> =
            (0..SHARDS).map(|_| SharedApplyMap::default()).collect();
        for (key, value) in entries {
            apply_maps[Self::apply_shard(&key)].insert(key, value);
        }
        // Take every write lock in shard order, verify emptiness, then swap
        // the prebuilt maps in — all-or-nothing, as before the sharding.
        let mut state_guards: Vec<_> = self
            .state_shards
            .iter()
            .map(|shard| shard.write().expect("interner shard lock"))
            .collect();
        let mut apply_guards: Vec<_> = self
            .apply_shards
            .iter()
            .map(|shard| shard.write().expect("apply shard lock"))
            .collect();
        if self.arena.len() != 0
            || state_guards.iter().any(|guard| !guard.is_empty())
            || apply_guards.iter().any(|guard| !guard.is_empty())
        {
            return false;
        }
        for (position, state) in arcs.iter().enumerate() {
            self.arena.set(position as u32, Arc::clone(state));
        }
        self.arena.len.store(num_states, Ordering::Release);
        for (guard, map) in state_guards.iter_mut().zip(shard_maps) {
            **guard = map;
        }
        for (guard, map) in apply_guards.iter_mut().zip(apply_maps) {
            **guard = map;
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::semantics::apply_collective;

    #[test]
    fn interner_dedups_and_roundtrips() {
        let mut interner = StateInterner::new();
        assert!(interner.is_empty());
        let ids: Vec<u32> = (0..3)
            .map(|d| interner.intern(State::initial(3, d)))
            .collect();
        assert_eq!(interner.len(), 3);
        for (d, &id) in ids.iter().enumerate() {
            assert_eq!(*interner.get(id), State::initial(3, d));
            assert_eq!(interner.intern(State::initial(3, d)), id);
        }
        assert_eq!(interner.len(), 3);
    }

    #[test]
    fn apply_cache_matches_direct_semantics() {
        let mut interner = StateInterner::new();
        let mut cache = ApplyCache::new();
        let states: Vec<State> = (0..4).map(|d| State::initial(4, d)).collect();
        let ids: Vec<u32> = states.iter().map(|s| interner.intern(s.clone())).collect();
        for collective in Collective::ALL {
            let direct = apply_collective(collective, &states);
            let cached = cache
                .apply(&mut interner, collective, &ids)
                .map(|out| out.to_vec());
            match (direct, cached) {
                (Ok(direct), Ok(out_ids)) => {
                    let via_cache: Vec<State> =
                        out_ids.iter().map(|&id| interner.get(id).clone()).collect();
                    assert_eq!(direct, via_cache, "{collective} diverged through the cache");
                }
                (Err(a), Err(b)) => assert_eq!(a, b),
                (a, b) => panic!("{collective}: direct {a:?} vs cached {b:?}"),
            }
        }
        assert_eq!(cache.misses(), Collective::ALL.len());
        assert_eq!(cache.hits(), 0);
    }

    #[test]
    fn apply_cache_hits_on_repeats_and_memoizes_errors() {
        let mut interner = StateInterner::new();
        let mut cache = ApplyCache::new();
        let ids: Vec<u32> = (0..2)
            .map(|d| interner.intern(State::initial(2, d)))
            .collect();
        let first = cache
            .apply(&mut interner, Collective::AllReduce, &ids)
            .unwrap()
            .to_vec();
        let again = cache
            .apply(&mut interner, Collective::AllReduce, &ids)
            .unwrap()
            .to_vec();
        assert_eq!(first, again);
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
        // Reducing the already-reduced pair double-counts; the error is
        // memoized like any other result.
        let err = cache
            .apply(&mut interner, Collective::AllReduce, &first)
            .unwrap_err();
        assert_eq!(err, SemanticsError::OverlappingContributions);
        let err2 = cache
            .apply(&mut interner, Collective::AllReduce, &first)
            .unwrap_err();
        assert_eq!(err, err2);
        assert_eq!((cache.hits(), cache.misses()), (2, 2));
    }

    #[test]
    fn shared_tables_match_local_apply_cache() {
        let shared = SharedTables::new();
        let mut interner = StateInterner::new();
        let mut cache = ApplyCache::new();
        let states: Vec<State> = (0..4).map(|d| State::initial(4, d)).collect();
        let local_ids: Vec<u32> = states.iter().map(|s| interner.intern(s.clone())).collect();
        let shared_ids: Vec<u32> = states.iter().map(|s| shared.intern(s.clone()).0).collect();
        for collective in Collective::ALL {
            let local = cache
                .apply(&mut interner, collective, &local_ids)
                .map(|out| {
                    out.iter()
                        .map(|&id| interner.get(id).clone())
                        .collect::<Vec<_>>()
                });
            let (result, hit) = shared.apply(collective, &shared_ids);
            assert!(!hit);
            let via_shared =
                result.map(|out| out.iter().map(|&id| (*shared.get(id)).clone()).collect());
            assert_eq!(
                local, via_shared,
                "{collective} diverged through SharedTables"
            );
            // Repeats hit.
            let (_, hit) = shared.apply(collective, &shared_ids);
            assert!(hit);
        }
        assert_eq!(shared.apply_misses(), Collective::ALL.len());
        assert_eq!(shared.apply_hits(), Collective::ALL.len());
        assert!(shared.num_apply_entries() > 0);
    }

    #[test]
    fn shared_tables_report_presence_on_intern() {
        let shared = SharedTables::new();
        let (a, present) = shared.intern(State::initial(2, 0));
        assert!(!present);
        let (b, present) = shared.intern(State::initial(2, 0));
        assert!(present);
        assert_eq!(a, b);
        assert_eq!(shared.num_states(), 1);
    }

    #[test]
    fn shared_tables_are_consistent_under_concurrency() {
        let shared = Arc::new(SharedTables::new());
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || {
                    let ids: Vec<u32> = (0..4)
                        .map(|d| shared.intern(State::initial(4, d)).0)
                        .collect();
                    let (result, _) = shared.apply(Collective::AllReduce, &ids);
                    let out = result.unwrap();
                    out.iter()
                        .map(|&id| (*shared.get(id)).clone())
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        let outputs: Vec<Vec<State>> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        for w in outputs.windows(2) {
            assert_eq!(w[0], w[1]);
        }
        // 4 initial states + 1 shared post-AllReduce state.
        assert_eq!(shared.num_states(), 5);
        assert_eq!(shared.num_apply_entries(), 1);
    }

    #[test]
    fn export_preload_round_trips_and_warm_tables_only_hit() {
        let source = SharedTables::new();
        let ids: Vec<u32> = (0..4)
            .map(|d| source.intern(State::initial(4, d)).0)
            .collect();
        source.apply(Collective::AllReduce, &ids).0.unwrap();
        source
            .apply(Collective::AllReduce, &[ids[0], ids[0]])
            .0
            .unwrap_err();
        let (states, entries) = source.export();
        assert_eq!(states.len(), source.num_states());
        assert_eq!(entries.len(), 2);

        let warm = SharedTables::new();
        assert!(warm.preload(
            states.iter().map(|s| (**s).clone()).collect(),
            entries.clone()
        ));
        assert_eq!(warm.num_states(), source.num_states());
        assert_eq!(warm.num_apply_entries(), source.num_apply_entries());
        // Every re-derivation is now a hit producing identical results, and
        // re-interning reports presence with the original ids.
        for (d, &id) in ids.iter().enumerate() {
            let (warm_id, present) = warm.intern(State::initial(4, d));
            assert!(present);
            assert_eq!(warm_id, id);
        }
        let (cold_out, _) = source.apply(Collective::AllReduce, &ids);
        let (warm_out, hit) = warm.apply(Collective::AllReduce, &ids);
        assert!(hit);
        assert_eq!(cold_out.unwrap(), warm_out.unwrap());
        let (_, hit) = warm.apply(Collective::AllReduce, &[ids[0], ids[0]]);
        assert!(hit);

        // Non-empty tables refuse a preload.
        assert!(!warm.preload(vec![], vec![]));
        // Dangling apply ids and duplicate states are rejected.
        let fresh = SharedTables::new();
        assert!(!fresh.preload(
            vec![State::initial(2, 0)],
            vec![(vec![0, 0, 7].into_boxed_slice(), Ok(vec![0].into()))],
        ));
        assert!(!fresh.preload(vec![State::initial(2, 0), State::initial(2, 0)], vec![]));
        assert_eq!(fresh.num_states(), 0);
    }

    #[test]
    fn interner_lookup_and_get_arc() {
        let mut interner = StateInterner::new();
        assert_eq!(interner.lookup(&State::initial(2, 0)), None);
        let id = interner.intern(State::initial(2, 0));
        assert_eq!(interner.lookup(&State::initial(2, 0)), Some(id));
        assert_eq!(*interner.get_arc(id), State::initial(2, 0));
    }

    #[test]
    fn distinct_collectives_do_not_collide() {
        let mut interner = StateInterner::new();
        let mut cache = ApplyCache::new();
        let ids: Vec<u32> = (0..2)
            .map(|d| interner.intern(State::initial(2, d)))
            .collect();
        let reduced = cache
            .apply(&mut interner, Collective::Reduce, &ids)
            .unwrap()
            .to_vec();
        let all = cache
            .apply(&mut interner, Collective::AllReduce, &ids)
            .unwrap()
            .to_vec();
        assert_ne!(reduced, all);
        assert_eq!(cache.misses(), 2);
    }
}
