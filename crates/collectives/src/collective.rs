use std::fmt;

/// The collective operations whose semantics the paper formalizes (§3.2).
///
/// `Reduce` and `Broadcast` always use the first device of the group as the
/// root, as in the paper ("we always use the first device in a reduction
/// group as the root without loss of generality").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Collective {
    /// Every device ends up with the reduction of all contributions.
    AllReduce,
    /// The reduction result is split evenly over the participating devices.
    ReduceScatter,
    /// Every device ends up with the concatenation of all (disjoint) inputs.
    AllGather,
    /// The reduction result is placed on the first device; other devices are cleared.
    Reduce,
    /// The first device's data overwrites every other device's data.
    Broadcast,
}

impl Collective {
    /// All five collectives, in a fixed order (used by the synthesizer's
    /// enumeration).
    pub const ALL: [Collective; 5] = [
        Collective::AllReduce,
        Collective::ReduceScatter,
        Collective::AllGather,
        Collective::Reduce,
        Collective::Broadcast,
    ];

    /// A short lowercase name (`"all-reduce"`, `"reduce-scatter"`, …).
    pub fn short_name(self) -> &'static str {
        match self {
            Collective::AllReduce => "all-reduce",
            Collective::ReduceScatter => "reduce-scatter",
            Collective::AllGather => "all-gather",
            Collective::Reduce => "reduce",
            Collective::Broadcast => "broadcast",
        }
    }
}

impl fmt::Display for Collective {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Collective::AllReduce => "AllReduce",
            Collective::ReduceScatter => "ReduceScatter",
            Collective::AllGather => "AllGather",
            Collective::Reduce => "Reduce",
            Collective::Broadcast => "Broadcast",
        };
        write!(f, "{name}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names() {
        assert_eq!(Collective::AllReduce.to_string(), "AllReduce");
        assert_eq!(Collective::ReduceScatter.short_name(), "reduce-scatter");
        assert_eq!(Collective::ALL.len(), 5);
    }
}
