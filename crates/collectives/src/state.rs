use std::fmt;

use crate::bitset::Bitset;

/// The state of one device: a `k × k` boolean matrix (paper Figure 7).
///
/// The data each device holds is treated as `k` chunks. Row `r` describes
/// chunk `r`: bit `(r, j)` is set when device `j`'s original chunk `r` has
/// been folded into the data this device currently holds. A row with no set
/// bit means the device currently holds no data for that chunk (e.g. after a
/// `ReduceScatter` gave the chunk to a different device).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct State {
    k: usize,
    rows: Vec<Bitset>,
}

impl State {
    /// The empty state (no data at all) for a scope of `k` devices.
    pub fn empty(k: usize) -> Self {
        State {
            k,
            rows: vec![Bitset::new(k); k],
        }
    }

    /// The initial state of device `device`: it holds its own copy of every
    /// chunk and nothing else (column `device` is all ones).
    ///
    /// # Panics
    ///
    /// Panics if `device >= k`.
    pub fn initial(k: usize, device: usize) -> Self {
        assert!(device < k, "device {device} out of range {k}");
        let mut s = State::empty(k);
        for r in 0..k {
            s.rows[r].set(device, true);
        }
        s
    }

    /// The goal state of a full reduction over all `k` devices: every chunk
    /// has been reduced over every device (the all-ones matrix).
    pub fn goal(k: usize) -> Self {
        State {
            k,
            rows: vec![Bitset::full(k); k],
        }
    }

    /// Number of devices in the reduction scope (the matrix dimension).
    pub fn dim(&self) -> usize {
        self.k
    }

    /// A read-only view of row `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r >= k`.
    pub fn row(&self, r: usize) -> &Bitset {
        &self.rows[r]
    }

    /// Sets a single bit of the matrix.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    pub fn set(&mut self, row: usize, col: usize, value: bool) {
        self.rows[row].set(col, value);
    }

    /// Reads a single bit of the matrix.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    pub fn get(&self, row: usize, col: usize) -> bool {
        self.rows[row].get(col)
    }

    /// The indices of the non-empty rows — the chunks this device currently
    /// holds data for ("`rows`" in the paper's semantics).
    pub fn nonempty_rows(&self) -> Vec<usize> {
        (0..self.k).filter(|&r| !self.rows[r].is_empty()).collect()
    }

    /// The set of non-empty row indices as a bitset.
    pub fn rows_mask(&self) -> Bitset {
        let mut mask = Bitset::new(self.k);
        for r in 0..self.k {
            if !self.rows[r].is_empty() {
                mask.set(r, true);
            }
        }
        mask
    }

    /// The number of chunks this device currently holds data for.
    pub fn num_nonempty_rows(&self) -> usize {
        self.nonempty_rows().len()
    }

    /// The fraction of the full per-device buffer this device currently
    /// holds: non-empty rows divided by `k`. Used by the cost models to size
    /// transfers.
    pub fn data_fraction(&self) -> f64 {
        if self.k == 0 {
            0.0
        } else {
            self.num_nonempty_rows() as f64 / self.k as f64
        }
    }

    /// Whether the device holds no data at all.
    pub fn is_empty(&self) -> bool {
        self.rows.iter().all(Bitset::is_empty)
    }

    /// Element-wise union with another state of the same dimension.
    ///
    /// # Panics
    ///
    /// Panics if the dimensions differ.
    pub fn union_with(&mut self, other: &State) {
        assert_eq!(self.k, other.k, "state dimension mismatch");
        for (a, b) in self.rows.iter_mut().zip(&other.rows) {
            a.union_with(b);
        }
    }

    /// Whether `self` is element-wise less than or equal to `other`
    /// (every bit of `self` is also set in `other`).
    ///
    /// # Panics
    ///
    /// Panics if the dimensions differ.
    pub fn le(&self, other: &State) -> bool {
        assert_eq!(self.k, other.k, "state dimension mismatch");
        self.rows
            .iter()
            .zip(&other.rows)
            .all(|(a, b)| a.is_subset(b))
    }

    /// Whether `self` is element-wise strictly below `other`.
    ///
    /// # Panics
    ///
    /// Panics if the dimensions differ.
    pub fn lt(&self, other: &State) -> bool {
        self.le(other) && self != other
    }

    /// Clears every row whose index is **not** in `keep`, returning the state a
    /// `ReduceScatter` leaves on one device.
    pub(crate) fn retain_rows(&self, keep: &[usize]) -> State {
        let mut out = State::empty(self.k);
        for &r in keep {
            out.rows[r] = self.rows[r].clone();
        }
        out
    }
}

impl fmt::Display for State {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for r in 0..self.k {
            for c in 0..self.k {
                write!(f, "{}", if self.get(r, c) { '1' } else { '.' })?;
            }
            if r + 1 < self.k {
                writeln!(f)?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn initial_and_goal_shapes() {
        let s = State::initial(4, 2);
        assert_eq!(s.num_nonempty_rows(), 4);
        assert!(s.get(0, 2) && s.get(3, 2) && !s.get(0, 0));
        let g = State::goal(4);
        assert_eq!(g.num_nonempty_rows(), 4);
        assert!(s.le(&g) && s.lt(&g) && !g.lt(&g));
        assert!((s.data_fraction() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn union_and_rows() {
        let mut a = State::initial(3, 0);
        let b = State::initial(3, 1);
        a.union_with(&b);
        assert!(a.get(0, 0) && a.get(0, 1) && !a.get(0, 2));
        assert_eq!(a.rows_mask().count_ones(), 3);
    }

    #[test]
    fn retain_rows_keeps_only_requested_rows() {
        let s = State::goal(4);
        let kept = s.retain_rows(&[1, 3]);
        assert_eq!(kept.nonempty_rows(), vec![1, 3]);
        assert!((kept.data_fraction() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_state_properties() {
        let e = State::empty(3);
        assert!(e.is_empty());
        assert_eq!(e.data_fraction(), 0.0);
        assert!(e.le(&State::initial(3, 0)));
    }

    #[test]
    fn display_is_compact_grid() {
        let s = State::initial(2, 0);
        assert_eq!(s.to_string(), "1.\n1.");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn initial_device_out_of_range_panics() {
        State::initial(2, 2);
    }
}
