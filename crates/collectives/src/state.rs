use std::fmt;
use std::hash::{Hash, Hasher};

use crate::bitset::{iter_word_ones, Bitset};

/// The state of one device: a `k × k` boolean matrix (paper Figure 7).
///
/// The data each device holds is treated as `k` chunks. Row `r` describes
/// chunk `r`: bit `(r, j)` is set when device `j`'s original chunk `r` has
/// been folded into the data this device currently holds. A row with no set
/// bit means the device currently holds no data for that chunk (e.g. after a
/// `ReduceScatter` gave the chunk to a different device).
///
/// The matrix is stored as a single contiguous word buffer — one allocation
/// per state, each row a word-aligned slice — with a cached bitmask of the
/// non-empty rows, so hashing, equality and the semantics pre-condition
/// checks are flat word loops instead of nested pointer chasing.
#[derive(Debug, Clone)]
pub struct State {
    k: usize,
    /// 64-bit words per row (`k.div_ceil(64)`).
    words_per_row: usize,
    /// Row-major word buffer of `k * words_per_row` words.
    words: Box<[u64]>,
    /// Cached non-empty-rows mask: bit `r` is set iff row `r` has a set bit.
    mask: Box<[u64]>,
}

impl PartialEq for State {
    fn eq(&self, other: &Self) -> bool {
        // `mask` is a function of `words`, so comparing it would be redundant.
        self.k == other.k && self.words == other.words
    }
}

impl Eq for State {}

impl Hash for State {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.k.hash(state);
        self.words.hash(state);
    }
}

impl State {
    /// The empty state (no data at all) for a scope of `k` devices.
    pub fn empty(k: usize) -> Self {
        let words_per_row = k.div_ceil(64);
        State {
            k,
            words_per_row,
            words: vec![0; k * words_per_row].into_boxed_slice(),
            mask: vec![0; words_per_row].into_boxed_slice(),
        }
    }

    /// The initial state of device `device`: it holds its own copy of every
    /// chunk and nothing else (column `device` is all ones).
    ///
    /// # Panics
    ///
    /// Panics if `device >= k`.
    pub fn initial(k: usize, device: usize) -> Self {
        assert!(device < k, "device {device} out of range {k}");
        let mut s = State::empty(k);
        for r in 0..k {
            s.set(r, device, true);
        }
        s
    }

    /// The goal state of a full reduction over all `k` devices: every chunk
    /// has been reduced over every device (the all-ones matrix).
    pub fn goal(k: usize) -> Self {
        let mut s = State::empty(k);
        for w in s.words.iter_mut() {
            *w = u64::MAX;
        }
        for w in s.mask.iter_mut() {
            *w = u64::MAX;
        }
        s.clear_row_slack();
        s.clear_mask_slack();
        s
    }

    /// Zeroes the bits above `k` in every row's last word.
    fn clear_row_slack(&mut self) {
        if self.k.is_multiple_of(64) || self.words_per_row == 0 {
            return;
        }
        let keep = (1u64 << (self.k % 64)) - 1;
        for r in 0..self.k {
            self.words[(r + 1) * self.words_per_row - 1] &= keep;
        }
    }

    /// Zeroes the bits above `k` in the mask's last word.
    fn clear_mask_slack(&mut self) {
        if !self.k.is_multiple_of(64) {
            if let Some(last) = self.mask.last_mut() {
                *last &= (1u64 << (self.k % 64)) - 1;
            }
        }
    }

    /// Number of devices in the reduction scope (the matrix dimension).
    pub fn dim(&self) -> usize {
        self.k
    }

    /// The raw row-major word buffer (`k * k.div_ceil(64)` words, each row
    /// padded to a word boundary with clear slack bits). Together with
    /// [`dim`](State::dim) this is the state's entire identity — the table
    /// store serializes exactly these words.
    pub fn raw_words(&self) -> &[u64] {
        &self.words
    }

    /// Rebuilds a state from [`dim`](State::dim) and the
    /// [`raw_words`](State::raw_words) buffer, the inverse of serialization.
    /// Slack bits above `k` are cleared and the non-empty-rows mask is
    /// recomputed, so a round-tripped state is bit-identical to the original
    /// even if the input words carried junk slack.
    ///
    /// Returns `None` when `words` is not exactly `k * k.div_ceil(64)` long.
    pub fn from_raw_words(k: usize, words: Vec<u64>) -> Option<State> {
        let words_per_row = k.div_ceil(64);
        if words.len() != k * words_per_row {
            return None;
        }
        let mut state = State {
            k,
            words_per_row,
            words: words.into_boxed_slice(),
            mask: vec![0; words_per_row].into_boxed_slice(),
        };
        state.clear_row_slack();
        for r in 0..k {
            if !state.row_words(r).iter().all(|&w| w == 0) {
                state.mask[r / 64] |= 1 << (r % 64);
            }
        }
        Some(state)
    }

    /// A read-only view of row `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r >= k`.
    pub fn row(&self, r: usize) -> Row<'_> {
        Row {
            len: self.k,
            words: self.row_words(r),
        }
    }

    /// The words of row `r`.
    pub(crate) fn row_words(&self, r: usize) -> &[u64] {
        &self.words[r * self.words_per_row..(r + 1) * self.words_per_row]
    }

    /// Mutable access to the words of row `r`. The caller must keep the
    /// cached non-empty-rows mask consistent: only use this for edits that
    /// cannot empty a non-empty row or fill an empty one (e.g. OR-ing into a
    /// row already known non-empty).
    pub(crate) fn row_words_mut(&mut self, r: usize) -> &mut [u64] {
        &mut self.words[r * self.words_per_row..(r + 1) * self.words_per_row]
    }

    /// The cached non-empty-rows mask words.
    pub(crate) fn mask_words(&self) -> &[u64] {
        &self.mask
    }

    /// Sets a single bit of the matrix.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    pub fn set(&mut self, row: usize, col: usize, value: bool) {
        assert!(row < self.k, "row index {row} out of range {}", self.k);
        assert!(col < self.k, "column index {col} out of range {}", self.k);
        let word = row * self.words_per_row + col / 64;
        let bit = 1u64 << (col % 64);
        if value {
            self.words[word] |= bit;
            self.mask[row / 64] |= 1 << (row % 64);
        } else {
            self.words[word] &= !bit;
            if self.row_words(row).iter().all(|&w| w == 0) {
                self.mask[row / 64] &= !(1u64 << (row % 64));
            }
        }
    }

    /// Reads a single bit of the matrix.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    pub fn get(&self, row: usize, col: usize) -> bool {
        assert!(row < self.k, "row index {row} out of range {}", self.k);
        assert!(col < self.k, "column index {col} out of range {}", self.k);
        (self.words[row * self.words_per_row + col / 64] >> (col % 64)) & 1 == 1
    }

    /// The indices of the non-empty rows — the chunks this device currently
    /// holds data for ("`rows`" in the paper's semantics).
    pub fn nonempty_rows(&self) -> Vec<usize> {
        iter_word_ones(&self.mask).collect()
    }

    /// The set of non-empty row indices as a bitset (a copy of the cached
    /// mask).
    pub fn rows_mask(&self) -> Bitset {
        Bitset::from_words(self.k, self.mask.to_vec())
    }

    /// The number of chunks this device currently holds data for (a popcount
    /// of the cached mask — no allocation).
    pub fn num_nonempty_rows(&self) -> usize {
        self.mask.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// The fraction of the full per-device buffer this device currently
    /// holds: non-empty rows divided by `k`. Used by the cost models to size
    /// transfers.
    pub fn data_fraction(&self) -> f64 {
        if self.k == 0 {
            0.0
        } else {
            self.num_nonempty_rows() as f64 / self.k as f64
        }
    }

    /// Whether the device holds no data at all.
    pub fn is_empty(&self) -> bool {
        self.mask.iter().all(|&w| w == 0)
    }

    /// Element-wise union with another state of the same dimension.
    ///
    /// # Panics
    ///
    /// Panics if the dimensions differ.
    pub fn union_with(&mut self, other: &State) {
        assert_eq!(self.k, other.k, "state dimension mismatch");
        for (a, b) in self.words.iter_mut().zip(other.words.iter()) {
            *a |= b;
        }
        for (a, b) in self.mask.iter_mut().zip(other.mask.iter()) {
            *a |= b;
        }
    }

    /// Whether `self` is element-wise less than or equal to `other`
    /// (every bit of `self` is also set in `other`).
    ///
    /// # Panics
    ///
    /// Panics if the dimensions differ.
    pub fn le(&self, other: &State) -> bool {
        assert_eq!(self.k, other.k, "state dimension mismatch");
        self.words
            .iter()
            .zip(other.words.iter())
            .all(|(a, b)| a & !b == 0)
    }

    /// Whether `self` is element-wise strictly below `other`.
    ///
    /// # Panics
    ///
    /// Panics if the dimensions differ.
    pub fn lt(&self, other: &State) -> bool {
        self.le(other) && self != other
    }

    /// Clears every row whose index is **not** in `keep`, returning the state a
    /// `ReduceScatter` leaves on one device.
    pub(crate) fn retain_rows(&self, keep: &[usize]) -> State {
        let mut out = State::empty(self.k);
        for &r in keep {
            out.row_words_mut(r).copy_from_slice(self.row_words(r));
            if !self.row_words(r).iter().all(|&w| w == 0) {
                out.mask[r / 64] |= 1 << (r % 64);
            }
        }
        out
    }
}

/// A read-only view of one row of a [`State`] matrix: which devices'
/// contributions to one chunk this device holds.
#[derive(Debug, Clone, Copy)]
pub struct Row<'a> {
    len: usize,
    words: &'a [u64],
}

impl Row<'_> {
    /// The number of bits in the row (the matrix dimension `k`).
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the row has length zero.
    pub fn is_len_zero(&self) -> bool {
        self.len == 0
    }

    /// Whether no bit is set.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Reads one bit.
    ///
    /// # Panics
    ///
    /// Panics if `index >= len`.
    pub fn get(&self, index: usize) -> bool {
        assert!(
            index < self.len,
            "bit index {index} out of range {}",
            self.len
        );
        (self.words[index / 64] >> (index % 64)) & 1 == 1
    }

    /// The number of set bits.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Whether the two rows share no set bit.
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    pub fn is_disjoint(&self, other: Row<'_>) -> bool {
        assert_eq!(self.len, other.len, "row length mismatch");
        self.words.iter().zip(other.words).all(|(a, b)| a & b == 0)
    }

    /// Whether every set bit of `self` is also set in `other`.
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    pub fn is_subset(&self, other: Row<'_>) -> bool {
        assert_eq!(self.len, other.len, "row length mismatch");
        self.words.iter().zip(other.words).all(|(a, b)| a & !b == 0)
    }

    /// Iterates over the indices of set bits, in increasing order.
    pub fn iter_ones(&self) -> impl Iterator<Item = usize> + '_ {
        iter_word_ones(self.words)
    }
}

impl fmt::Display for State {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for r in 0..self.k {
            for c in 0..self.k {
                write!(f, "{}", if self.get(r, c) { '1' } else { '.' })?;
            }
            if r + 1 < self.k {
                writeln!(f)?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn initial_and_goal_shapes() {
        let s = State::initial(4, 2);
        assert_eq!(s.num_nonempty_rows(), 4);
        assert!(s.get(0, 2) && s.get(3, 2) && !s.get(0, 0));
        let g = State::goal(4);
        assert_eq!(g.num_nonempty_rows(), 4);
        assert!(s.le(&g) && s.lt(&g) && !g.lt(&g));
        assert!((s.data_fraction() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn union_and_rows() {
        let mut a = State::initial(3, 0);
        let b = State::initial(3, 1);
        a.union_with(&b);
        assert!(a.get(0, 0) && a.get(0, 1) && !a.get(0, 2));
        assert_eq!(a.rows_mask().count_ones(), 3);
    }

    #[test]
    fn retain_rows_keeps_only_requested_rows() {
        let s = State::goal(4);
        let kept = s.retain_rows(&[1, 3]);
        assert_eq!(kept.nonempty_rows(), vec![1, 3]);
        assert!((kept.data_fraction() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_state_properties() {
        let e = State::empty(3);
        assert!(e.is_empty());
        assert_eq!(e.data_fraction(), 0.0);
        assert!(e.le(&State::initial(3, 0)));
    }

    #[test]
    fn display_is_compact_grid() {
        let s = State::initial(2, 0);
        assert_eq!(s.to_string(), "1.\n1.");
    }

    #[test]
    fn mask_tracks_sets_and_clears() {
        let mut s = State::empty(3);
        assert_eq!(s.num_nonempty_rows(), 0);
        s.set(1, 2, true);
        s.set(1, 0, true);
        assert_eq!(s.nonempty_rows(), vec![1]);
        s.set(1, 2, false);
        assert_eq!(s.nonempty_rows(), vec![1]);
        s.set(1, 0, false);
        assert!(s.is_empty());
        assert_eq!(s.rows_mask().count_ones(), 0);
    }

    #[test]
    fn goal_beyond_one_word_is_all_ones() {
        let k = 70;
        let g = State::goal(k);
        assert_eq!(g.num_nonempty_rows(), k);
        for r in [0, 63, 64, 69] {
            assert_eq!(g.row(r).count_ones(), k);
            assert!(g.get(r, 69) && g.get(r, 0));
        }
        // Slack bits above `k` stay clear, so equality and hashing see only
        // real matrix bits.
        let mut built = State::empty(k);
        for r in 0..k {
            for c in 0..k {
                built.set(r, c, true);
            }
        }
        assert_eq!(g, built);
    }

    #[test]
    fn row_views_expose_bit_operations() {
        let s = State::initial(4, 2);
        let r = s.row(0);
        assert_eq!(r.len(), 4);
        assert!(!r.is_len_zero());
        assert!(r.get(2) && !r.get(0));
        assert_eq!(r.iter_ones().collect::<Vec<_>>(), vec![2]);
        assert!(r.is_disjoint(State::initial(4, 1).row(0)));
        assert!(r.is_subset(State::goal(4).row(0)));
        assert!(State::empty(4).row(3).is_empty());
    }

    #[test]
    fn raw_words_round_trip_bit_identically() {
        for k in [1, 3, 4, 63, 64, 70] {
            for state in [State::empty(k), State::initial(k, k - 1), State::goal(k)] {
                let back = State::from_raw_words(k, state.raw_words().to_vec()).unwrap();
                assert_eq!(back, state, "k={k}");
                assert_eq!(back.nonempty_rows(), state.nonempty_rows(), "k={k}");
            }
        }
        // Junk slack bits are scrubbed, restoring canonical equality/hashing.
        let original = State::initial(3, 1);
        let mut words = original.raw_words().to_vec();
        words[0] |= 1u64 << 63;
        let scrubbed = State::from_raw_words(3, words).unwrap();
        assert_eq!(scrubbed, original);
        // Wrong buffer length is rejected.
        assert!(State::from_raw_words(3, vec![0; 2]).is_none());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn initial_device_out_of_range_panics() {
        State::initial(2, 2);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn get_out_of_range_panics() {
        State::empty(2).get(0, 2);
    }
}
