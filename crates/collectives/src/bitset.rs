/// A fixed-length bitset backed by 64-bit words.
///
/// Used for the rows of a device [`crate::State`] matrix and for sets of row
/// indices. The length is fixed at construction; operations on bitsets of
/// different lengths panic, which keeps the state-matrix invariants local.
///
/// # Examples
///
/// ```
/// use p2_collectives::Bitset;
/// let mut a = Bitset::new(8);
/// a.set(3, true);
/// let mut b = Bitset::new(8);
/// b.set(5, true);
/// assert!(a.is_disjoint(&b));
/// a.union_with(&b);
/// assert_eq!(a.count_ones(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Bitset {
    len: usize,
    words: Vec<u64>,
}

impl Bitset {
    /// Creates an empty bitset of the given length.
    pub fn new(len: usize) -> Self {
        Bitset {
            len,
            words: vec![0; len.div_ceil(64)],
        }
    }

    /// Wraps an existing word buffer (little-endian bit order, as produced by
    /// the flat [`crate::State`] storage) as a bitset.
    pub(crate) fn from_words(len: usize, words: Vec<u64>) -> Self {
        debug_assert_eq!(words.len(), len.div_ceil(64));
        debug_assert!(len.is_multiple_of(64) || words.last().is_none_or(|w| w >> (len % 64) == 0));
        Bitset { len, words }
    }

    /// Creates a bitset of the given length with every bit set.
    pub fn full(len: usize) -> Self {
        let mut b = Bitset::new(len);
        for i in 0..len {
            b.set(i, true);
        }
        b
    }

    /// Creates a bitset with exactly one bit set.
    ///
    /// # Panics
    ///
    /// Panics if `index >= len`.
    pub fn singleton(len: usize, index: usize) -> Self {
        let mut b = Bitset::new(len);
        b.set(index, true);
        b
    }

    /// The number of bits in the set.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the bitset has length zero.
    pub fn is_len_zero(&self) -> bool {
        self.len == 0
    }

    /// Whether no bit is set.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Reads one bit.
    ///
    /// # Panics
    ///
    /// Panics if `index >= len`.
    pub fn get(&self, index: usize) -> bool {
        assert!(
            index < self.len,
            "bit index {index} out of range {}",
            self.len
        );
        (self.words[index / 64] >> (index % 64)) & 1 == 1
    }

    /// Writes one bit.
    ///
    /// # Panics
    ///
    /// Panics if `index >= len`.
    pub fn set(&mut self, index: usize, value: bool) {
        assert!(
            index < self.len,
            "bit index {index} out of range {}",
            self.len
        );
        if value {
            self.words[index / 64] |= 1 << (index % 64);
        } else {
            self.words[index / 64] &= !(1 << (index % 64));
        }
    }

    /// The number of set bits.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// In-place union with another bitset of the same length.
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    pub fn union_with(&mut self, other: &Bitset) {
        assert_eq!(self.len, other.len, "bitset length mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
    }

    /// Whether the two bitsets share no set bit.
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    pub fn is_disjoint(&self, other: &Bitset) -> bool {
        assert_eq!(self.len, other.len, "bitset length mismatch");
        self.words.iter().zip(&other.words).all(|(a, b)| a & b == 0)
    }

    /// Whether every set bit of `self` is also set in `other`.
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    pub fn is_subset(&self, other: &Bitset) -> bool {
        assert_eq!(self.len, other.len, "bitset length mismatch");
        self.words
            .iter()
            .zip(&other.words)
            .all(|(a, b)| a & !b == 0)
    }

    /// Iterates over the indices of set bits, in increasing order (skipping
    /// whole zero words, so iteration is proportional to the words scanned
    /// plus the bits found rather than to the bit length).
    pub fn iter_ones(&self) -> impl Iterator<Item = usize> + '_ {
        iter_word_ones(&self.words)
    }
}

/// Iterates over the set-bit indices of a little-endian word buffer.
pub(crate) fn iter_word_ones(words: &[u64]) -> impl Iterator<Item = usize> + '_ {
    words.iter().enumerate().flat_map(|(wi, &w)| {
        std::iter::successors((w != 0).then_some(w), |&rest| {
            let rest = rest & (rest - 1);
            (rest != 0).then_some(rest)
        })
        .map(move |rest| wi * 64 + rest.trailing_zeros() as usize)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_set_get() {
        let mut b = Bitset::new(70);
        assert!(b.is_empty());
        b.set(0, true);
        b.set(69, true);
        assert!(b.get(0) && b.get(69) && !b.get(35));
        assert_eq!(b.count_ones(), 2);
        assert_eq!(b.iter_ones().collect::<Vec<_>>(), vec![0, 69]);
        b.set(0, false);
        assert_eq!(b.count_ones(), 1);
    }

    #[test]
    fn union_subset_disjoint() {
        let a = Bitset::singleton(8, 1);
        let b = Bitset::singleton(8, 2);
        assert!(a.is_disjoint(&b));
        let mut u = a.clone();
        u.union_with(&b);
        assert!(a.is_subset(&u) && b.is_subset(&u));
        assert!(!u.is_subset(&a));
        assert!(!u.is_disjoint(&a));
    }

    #[test]
    fn full_has_all_bits() {
        let f = Bitset::full(5);
        assert_eq!(f.count_ones(), 5);
        assert!(Bitset::new(5).is_subset(&f));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_panics() {
        Bitset::new(4).get(4);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn length_mismatch_panics() {
        Bitset::new(4).is_disjoint(&Bitset::new(5));
    }
}
