//! Dependency-free data parallelism on scoped OS threads.
//!
//! This crate is the workspace's stand-in for `rayon` (the build runs without
//! network access, so crates.io dependencies are unavailable): it fans a map
//! over a pool of scoped threads and returns the results **in input order**,
//! so callers that were deterministic serially stay deterministic in
//! parallel. Work is distributed dynamically (an atomic cursor over the input)
//! which keeps cores busy even when per-item cost is highly skewed — exactly
//! the shape of the placement × synthesis sweep, where one placement can
//! synthesize orders of magnitude more programs than another.
//!
//! # Example
//!
//! ```
//! let squares = p2_par::par_map(&[1usize, 2, 3, 4], |_, &x| x * x);
//! assert_eq!(squares, vec![1, 4, 9, 16]);
//! ```

#![deny(missing_docs)]

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex};

/// Number of worker threads `par_map` uses by default: the machine's available
/// parallelism, or 1 when it cannot be queried.
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Maps `f` over `items` on up to [`default_threads()`] scoped threads,
/// returning results in input order. `f` receives the item index alongside the
/// item so callers can derive per-item seeds or labels.
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    par_map_threads(default_threads(), items, f)
}

/// [`par_map`] with an explicit thread count. `0` resolves to
/// [`default_threads()`] (every available core), `1` runs serially on the
/// calling thread; the output is identical for any value.
pub fn par_map_threads<T, R, F>(threads: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let threads = if threads == 0 {
        default_threads()
    } else {
        threads
    };
    let workers = threads.min(items.len());
    if workers <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let cursor = AtomicUsize::new(0);
    let (tx, rx) = mpsc::channel::<(usize, R)>();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            let tx = tx.clone();
            let cursor = &cursor;
            let f = &f;
            scope.spawn(move || loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                let Some(item) = items.get(i) else { break };
                // A worker may die of a panic in `f`; the send only fails if
                // the receiver is gone, which cannot happen inside the scope.
                let _ = tx.send((i, f(i, item)));
            });
        }
        drop(tx);
        let mut slots: Vec<Option<R>> = (0..items.len()).map(|_| None).collect();
        let mut received = 0usize;
        for (i, r) in rx {
            slots[i] = Some(r);
            received += 1;
        }
        assert_eq!(received, items.len(), "a parallel worker panicked");
        slots
            .into_iter()
            .map(|s| s.expect("every slot filled"))
            .collect()
    })
}

/// Maps `f` over a *streamed* sequence of items on worker threads, returning
/// results in production order without ever materializing the input.
///
/// `produce` runs on the calling thread and pushes items one at a time into
/// the closure it is given; workers pull them from a bounded channel (capacity
/// `2 × workers`), so at most `O(threads)` items are in flight at any moment —
/// this is what lets the placement sweep consume
/// `p2_placement::for_each_matrix` without collecting the matrices first.
/// `f` receives each item's production index alongside the item.
///
/// `threads` follows the [`par_map_threads`] convention: `0` resolves to
/// [`default_threads()`], `1` runs everything serially on the calling thread.
/// The output is identical for any value whenever `f` is a pure function of
/// `(index, item)`.
///
/// # Panics
///
/// Panics if a worker thread panics.
///
/// # Examples
///
/// ```
/// let squares = p2_par::par_map_stream(
///     0,
///     |emit| (1usize..=4).for_each(emit),
///     |_, x| x * x,
/// );
/// assert_eq!(squares, vec![1, 4, 9, 16]);
/// ```
pub fn par_map_stream<T, R, P, F>(threads: usize, produce: P, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    P: FnOnce(&mut dyn FnMut(T)),
    F: Fn(usize, T) -> R + Sync,
{
    let threads = if threads == 0 {
        default_threads()
    } else {
        threads
    };
    if threads <= 1 {
        let mut out = Vec::new();
        let mut index = 0usize;
        let mut emit = |item: T| {
            out.push(f(index, item));
            index += 1;
        };
        produce(&mut emit);
        return out;
    }

    let (work_tx, work_rx) = mpsc::sync_channel::<(usize, T)>(threads * 2);
    let work_rx = Arc::new(Mutex::new(work_rx));
    let (result_tx, result_rx) = mpsc::channel::<(usize, R)>();
    std::thread::scope(|scope| {
        for _ in 0..threads {
            let work_rx = Arc::clone(&work_rx);
            let result_tx = result_tx.clone();
            let f = &f;
            scope.spawn(move || loop {
                // Holding the lock only for the blocking recv serializes the
                // *waiting*, not the work; items are coarse-grained.
                let item = work_rx.lock().expect("work queue poisoned").recv();
                let Ok((i, item)) = item else { break };
                let _ = result_tx.send((i, f(i, item)));
            });
        }
        drop(result_tx);
        // Workers hold the only receiver handles: if they all die, the send
        // below fails instead of blocking forever on a full channel.
        drop(work_rx);

        let mut produced = 0usize;
        let mut emit = |item: T| {
            work_tx
                .send((produced, item))
                .expect("a parallel worker panicked");
            produced += 1;
        };
        produce(&mut emit);
        drop(work_tx);

        let mut slots: Vec<Option<R>> = Vec::new();
        slots.resize_with(produced, || None);
        let mut received = 0usize;
        for (i, r) in result_rx {
            slots[i] = Some(r);
            received += 1;
        }
        assert_eq!(received, produced, "a parallel worker panicked");
        slots
            .into_iter()
            .map(|s| s.expect("every slot filled"))
            .collect()
    })
}

// ---------------------------------------------------------------------------
// Work-stealing scheduler
// ---------------------------------------------------------------------------

std::thread_local! {
    /// The scheduler whose worker loop is running on this thread, if any,
    /// lifetime-erased to a thin pointer. Set for exactly the duration of
    /// [`SchedulerState::worker`], which is strictly inside the scope that
    /// owns the state, so the pointer never dangles while non-null.
    static CURRENT_POOL: std::cell::Cell<*const ()> = const { std::cell::Cell::new(std::ptr::null()) };
}

/// Clears the thread-local pool registration on drop, so a worker that dies
/// of a job panic does not leave a dangling registration behind.
struct PoolRegistration;

impl PoolRegistration {
    fn new(state: *const ()) -> Self {
        CURRENT_POOL.with(|c| c.set(state));
        PoolRegistration
    }
}

impl Drop for PoolRegistration {
    fn drop(&mut self) {
        CURRENT_POOL.with(|c| c.set(std::ptr::null()));
    }
}

/// Whether the current thread is a worker of an active [`scope`] pool.
///
/// When this returns `true`, [`nested_for_each`] will recruit the pool's idle
/// workers; otherwise it runs its items serially on the calling thread.
pub fn on_pool_worker() -> bool {
    CURRENT_POOL.with(|c| !c.get().is_null())
}

/// Shared control block for one [`nested_for_each`] region: an atomic cursor
/// over the item range, a finished counter the caller waits on, and the
/// lifetime-erased task.
///
/// # Safety of the erased task reference
///
/// `task` is transmuted to `'static` but really borrows the caller's stack.
/// The caller does not return until `finished == n`, and `finished` only
/// counts items whose `task(i)` call has completed, so any thread that
/// successfully claims an index `i < n` runs the task while the caller's
/// frame is provably alive. Threads that claim `i >= n` never touch `task` —
/// they drop their `Arc<NestedBag>` (plain counters, safe to drop late) and
/// exit.
struct NestedBag {
    cursor: AtomicUsize,
    n: usize,
    finished: Mutex<usize>,
    done: std::sync::Condvar,
    panic: Mutex<Option<Box<dyn std::any::Any + Send>>>,
    task: &'static (dyn Fn(usize) + Sync),
}

impl NestedBag {
    /// Claims and runs items until the bag is empty, then returns. Never
    /// blocks — helpers that find the bag already drained exit immediately,
    /// which is what makes recruiting extra helpers always safe.
    fn run_items(&self) {
        loop {
            let i = self.cursor.fetch_add(1, Ordering::Relaxed);
            if i >= self.n {
                return;
            }
            let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                (self.task)(i);
            }));
            if let Err(payload) = outcome {
                let mut slot = self.panic.lock().expect("nested panic slot poisoned");
                slot.get_or_insert(payload);
            }
            let mut finished = self.finished.lock().expect("nested bag poisoned");
            *finished += 1;
            if *finished == self.n {
                self.done.notify_all();
            }
        }
    }
}

/// Runs `task(0..n)` with the items distributed over the current pool's
/// workers, blocking until all `n` calls have completed.
///
/// On a pool worker thread (see [`on_pool_worker`]) this recruits up to
/// `threads - 1` idle workers as helpers: each helper claims items from a
/// shared atomic cursor until the bag is empty and then *exits* rather than
/// blocking, so — unlike a nested join — recruitment can never deadlock the
/// pool, and a pool whose workers are all busy simply leaves the caller to
/// drain the bag itself. Off-pool (or with `n <= 1`) the items run serially
/// on the calling thread.
///
/// Item execution order is unspecified; callers needing determinism should
/// write results into per-index slots and combine them in index order after
/// this returns. If any `task(i)` panics, the first panic is resumed on the
/// calling thread after all claimed items finish.
pub fn nested_for_each(n: usize, task: &(dyn Fn(usize) + Sync)) {
    let pool = CURRENT_POOL.with(|c| c.get());
    if n == 0 {
        return;
    }
    if pool.is_null() || n == 1 {
        for i in 0..n {
            task(i);
        }
        return;
    }
    // Safety: non-null only while the owning scope (and thus the state) is
    // alive, and this worker thread's lifetime is contained in that scope.
    let state: &SchedulerState<'static> = unsafe { &*(pool as *const SchedulerState<'static>) };
    let helpers = (state.threads - 1).min(n - 1);
    if helpers == 0 {
        for i in 0..n {
            task(i);
        }
        return;
    }
    // Safety: see `NestedBag` — the caller outlives every dereference.
    let task: &'static (dyn Fn(usize) + Sync) =
        unsafe { std::mem::transmute::<&(dyn Fn(usize) + Sync), _>(task) };
    let bag = Arc::new(NestedBag {
        cursor: AtomicUsize::new(0),
        n,
        finished: Mutex::new(0),
        done: std::sync::Condvar::new(),
        panic: Mutex::new(None),
        task,
    });
    for _ in 0..helpers {
        let bag = Arc::clone(&bag);
        // A fully `'static` job (the bag is Arc-owned), so it outlives any
        // `'env` and can sit in a deque past this call without dangling.
        let job: Job<'static> = Box::new(move || bag.run_items());
        state.push_job(job);
    }
    // The caller drains the bag too; once it runs dry, every remaining
    // unfinished item is actively executing on another worker, so the wait
    // below is on running code, not queued code — progress is guaranteed.
    bag.run_items();
    let mut finished = bag.finished.lock().expect("nested bag poisoned");
    while *finished < n {
        finished = bag.done.wait(finished).expect("nested bag poisoned");
    }
    drop(finished);
    let payload = bag.panic.lock().expect("nested panic slot poisoned").take();
    if let Some(payload) = payload {
        std::panic::resume_unwind(payload);
    }
}

/// Runs `f` as a job on a fresh `threads`-worker pool and returns its result.
///
/// This is the entry point for *intra*-task parallelism when the caller is
/// not already on a pool: `f` executes on a worker thread, so
/// [`nested_for_each`] calls inside it can recruit the remaining
/// `threads - 1` workers. `threads` follows the usual convention (`0` = all
/// cores); `<= 1` just calls `f` inline.
pub fn with_pool<T, F>(threads: usize, f: F) -> T
where
    T: Send,
    F: FnOnce() -> T + Send,
{
    let threads = if threads == 0 {
        default_threads()
    } else {
        threads
    };
    if threads <= 1 {
        return f();
    }
    scope(threads, |sched| sched.spawn(f).join())
}

/// Options for [`scope_with`].
#[derive(Debug, Clone, Copy, Default)]
pub struct SchedulerOptions {
    /// Worker-thread count. `0` resolves to [`default_threads()`].
    pub threads: usize,
    /// Seed for the deque-assignment permutation. `0` assigns jobs to worker
    /// deques round-robin in spawn order; any other value scatters them
    /// pseudo-randomly (SplitMix64 of `seed ^ spawn_index`). Results of
    /// deterministic jobs are identical for every seed — the knob exists so
    /// tests can exercise arbitrary steal schedules.
    pub seed: u64,
}

type Job<'env> = Box<dyn FnOnce() + Send + 'env>;

/// Per-worker FIFO deques plus the shutdown flag, all behind one mutex. Jobs
/// here are coarse (a whole placement evaluation), so a single global lock is
/// cheaper than per-deque locks and makes the scheduling invariants below easy
/// to state exactly.
struct Queues<'env> {
    deques: Vec<std::collections::VecDeque<Job<'env>>>,
    shutdown: bool,
}

struct SchedulerState<'env> {
    queues: Mutex<Queues<'env>>,
    work: std::sync::Condvar,
    threads: usize,
    seed: u64,
    spawned: AtomicUsize,
    steals: AtomicUsize,
    in_flight: AtomicUsize,
    peak_in_flight: AtomicUsize,
}

impl<'env> SchedulerState<'env> {
    fn new(threads: usize, seed: u64) -> Self {
        SchedulerState {
            queues: Mutex::new(Queues {
                deques: (0..threads)
                    .map(|_| std::collections::VecDeque::new())
                    .collect(),
                shutdown: false,
            }),
            work: std::sync::Condvar::new(),
            threads,
            seed,
            spawned: AtomicUsize::new(0),
            steals: AtomicUsize::new(0),
            in_flight: AtomicUsize::new(0),
            peak_in_flight: AtomicUsize::new(0),
        }
    }

    /// Takes the next job for worker `id`: front of its own deque first, then
    /// — only when its own deque is empty — the front of another worker's.
    ///
    /// Both ends are FIFO on purpose. Jobs land in each deque in ascending
    /// global spawn order, a worker steals only when its own deque is empty,
    /// and pipeline jobs only ever block on *strictly lower* spawn indices
    /// (the dyadic bound tree's prefix). Under those invariants the minimal
    /// incomplete job is always at the front of some deque and some non-blocked
    /// worker will reach it, so the pool cannot deadlock — for any deque
    /// assignment, which is what makes [`SchedulerOptions::seed`] safe to
    /// randomize.
    fn take(&self, queues: &mut Queues<'env>, id: usize) -> Option<Job<'env>> {
        if let Some(job) = queues.deques[id].pop_front() {
            return Some(job);
        }
        for offset in 1..self.threads {
            let victim = (id + offset) % self.threads;
            if let Some(job) = queues.deques[victim].pop_front() {
                self.steals.fetch_add(1, Ordering::Relaxed);
                return Some(job);
            }
        }
        None
    }

    /// Queues `job` on the deque picked from the next spawn index and wakes a
    /// worker. Shared by [`Scheduler::spawn`] and [`nested_for_each`]'s
    /// helper recruitment.
    fn push_job(&self, job: Job<'env>) {
        let index = self.spawned.fetch_add(1, Ordering::Relaxed);
        let target = self.pick_deque(index);
        {
            let mut queues = self.queues.lock().expect("scheduler queues poisoned");
            queues.deques[target].push_back(job);
        }
        self.work.notify_one();
    }

    fn pick_deque(&self, index: usize) -> usize {
        if self.seed == 0 {
            return index % self.threads;
        }
        // SplitMix64 of seed ^ index: a deterministic pseudo-random
        // assignment, still ascending-in-spawn-order within each deque.
        let mut z = self
            .seed
            .wrapping_add(0x9e37_79b9_7f4a_7c15u64.wrapping_mul(index as u64 + 1));
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        ((z ^ (z >> 31)) % self.threads as u64) as usize
    }

    fn worker(&self, id: usize) {
        // Register this thread so jobs can recruit the pool via
        // `nested_for_each`; the guard clears the slot even on panic.
        let _registration = PoolRegistration::new(self as *const SchedulerState<'env> as *const ());
        let mut queues = self.queues.lock().expect("scheduler queues poisoned");
        loop {
            if let Some(job) = self.take(&mut queues, id) {
                drop(queues);
                let running = self.in_flight.fetch_add(1, Ordering::Relaxed) + 1;
                self.peak_in_flight.fetch_max(running, Ordering::Relaxed);
                job();
                self.in_flight.fetch_sub(1, Ordering::Relaxed);
                queues = self.queues.lock().expect("scheduler queues poisoned");
                continue;
            }
            // Drain-before-exit: shutdown is only honoured once every deque is
            // empty, so jobs queued before the scope body returned (or
            // panicked) still run and release anyone joined on them.
            if queues.shutdown {
                return;
            }
            queues = self.work.wait(queues).expect("scheduler queues poisoned");
        }
    }
}

/// Flips the shutdown flag (and wakes every worker) when dropped, so workers
/// exit even when the scope body panics.
struct ShutdownGuard<'a, 'env>(&'a SchedulerState<'env>);

impl Drop for ShutdownGuard<'_, '_> {
    fn drop(&mut self) {
        self.0
            .queues
            .lock()
            .expect("scheduler queues poisoned")
            .shutdown = true;
        self.0.work.notify_all();
    }
}

struct JobSlot<R> {
    result: Mutex<Option<std::thread::Result<R>>>,
    done: std::sync::Condvar,
}

/// A handle to a job spawned on a [`Scheduler`], redeemable exactly once for
/// the job's result via [`JobHandle::join`].
pub struct JobHandle<R> {
    slot: Arc<JobSlot<R>>,
}

impl<R> JobHandle<R> {
    /// Blocks until the job completes and returns its result.
    ///
    /// If the job panicked, the panic is resumed on the joining thread, so a
    /// failure inside the pool surfaces exactly like a failure inline.
    pub fn join(self) -> R {
        let mut slot = self.slot.result.lock().expect("job slot poisoned");
        loop {
            if let Some(outcome) = slot.take() {
                match outcome {
                    Ok(value) => return value,
                    Err(payload) => std::panic::resume_unwind(payload),
                }
            }
            slot = self.slot.done.wait(slot).expect("job slot poisoned");
        }
    }
}

/// A scoped work-stealing thread pool: jobs may borrow from the environment
/// (`'env`) of the [`scope`] call that created the pool.
///
/// Workers keep per-worker FIFO deques and steal from each other's fronts
/// when idle, so a batch of jobs with wildly skewed costs (one placement can
/// synthesize orders of magnitude more programs than another) keeps every
/// core busy without any static partitioning. Jobs must not [`join`] other
/// jobs from *inside* a job body — a worker blocked in a nested join would
/// shrink the pool; join from the scope body instead. For parallelism *inside*
/// a job, use [`nested_for_each`], whose helpers never block and therefore
/// cannot deadlock the pool.
///
/// [`join`]: JobHandle::join
pub struct Scheduler<'scope, 'env> {
    state: &'scope SchedulerState<'env>,
}

impl<'scope, 'env> Scheduler<'scope, 'env> {
    /// Spawns `f` onto the pool and returns a handle to its result.
    ///
    /// The target deque is chosen from the spawn index (round-robin, or
    /// seed-scattered — see [`SchedulerOptions::seed`]); each deque therefore
    /// holds jobs in ascending spawn order, which the deadlock-freedom
    /// argument on the pool relies on.
    pub fn spawn<R, F>(&self, f: F) -> JobHandle<R>
    where
        R: Send + 'env,
        F: FnOnce() -> R + Send + 'env,
    {
        let slot = Arc::new(JobSlot {
            result: Mutex::new(None),
            done: std::sync::Condvar::new(),
        });
        let publish = Arc::clone(&slot);
        let job: Job<'env> = Box::new(move || {
            let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(f));
            *publish.result.lock().expect("job slot poisoned") = Some(outcome);
            publish.done.notify_all();
        });
        self.state.push_job(job);
        JobHandle { slot }
    }

    /// Spawns one job per item and joins them in order: a work-stolen
    /// [`par_map`] over owned items, usable from inside a scope.
    pub fn map<T, R, F>(&self, items: impl IntoIterator<Item = T>, f: F) -> Vec<R>
    where
        T: Send + 'env,
        R: Send + 'env,
        F: Fn(usize, T) -> R + Send + Sync + 'env,
    {
        let f = Arc::new(f);
        let handles: Vec<JobHandle<R>> = items
            .into_iter()
            .enumerate()
            .map(|(index, item)| {
                let f = Arc::clone(&f);
                self.spawn(move || f(index, item))
            })
            .collect();
        handles.into_iter().map(JobHandle::join).collect()
    }

    /// The pool's worker-thread count (after resolving `threads == 0`).
    pub fn threads(&self) -> usize {
        self.state.threads
    }

    /// Number of jobs executed by a worker other than the one they were
    /// queued on, so far.
    pub fn steals(&self) -> usize {
        self.state.steals.load(Ordering::Relaxed)
    }

    /// Highest number of jobs observed executing simultaneously, so far.
    /// Never exceeds [`Scheduler::threads`] — the oversubscription guard.
    pub fn peak_in_flight(&self) -> usize {
        self.state.peak_in_flight.load(Ordering::Relaxed)
    }
}

/// Runs `f` with a work-stealing pool of `threads` workers (`0` resolves to
/// [`default_threads()`]); equivalent to [`scope_with`] with a round-robin
/// deque assignment. The pool is torn down — after draining every queued job —
/// when `f` returns, and `f`'s value is returned.
pub fn scope<'env, T>(threads: usize, f: impl FnOnce(&Scheduler<'_, 'env>) -> T) -> T {
    scope_with(SchedulerOptions { threads, seed: 0 }, f)
}

/// Runs `f` with a work-stealing pool configured by `options`.
///
/// The calling thread never executes jobs itself, so the worker budget is
/// exactly `options.threads`: submitting N nested batches to one scope cannot
/// oversubscribe the machine the way N independent pools would.
pub fn scope_with<'env, T>(
    options: SchedulerOptions,
    f: impl FnOnce(&Scheduler<'_, 'env>) -> T,
) -> T {
    let threads = if options.threads == 0 {
        default_threads()
    } else {
        options.threads
    };
    // Declared before `thread::scope` so workers may borrow it: locals inside
    // the scope closure are dropped before the scope joins its threads.
    let state: SchedulerState<'env> = SchedulerState::new(threads, options.seed);
    std::thread::scope(|ts| {
        for id in 0..threads {
            let state = &state;
            ts.spawn(move || state.worker(id));
        }
        let _shutdown = ShutdownGuard(&state);
        f(&Scheduler { state: &state })
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order() {
        let input: Vec<usize> = (0..257).collect();
        let out = par_map(&input, |i, &x| {
            assert_eq!(i, x);
            x * 2
        });
        assert_eq!(out, input.iter().map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn serial_and_parallel_agree() {
        let input: Vec<u64> = (0..100).collect();
        let serial = par_map_threads(1, &input, |i, &x| x.wrapping_mul(i as u64 + 3));
        for threads in [2, 4, 8] {
            let parallel = par_map_threads(threads, &input, |i, &x| x.wrapping_mul(i as u64 + 3));
            assert_eq!(serial, parallel);
        }
    }

    #[test]
    fn empty_and_singleton_inputs() {
        assert_eq!(par_map::<u32, u32, _>(&[], |_, &x| x), Vec::<u32>::new());
        assert_eq!(par_map(&[7u32], |_, &x| x + 1), vec![8]);
    }

    #[test]
    fn zero_threads_means_all_cores() {
        let input: Vec<usize> = (0..50).collect();
        let auto = par_map_threads(0, &input, |_, &x| x + 1);
        assert_eq!(auto, par_map_threads(1, &input, |_, &x| x + 1));
    }

    #[test]
    fn more_threads_than_items_is_fine() {
        let out = par_map_threads(64, &[1u8, 2], |_, &x| x);
        assert_eq!(out, vec![1, 2]);
    }

    #[test]
    fn stream_preserves_production_order() {
        for threads in [0usize, 1, 2, 4, 8] {
            let out = par_map_stream(
                threads,
                |emit| (0usize..257).for_each(emit),
                |i, x| {
                    assert_eq!(i, x);
                    x * 2
                },
            );
            assert_eq!(out, (0..257).map(|x| x * 2).collect::<Vec<_>>());
        }
    }

    #[test]
    fn stream_and_slice_map_agree() {
        let input: Vec<u64> = (0..100).collect();
        let slice = par_map_threads(1, &input, |i, &x| x.wrapping_mul(i as u64 + 3));
        for threads in [1, 2, 4] {
            let stream = par_map_stream(
                threads,
                |emit| input.iter().copied().for_each(emit),
                |i, x| x.wrapping_mul(i as u64 + 3),
            );
            assert_eq!(slice, stream);
        }
    }

    #[test]
    fn stream_with_no_items_returns_empty() {
        for threads in [1usize, 4] {
            let out = par_map_stream(threads, |_emit| {}, |_, x: usize| x);
            assert!(out.is_empty());
        }
    }

    #[test]
    fn stream_with_more_threads_than_items_is_fine() {
        let out = par_map_stream(64, |emit| [1u8, 2].into_iter().for_each(emit), |_, x| x);
        assert_eq!(out, vec![1, 2]);
    }

    #[test]
    fn scheduler_spawn_join_returns_results() {
        for threads in [1usize, 2, 4] {
            let values: Vec<u64> = scope(threads, |sched| {
                let handles: Vec<JobHandle<u64>> =
                    (0..37u64).map(|i| sched.spawn(move || i * i)).collect();
                handles.into_iter().map(JobHandle::join).collect()
            });
            assert_eq!(values, (0..37u64).map(|i| i * i).collect::<Vec<_>>());
        }
    }

    #[test]
    fn scheduler_jobs_can_borrow_the_environment() {
        let input: Vec<u64> = (0..64).collect();
        let total = AtomicUsize::new(0);
        scope(4, |sched| {
            let handles: Vec<JobHandle<()>> = input
                .iter()
                .map(|&x| {
                    let total = &total;
                    sched.spawn(move || {
                        total.fetch_add(x as usize, Ordering::Relaxed);
                    })
                })
                .collect();
            handles.into_iter().for_each(JobHandle::join);
        });
        assert_eq!(total.into_inner(), (0..64).sum::<u64>() as usize);
    }

    #[test]
    fn scheduler_map_preserves_order_for_any_seed() {
        let expected: Vec<u64> = (0..100u64).map(|x| x.wrapping_mul(7)).collect();
        for seed in [0u64, 1, 0xdead_beef] {
            for threads in [1usize, 3, 8] {
                let out = scope_with(SchedulerOptions { threads, seed }, |sched| {
                    sched.map(0..100u64, |i, x| {
                        assert_eq!(i as u64, x);
                        x.wrapping_mul(7)
                    })
                });
                assert_eq!(out, expected);
            }
        }
    }

    #[test]
    fn scheduler_propagates_job_panics_on_join() {
        let outcome = std::panic::catch_unwind(|| {
            scope(2, |sched| {
                let ok = sched.spawn(|| 1u32);
                let bad = sched.spawn(|| panic!("boom in job"));
                assert_eq!(ok.join(), 1);
                bad.join();
            })
        });
        assert!(outcome.is_err(), "job panic must surface at join()");
    }

    #[test]
    fn scheduler_never_exceeds_its_thread_budget() {
        for budget in [1usize, 2, 3] {
            let peak = scope(budget, |sched| {
                let handles: Vec<JobHandle<()>> = (0..24)
                    .map(|_| {
                        sched.spawn(|| {
                            std::thread::sleep(std::time::Duration::from_millis(2));
                        })
                    })
                    .collect();
                handles.into_iter().for_each(JobHandle::join);
                sched.peak_in_flight()
            });
            assert!(
                peak >= 1 && peak <= budget,
                "peak {peak} vs budget {budget}"
            );
        }
    }

    #[test]
    fn scheduler_steals_across_deques() {
        // One deque gets every job (seed 0 round-robin over 1... use an
        // uneven load instead): worker 0's deque receives jobs 0 and 2 with
        // job 0 long-running, so an idle worker must steal job 2.
        let steals = scope(2, |sched| {
            let slow = sched.spawn(|| std::thread::sleep(std::time::Duration::from_millis(50)));
            let handles: Vec<JobHandle<()>> = (0..8).map(|_| sched.spawn(|| ())).collect();
            handles.into_iter().for_each(JobHandle::join);
            slow.join();
            sched.steals()
        });
        assert!(steals > 0, "idle worker should have stolen queued jobs");
    }

    #[test]
    fn nested_for_each_off_pool_runs_serially_in_order() {
        let order = Mutex::new(Vec::new());
        nested_for_each(10, &|i| order.lock().unwrap().push(i));
        assert_eq!(*order.lock().unwrap(), (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn with_pool_runs_the_closure_and_recruits_workers() {
        let input: Vec<u64> = (0..500).collect();
        let expected: Vec<u64> = input.iter().map(|x| x * 3 + 1).collect();
        for threads in [1usize, 2, 8] {
            let out = with_pool(threads, || {
                let slots: Vec<Mutex<u64>> = input.iter().map(|_| Mutex::new(0)).collect();
                nested_for_each(input.len(), &|i| {
                    *slots[i].lock().unwrap() = input[i] * 3 + 1;
                });
                slots
                    .into_iter()
                    .map(|s| s.into_inner().unwrap())
                    .collect::<Vec<_>>()
            });
            assert_eq!(out, expected, "threads = {threads}");
        }
    }

    #[test]
    fn nested_for_each_inside_concurrent_jobs_does_not_deadlock() {
        // Several pool jobs each recruit helpers at once: the bag drain must
        // make progress even when every worker is itself inside a region.
        for seed in [0u64, 0x5eed] {
            let totals = scope_with(SchedulerOptions { threads: 4, seed }, |sched| {
                let handles: Vec<JobHandle<usize>> = (0..8)
                    .map(|job| {
                        sched.spawn(move || {
                            let total = AtomicUsize::new(0);
                            nested_for_each(100, &|i| {
                                total.fetch_add(i + job, Ordering::Relaxed);
                            });
                            total.into_inner()
                        })
                    })
                    .collect();
                handles.into_iter().map(JobHandle::join).collect::<Vec<_>>()
            });
            let expected: Vec<usize> = (0..8)
                .map(|job| (0..100).sum::<usize>() + 100 * job)
                .collect();
            assert_eq!(totals, expected);
        }
    }

    #[test]
    fn nested_for_each_propagates_task_panics() {
        let outcome = std::panic::catch_unwind(|| {
            with_pool(4, || {
                nested_for_each(64, &|i| {
                    if i == 33 {
                        panic!("boom in nested task");
                    }
                });
            })
        });
        assert!(outcome.is_err(), "nested task panic must surface");
        // The pool must still be usable afterwards from a fresh scope.
        assert_eq!(with_pool(2, || 7u32), 7);
    }

    #[test]
    fn nested_for_each_with_empty_and_tiny_bags() {
        with_pool(4, || {
            nested_for_each(0, &|_| panic!("no items, no calls"));
            let hits = AtomicUsize::new(0);
            nested_for_each(1, &|i| {
                assert_eq!(i, 0);
                hits.fetch_add(1, Ordering::Relaxed);
            });
            assert_eq!(hits.into_inner(), 1);
        });
    }

    #[test]
    fn on_pool_worker_reflects_registration() {
        assert!(!on_pool_worker());
        let inside = with_pool(2, on_pool_worker);
        assert!(inside, "with_pool body runs on a registered worker");
        assert!(!on_pool_worker());
    }

    #[test]
    fn scheduler_drains_queued_jobs_after_the_scope_body_returns() {
        let ran = Arc::new(AtomicUsize::new(0));
        let ran_in_scope = Arc::clone(&ran);
        scope(1, move |sched| {
            for _ in 0..16 {
                let ran = Arc::clone(&ran_in_scope);
                sched.spawn(move || {
                    ran.fetch_add(1, Ordering::Relaxed);
                });
            }
            // Handles dropped without joining: the jobs must still run
            // before the scope tears the pool down.
        });
        assert_eq!(ran.load(Ordering::Relaxed), 16);
    }
}
