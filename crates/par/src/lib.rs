//! Dependency-free data parallelism on scoped OS threads.
//!
//! This crate is the workspace's stand-in for `rayon` (the build runs without
//! network access, so crates.io dependencies are unavailable): it fans a map
//! over a pool of scoped threads and returns the results **in input order**,
//! so callers that were deterministic serially stay deterministic in
//! parallel. Work is distributed dynamically (an atomic cursor over the input)
//! which keeps cores busy even when per-item cost is highly skewed — exactly
//! the shape of the placement × synthesis sweep, where one placement can
//! synthesize orders of magnitude more programs than another.
//!
//! # Example
//!
//! ```
//! let squares = p2_par::par_map(&[1usize, 2, 3, 4], |_, &x| x * x);
//! assert_eq!(squares, vec![1, 4, 9, 16]);
//! ```

#![deny(missing_docs)]

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex};

/// Number of worker threads `par_map` uses by default: the machine's available
/// parallelism, or 1 when it cannot be queried.
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Maps `f` over `items` on up to [`default_threads()`] scoped threads,
/// returning results in input order. `f` receives the item index alongside the
/// item so callers can derive per-item seeds or labels.
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    par_map_threads(default_threads(), items, f)
}

/// [`par_map`] with an explicit thread count. `0` resolves to
/// [`default_threads()`] (every available core), `1` runs serially on the
/// calling thread; the output is identical for any value.
pub fn par_map_threads<T, R, F>(threads: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let threads = if threads == 0 {
        default_threads()
    } else {
        threads
    };
    let workers = threads.min(items.len());
    if workers <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let cursor = AtomicUsize::new(0);
    let (tx, rx) = mpsc::channel::<(usize, R)>();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            let tx = tx.clone();
            let cursor = &cursor;
            let f = &f;
            scope.spawn(move || loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                let Some(item) = items.get(i) else { break };
                // A worker may die of a panic in `f`; the send only fails if
                // the receiver is gone, which cannot happen inside the scope.
                let _ = tx.send((i, f(i, item)));
            });
        }
        drop(tx);
        let mut slots: Vec<Option<R>> = (0..items.len()).map(|_| None).collect();
        let mut received = 0usize;
        for (i, r) in rx {
            slots[i] = Some(r);
            received += 1;
        }
        assert_eq!(received, items.len(), "a parallel worker panicked");
        slots
            .into_iter()
            .map(|s| s.expect("every slot filled"))
            .collect()
    })
}

/// Maps `f` over a *streamed* sequence of items on worker threads, returning
/// results in production order without ever materializing the input.
///
/// `produce` runs on the calling thread and pushes items one at a time into
/// the closure it is given; workers pull them from a bounded channel (capacity
/// `2 × workers`), so at most `O(threads)` items are in flight at any moment —
/// this is what lets the placement sweep consume
/// `p2_placement::for_each_matrix` without collecting the matrices first.
/// `f` receives each item's production index alongside the item.
///
/// `threads` follows the [`par_map_threads`] convention: `0` resolves to
/// [`default_threads()`], `1` runs everything serially on the calling thread.
/// The output is identical for any value whenever `f` is a pure function of
/// `(index, item)`.
///
/// # Panics
///
/// Panics if a worker thread panics.
///
/// # Examples
///
/// ```
/// let squares = p2_par::par_map_stream(
///     0,
///     |emit| (1usize..=4).for_each(emit),
///     |_, x| x * x,
/// );
/// assert_eq!(squares, vec![1, 4, 9, 16]);
/// ```
pub fn par_map_stream<T, R, P, F>(threads: usize, produce: P, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    P: FnOnce(&mut dyn FnMut(T)),
    F: Fn(usize, T) -> R + Sync,
{
    let threads = if threads == 0 {
        default_threads()
    } else {
        threads
    };
    if threads <= 1 {
        let mut out = Vec::new();
        let mut index = 0usize;
        let mut emit = |item: T| {
            out.push(f(index, item));
            index += 1;
        };
        produce(&mut emit);
        return out;
    }

    let (work_tx, work_rx) = mpsc::sync_channel::<(usize, T)>(threads * 2);
    let work_rx = Arc::new(Mutex::new(work_rx));
    let (result_tx, result_rx) = mpsc::channel::<(usize, R)>();
    std::thread::scope(|scope| {
        for _ in 0..threads {
            let work_rx = Arc::clone(&work_rx);
            let result_tx = result_tx.clone();
            let f = &f;
            scope.spawn(move || loop {
                // Holding the lock only for the blocking recv serializes the
                // *waiting*, not the work; items are coarse-grained.
                let item = work_rx.lock().expect("work queue poisoned").recv();
                let Ok((i, item)) = item else { break };
                let _ = result_tx.send((i, f(i, item)));
            });
        }
        drop(result_tx);
        // Workers hold the only receiver handles: if they all die, the send
        // below fails instead of blocking forever on a full channel.
        drop(work_rx);

        let mut produced = 0usize;
        let mut emit = |item: T| {
            work_tx
                .send((produced, item))
                .expect("a parallel worker panicked");
            produced += 1;
        };
        produce(&mut emit);
        drop(work_tx);

        let mut slots: Vec<Option<R>> = Vec::new();
        slots.resize_with(produced, || None);
        let mut received = 0usize;
        for (i, r) in result_rx {
            slots[i] = Some(r);
            received += 1;
        }
        assert_eq!(received, produced, "a parallel worker panicked");
        slots
            .into_iter()
            .map(|s| s.expect("every slot filled"))
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order() {
        let input: Vec<usize> = (0..257).collect();
        let out = par_map(&input, |i, &x| {
            assert_eq!(i, x);
            x * 2
        });
        assert_eq!(out, input.iter().map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn serial_and_parallel_agree() {
        let input: Vec<u64> = (0..100).collect();
        let serial = par_map_threads(1, &input, |i, &x| x.wrapping_mul(i as u64 + 3));
        for threads in [2, 4, 8] {
            let parallel = par_map_threads(threads, &input, |i, &x| x.wrapping_mul(i as u64 + 3));
            assert_eq!(serial, parallel);
        }
    }

    #[test]
    fn empty_and_singleton_inputs() {
        assert_eq!(par_map::<u32, u32, _>(&[], |_, &x| x), Vec::<u32>::new());
        assert_eq!(par_map(&[7u32], |_, &x| x + 1), vec![8]);
    }

    #[test]
    fn zero_threads_means_all_cores() {
        let input: Vec<usize> = (0..50).collect();
        let auto = par_map_threads(0, &input, |_, &x| x + 1);
        assert_eq!(auto, par_map_threads(1, &input, |_, &x| x + 1));
    }

    #[test]
    fn more_threads_than_items_is_fine() {
        let out = par_map_threads(64, &[1u8, 2], |_, &x| x);
        assert_eq!(out, vec![1, 2]);
    }

    #[test]
    fn stream_preserves_production_order() {
        for threads in [0usize, 1, 2, 4, 8] {
            let out = par_map_stream(
                threads,
                |emit| (0usize..257).for_each(emit),
                |i, x| {
                    assert_eq!(i, x);
                    x * 2
                },
            );
            assert_eq!(out, (0..257).map(|x| x * 2).collect::<Vec<_>>());
        }
    }

    #[test]
    fn stream_and_slice_map_agree() {
        let input: Vec<u64> = (0..100).collect();
        let slice = par_map_threads(1, &input, |i, &x| x.wrapping_mul(i as u64 + 3));
        for threads in [1, 2, 4] {
            let stream = par_map_stream(
                threads,
                |emit| input.iter().copied().for_each(emit),
                |i, x| x.wrapping_mul(i as u64 + 3),
            );
            assert_eq!(slice, stream);
        }
    }

    #[test]
    fn stream_with_no_items_returns_empty() {
        for threads in [1usize, 4] {
            let out = par_map_stream(threads, |_emit| {}, |_, x: usize| x);
            assert!(out.is_empty());
        }
    }

    #[test]
    fn stream_with_more_threads_than_items_is_fine() {
        let out = par_map_stream(64, |emit| [1u8, 2].into_iter().for_each(emit), |_, x| x);
        assert_eq!(out, vec![1, 2]);
    }
}
