//! A miniature JSON value type: enough of RFC 8259 for the plan store's and
//! table store's versioned records and the wire protocol's one-line
//! requests/responses.
//!
//! The workspace builds fully offline, so this replaces `serde_json` the way
//! `crates/proptest-shim` replaces proptest: a small, std-only subset with
//! the exact surface the persistence layers need. Objects preserve insertion
//! order (stable output for tests and humans); duplicate keys keep the last
//! value on lookup, like `serde_json`'s map behavior. The crate also hosts
//! [`write_atomically`], the tmp + rename idiom every on-disk record in the
//! workspace is written with.

use std::fmt;
use std::path::Path;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (always carried as `f64`; the store encodes
    /// bit-exact floats as hex *strings*, not numbers, precisely because
    /// JSON numbers round-trip through decimal).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parses one JSON document, requiring nothing but whitespace after it.
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing bytes at offset {pos}"));
        }
        Ok(value)
    }

    /// Looks up a key in an object (`None` for non-objects and absent keys;
    /// last duplicate wins).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().rev().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric payload as a `u64`, if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The array payload, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

/// Builder for a JSON object rendered in insertion order — the way every
/// record and response in this crate is assembled.
#[derive(Debug, Clone, Default)]
pub struct JsonObject {
    fields: Vec<(String, Json)>,
}

impl JsonObject {
    /// An empty object.
    pub fn new() -> Self {
        JsonObject::default()
    }

    /// Appends a field.
    pub fn push(mut self, key: &str, value: Json) -> Self {
        self.fields.push((key.to_string(), value));
        self
    }

    /// Finishes into a [`Json::Obj`].
    pub fn build(self) -> Json {
        Json::Obj(self.fields)
    }
}

/// Writes `contents` to `path` via a temp file + atomic rename, so a crash
/// mid-write can never leave a torn record under a valid address. The temp
/// file lives next to `path` (same filesystem, so the rename is atomic) and
/// is suffixed with the writer's pid.
///
/// # Errors
///
/// Propagates the I/O error of the write or the rename.
pub fn write_atomically(path: &Path, contents: &str) -> std::io::Result<()> {
    let tmp = path.with_extension(format!("tmp.{}", std::process::id()));
    std::fs::write(&tmp, contents)?;
    std::fs::rename(&tmp, path)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, token: &str) -> Result<(), String> {
    if bytes[*pos..].starts_with(token.as_bytes()) {
        *pos += token.len();
        Ok(())
    } else {
        Err(format!("expected `{token}` at offset {pos}", pos = *pos))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'n') => expect(bytes, pos, "null").map(|()| Json::Null),
        Some(b't') => expect(bytes, pos, "true").map(|()| Json::Bool(true)),
        Some(b'f') => expect(bytes, pos, "false").map(|()| Json::Bool(false)),
        Some(b'"') => parse_string(bytes, pos).map(Json::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected `,` or `]` at offset {}", *pos)),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut fields = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                expect(bytes, pos, ":")?;
                let value = parse_value(bytes, pos)?;
                fields.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(fields));
                    }
                    _ => return Err(format!("expected `,` or `}}` at offset {}", *pos)),
                }
            }
        }
        Some(_) => parse_number(bytes, pos).map(Json::Num),
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    if bytes.get(*pos) != Some(&b'"') {
        return Err(format!("expected string at offset {}", *pos));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    Some(b'b') => out.push('\u{0008}'),
                    Some(b'f') => out.push('\u{000c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or("truncated \\u escape")?;
                        let hex = std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?;
                        let code = u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape")?;
                        // Surrogate pairs are not needed by this protocol;
                        // map unpaired surrogates to the replacement char.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err("bad escape".to_string()),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume the whole run up to the next quote or escape in
                // one step. Both delimiters are ASCII, so they can never
                // fall inside a multibyte scalar and the run is valid UTF-8
                // on its own (the input arrived as a &str).
                let start = *pos;
                while *pos < bytes.len() && !matches!(bytes[*pos], b'"' | b'\\') {
                    *pos += 1;
                }
                let run = std::str::from_utf8(&bytes[start..*pos]).map_err(|e| e.to_string())?;
                out.push_str(run);
            }
        }
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<f64, String> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|e| e.to_string())?;
    text.parse::<f64>()
        .map_err(|_| format!("bad number `{text}` at offset {start}"))
}

fn escape_into(out: &mut String, text: &str) {
    out.push('"');
    for ch in text.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

impl fmt::Display for Json {
    /// Compact single-line rendering — every wire message and store record is
    /// one line.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut out = String::new();
        write_into(&mut out, self);
        f.write_str(&out)
    }
}

fn write_into(out: &mut String, value: &Json) {
    match value {
        Json::Null => out.push_str("null"),
        Json::Bool(true) => out.push_str("true"),
        Json::Bool(false) => out.push_str("false"),
        Json::Num(n) => {
            if n.is_finite() {
                // `{:?}` prints the shortest representation that round-trips
                // an f64 (Rust's float formatting is shortest-exact).
                out.push_str(&format!("{n:?}"));
            } else {
                // JSON has no Inf/NaN; the store never writes them as
                // numbers (bit-exact floats travel as hex strings).
                out.push_str("null");
            }
        }
        Json::Str(s) => escape_into(out, s),
        Json::Arr(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_into(out, item);
            }
            out.push(']');
        }
        Json::Obj(fields) => {
            out.push('{');
            for (i, (key, item)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                escape_into(out, key);
                out.push(':');
                write_into(out, item);
            }
            out.push('}');
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_a_nested_document() {
        let text = r#"{"op":"plan","axes":[4,4],"bytes":1e9,"deep":{"a":[true,false,null],"s":"q\"uo\\te\nnl"}}"#;
        let parsed = Json::parse(text).unwrap();
        let reparsed = Json::parse(&parsed.to_string()).unwrap();
        assert_eq!(parsed, reparsed);
        assert_eq!(parsed.get("op").and_then(Json::as_str), Some("plan"));
        assert_eq!(
            parsed.get("axes").and_then(Json::as_arr).map(|a| a.len()),
            Some(2)
        );
        assert_eq!(parsed.get("bytes").and_then(Json::as_f64), Some(1.0e9));
    }

    #[test]
    fn numbers_round_trip_shortest_exact() {
        for n in [0.0, -0.0, 1.5, 1.0e9, 0.1, f64::MIN_POSITIVE, 1e308] {
            let text = Json::Num(n).to_string();
            let back = Json::parse(&text).unwrap().as_f64().unwrap();
            assert_eq!(back.to_bits(), n.to_bits(), "{n} via {text}");
        }
    }

    #[test]
    fn rejects_garbage() {
        for bad in ["", "{", "[1,", "{\"a\":}", "tru", "1 2", "{\"a\" 1}"] {
            assert!(Json::parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn last_duplicate_key_wins() {
        let parsed = Json::parse(r#"{"a":1,"a":2}"#).unwrap();
        assert_eq!(parsed.get("a").and_then(Json::as_f64), Some(2.0));
    }

    #[test]
    fn write_atomically_replaces_and_leaves_no_tmp() {
        let dir = std::env::temp_dir().join(format!(
            "p2-json-test-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("record.json");
        write_atomically(&path, "first\n").unwrap();
        write_atomically(&path, "second\n").unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "second\n");
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name() != "record.json")
            .collect();
        assert!(leftovers.is_empty(), "tmp files left behind: {leftovers:?}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn unicode_escapes_decode() {
        // Both the \u escape path and raw multibyte UTF-8 decode.
        let parsed = Json::parse("\"caf\\u00e9 é\"").unwrap();
        assert_eq!(parsed.as_str(), Some("café é"));
    }
}
