//! Stable, dependency-free hashing for the P² workspace.
//!
//! Two consumers with two different contracts live here:
//!
//! * **In-memory tables** ([`FxHasher`] / [`FxHashMap`]) — the rustc-style
//!   word-folding hash used by the synthesis interner and memo caches. Fast,
//!   not HashDoS-resistant, and only ever required to be self-consistent
//!   within one process.
//! * **Content addresses** ([`stable_digest128`] / [`Fingerprint`]) — the
//!   128-bit digest the plan service keys its on-disk store with. These
//!   values are *persisted across runs and releases*, so the digest function
//!   is frozen: any change to [`FxHasher`] or to the seeding scheme below is
//!   a cache-format break and must bump the plan-store schema version. The
//!   pinned-digest tests at the bottom of this file exist to make such a
//!   drift a loud test failure instead of a silent cache invalidation.
//!
//! Both are plain `std` code; this crate has no dependencies at all so every
//! other crate (including leaf utility crates) can use it.

use std::collections::HashMap;
use std::fmt;
use std::hash::{BuildHasherDefault, Hasher};

/// The FxHash word-folding hasher (rustc's interner hash): multiply-xor per
/// word, no finalization. Far cheaper than SipHash for the short `u32`/`u64`
/// slices the interner and caches key on; these tables are never fed
/// attacker-controlled keys, so HashDoS resistance is not needed.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

    /// A hasher whose accumulator starts at `state` instead of zero — the
    /// hook [`stable_digest128`] uses to derive two independent 64-bit
    /// lanes from one pass-compatible core.
    #[inline]
    pub fn with_state(state: u64) -> Self {
        FxHasher { hash: state }
    }

    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(Self::SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in chunks.by_ref() {
            self.add(u64::from_le_bytes(chunk.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut word = [0u8; 8];
            word[..rest.len()].copy_from_slice(rest);
            self.add(u64::from_le_bytes(word));
        }
    }

    #[inline]
    fn write_u32(&mut self, value: u32) {
        self.add(value as u64);
    }

    #[inline]
    fn write_u64(&mut self, value: u64) {
        self.add(value);
    }

    #[inline]
    fn write_usize(&mut self, value: usize) {
        self.add(value as u64);
    }
}

/// A `HashMap` keyed through [`FxHasher`] — the map type of the interning and
/// memoization layers.
pub type FxHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;

/// Initial accumulator of the low digest lane. Arbitrary odd constants; the
/// two lanes only need to start in different states so the halves are not
/// trivially correlated. **Frozen** — changing either constant changes every
/// persisted content address.
const LANE_LO: u64 = 0x9e37_79b9_7f4a_7c15;
/// Initial accumulator of the high digest lane.
const LANE_HI: u64 = 0xc2b2_ae3d_27d4_eb4f;

/// Hashes `bytes` with [`FxHasher`] starting from `seed`. The word-at-a-time
/// fold plus a final length mix, so prefixes of each other hash differently
/// even when the tail is zero padding.
#[inline]
pub fn stable_hash64_seeded(seed: u64, bytes: &[u8]) -> u64 {
    let mut hasher = FxHasher::with_state(seed);
    hasher.write(bytes);
    hasher.write_u64(bytes.len() as u64);
    hasher.finish()
}

/// Hashes `bytes` with [`FxHasher`] from the default (zero) state, plus the
/// length mix of [`stable_hash64_seeded`].
#[inline]
pub fn stable_hash64(bytes: &[u8]) -> u64 {
    stable_hash64_seeded(0, bytes)
}

/// The frozen 128-bit content digest: two independently seeded
/// [`stable_hash64_seeded`] lanes over the same bytes. This is what plan
/// fingerprints and any other persisted content address must go through.
#[inline]
pub fn stable_digest128(bytes: &[u8]) -> u128 {
    let lo = stable_hash64_seeded(LANE_LO, bytes);
    let hi = stable_hash64_seeded(LANE_HI, bytes);
    ((hi as u128) << 64) | lo as u128
}

/// A 128-bit content address, displayed as 32 lowercase hex digits. This is
/// the type persisted in plan-store filenames and wire responses; its
/// `Display`/`parse_hex` round-trip is part of the frozen format.
///
/// # Examples
///
/// ```
/// use p2_hash::Fingerprint;
/// let fp = Fingerprint::of_bytes(b"canonical form v1");
/// let hex = fp.to_string();
/// assert_eq!(hex.len(), 32);
/// assert_eq!(Fingerprint::parse_hex(&hex), Some(fp));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Fingerprint(pub u128);

impl Fingerprint {
    /// Digests raw bytes via [`stable_digest128`].
    pub fn of_bytes(bytes: &[u8]) -> Self {
        Fingerprint(stable_digest128(bytes))
    }

    /// Parses the 32-hex-digit form produced by `Display`.
    pub fn parse_hex(text: &str) -> Option<Self> {
        if text.len() != 32 {
            return None;
        }
        u128::from_str_radix(text, 16).ok().map(Fingerprint)
    }
}

impl fmt::Display for Fingerprint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:032x}", self.0)
    }
}

impl fmt::Debug for Fingerprint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Fingerprint({:032x})", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn word_folding_matches_byte_stream() {
        // One 8-byte word written via `write` equals the same word via
        // `write_u64`: the chunked path and the word path are one function.
        let mut a = FxHasher::default();
        a.write(&0xdead_beef_u64.to_le_bytes());
        let mut b = FxHasher::default();
        b.write_u64(0xdead_beef);
        assert_eq!(a.finish(), b.finish());
    }

    #[test]
    fn length_mix_separates_zero_padded_prefixes() {
        // Without the length mix `[1]` and `[1, 0]` fold identically.
        assert_ne!(stable_hash64(&[1]), stable_hash64(&[1, 0]));
        assert_ne!(stable_hash64(b""), stable_hash64(&[0]));
    }

    #[test]
    fn digest_lanes_are_independent() {
        let d = stable_digest128(b"p2");
        assert_ne!((d >> 64) as u64, d as u64);
    }

    #[test]
    fn fingerprint_hex_round_trips() {
        for text in ["", "a", "rack2x2x4 axes=[4,4] reduce=[0]"] {
            let fp = Fingerprint::of_bytes(text.as_bytes());
            assert_eq!(Fingerprint::parse_hex(&fp.to_string()), Some(fp));
        }
        assert_eq!(Fingerprint::parse_hex("zz"), None);
        assert_eq!(Fingerprint::parse_hex(&"f".repeat(33)), None);
    }

    /// **Pinned digests.** These constants are the on-disk cache-key format.
    /// If this test fails you have changed the persisted content-address
    /// function: bump the plan-store schema version in `p2_service` and
    /// re-pin, do not just update the constants.
    #[test]
    fn pinned_digests_never_drift() {
        assert_eq!(stable_hash64(b""), PIN_EMPTY_64);
        assert_eq!(stable_hash64(b"p2 plan request"), PIN_REQUEST_64);
        assert_eq!(Fingerprint::of_bytes(b"").to_string(), PIN_EMPTY_128);
        assert_eq!(
            Fingerprint::of_bytes(b"p2 plan request").to_string(),
            PIN_REQUEST_128
        );
    }

    const PIN_EMPTY_64: u64 = 0x0000_0000_0000_0000;
    const PIN_REQUEST_64: u64 = 0x48bd_722e_1a5a_b5a6;
    const PIN_EMPTY_128: &str = "df5ba124deb25d586d5e786d8728102f";
    const PIN_REQUEST_128: &str = "372f25000262bce6e0bddbcb4b6c22dc";
}
