use std::fmt;

/// Errors produced when constructing or querying a system topology.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum TopologyError {
    /// A hierarchy must contain at least one level.
    EmptyHierarchy,
    /// Every level must have a cardinality of at least one.
    ZeroArity {
        /// Name of the offending level.
        level: String,
    },
    /// The number of interconnects must equal the number of hierarchy levels.
    LinkCountMismatch {
        /// Number of hierarchy levels.
        levels: usize,
        /// Number of interconnects supplied.
        links: usize,
    },
    /// Interconnect bandwidth must be strictly positive and finite.
    InvalidBandwidth {
        /// Name of the offending interconnect.
        link: String,
    },
    /// Interconnect latency must be non-negative and finite.
    InvalidLatency {
        /// Name of the offending interconnect.
        link: String,
    },
    /// A device rank was outside the valid range for the hierarchy.
    DeviceOutOfRange {
        /// The offending rank.
        rank: usize,
        /// Number of devices in the hierarchy.
        num_devices: usize,
    },
    /// A device coordinate did not match the hierarchy shape.
    InvalidCoordinate {
        /// The offending coordinate.
        coord: Vec<usize>,
    },
}

impl fmt::Display for TopologyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TopologyError::EmptyHierarchy => write!(f, "hierarchy has no levels"),
            TopologyError::ZeroArity { level } => {
                write!(f, "level `{level}` has zero cardinality")
            }
            TopologyError::LinkCountMismatch { levels, links } => write!(
                f,
                "expected one interconnect per level ({levels} levels) but got {links}"
            ),
            TopologyError::InvalidBandwidth { link } => {
                write!(
                    f,
                    "interconnect `{link}` has a non-positive or non-finite bandwidth"
                )
            }
            TopologyError::InvalidLatency { link } => {
                write!(
                    f,
                    "interconnect `{link}` has a negative or non-finite latency"
                )
            }
            TopologyError::DeviceOutOfRange { rank, num_devices } => {
                write!(
                    f,
                    "device rank {rank} out of range for {num_devices} devices"
                )
            }
            TopologyError::InvalidCoordinate { coord } => {
                write!(f, "coordinate {coord:?} does not match the hierarchy shape")
            }
        }
    }
}

impl std::error::Error for TopologyError {}
