use crate::error::TopologyError;

/// A switched interconnect attached to one hierarchy level.
///
/// The interconnect at level `l` is the switch that connects the level-`l`
/// instances that share the same parent instance at level `l − 1` (for the
/// topmost level it is the data-centre network). `bandwidth` is the
/// *per-uplink* bandwidth in bytes/second — the rate at which a single child
/// can move data in or out of the switch — and `latency` is the per-message
/// latency in seconds.
///
/// # Examples
///
/// ```
/// use p2_topology::Interconnect;
/// let nic = Interconnect::new("NIC", 8.0e9, 10.0e-6).unwrap();
/// assert_eq!(nic.bandwidth(), 8.0e9);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Interconnect {
    name: String,
    bandwidth: f64,
    latency: f64,
}

impl Interconnect {
    /// Creates an interconnect with the given per-uplink bandwidth (bytes/s)
    /// and per-message latency (seconds).
    ///
    /// # Errors
    ///
    /// Returns [`TopologyError::InvalidBandwidth`] if the bandwidth is not a
    /// positive finite number and [`TopologyError::InvalidLatency`] if the
    /// latency is negative or non-finite.
    pub fn new(
        name: impl Into<String>,
        bandwidth: f64,
        latency: f64,
    ) -> Result<Self, TopologyError> {
        let name = name.into();
        if !(bandwidth.is_finite() && bandwidth > 0.0) {
            return Err(TopologyError::InvalidBandwidth { link: name });
        }
        if !(latency.is_finite() && latency >= 0.0) {
            return Err(TopologyError::InvalidLatency { link: name });
        }
        Ok(Interconnect {
            name,
            bandwidth,
            latency,
        })
    }

    /// The interconnect's name (e.g. `"NVSwitch"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Per-uplink bandwidth in bytes per second.
    pub fn bandwidth(&self) -> f64 {
        self.bandwidth
    }

    /// Per-message latency in seconds.
    pub fn latency(&self) -> f64 {
        self.latency
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn valid_interconnect() {
        let i = Interconnect::new("NVLink", 135.0e9, 2.0e-6).unwrap();
        assert_eq!(i.name(), "NVLink");
        assert_eq!(i.bandwidth(), 135.0e9);
        assert_eq!(i.latency(), 2.0e-6);
    }

    #[test]
    fn zero_bandwidth_rejected() {
        assert!(matches!(
            Interconnect::new("bad", 0.0, 1.0e-6),
            Err(TopologyError::InvalidBandwidth { .. })
        ));
    }

    #[test]
    fn nan_bandwidth_rejected() {
        assert!(Interconnect::new("bad", f64::NAN, 1.0e-6).is_err());
    }

    #[test]
    fn negative_latency_rejected() {
        assert!(matches!(
            Interconnect::new("bad", 1.0e9, -1.0),
            Err(TopologyError::InvalidLatency { .. })
        ));
    }
}
