use std::collections::BTreeSet;

use crate::error::TopologyError;
use crate::hierarchy::Hierarchy;
use crate::interconnect::Interconnect;

/// An uplink: the port connecting one instance of a hierarchy level to the
/// switch of its parent.
///
/// `level` indexes the hierarchy (0 = outermost) and `instance` is the rank of
/// the level-`level` instance among all instances of that level (row-major,
/// outermost level most significant). All traffic that leaves or enters the
/// subtree rooted at that instance flows through its uplink, which has the
/// bandwidth of the interconnect at `level`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Uplink {
    /// Hierarchy level of the instance that owns this uplink.
    pub level: usize,
    /// Rank of the instance among all instances of its level.
    pub instance: usize,
}

/// A complete system: a hardware hierarchy plus one interconnect per level.
///
/// `links[l]` is the interconnect whose switch connects the level-`l`
/// instances that share a parent; its bandwidth is the per-uplink bandwidth of
/// every level-`l` instance.
///
/// # Examples
///
/// ```
/// use p2_topology::{Hierarchy, Interconnect, SystemTopology};
/// let hierarchy = Hierarchy::from_pairs([("node", 2), ("gpu", 16)])?;
/// let links = vec![
///     Interconnect::new("NIC", 8.0e9, 10.0e-6)?,
///     Interconnect::new("NVSwitch", 270.0e9, 2.0e-6)?,
/// ];
/// let system = SystemTopology::new(hierarchy, links)?;
/// assert_eq!(system.num_devices(), 32);
/// # Ok::<(), p2_topology::TopologyError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SystemTopology {
    hierarchy: Hierarchy,
    links: Vec<Interconnect>,
    name: String,
}

impl SystemTopology {
    /// Creates a system from a hierarchy and one interconnect per level.
    ///
    /// # Errors
    ///
    /// Returns [`TopologyError::LinkCountMismatch`] when the number of
    /// interconnects differs from the number of levels.
    pub fn new(hierarchy: Hierarchy, links: Vec<Interconnect>) -> Result<Self, TopologyError> {
        if hierarchy.depth() != links.len() {
            return Err(TopologyError::LinkCountMismatch {
                levels: hierarchy.depth(),
                links: links.len(),
            });
        }
        Ok(SystemTopology {
            hierarchy,
            links,
            name: "custom".to_string(),
        })
    }

    /// Creates a named system (used by the presets).
    ///
    /// # Errors
    ///
    /// Same as [`SystemTopology::new`].
    pub fn with_name(
        name: impl Into<String>,
        hierarchy: Hierarchy,
        links: Vec<Interconnect>,
    ) -> Result<Self, TopologyError> {
        let mut sys = SystemTopology::new(hierarchy, links)?;
        sys.name = name.into();
        Ok(sys)
    }

    /// A short descriptive name of the system (e.g. `"a100-4node"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The hardware hierarchy.
    pub fn hierarchy(&self) -> &Hierarchy {
        &self.hierarchy
    }

    /// The per-level interconnects, outermost first.
    pub fn links(&self) -> &[Interconnect] {
        &self.links
    }

    /// The interconnect at a specific level.
    ///
    /// # Panics
    ///
    /// Panics if `level` is out of range.
    pub fn link(&self, level: usize) -> &Interconnect {
        &self.links[level]
    }

    /// Total number of devices in the system.
    pub fn num_devices(&self) -> usize {
        self.hierarchy.num_devices()
    }

    /// Number of instances of a given level across the whole system
    /// (the product of the cardinalities of levels `0..=level`).
    ///
    /// # Panics
    ///
    /// Panics if `level` is out of range.
    pub fn instances_at_level(&self, level: usize) -> usize {
        self.hierarchy.arities()[..=level].iter().product()
    }

    /// Rank (among all instances of its level) of the ancestor of `device` at
    /// `level`.
    ///
    /// # Errors
    ///
    /// Returns an error if `device` is out of range.
    pub fn ancestor_instance(&self, device: usize, level: usize) -> Result<usize, TopologyError> {
        let coord = self.hierarchy.rank_to_coord(device)?;
        let arities = self.hierarchy.arities();
        let mut rank = 0usize;
        for (l, &arity) in arities.iter().enumerate().take(level + 1) {
            rank = rank * arity + coord.digit(l);
        }
        Ok(rank)
    }

    /// The set of uplinks used when the devices of `group` communicate with
    /// each other through the switched hierarchy.
    ///
    /// An uplink `(level, instance)` is used exactly when the group contains a
    /// device inside the instance's subtree and a device outside it, because
    /// any such traffic must cross that port. The result is sorted and free of
    /// duplicates.
    ///
    /// Groups with fewer than two devices use no uplinks. Device ranks outside
    /// the system are ignored by this method (callers validate ranks when the
    /// groups are built).
    pub fn used_uplinks(&self, group: &[usize]) -> Vec<Uplink> {
        if group.len() < 2 {
            return Vec::new();
        }
        let depth = self.hierarchy.depth();
        let mut used = BTreeSet::new();
        // For every level, bucket the group's members by ancestor instance.
        for level in 0..depth {
            let mut instances = BTreeSet::new();
            for &d in group {
                if d >= self.num_devices() {
                    continue;
                }
                if let Ok(inst) = self.ancestor_instance(d, level) {
                    instances.insert(inst);
                }
            }
            // If the group occupies more than one instance at this level, then
            // each occupied instance's uplink carries traffic (members inside
            // it must talk to members outside it). We additionally require
            // that the instances share a parent *or not*: either way the
            // traffic leaves the subtree through the uplink, so the rule is
            // simply "more than one occupied instance at this level".
            if instances.len() > 1 {
                for inst in instances {
                    used.insert(Uplink {
                        level,
                        instance: inst,
                    });
                }
            }
        }
        used.into_iter().collect()
    }

    /// The outermost level at which the members of `group` differ, or `None`
    /// when the group has fewer than two distinct devices.
    ///
    /// This is the level of the slowest interconnect the group must cross.
    pub fn span_level(&self, group: &[usize]) -> Option<usize> {
        let uplinks = self.used_uplinks(group);
        uplinks.first().map(|u| u.level)
    }

    /// The bandwidth (bytes/s) of the slowest interconnect spanned by `group`,
    /// ignoring contention, or `None` for trivial groups.
    pub fn bottleneck_bandwidth(&self, group: &[usize]) -> Option<f64> {
        self.span_level(group).map(|l| self.links[l].bandwidth())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Hierarchy;

    fn two_by_four() -> SystemTopology {
        let h = Hierarchy::from_pairs([("node", 2), ("gpu", 4)]).unwrap();
        let links = vec![
            Interconnect::new("NIC", 8.0e9, 10.0e-6).unwrap(),
            Interconnect::new("NVLink", 135.0e9, 2.0e-6).unwrap(),
        ];
        SystemTopology::new(h, links).unwrap()
    }

    #[test]
    fn link_count_mismatch_rejected() {
        let h = Hierarchy::from_pairs([("node", 2), ("gpu", 4)]).unwrap();
        let links = vec![Interconnect::new("NIC", 8.0e9, 1e-6).unwrap()];
        assert!(matches!(
            SystemTopology::new(h, links),
            Err(TopologyError::LinkCountMismatch {
                levels: 2,
                links: 1
            })
        ));
    }

    #[test]
    fn ancestor_instances() {
        let sys = two_by_four();
        assert_eq!(sys.ancestor_instance(0, 0).unwrap(), 0);
        assert_eq!(sys.ancestor_instance(5, 0).unwrap(), 1);
        assert_eq!(sys.ancestor_instance(5, 1).unwrap(), 5);
        assert_eq!(sys.instances_at_level(0), 2);
        assert_eq!(sys.instances_at_level(1), 8);
    }

    #[test]
    fn intra_node_group_uses_only_gpu_uplinks() {
        let sys = two_by_four();
        let uplinks = sys.used_uplinks(&[0, 1, 2]);
        assert!(uplinks.iter().all(|u| u.level == 1));
        assert_eq!(uplinks.len(), 3);
        assert_eq!(sys.span_level(&[0, 1, 2]), Some(1));
        assert_eq!(sys.bottleneck_bandwidth(&[0, 1]), Some(135.0e9));
    }

    #[test]
    fn cross_node_group_uses_nics_and_gpu_uplinks() {
        let sys = two_by_four();
        let uplinks = sys.used_uplinks(&[0, 4]);
        assert!(uplinks.contains(&Uplink {
            level: 0,
            instance: 0
        }));
        assert!(uplinks.contains(&Uplink {
            level: 0,
            instance: 1
        }));
        assert!(uplinks.contains(&Uplink {
            level: 1,
            instance: 0
        }));
        assert!(uplinks.contains(&Uplink {
            level: 1,
            instance: 4
        }));
        assert_eq!(sys.span_level(&[0, 4]), Some(0));
        assert_eq!(sys.bottleneck_bandwidth(&[0, 4]), Some(8.0e9));
    }

    #[test]
    fn trivial_groups_use_nothing() {
        let sys = two_by_four();
        assert!(sys.used_uplinks(&[3]).is_empty());
        assert!(sys.used_uplinks(&[]).is_empty());
        assert_eq!(sys.span_level(&[3]), None);
    }

    #[test]
    fn same_device_twice_uses_nothing() {
        let sys = two_by_four();
        assert!(sys.used_uplinks(&[3, 3]).is_empty());
    }
}
