//! Built-in system models used throughout the paper's evaluation (§4, Figure 9).
//!
//! Bandwidth assumptions follow §5 of the paper:
//!
//! * 100 Gbps NICs assumed 60 % utilised → 8 GB/s effective per node,
//! * PCIe switches: 32 GB/s,
//! * V100 NVLink ring: 135 GB/s per direction,
//! * A100 NVSwitch: 270 GB/s uni-directional.

use crate::{Hierarchy, Interconnect, SystemTopology, GB_PER_S, MICROSECOND};

/// Effective per-node NIC bandwidth assumed by the paper (bytes/s).
pub const NIC_BANDWIDTH: f64 = 8.0 * GB_PER_S;
/// PCIe switch bandwidth assumed by the paper (bytes/s).
pub const PCIE_BANDWIDTH: f64 = 32.0 * GB_PER_S;
/// V100 NVLink-ring bandwidth assumed by the paper (bytes/s).
pub const V100_NVLINK_BANDWIDTH: f64 = 135.0 * GB_PER_S;
/// A100 NVSwitch bandwidth assumed by the paper (bytes/s).
pub const A100_NVSWITCH_BANDWIDTH: f64 = 270.0 * GB_PER_S;

/// Effective cross-rack bandwidth of an oversubscribed core switch (bytes/s):
/// a 2:1 oversubscription of the per-node NIC bandwidth, the common
/// leaf-spine datacentre shape.
pub const RACK_BANDWIDTH: f64 = 4.0 * GB_PER_S;

/// Per-message latency assumed for the data-centre network.
pub const DCN_LATENCY: f64 = 25.0 * MICROSECOND;
/// Per-message latency assumed for cross-rack traffic through the core
/// switch (an extra hop over [`DCN_LATENCY`]).
pub const RACK_LATENCY: f64 = 50.0 * MICROSECOND;
/// Per-message latency assumed for intra-node interconnects.
pub const LOCAL_LATENCY: f64 = 5.0 * MICROSECOND;

/// The A100 system of Figure 9a: `nodes` nodes, each with 16 A100 GPUs
/// sharing one NVSwitch and one NIC; NICs connected through the data-centre
/// network. System hierarchy `[nodes, 16]` as in §4.
///
/// # Panics
///
/// Panics if `nodes` is zero.
pub fn a100_system(nodes: usize) -> SystemTopology {
    assert!(nodes > 0, "a100_system requires at least one node");
    let hierarchy =
        Hierarchy::from_pairs([("node", nodes), ("gpu", 16)]).expect("static hierarchy is valid");
    let links = vec![
        Interconnect::new("NIC/DCN", NIC_BANDWIDTH, DCN_LATENCY).expect("valid link"),
        Interconnect::new("NVSwitch", A100_NVSWITCH_BANDWIDTH, LOCAL_LATENCY).expect("valid link"),
    ];
    SystemTopology::with_name(format!("a100-{nodes}node"), hierarchy, links)
        .expect("hierarchy and links are consistent")
}

/// The V100 system of Figure 9b, flattened as in §4: `nodes` nodes, each with
/// 8 V100 GPUs joined by an NVLink ring. Because the NVLink ring connects all
/// 8 GPUs and has much higher bandwidth than the PCIe bridges, the paper (and
/// we) model a node as a single level of 8 GPUs, so the system hierarchy is
/// `[nodes, 8]`.
///
/// # Panics
///
/// Panics if `nodes` is zero.
pub fn v100_system(nodes: usize) -> SystemTopology {
    assert!(nodes > 0, "v100_system requires at least one node");
    let hierarchy =
        Hierarchy::from_pairs([("node", nodes), ("gpu", 8)]).expect("static hierarchy is valid");
    let links = vec![
        Interconnect::new("NIC/DCN", NIC_BANDWIDTH, DCN_LATENCY).expect("valid link"),
        Interconnect::new("NVLink-ring", V100_NVLINK_BANDWIDTH, LOCAL_LATENCY).expect("valid link"),
    ];
    SystemTopology::with_name(format!("v100-{nodes}node"), hierarchy, links)
        .expect("hierarchy and links are consistent")
}

/// The detailed V100 system of Figure 9b *without* the §4 flattening: each
/// node has two CPUs (PCIe domains) of 4 GPUs each. Useful for experiments
/// that exercise deeper hierarchies.
///
/// # Panics
///
/// Panics if `nodes` is zero.
pub fn v100_pcie_system(nodes: usize) -> SystemTopology {
    assert!(nodes > 0, "v100_pcie_system requires at least one node");
    let hierarchy =
        Hierarchy::from_pairs([("node", nodes), ("cpu", 2), ("gpu", 4)]).expect("valid hierarchy");
    let links = vec![
        Interconnect::new("NIC/DCN", NIC_BANDWIDTH, DCN_LATENCY).expect("valid link"),
        Interconnect::new("PCIe", PCIE_BANDWIDTH, LOCAL_LATENCY).expect("valid link"),
        Interconnect::new("NVLink", V100_NVLINK_BANDWIDTH, LOCAL_LATENCY).expect("valid link"),
    ];
    SystemTopology::with_name(format!("v100-pcie-{nodes}node"), hierarchy, links)
        .expect("hierarchy and links are consistent")
}

/// A 3-level rack / node / GPU system with heterogeneous uplinks: `racks`
/// racks behind an oversubscribed core switch ([`RACK_BANDWIDTH`],
/// [`RACK_LATENCY`]), each holding `nodes_per_rack` A100-style nodes joined
/// by the data-centre network ([`NIC_BANDWIDTH`], [`DCN_LATENCY`]), each node
/// with `gpus_per_node` GPUs sharing one NVSwitch. System hierarchy
/// `[racks, nodes_per_rack, gpus_per_node]`.
///
/// The bandwidth *decreases* level by level (NVSwitch ≫ NIC > core switch),
/// so placements that spill a frequently-reduced axis across racks pay
/// double: the slowest link and the extra hop. This is the multi-node shape
/// the paper's two-level presets cannot express.
///
/// # Panics
///
/// Panics if any argument is zero.
pub fn rack_node_gpu_system(
    racks: usize,
    nodes_per_rack: usize,
    gpus_per_node: usize,
) -> SystemTopology {
    rack_node_gpu_with(
        format!("rack{racks}x{nodes_per_rack}x{gpus_per_node}"),
        racks,
        nodes_per_rack,
        gpus_per_node,
        RACK_BANDWIDTH,
    )
}

/// [`rack_node_gpu_system`] with an explicit core-switch *oversubscription
/// ratio*: the effective cross-rack bandwidth is
/// [`NIC_BANDWIDTH`]` / oversubscription`, the leaf-spine convention (a
/// ratio of `1.0` is a non-blocking core, `2.0` reproduces
/// [`rack_node_gpu_system`], larger ratios model cheaper fabrics). This is
/// the knob the `rack_table3`/`rack_table4` bins sweep.
///
/// # Panics
///
/// Panics if any count is zero or the ratio is not a finite number ≥ 1.
pub fn rack_node_gpu_system_oversubscribed(
    racks: usize,
    nodes_per_rack: usize,
    gpus_per_node: usize,
    oversubscription: f64,
) -> SystemTopology {
    assert!(
        oversubscription.is_finite() && oversubscription >= 1.0,
        "oversubscription ratio must be a finite number >= 1"
    );
    rack_node_gpu_with(
        format!("rack{racks}x{nodes_per_rack}x{gpus_per_node}-os{oversubscription}"),
        racks,
        nodes_per_rack,
        gpus_per_node,
        NIC_BANDWIDTH / oversubscription,
    )
}

fn rack_node_gpu_with(
    name: String,
    racks: usize,
    nodes_per_rack: usize,
    gpus_per_node: usize,
    rack_bandwidth: f64,
) -> SystemTopology {
    assert!(racks > 0, "rack_node_gpu_system requires at least one rack");
    assert!(
        nodes_per_rack > 0,
        "rack_node_gpu_system requires at least one node per rack"
    );
    assert!(
        gpus_per_node > 0,
        "rack_node_gpu_system requires at least one GPU per node"
    );
    let hierarchy = Hierarchy::from_pairs([
        ("rack", racks),
        ("node", nodes_per_rack),
        ("gpu", gpus_per_node),
    ])
    .expect("static hierarchy is valid");
    let links = vec![
        Interconnect::new("core-switch", rack_bandwidth, RACK_LATENCY).expect("valid link"),
        Interconnect::new("NIC/DCN", NIC_BANDWIDTH, DCN_LATENCY).expect("valid link"),
        Interconnect::new("NVSwitch", A100_NVSWITCH_BANDWIDTH, LOCAL_LATENCY).expect("valid link"),
    ];
    SystemTopology::with_name(name, hierarchy, links).expect("hierarchy and links are consistent")
}

/// The 16-GPU example system of Figure 2a: one rack with 2 servers, each with
/// 2 CPUs connecting 4 GPUs.
pub fn figure2a_system() -> SystemTopology {
    let hierarchy = Hierarchy::from_pairs([("rack", 1), ("server", 2), ("CPU", 2), ("GPU", 4)])
        .expect("valid hierarchy");
    let links = vec![
        Interconnect::new("rack-switch", NIC_BANDWIDTH, DCN_LATENCY).expect("valid link"),
        Interconnect::new("server-NIC", NIC_BANDWIDTH, DCN_LATENCY).expect("valid link"),
        Interconnect::new("PCIe", PCIE_BANDWIDTH, LOCAL_LATENCY).expect("valid link"),
        Interconnect::new("NVLink", V100_NVLINK_BANDWIDTH, LOCAL_LATENCY).expect("valid link"),
    ];
    SystemTopology::with_name("figure2a", hierarchy, links)
        .expect("hierarchy and links are consistent")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a100_sizes() {
        assert_eq!(a100_system(2).num_devices(), 32);
        assert_eq!(a100_system(4).num_devices(), 64);
        assert_eq!(a100_system(4).hierarchy().arities(), vec![4, 16]);
    }

    #[test]
    fn v100_sizes() {
        assert_eq!(v100_system(2).num_devices(), 16);
        assert_eq!(v100_system(4).num_devices(), 32);
        assert_eq!(v100_pcie_system(4).num_devices(), 32);
        assert_eq!(v100_pcie_system(4).hierarchy().depth(), 3);
    }

    #[test]
    fn figure2a_matches_paper() {
        let sys = figure2a_system();
        assert_eq!(sys.num_devices(), 16);
        assert_eq!(sys.hierarchy().arities(), vec![1, 2, 2, 4]);
    }

    #[test]
    fn rack_node_gpu_shape_and_uplinks() {
        let sys = rack_node_gpu_system(2, 2, 8);
        assert_eq!(sys.num_devices(), 32);
        assert_eq!(sys.hierarchy().arities(), vec![2, 2, 8]);
        assert_eq!(sys.hierarchy().depth(), 3);
        // Heterogeneous uplinks: the bottleneck degrades level by level.
        // Devices 0 and 16 sit in different racks, 0 and 8 in different nodes
        // of the same rack, 0 and 1 on the same NVSwitch.
        assert_eq!(sys.bottleneck_bandwidth(&[0, 16]), Some(RACK_BANDWIDTH));
        assert_eq!(sys.bottleneck_bandwidth(&[0, 8]), Some(NIC_BANDWIDTH));
        assert_eq!(
            sys.bottleneck_bandwidth(&[0, 1]),
            Some(A100_NVSWITCH_BANDWIDTH)
        );
    }

    #[test]
    #[should_panic(expected = "at least one rack")]
    fn rack_node_gpu_rejects_zero_racks() {
        rack_node_gpu_system(0, 2, 8);
    }

    #[test]
    fn oversubscription_scales_the_core_switch_only() {
        let default = rack_node_gpu_system(2, 2, 8);
        let two_to_one = rack_node_gpu_system_oversubscribed(2, 2, 8, 2.0);
        // The default preset is the 2:1 leaf-spine shape.
        assert_eq!(
            default.bottleneck_bandwidth(&[0, 16]),
            two_to_one.bottleneck_bandwidth(&[0, 16])
        );
        let non_blocking = rack_node_gpu_system_oversubscribed(2, 2, 8, 1.0);
        assert_eq!(
            non_blocking.bottleneck_bandwidth(&[0, 16]),
            Some(NIC_BANDWIDTH)
        );
        let cheap = rack_node_gpu_system_oversubscribed(2, 2, 8, 4.0);
        assert_eq!(
            cheap.bottleneck_bandwidth(&[0, 16]),
            Some(NIC_BANDWIDTH / 4.0)
        );
        // The intra-rack levels are untouched.
        assert_eq!(cheap.bottleneck_bandwidth(&[0, 8]), Some(NIC_BANDWIDTH));
        assert_eq!(
            cheap.bottleneck_bandwidth(&[0, 1]),
            Some(A100_NVSWITCH_BANDWIDTH)
        );
        assert!(cheap.name().contains("os4"));
    }

    #[test]
    #[should_panic(expected = "oversubscription ratio")]
    fn oversubscription_below_one_is_rejected() {
        rack_node_gpu_system_oversubscribed(2, 2, 8, 0.5);
    }

    #[test]
    fn nic_is_the_cross_node_bottleneck() {
        let sys = a100_system(2);
        assert_eq!(sys.bottleneck_bandwidth(&[0, 16]), Some(NIC_BANDWIDTH));
        assert_eq!(
            sys.bottleneck_bandwidth(&[0, 1]),
            Some(A100_NVSWITCH_BANDWIDTH)
        );
    }
}
