/// A hierarchical coordinate of a device: one digit per hierarchy level,
/// outermost level first.
///
/// # Examples
///
/// ```
/// use p2_topology::DeviceCoord;
/// let c = DeviceCoord::new(vec![0, 1, 0, 3]);
/// assert_eq!(c.digits(), &[0, 1, 0, 3]);
/// assert_eq!(c.digit(3), 3);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DeviceCoord {
    digits: Vec<usize>,
}

impl DeviceCoord {
    /// Creates a coordinate from per-level digits (outermost first).
    pub fn new(digits: Vec<usize>) -> Self {
        DeviceCoord { digits }
    }

    /// The per-level digits, outermost first.
    pub fn digits(&self) -> &[usize] {
        &self.digits
    }

    /// The digit at a specific level.
    ///
    /// # Panics
    ///
    /// Panics if `level` is out of range.
    pub fn digit(&self, level: usize) -> usize {
        self.digits[level]
    }

    /// Number of levels in the coordinate.
    pub fn depth(&self) -> usize {
        self.digits.len()
    }

    /// Returns the prefix of the coordinate up to and including `level`.
    ///
    /// # Panics
    ///
    /// Panics if `level` is out of range.
    pub fn prefix(&self, level: usize) -> &[usize] {
        &self.digits[..=level]
    }
}

impl From<Vec<usize>> for DeviceCoord {
    fn from(digits: Vec<usize>) -> Self {
        DeviceCoord::new(digits)
    }
}

impl AsRef<[usize]> for DeviceCoord {
    fn as_ref(&self) -> &[usize] {
        &self.digits
    }
}

impl std::fmt::Display for DeviceCoord {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "(")?;
        for (i, d) in self.digits.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{d}")?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_accessors() {
        let c = DeviceCoord::new(vec![1, 2, 3]);
        assert_eq!(c.to_string(), "(1,2,3)");
        assert_eq!(c.depth(), 3);
        assert_eq!(c.prefix(1), &[1, 2]);
        assert_eq!(c.digit(2), 3);
    }

    #[test]
    fn conversions() {
        let c: DeviceCoord = vec![0, 1].into();
        assert_eq!(c.as_ref(), &[0, 1]);
    }
}
