use crate::device::DeviceCoord;
use crate::error::TopologyError;

/// One level of the hardware hierarchy: a name and a cardinality.
///
/// The cardinality (`arity`) is the number of instances of this level *per
/// instance of the level above*; for the topmost level it is the absolute
/// count. For example, the Figure 2a system of the paper is
/// `[(rack, 1), (server, 2), (CPU, 2), (GPU, 4)]`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Level {
    name: String,
    arity: usize,
}

impl Level {
    /// Creates a new level with the given name and cardinality.
    ///
    /// # Examples
    ///
    /// ```
    /// use p2_topology::Level;
    /// let gpu = Level::new("GPU", 4);
    /// assert_eq!(gpu.arity(), 4);
    /// ```
    pub fn new(name: impl Into<String>, arity: usize) -> Self {
        Level {
            name: name.into(),
            arity,
        }
    }

    /// The level's name (e.g. `"GPU"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The level's cardinality per parent instance.
    pub fn arity(&self) -> usize {
        self.arity
    }
}

/// An ordered hardware hierarchy, from the outermost level to the devices.
///
/// Devices are the leaves: there is one device per combination of level
/// indices. Device *ranks* enumerate the leaves in row-major order with level
/// 0 most significant.
///
/// # Examples
///
/// ```
/// use p2_topology::{Hierarchy, Level};
/// let h = Hierarchy::new(vec![Level::new("node", 2), Level::new("gpu", 4)]).unwrap();
/// assert_eq!(h.num_devices(), 8);
/// assert_eq!(h.rank_to_coord(5).unwrap().digits(), &[1, 1]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Hierarchy {
    levels: Vec<Level>,
}

impl Hierarchy {
    /// Creates a hierarchy from a non-empty list of levels.
    ///
    /// # Errors
    ///
    /// Returns [`TopologyError::EmptyHierarchy`] if `levels` is empty and
    /// [`TopologyError::ZeroArity`] if any level has cardinality zero.
    pub fn new(levels: Vec<Level>) -> Result<Self, TopologyError> {
        if levels.is_empty() {
            return Err(TopologyError::EmptyHierarchy);
        }
        for level in &levels {
            if level.arity == 0 {
                return Err(TopologyError::ZeroArity {
                    level: level.name.clone(),
                });
            }
        }
        Ok(Hierarchy { levels })
    }

    /// Creates a hierarchy from `(name, arity)` pairs.
    ///
    /// # Errors
    ///
    /// Same as [`Hierarchy::new`].
    pub fn from_pairs<I, S>(pairs: I) -> Result<Self, TopologyError>
    where
        I: IntoIterator<Item = (S, usize)>,
        S: Into<String>,
    {
        Hierarchy::new(pairs.into_iter().map(|(n, a)| Level::new(n, a)).collect())
    }

    /// Creates a hierarchy with auto-generated level names (`level0`, `level1`, …).
    ///
    /// # Errors
    ///
    /// Same as [`Hierarchy::new`].
    pub fn from_arities(arities: &[usize]) -> Result<Self, TopologyError> {
        Hierarchy::new(
            arities
                .iter()
                .enumerate()
                .map(|(i, &a)| Level::new(format!("level{i}"), a))
                .collect(),
        )
    }

    /// The ordered levels, outermost first.
    pub fn levels(&self) -> &[Level] {
        &self.levels
    }

    /// The number of levels.
    pub fn depth(&self) -> usize {
        self.levels.len()
    }

    /// The per-level cardinalities, outermost first.
    pub fn arities(&self) -> Vec<usize> {
        self.levels.iter().map(|l| l.arity).collect()
    }

    /// Total number of devices (leaves): the product of all cardinalities.
    pub fn num_devices(&self) -> usize {
        self.levels.iter().map(|l| l.arity).product()
    }

    /// Converts a device rank to its hierarchical coordinate.
    ///
    /// # Errors
    ///
    /// Returns [`TopologyError::DeviceOutOfRange`] if `rank` is not a valid
    /// device rank.
    pub fn rank_to_coord(&self, rank: usize) -> Result<DeviceCoord, TopologyError> {
        let n = self.num_devices();
        if rank >= n {
            return Err(TopologyError::DeviceOutOfRange {
                rank,
                num_devices: n,
            });
        }
        let mut digits = vec![0usize; self.depth()];
        let mut rest = rank;
        for (i, level) in self.levels.iter().enumerate().rev() {
            digits[i] = rest % level.arity;
            rest /= level.arity;
        }
        Ok(DeviceCoord::new(digits))
    }

    /// Converts a hierarchical coordinate back to a device rank.
    ///
    /// # Errors
    ///
    /// Returns [`TopologyError::InvalidCoordinate`] if the coordinate's shape
    /// does not match the hierarchy or any digit is out of range.
    pub fn coord_to_rank(&self, coord: &DeviceCoord) -> Result<usize, TopologyError> {
        let digits = coord.digits();
        if digits.len() != self.depth() {
            return Err(TopologyError::InvalidCoordinate {
                coord: digits.to_vec(),
            });
        }
        let mut rank = 0usize;
        for (digit, level) in digits.iter().zip(&self.levels) {
            if *digit >= level.arity {
                return Err(TopologyError::InvalidCoordinate {
                    coord: digits.to_vec(),
                });
            }
            rank = rank * level.arity + digit;
        }
        Ok(rank)
    }

    /// A human-readable name for a device, e.g. `"rack0/server1/CPU0/GPU3"`.
    ///
    /// # Errors
    ///
    /// Returns [`TopologyError::DeviceOutOfRange`] if `rank` is invalid.
    pub fn device_name(&self, rank: usize) -> Result<String, TopologyError> {
        let coord = self.rank_to_coord(rank)?;
        Ok(coord
            .digits()
            .iter()
            .zip(&self.levels)
            .map(|(d, l)| format!("{}{}", l.name, d))
            .collect::<Vec<_>>()
            .join("/"))
    }

    /// Iterates over all device ranks.
    pub fn device_ranks(&self) -> std::ops::Range<usize> {
        0..self.num_devices()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn figure2a() -> Hierarchy {
        Hierarchy::from_pairs([("rack", 1), ("server", 2), ("CPU", 2), ("GPU", 4)]).unwrap()
    }

    #[test]
    fn figure2a_has_sixteen_gpus() {
        assert_eq!(figure2a().num_devices(), 16);
        assert_eq!(figure2a().arities(), vec![1, 2, 2, 4]);
    }

    #[test]
    fn rank_coord_roundtrip() {
        let h = figure2a();
        for rank in h.device_ranks() {
            let coord = h.rank_to_coord(rank).unwrap();
            assert_eq!(h.coord_to_rank(&coord).unwrap(), rank);
        }
    }

    #[test]
    fn rank_out_of_range_is_error() {
        let h = figure2a();
        assert!(matches!(
            h.rank_to_coord(16),
            Err(TopologyError::DeviceOutOfRange {
                rank: 16,
                num_devices: 16
            })
        ));
    }

    #[test]
    fn coord_with_bad_digit_is_error() {
        let h = figure2a();
        let bad = DeviceCoord::new(vec![0, 0, 2, 0]);
        assert!(h.coord_to_rank(&bad).is_err());
        let short = DeviceCoord::new(vec![0, 0]);
        assert!(h.coord_to_rank(&short).is_err());
    }

    #[test]
    fn empty_hierarchy_rejected() {
        assert_eq!(Hierarchy::new(vec![]), Err(TopologyError::EmptyHierarchy));
    }

    #[test]
    fn zero_arity_rejected() {
        let err = Hierarchy::from_pairs([("node", 2), ("gpu", 0)]).unwrap_err();
        assert!(matches!(err, TopologyError::ZeroArity { .. }));
    }

    #[test]
    fn device_names_follow_levels() {
        let h = figure2a();
        assert_eq!(h.device_name(0).unwrap(), "rack0/server0/CPU0/GPU0");
        assert_eq!(h.device_name(15).unwrap(), "rack0/server1/CPU1/GPU3");
    }

    #[test]
    fn ranks_are_row_major_level0_most_significant() {
        let h = Hierarchy::from_arities(&[2, 3]).unwrap();
        assert_eq!(h.rank_to_coord(0).unwrap().digits(), &[0, 0]);
        assert_eq!(h.rank_to_coord(3).unwrap().digits(), &[1, 0]);
        assert_eq!(h.rank_to_coord(5).unwrap().digits(), &[1, 2]);
    }
}
