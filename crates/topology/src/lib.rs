//! Hierarchical system and interconnect models for the P² reproduction.
//!
//! A *system* (paper §2) consists of a hardware [`Hierarchy`] — an ordered
//! list of named levels with cardinalities, e.g. `[(rack, 1), (server, 2),
//! (CPU, 2), (GPU, 4)]` — and a set of switched interconnects. This crate
//! models one interconnect per hierarchy level (the switch that connects the
//! children of every instance of the level above), which matches all the
//! systems evaluated in the paper, and exposes the *uplink* abstraction used
//! by the cost model and the execution simulator: the port that connects an
//! instance of a level to the switch above it.
//!
//! # Example
//!
//! ```
//! use p2_topology::presets;
//!
//! let system = presets::a100_system(4);
//! assert_eq!(system.hierarchy().num_devices(), 64);
//! // Two GPUs in different nodes communicate through the node NICs.
//! let uplinks = system.used_uplinks(&[0, 16]);
//! assert!(uplinks.iter().any(|u| u.level == 0));
//! ```

#![deny(missing_docs)]

mod device;
mod error;
mod hierarchy;
mod interconnect;
pub mod presets;
mod system;

pub use device::DeviceCoord;
pub use error::TopologyError;
pub use hierarchy::{Hierarchy, Level};
pub use interconnect::Interconnect;
pub use system::{SystemTopology, Uplink};

/// Convenience constant: one gigabyte per second, in bytes per second.
pub const GB_PER_S: f64 = 1.0e9;

/// Convenience constant: one microsecond, in seconds.
pub const MICROSECOND: f64 = 1.0e-6;
