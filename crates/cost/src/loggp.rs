//! A LogGP-style cost model: per-message overhead and gap terms on top of the
//! bandwidth/contention machinery the α–β model uses.

use p2_synthesis::LoweredStep;
use p2_topology::SystemTopology;

use crate::algo::NcclAlgo;
use crate::error::CostError;
use crate::model::{CostModel, StepCost};
use crate::patterns::{group_traffic_terms, step_cost_with};

/// Default per-message CPU/NIC injection overhead `o`, in seconds.
pub const DEFAULT_OVERHEAD: f64 = 1.0e-6;
/// Default inter-message gap `g`, in seconds.
pub const DEFAULT_GAP: f64 = 0.5e-6;

/// A LogGP-style interconnect model ([Alexandrov et al.]): each communication
/// round pays the wire latency `L` of the slowest link crossed *plus* a fixed
/// send/receive overhead `2o` and an inter-message gap `g`, while the
/// long-message term `G` (gap per byte) is the reciprocal uplink bandwidth,
/// inflated by contention exactly as in the α–β model.
///
/// Compared to [`AlphaBetaModel`](crate::AlphaBetaModel), this model charges
/// more for latency-bound programs (many small rounds) and identically for
/// bandwidth-bound ones, which shifts the trade-off between deep hierarchical
/// programs and flat collectives on small buffers.
///
/// [Alexandrov et al.]: https://doi.org/10.1006/jpdc.1997.1346
#[derive(Debug, Clone)]
pub struct LogGpModel {
    system: SystemTopology,
    algo: NcclAlgo,
    bytes_per_device: f64,
    overhead: f64,
    gap: f64,
}

impl LogGpModel {
    /// Creates a LogGP-style model with the default `o` and `g` parameters.
    ///
    /// # Errors
    ///
    /// Returns [`CostError::InvalidBytes`] when the byte count is not a
    /// positive finite number.
    pub fn new(
        system: SystemTopology,
        algo: NcclAlgo,
        bytes_per_device: f64,
    ) -> Result<Self, CostError> {
        if !(bytes_per_device.is_finite() && bytes_per_device > 0.0) {
            return Err(CostError::InvalidBytes {
                bytes: bytes_per_device,
            });
        }
        Ok(LogGpModel {
            system,
            algo,
            bytes_per_device,
            overhead: DEFAULT_OVERHEAD,
            gap: DEFAULT_GAP,
        })
    }

    /// Overrides the per-message overhead `o` (seconds).
    ///
    /// # Errors
    ///
    /// Returns [`CostError::InvalidParameter`] for negative or non-finite
    /// values (a negative overhead would break prefix admissibility).
    pub fn with_overhead(mut self, overhead: f64) -> Result<Self, CostError> {
        if !(overhead.is_finite() && overhead >= 0.0) {
            return Err(CostError::InvalidParameter {
                parameter: "overhead",
                value: overhead,
            });
        }
        self.overhead = overhead;
        Ok(self)
    }

    /// Overrides the inter-message gap `g` (seconds).
    ///
    /// # Errors
    ///
    /// Returns [`CostError::InvalidParameter`] for negative or non-finite
    /// values.
    pub fn with_gap(mut self, gap: f64) -> Result<Self, CostError> {
        if !(gap.is_finite() && gap >= 0.0) {
            return Err(CostError::InvalidParameter {
                parameter: "gap",
                value: gap,
            });
        }
        self.gap = gap;
        Ok(self)
    }

    /// The NCCL algorithm assumed for every collective call.
    pub fn algo(&self) -> NcclAlgo {
        self.algo
    }
}

impl CostModel for LogGpModel {
    fn name(&self) -> &str {
        "loggp"
    }

    fn system(&self) -> &SystemTopology {
        &self.system
    }

    fn bytes_per_device(&self) -> f64 {
        self.bytes_per_device
    }

    /// LogGP: the shared G term (contention-inflated gap-per-byte through
    /// the slowest uplink) plus `rounds × (L + 2o + g)` — every round pays
    /// the wire latency, the send+receive overhead, and the gap before the
    /// next message can be injected.
    fn step_cost(&self, step: &LoweredStep) -> StepCost {
        step_cost_with(&self.system, step, |group, uplinks, usage| {
            let bytes = self.bytes_per_device * group.input_fraction;
            match group_traffic_terms(
                &self.system,
                step.collective,
                self.algo,
                group,
                uplinks,
                usage,
                bytes,
            ) {
                Some(t) => {
                    t.bandwidth_seconds
                        + t.rounds * (t.wire_latency + 2.0 * self.overhead + self.gap)
                }
                None => 0.0,
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::AlphaBetaModel;
    use p2_placement::ParallelismMatrix;
    use p2_synthesis::baseline_allreduce;
    use p2_topology::presets;

    const GIB: f64 = 1024.0 * 1024.0 * 1024.0;

    #[test]
    fn loggp_charges_at_least_the_alpha_beta_time() {
        // Same bandwidth machinery plus non-negative per-round terms.
        let matrix =
            ParallelismMatrix::new(vec![vec![4, 1], vec![1, 16]], vec![4, 16], vec![4, 16])
                .unwrap();
        let program = baseline_allreduce(&matrix, &[0]).unwrap();
        for algo in NcclAlgo::ALL {
            let ab = AlphaBetaModel::new(presets::a100_system(4), algo, GIB).unwrap();
            let lg = LogGpModel::new(presets::a100_system(4), algo, GIB).unwrap();
            assert!(lg.program_time(&program) >= ab.program_time(&program));
        }
    }

    #[test]
    fn overhead_dominates_small_messages() {
        let matrix = ParallelismMatrix::new(vec![vec![4, 16]], vec![4, 16], vec![64]).unwrap();
        let program = baseline_allreduce(&matrix, &[0]).unwrap();
        // 64 bytes: the transfer itself is negligible, the o/g terms are not.
        let tiny = LogGpModel::new(presets::a100_system(4), NcclAlgo::Ring, 64.0).unwrap();
        let silent = LogGpModel::new(presets::a100_system(4), NcclAlgo::Ring, 64.0)
            .unwrap()
            .with_overhead(0.0)
            .unwrap()
            .with_gap(0.0)
            .unwrap();
        assert!(tiny.program_time(&program) > silent.program_time(&program));
    }

    #[test]
    fn invalid_parameters_rejected() {
        let model = || LogGpModel::new(presets::a100_system(2), NcclAlgo::Ring, GIB).unwrap();
        assert!(model().with_overhead(-1.0e-6).is_err());
        assert!(model().with_gap(f64::NAN).is_err());
        assert!(LogGpModel::new(presets::a100_system(2), NcclAlgo::Ring, -1.0).is_err());
    }
}
