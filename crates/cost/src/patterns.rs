//! Communication patterns and traffic machinery shared by the analytic cost
//! models: the edges a collective's algorithm sends over, the bytes each edge
//! carries, the number of communication rounds, and the contention-aware
//! per-uplink aggregation every model's bandwidth term is built from.

use std::collections::HashMap;

use p2_collectives::Collective;
use p2_synthesis::{GroupExec, LoweredStep};
use p2_topology::{SystemTopology, Uplink};

use crate::algo::NcclAlgo;
use crate::model::StepCost;

/// NCCL builds topology-aware rings that enter and leave every locality domain
/// once; ordering the group by physical rank reproduces that, because ranks
/// enumerate the hierarchy depth-first.
fn nccl_ring_order(devices: &[usize]) -> Vec<usize> {
    let mut order = devices.to_vec();
    order.sort_unstable();
    order
}

/// Root-first order for rooted collectives: the group's designated root stays
/// first, the rest is ordered by physical rank (hierarchy-aware chain/tree).
fn rooted_order(devices: &[usize]) -> Vec<usize> {
    let mut order = devices.to_vec();
    if order.len() > 1 {
        order[1..].sort_unstable();
    }
    order
}

/// Consecutive ring edges (including the wrap-around) in hierarchy-aware order.
fn ring_edges(devices: &[usize]) -> Vec<(usize, usize)> {
    let order = nccl_ring_order(devices);
    let n = order.len();
    (0..n).map(|i| (order[i], order[(i + 1) % n])).collect()
}

/// Chain edges toward (`toward_root`) or away from the first device.
fn chain_edges(devices: &[usize], toward_root: bool) -> Vec<(usize, usize)> {
    let order = rooted_order(devices);
    (1..order.len())
        .map(|i| {
            if toward_root {
                (order[i], order[i - 1])
            } else {
                (order[i - 1], order[i])
            }
        })
        .collect()
}

/// Binomial-tree edges toward the first device (child → parent).
fn tree_edges(devices: &[usize]) -> Vec<(usize, usize)> {
    let order = rooted_order(devices);
    let n = order.len();
    let mut edges = Vec::new();
    let mut step = 1usize;
    while step < n {
        let mut i = 0usize;
        while i + step < n {
            edges.push((order[i + step], order[i]));
            i += 2 * step;
        }
        step *= 2;
    }
    edges
}

/// Each edge plus its reverse (for AllReduce's reduce-then-broadcast tree).
fn bidirectional(edges: Vec<(usize, usize)>) -> Vec<(usize, usize)> {
    let mut out = edges.clone();
    out.extend(edges.into_iter().map(|(a, b)| (b, a)));
    out
}

/// Every edge reversed (broadcast down a reduction tree).
fn reverse_edges(edges: Vec<(usize, usize)>) -> Vec<(usize, usize)> {
    edges.into_iter().map(|(a, b)| (b, a)).collect()
}

/// Edges of the communication pattern of one collective over `devices`, the
/// bytes each edge carries over the whole collective (for a per-participant
/// contribution of `bytes`), and the number of communication rounds.
pub(crate) fn collective_pattern(
    collective: Collective,
    algo: NcclAlgo,
    devices: &[usize],
    bytes: f64,
) -> (Vec<(usize, usize)>, f64, f64) {
    let n_f = devices.len() as f64;
    match (collective, algo) {
        (Collective::AllReduce, NcclAlgo::Ring) => (
            ring_edges(devices),
            2.0 * (n_f - 1.0) / n_f * bytes,
            2.0 * (n_f - 1.0),
        ),
        (Collective::ReduceScatter, _) => {
            (ring_edges(devices), (n_f - 1.0) / n_f * bytes, n_f - 1.0)
        }
        (Collective::AllGather, _) => (ring_edges(devices), (n_f - 1.0) * bytes, n_f - 1.0),
        (Collective::AllReduce, NcclAlgo::Tree) => (
            bidirectional(tree_edges(devices)),
            bytes,
            2.0 * n_f.log2().ceil(),
        ),
        (Collective::Reduce, NcclAlgo::Tree) => (tree_edges(devices), bytes, n_f.log2().ceil()),
        (Collective::Broadcast, NcclAlgo::Tree) => {
            (reverse_edges(tree_edges(devices)), bytes, n_f.log2().ceil())
        }
        (Collective::Reduce, NcclAlgo::Ring) => (chain_edges(devices, true), bytes, n_f - 1.0),
        (Collective::Broadcast, NcclAlgo::Ring) => (chain_edges(devices, false), bytes, n_f - 1.0),
    }
}

/// The physically-derived terms of one group's collective, before a model
/// turns them into seconds: the contention-inflated bandwidth time, the wire
/// latency of the slowest crossed link, and the algorithm's round count.
pub(crate) struct GroupTerms {
    /// Max over uplinks of `bytes_through × contention / bandwidth`.
    pub bandwidth_seconds: f64,
    /// The largest per-message latency among the crossed links.
    pub wire_latency: f64,
    /// Number of communication rounds of the collective's algorithm.
    pub rounds: f64,
}

/// Aggregates one group's traffic through the system's uplinks, inflated by
/// the step-wide `usage` contention counts — the machinery every analytic
/// model shares; each model only decides how to combine the returned terms.
/// Returns `None` for trivial groups (fewer than two devices, or crossing no
/// uplink), which cost nothing.
pub(crate) fn group_traffic_terms(
    system: &SystemTopology,
    collective: Collective,
    algo: NcclAlgo,
    group: &GroupExec,
    uplinks: &[Uplink],
    usage: &HashMap<Uplink, usize>,
    bytes: f64,
) -> Option<GroupTerms> {
    if group.devices.len() < 2 || uplinks.is_empty() {
        return None;
    }
    let (edges, bytes_per_edge, rounds) =
        collective_pattern(collective, algo, &group.devices, bytes);
    // Directional traffic through every uplink (uplinks are full-duplex:
    // inbound and outbound bytes do not compete with each other).
    let mut traffic: HashMap<(Uplink, bool), f64> = HashMap::new();
    let mut wire_latency = 0.0_f64;
    for &(src, dst) in &edges {
        for uplink in system.used_uplinks(&[src, dst]) {
            let outbound = system
                .ancestor_instance(src, uplink.level)
                .map(|inst| inst == uplink.instance)
                .unwrap_or(false);
            *traffic.entry((uplink, outbound)).or_insert(0.0) += bytes_per_edge;
            wire_latency = wire_latency.max(system.link(uplink.level).latency());
        }
    }
    let bandwidth_seconds = traffic
        .iter()
        .map(|(&(uplink, _), &bytes_through)| {
            let contention = *usage.get(&uplink).unwrap_or(&1) as f64;
            bytes_through * contention / system.link(uplink.level).bandwidth()
        })
        .fold(0.0, f64::max);
    Some(GroupTerms {
        bandwidth_seconds,
        wire_latency,
        rounds,
    })
}

/// The per-step scaffold shared by the analytic models: count each uplink's
/// concurrent users across the step's groups, hand every group (with its
/// uplinks and the usage map) to `group_time`, and take the slowest group as
/// the step time.
pub(crate) fn step_cost_with<F>(
    system: &SystemTopology,
    step: &LoweredStep,
    group_time: F,
) -> StepCost
where
    F: Fn(&GroupExec, &[Uplink], &HashMap<Uplink, usize>) -> f64,
{
    let mut usage: HashMap<Uplink, usize> = HashMap::new();
    let group_uplinks: Vec<Vec<Uplink>> = step
        .groups
        .iter()
        .map(|g| system.used_uplinks(&g.devices))
        .collect();
    for uplinks in &group_uplinks {
        for &u in uplinks {
            *usage.entry(u).or_insert(0) += 1;
        }
    }
    let group_seconds: Vec<f64> = step
        .groups
        .iter()
        .zip(&group_uplinks)
        .map(|(group, uplinks)| group_time(group, uplinks, &usage))
        .collect();
    let seconds = group_seconds.iter().copied().fold(0.0, f64::max);
    StepCost {
        collective: step.collective,
        seconds,
        group_seconds,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_covers_every_device_once() {
        let edges = ring_edges(&[5, 1, 3]);
        assert_eq!(edges, vec![(1, 3), (3, 5), (5, 1)]);
    }

    #[test]
    fn rooted_orders_keep_the_root_first() {
        assert_eq!(chain_edges(&[4, 9, 2], true), vec![(2, 4), (9, 2)]);
        assert_eq!(chain_edges(&[4, 9, 2], false), vec![(4, 2), (2, 9)]);
        let tree = tree_edges(&[4, 9, 2]);
        assert!(tree.contains(&(2, 4)));
    }

    #[test]
    fn tree_allreduce_edges_are_bidirectional() {
        let (edges, _, rounds) =
            collective_pattern(Collective::AllReduce, NcclAlgo::Tree, &[0, 1, 2, 3], 1.0);
        assert_eq!(edges.len(), 6); // 3 tree edges, both directions.
        assert_eq!(rounds, 4.0); // 2 * ceil(log2 4).
    }
}
