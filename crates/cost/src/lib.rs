//! The analytic, interconnect-aware cost model — the paper's simulator (§5).
//!
//! Given a [`p2_topology::SystemTopology`] and a lowered reduction program,
//! the model predicts the program's end-to-end communication time. It is
//! aware of the different bandwidths of the interconnects a device group
//! spans (NVLink/NVSwitch vs. NIC and data-centre network) and of the
//! *contention* between device groups that communicate concurrently through
//! the same uplink, which is what makes parallelism placement matter so much
//! (paper Result 1: up to 448× between placements).
//!
//! # Example
//!
//! ```
//! use p2_cost::{CostModel, NcclAlgo};
//! use p2_placement::ParallelismMatrix;
//! use p2_synthesis::baseline_allreduce;
//! use p2_topology::presets;
//!
//! let system = presets::a100_system(4);
//! // B1 and B3 of Table 3: same axes, very different placements.
//! let b1 = ParallelismMatrix::new(vec![vec![1, 4], vec![4, 4]], vec![4, 16], vec![4, 16]).unwrap();
//! let b3 = ParallelismMatrix::new(vec![vec![4, 1], vec![1, 16]], vec![4, 16], vec![4, 16]).unwrap();
//! let bytes = 4.0 * f64::powi(2.0, 29) * 4.0; // 2^29 * nodes float32 elements
//! let model = CostModel::new(&system, NcclAlgo::Ring, bytes).unwrap();
//! let t1 = model.program_time(&baseline_allreduce(&b1, &[0]).unwrap());
//! let t3 = model.program_time(&baseline_allreduce(&b3, &[0]).unwrap());
//! // Reducing inside a node is orders of magnitude faster than across the DCN.
//! assert!(t3 / t1 > 50.0);
//! ```

#![deny(missing_docs)]

mod algo;
mod error;
mod model;

pub use algo::NcclAlgo;
pub use error::CostError;
pub use model::{CostAccumulator, CostBreakdown, CostModel, StepCost};
