//! The analytic, interconnect-aware cost layer — the paper's simulator (§5),
//! behind a pluggable [`CostModel`] trait.
//!
//! Given a [`p2_topology::SystemTopology`] and a lowered reduction program, a
//! cost model predicts the program's end-to-end communication time. Every
//! model is aware of the different bandwidths of the interconnects a device
//! group spans (NVLink/NVSwitch vs. NIC and data-centre network) and of the
//! *contention* between device groups that communicate concurrently through
//! the same uplink, which is what makes parallelism placement matter so much
//! (paper Result 1: up to 448× between placements).
//!
//! The built-in implementations, selectable by name through
//! [`CostModelKind`]:
//!
//! * [`AlphaBetaModel`] — the paper's α–β model with per-uplink contention
//!   (the default);
//! * [`LogGpModel`] — a LogGP-style variant adding per-message overhead and
//!   gap terms, stricter on latency-bound programs;
//! * [`CalibratedModel`] — any inner model with per-hierarchy-level scale
//!   factors fitted against measurements (e.g. the `p2_exec` substrate);
//! * [`CachedCostModel`] — a decorator interning step times per
//!   (hierarchy-level, collective, size-class) class, so repeated costing of
//!   the same step class is O(1) after the first touch.
//!
//! All models uphold the admissibility requirement documented on
//! [`CostModel`]: non-negative step times whose in-order sum is the program
//! time, so the prefix sums of a [`CostAccumulator`] are lower bounds the
//! streaming pipeline can prune against.
//!
//! # Example
//!
//! ```
//! use p2_cost::{AlphaBetaModel, CostModel, NcclAlgo};
//! use p2_placement::ParallelismMatrix;
//! use p2_synthesis::baseline_allreduce;
//! use p2_topology::presets;
//!
//! // B1 and B3 of Table 3: same axes, very different placements.
//! let b1 = ParallelismMatrix::new(vec![vec![1, 4], vec![4, 4]], vec![4, 16], vec![4, 16]).unwrap();
//! let b3 = ParallelismMatrix::new(vec![vec![4, 1], vec![1, 16]], vec![4, 16], vec![4, 16]).unwrap();
//! let bytes = 4.0 * f64::powi(2.0, 29) * 4.0; // 2^29 * nodes float32 elements
//! let model = AlphaBetaModel::new(presets::a100_system(4), NcclAlgo::Ring, bytes).unwrap();
//! let t1 = model.program_time(&baseline_allreduce(&b1, &[0]).unwrap());
//! let t3 = model.program_time(&baseline_allreduce(&b3, &[0]).unwrap());
//! // Reducing inside a node is orders of magnitude faster than across the DCN.
//! assert!(t3 / t1 > 50.0);
//! ```

#![deny(missing_docs)]

mod algo;
mod alpha_beta;
mod cache;
mod calibrated;
mod error;
mod loggp;
mod model;
mod patterns;

pub use algo::NcclAlgo;
pub use alpha_beta::AlphaBetaModel;
pub use cache::{CacheStats, CachedCostModel, StepClass};
pub use calibrated::CalibratedModel;
pub use error::CostError;
pub use loggp::{LogGpModel, DEFAULT_GAP, DEFAULT_OVERHEAD};
pub use model::{
    cost_model_from_args, CostAccumulator, CostBreakdown, CostModel, CostModelKind, StepCost,
};
