//! An interned per-step cost cache: repeated costing of the same step class
//! is a hash lookup after the first touch.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use p2_collectives::Collective;
use p2_synthesis::LoweredStep;
use p2_topology::SystemTopology;

use crate::model::{CostModel, StepCost};

/// The interning class of a step: the coarse key the cache buckets entries
/// under. Steps of the same class are candidates for sharing a cached time;
/// the cache additionally compares the exact group layout before a hit, so a
/// cached value is only ever returned for a step that would predict
/// identically.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct StepClass {
    /// The outermost hierarchy level any group of the step crosses (`None`
    /// when every group is local to a single device).
    pub level: Option<usize>,
    /// The collective the step performs.
    pub collective: Collective,
    /// Number of concurrent groups.
    pub groups: usize,
    /// Size class: the largest group of the step.
    pub max_group_size: usize,
}

impl StepClass {
    /// Computes the class of a step on a system.
    pub fn of(system: &SystemTopology, step: &LoweredStep) -> Self {
        let level = step
            .groups
            .iter()
            .filter_map(|g| system.span_level(&g.devices))
            .min();
        StepClass {
            level,
            collective: step.collective,
            groups: step.groups.len(),
            max_group_size: step.max_group_size(),
        }
    }
}

/// The full interning key: the class plus the exact per-group layout
/// (input-fraction bits and device ranks). Two steps with equal layouts in
/// the same class are the same step, so returning the interned time can
/// never change a prediction.
type Layout = Vec<(u64, Vec<usize>)>;

fn owned_layout(step: &LoweredStep) -> Layout {
    step.groups
        .iter()
        .map(|g| (g.input_fraction.to_bits(), g.devices.clone()))
        .collect()
}

/// Compares a stored layout against a step without allocating — the hot hit
/// path stays clone-free.
fn layout_matches(stored: &Layout, step: &LoweredStep) -> bool {
    stored.len() == step.groups.len()
        && stored.iter().zip(&step.groups).all(|((bits, devices), g)| {
            *bits == g.input_fraction.to_bits() && devices == &g.devices
        })
}

/// Hit/miss counters of a [`CachedCostModel`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Step times answered from the cache.
    pub hits: u64,
    /// Step times computed by the inner model.
    pub misses: u64,
}

impl CacheStats {
    /// Total lookups.
    pub fn lookups(&self) -> u64 {
        self.hits + self.misses
    }
}

/// A caching decorator around any [`CostModel`]: step times are interned per
/// (hierarchy-level, collective, size-class) class — with the exact group
/// layout as the discriminating remainder of the key — so repeatedly costing
/// the same step class is O(1) after the first touch.
///
/// Synthesized programs of one placement reuse a small set of lowered steps
/// (the same ReduceScatter over the same reduction groups appears in most
/// programs), which is what makes the intern table effective: the pipeline
/// wraps the configured model in a fresh `CachedCostModel` per placement.
///
/// Because a cached value is only returned for a step whose class *and*
/// exact group layout are identical — and therefore whose prediction is
/// identical — caching never changes results; `tests/proptest_cost.rs` pins
/// this bit for bit. Hits compare the stored layouts against the step in
/// place, so only misses pay for cloning the device lists into the table.
#[derive(Debug)]
pub struct CachedCostModel {
    inner: Arc<dyn CostModel>,
    name: String,
    /// The intern table: class → interned (layout, seconds) entries. Classes
    /// are fine-grained, so buckets hold a handful of layouts at most.
    cache: Mutex<HashMap<StepClass, Vec<(Layout, f64)>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl CachedCostModel {
    /// Wraps `inner` with an empty intern table.
    pub fn new(inner: Arc<dyn CostModel>) -> Self {
        let name = format!("cached({})", inner.name());
        CachedCostModel {
            inner,
            name,
            cache: Mutex::new(HashMap::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// The wrapped model.
    pub fn inner(&self) -> &Arc<dyn CostModel> {
        &self.inner
    }

    /// Hit/miss counters since construction.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
        }
    }

    /// Number of interned step entries across all classes.
    pub fn entries(&self) -> usize {
        self.cache
            .lock()
            .expect("cost cache poisoned")
            .values()
            .map(Vec::len)
            .sum()
    }
}

impl CostModel for CachedCostModel {
    fn name(&self) -> &str {
        &self.name
    }

    fn system(&self) -> &SystemTopology {
        self.inner.system()
    }

    fn bytes_per_device(&self) -> f64 {
        self.inner.bytes_per_device()
    }

    /// Per-group breakdowns are not interned (only totals are); delegates.
    fn step_cost(&self, step: &LoweredStep) -> StepCost {
        self.inner.step_cost(step)
    }

    fn step_time(&self, step: &LoweredStep) -> f64 {
        let class = StepClass::of(self.inner.system(), step);
        {
            let cache = self.cache.lock().expect("cost cache poisoned");
            if let Some(bucket) = cache.get(&class) {
                if let Some(&(_, seconds)) = bucket
                    .iter()
                    .find(|(layout, _)| layout_matches(layout, step))
                {
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    return seconds;
                }
            }
        }
        // Compute outside the lock; concurrent misses on the same step would
        // compute the same value, so the re-check below only avoids storing
        // a duplicate entry.
        let seconds = self.inner.step_time(step);
        self.misses.fetch_add(1, Ordering::Relaxed);
        let mut cache = self.cache.lock().expect("cost cache poisoned");
        let bucket = cache.entry(class).or_default();
        if !bucket
            .iter()
            .any(|(layout, _)| layout_matches(layout, step))
        {
            bucket.push((owned_layout(step), seconds));
        }
        seconds
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AlphaBetaModel, NcclAlgo};
    use p2_placement::ParallelismMatrix;
    use p2_synthesis::{baseline_allreduce, HierarchyKind, Synthesizer};
    use p2_topology::presets;

    const GIB: f64 = 1024.0 * 1024.0 * 1024.0;

    fn cached() -> CachedCostModel {
        CachedCostModel::new(Arc::new(
            AlphaBetaModel::new(presets::a100_system(2), NcclAlgo::Ring, GIB).unwrap(),
        ))
    }

    #[test]
    fn repeated_steps_hit_after_first_touch() {
        let model = cached();
        let matrix = ParallelismMatrix::new(vec![vec![2, 16]], vec![2, 16], vec![32]).unwrap();
        let program = baseline_allreduce(&matrix, &[0]).unwrap();
        let first = model.program_time(&program);
        assert_eq!(model.stats(), CacheStats { hits: 0, misses: 1 });
        for _ in 0..10 {
            assert_eq!(model.program_time(&program), first);
        }
        assert_eq!(
            model.stats(),
            CacheStats {
                hits: 10,
                misses: 1
            }
        );
        assert_eq!(model.entries(), 1);
    }

    #[test]
    fn cached_times_match_the_inner_model_bit_for_bit() {
        let model = cached();
        let matrix =
            ParallelismMatrix::new(vec![vec![2, 4], vec![1, 4]], vec![2, 16], vec![8, 4]).unwrap();
        let synth = Synthesizer::new(matrix, vec![0], HierarchyKind::ReductionAxes).unwrap();
        let programs = synth.synthesize(4).programs;
        for p in &programs {
            let lowered = synth.lower(p).unwrap();
            // Twice: once filling, once hitting — both must equal the inner.
            let inner_time = model.inner().program_time(&lowered);
            assert_eq!(model.program_time(&lowered), inner_time);
            assert_eq!(model.program_time(&lowered), inner_time);
        }
        let stats = model.stats();
        assert!(stats.hits > stats.misses, "expected mostly hits: {stats:?}");
    }

    #[test]
    fn class_captures_level_and_size() {
        let sys = presets::a100_system(2);
        let matrix = ParallelismMatrix::new(vec![vec![2, 16]], vec![2, 16], vec![32]).unwrap();
        let program = baseline_allreduce(&matrix, &[0]).unwrap();
        let class = StepClass::of(&sys, &program.steps[0]);
        assert_eq!(class.level, Some(0)); // crosses the node level
        assert_eq!(class.collective, Collective::AllReduce);
        assert_eq!(class.max_group_size, 32);
    }
}
