use std::fmt;

/// The NCCL algorithm used for each collective call (`NCCL_ALGO` in the
/// paper's experiments, §4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum NcclAlgo {
    /// Ring algorithms: bandwidth-optimal, latency linear in the group size.
    Ring,
    /// Tree algorithms: latency logarithmic in the group size, slightly more
    /// traffic per link.
    Tree,
}

impl NcclAlgo {
    /// Both algorithms, in the order the paper tabulates them.
    pub const ALL: [NcclAlgo; 2] = [NcclAlgo::Ring, NcclAlgo::Tree];
}

impl fmt::Display for NcclAlgo {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NcclAlgo::Ring => write!(f, "Ring"),
            NcclAlgo::Tree => write!(f, "Tree"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names() {
        assert_eq!(NcclAlgo::Ring.to_string(), "Ring");
        assert_eq!(NcclAlgo::Tree.to_string(), "Tree");
        assert_eq!(NcclAlgo::ALL.len(), 2);
    }
}
