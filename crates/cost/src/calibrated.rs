//! A measurement-calibrated cost model: rescales an inner model's per-level
//! predictions by factors fitted against observed (e.g. `p2_exec`) timings.

use std::sync::Arc;

use p2_collectives::Collective;
use p2_synthesis::{GroupExec, LoweredProgram, LoweredStep};
use p2_topology::SystemTopology;

use crate::error::CostError;
use crate::model::{CostModel, StepCost};

/// An inner [`CostModel`] whose per-group predictions are multiplied by a
/// per-hierarchy-level scale factor — the level of a group being the
/// *outermost* (slowest) interconnect it crosses.
///
/// The scales are typically fitted with [`CalibratedModel::calibrate`]: for
/// every hierarchy level a two-device probe collective crossing exactly that
/// level is predicted by the inner model and measured by a caller-supplied
/// function (the pipeline feeds the `p2_exec` execution substrate in), and
/// the ratio becomes the level's scale. This corrects systematic per-level
/// bias — e.g. a NIC whose effective bandwidth is below its nominal value —
/// without touching the inner model's contention machinery.
///
/// Scales must be positive and finite, so the admissibility requirement of
/// [`CostModel`] is preserved: scaled step times stay non-negative and
/// prefix sums remain lower bounds.
#[derive(Debug, Clone)]
pub struct CalibratedModel {
    inner: Arc<dyn CostModel>,
    /// `level_scales[l]` multiplies groups whose outermost crossed uplink is
    /// at hierarchy level `l`; groups crossing no uplink are never scaled.
    level_scales: Vec<f64>,
    name: String,
}

impl CalibratedModel {
    /// Wraps `inner` with explicit per-level scale factors (one per hierarchy
    /// level, outermost first).
    ///
    /// # Errors
    ///
    /// Returns [`CostError::ScaleCountMismatch`] when the scale count differs
    /// from the system's hierarchy depth and [`CostError::InvalidScale`] for
    /// non-positive or non-finite factors.
    pub fn new(inner: Arc<dyn CostModel>, level_scales: Vec<f64>) -> Result<Self, CostError> {
        let depth = inner.system().hierarchy().depth();
        if level_scales.len() != depth {
            return Err(CostError::ScaleCountMismatch {
                expected: depth,
                got: level_scales.len(),
            });
        }
        for (level, &scale) in level_scales.iter().enumerate() {
            if !(scale.is_finite() && scale > 0.0) {
                return Err(CostError::InvalidScale { level, scale });
            }
        }
        let name = format!("calibrated({})", inner.name());
        Ok(CalibratedModel {
            inner,
            level_scales,
            name,
        })
    }

    /// Fits one scale per hierarchy level against `measure`, a function
    /// returning the observed time of a lowered program (the pipeline passes
    /// the `p2_exec` executor's `measure` here).
    ///
    /// Level `l`'s probe is a two-device AllReduce between device `0` and the
    /// first device of the next level-`l` instance, so its traffic bottleneck
    /// is exactly the level-`l` interconnect; its scale is the ratio of the
    /// measured to the predicted probe time. Levels that cannot be probed
    /// (single-instance levels, or degenerate predictions) keep a scale of
    /// `1.0`.
    ///
    /// # Errors
    ///
    /// Same as [`CalibratedModel::new`] (unreachable for finite positive
    /// measurements, kept for robustness against pathological `measure`
    /// functions).
    pub fn calibrate<F>(inner: Arc<dyn CostModel>, mut measure: F) -> Result<Self, CostError>
    where
        F: FnMut(&LoweredProgram) -> f64,
    {
        let depth = inner.system().hierarchy().depth();
        let mut scales = vec![1.0; depth];
        for (level, scale) in scales.iter_mut().enumerate() {
            let Some(probe) = Self::probe_program(inner.system(), level) else {
                continue;
            };
            let predicted = inner.program_time(&probe);
            let measured = measure(&probe);
            if predicted > 0.0 && measured.is_finite() && measured > 0.0 {
                *scale = measured / predicted;
            }
        }
        Self::new(inner, scales)
    }

    /// The reference program used to calibrate one hierarchy level: a
    /// two-device AllReduce whose slowest crossed interconnect is exactly
    /// `level`, or `None` when the level has a single instance per parent and
    /// can never be crossed.
    pub fn probe_program(system: &SystemTopology, level: usize) -> Option<LoweredProgram> {
        let arities = system.hierarchy().arities();
        if *arities.get(level)? < 2 {
            return None;
        }
        // Device 0 and the first device of the adjacent level-`level` sibling
        // differ at `level` and nowhere above it.
        let stride: usize = arities[level + 1..].iter().product();
        Some(LoweredProgram {
            steps: vec![LoweredStep {
                collective: Collective::AllReduce,
                groups: vec![GroupExec {
                    devices: vec![0, stride],
                    input_fraction: 1.0,
                }],
            }],
            num_devices: system.num_devices(),
        })
    }

    /// The per-level scale factors, outermost level first.
    pub fn level_scales(&self) -> &[f64] {
        &self.level_scales
    }

    /// The wrapped model.
    pub fn inner(&self) -> &Arc<dyn CostModel> {
        &self.inner
    }

    /// The scale applied to one group: the factor of the outermost level the
    /// group's traffic crosses, or `1.0` for groups crossing no uplink.
    fn group_scale(&self, group: &GroupExec) -> f64 {
        match self.inner.system().span_level(&group.devices) {
            Some(level) => self.level_scales[level],
            None => 1.0,
        }
    }
}

impl CostModel for CalibratedModel {
    fn name(&self) -> &str {
        &self.name
    }

    fn system(&self) -> &SystemTopology {
        self.inner.system()
    }

    fn bytes_per_device(&self) -> f64 {
        self.inner.bytes_per_device()
    }

    fn step_cost(&self, step: &LoweredStep) -> StepCost {
        let inner = self.inner.step_cost(step);
        let group_seconds: Vec<f64> = step
            .groups
            .iter()
            .zip(&inner.group_seconds)
            .map(|(group, &seconds)| seconds * self.group_scale(group))
            .collect();
        let seconds = group_seconds.iter().copied().fold(0.0, f64::max);
        StepCost {
            collective: inner.collective,
            seconds,
            group_seconds,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AlphaBetaModel, NcclAlgo};
    use p2_topology::presets;

    const GIB: f64 = 1024.0 * 1024.0 * 1024.0;

    fn inner() -> Arc<dyn CostModel> {
        Arc::new(AlphaBetaModel::new(presets::a100_system(2), NcclAlgo::Ring, GIB).unwrap())
    }

    #[test]
    fn unit_scales_are_the_identity() {
        let model = CalibratedModel::new(inner(), vec![1.0, 1.0]).unwrap();
        let probe = CalibratedModel::probe_program(model.system(), 0).unwrap();
        assert_eq!(model.program_time(&probe), inner().program_time(&probe));
        assert_eq!(model.name(), "calibrated(alpha-beta)");
    }

    #[test]
    fn scales_apply_to_the_crossed_level_only() {
        let model = CalibratedModel::new(inner(), vec![2.0, 1.0]).unwrap();
        let cross_node = CalibratedModel::probe_program(model.system(), 0).unwrap();
        let intra_node = CalibratedModel::probe_program(model.system(), 1).unwrap();
        let reference = inner();
        assert_eq!(
            model.program_time(&cross_node),
            2.0 * reference.program_time(&cross_node)
        );
        assert_eq!(
            model.program_time(&intra_node),
            reference.program_time(&intra_node)
        );
    }

    #[test]
    fn calibration_reproduces_the_probe_ratios() {
        // A "measurement" that is exactly 3x the prediction on every probe.
        let reference = inner();
        let model =
            CalibratedModel::calibrate(inner(), |p| 3.0 * reference.program_time(p)).unwrap();
        for &scale in model.level_scales() {
            assert!((scale - 3.0).abs() < 1e-12);
        }
    }

    #[test]
    fn degenerate_measurements_fall_back_to_unit_scales() {
        let model = CalibratedModel::calibrate(inner(), |_| f64::NAN).unwrap();
        assert_eq!(model.level_scales(), &[1.0, 1.0]);
    }

    #[test]
    fn invalid_scales_rejected() {
        assert!(matches!(
            CalibratedModel::new(inner(), vec![1.0]),
            Err(CostError::ScaleCountMismatch {
                expected: 2,
                got: 1
            })
        ));
        assert!(matches!(
            CalibratedModel::new(inner(), vec![1.0, -2.0]),
            Err(CostError::InvalidScale { level: 1, .. })
        ));
    }

    #[test]
    fn single_instance_levels_have_no_probe() {
        // figure2a has a single rack, so level 0 can never be crossed.
        let sys = presets::figure2a_system();
        assert!(CalibratedModel::probe_program(&sys, 0).is_none());
        assert!(CalibratedModel::probe_program(&sys, 1).is_some());
    }
}
