//! The α–β cost model with per-uplink contention.

use std::collections::HashMap;

use p2_collectives::Collective;
use p2_synthesis::{GroupExec, LoweredProgram, LoweredStep};
use p2_topology::{SystemTopology, Uplink};

use crate::algo::NcclAlgo;
use crate::error::CostError;

/// Predicted cost of one step of a lowered program.
#[derive(Debug, Clone, PartialEq)]
pub struct StepCost {
    /// The collective performed by the step.
    pub collective: Collective,
    /// Predicted time of the step: the maximum over its concurrent groups.
    pub seconds: f64,
    /// Predicted time of every group of the step.
    pub group_seconds: Vec<f64>,
}

/// Predicted cost of a whole program, step by step.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct CostBreakdown {
    /// Per-step costs, in program order.
    pub steps: Vec<StepCost>,
}

impl CostBreakdown {
    /// Total predicted time: the sum of the step times.
    pub fn total(&self) -> f64 {
        self.steps.iter().map(|s| s.seconds).sum()
    }
}

/// Incremental prefix costing for a lowered program: the running sum of the
/// step times pushed so far.
///
/// Step times are non-negative, so after any prefix the accumulated value is
/// an *admissible lower bound* on the whole program's predicted time — the
/// streaming pipeline uses it to prune candidates before measuring them.
/// Pushing every step of a program accumulates, bit for bit, the same value
/// as [`CostModel::program_time`]: both fold the identical per-step times
/// with `+` from `0.0` in program order.
#[derive(Debug, Clone)]
pub struct CostAccumulator<'m, 'a> {
    model: &'m CostModel<'a>,
    seconds: f64,
    steps: usize,
}

impl<'m, 'a> CostAccumulator<'m, 'a> {
    /// Creates an empty accumulator over `model`.
    pub fn new(model: &'m CostModel<'a>) -> Self {
        CostAccumulator {
            model,
            seconds: 0.0,
            steps: 0,
        }
    }

    /// Adds one step's predicted time and returns the running total.
    pub fn push(&mut self, step: &LoweredStep) -> f64 {
        self.seconds += self.model.step_time(step);
        self.steps += 1;
        self.seconds
    }

    /// The accumulated predicted time of the steps pushed so far, in seconds.
    pub fn seconds(&self) -> f64 {
        self.seconds
    }

    /// How many steps have been pushed.
    pub fn steps(&self) -> usize {
        self.steps
    }

    /// Whether the accumulated prefix already exceeds `bound` — once true, the
    /// whole program's predicted time is guaranteed to exceed it too.
    pub fn exceeds(&self, bound: f64) -> bool {
        self.seconds > bound
    }
}

/// The paper's analytic simulator: predicts the end-to-end time of a lowered
/// reduction program on a hierarchical system.
///
/// For every step, each concurrently-communicating device group is assigned
/// an *effective bandwidth*: the minimum, over the uplinks its traffic
/// crosses, of the uplink bandwidth divided by the number of groups of the
/// same step using that uplink. The group's time follows the standard α–β
/// formulas for its collective and algorithm; a step takes as long as its
/// slowest group and a program is the sum of its steps.
#[derive(Debug, Clone)]
pub struct CostModel<'a> {
    system: &'a SystemTopology,
    algo: NcclAlgo,
    bytes_per_device: f64,
}

impl<'a> CostModel<'a> {
    /// Creates a cost model for a system, an NCCL algorithm and a per-device
    /// buffer size in bytes.
    ///
    /// # Errors
    ///
    /// Returns [`CostError::InvalidBytes`] when the byte count is not a
    /// positive finite number.
    pub fn new(
        system: &'a SystemTopology,
        algo: NcclAlgo,
        bytes_per_device: f64,
    ) -> Result<Self, CostError> {
        if !(bytes_per_device.is_finite() && bytes_per_device > 0.0) {
            return Err(CostError::InvalidBytes {
                bytes: bytes_per_device,
            });
        }
        Ok(CostModel {
            system,
            algo,
            bytes_per_device,
        })
    }

    /// The system this model predicts for.
    pub fn system(&self) -> &SystemTopology {
        self.system
    }

    /// The NCCL algorithm assumed for every collective call.
    pub fn algo(&self) -> NcclAlgo {
        self.algo
    }

    /// The per-device buffer size in bytes.
    pub fn bytes_per_device(&self) -> f64 {
        self.bytes_per_device
    }

    /// Predicted time of a whole lowered program, in seconds.
    pub fn program_time(&self, program: &LoweredProgram) -> f64 {
        self.program_breakdown(program).total()
    }

    /// Starts an incremental [`CostAccumulator`] over this model.
    pub fn accumulator(&self) -> CostAccumulator<'_, 'a> {
        CostAccumulator::new(self)
    }

    /// Per-step prediction for a lowered program.
    pub fn program_breakdown(&self, program: &LoweredProgram) -> CostBreakdown {
        CostBreakdown {
            steps: program.steps.iter().map(|s| self.step_cost(s)).collect(),
        }
    }

    /// Predicted time of one step (the maximum over its concurrent groups).
    pub fn step_time(&self, step: &LoweredStep) -> f64 {
        self.step_cost(step).seconds
    }

    fn step_cost(&self, step: &LoweredStep) -> StepCost {
        // Count how many groups of this step use each uplink.
        let mut usage: HashMap<Uplink, usize> = HashMap::new();
        let group_uplinks: Vec<Vec<Uplink>> = step
            .groups
            .iter()
            .map(|g| self.system.used_uplinks(&g.devices))
            .collect();
        for uplinks in &group_uplinks {
            for &u in uplinks {
                *usage.entry(u).or_insert(0) += 1;
            }
        }
        let group_seconds: Vec<f64> = step
            .groups
            .iter()
            .zip(&group_uplinks)
            .map(|(group, uplinks)| self.group_time(step.collective, group, uplinks, &usage))
            .collect();
        let seconds = group_seconds.iter().copied().fold(0.0, f64::max);
        StepCost {
            collective: step.collective,
            seconds,
            group_seconds,
        }
    }

    /// Predicted time of one device group performing one collective, given the
    /// uplink usage counts of its step.
    ///
    /// The model computes, for every uplink and direction, the bytes the
    /// collective's communication pattern (ring, chain or binomial tree) moves
    /// through it, inflates them by the number of concurrent groups sharing
    /// the uplink, and takes the slowest uplink as the bandwidth term; the
    /// latency term counts the algorithm's communication rounds.
    fn group_time(
        &self,
        collective: Collective,
        group: &GroupExec,
        uplinks: &[Uplink],
        usage: &HashMap<Uplink, usize>,
    ) -> f64 {
        let n = group.devices.len();
        if n < 2 || uplinks.is_empty() {
            return 0.0;
        }
        let bytes = self.bytes_per_device * group.input_fraction;
        let n_f = n as f64;
        // Edges of the communication pattern and the bytes each edge carries
        // over the whole collective.
        let (edges, bytes_per_edge, rounds): (Vec<(usize, usize)>, f64, f64) =
            match (collective, self.algo) {
                (Collective::AllReduce, NcclAlgo::Ring) => (
                    ring_edges(&group.devices),
                    2.0 * (n_f - 1.0) / n_f * bytes,
                    2.0 * (n_f - 1.0),
                ),
                (Collective::ReduceScatter, _) => (
                    ring_edges(&group.devices),
                    (n_f - 1.0) / n_f * bytes,
                    n_f - 1.0,
                ),
                (Collective::AllGather, _) => {
                    (ring_edges(&group.devices), (n_f - 1.0) * bytes, n_f - 1.0)
                }
                (Collective::AllReduce, NcclAlgo::Tree) => (
                    bidirectional(tree_edges(&group.devices)),
                    bytes,
                    2.0 * n_f.log2().ceil(),
                ),
                (Collective::Reduce, NcclAlgo::Tree) => {
                    (tree_edges(&group.devices), bytes, n_f.log2().ceil())
                }
                (Collective::Broadcast, NcclAlgo::Tree) => (
                    reverse_edges(tree_edges(&group.devices)),
                    bytes,
                    n_f.log2().ceil(),
                ),
                (Collective::Reduce, NcclAlgo::Ring) => {
                    (chain_edges(&group.devices, true), bytes, n_f - 1.0)
                }
                (Collective::Broadcast, NcclAlgo::Ring) => {
                    (chain_edges(&group.devices, false), bytes, n_f - 1.0)
                }
            };
        // Directional traffic through every uplink.
        let mut traffic: HashMap<(Uplink, bool), f64> = HashMap::new();
        let mut latency = 0.0_f64;
        for &(src, dst) in &edges {
            for uplink in self.system.used_uplinks(&[src, dst]) {
                let outbound = self
                    .system
                    .ancestor_instance(src, uplink.level)
                    .map(|inst| inst == uplink.instance)
                    .unwrap_or(false);
                *traffic.entry((uplink, outbound)).or_insert(0.0) += bytes_per_edge;
                latency = latency.max(self.system.link(uplink.level).latency());
            }
        }
        let bw_term = traffic
            .iter()
            .map(|(&(uplink, _), &bytes_through)| {
                let contention = *usage.get(&uplink).unwrap_or(&1) as f64;
                bytes_through * contention / self.system.link(uplink.level).bandwidth()
            })
            .fold(0.0, f64::max);
        bw_term + rounds * latency
    }

    /// Validates that a program only references devices of this system.
    ///
    /// # Errors
    ///
    /// Returns [`CostError::DeviceOutOfRange`] for the first offending rank.
    pub fn validate_program(&self, program: &LoweredProgram) -> Result<(), CostError> {
        let num_devices = self.system.num_devices();
        for step in &program.steps {
            for group in &step.groups {
                for &d in &group.devices {
                    if d >= num_devices {
                        return Err(CostError::DeviceOutOfRange {
                            rank: d,
                            num_devices,
                        });
                    }
                }
            }
        }
        Ok(())
    }
}

/// NCCL builds topology-aware rings that enter and leave every locality domain
/// once; ordering the group by physical rank reproduces that, because ranks
/// enumerate the hierarchy depth-first.
fn nccl_ring_order(devices: &[usize]) -> Vec<usize> {
    let mut order = devices.to_vec();
    order.sort_unstable();
    order
}

/// Root-first order for rooted collectives: the group's designated root stays
/// first, the rest is ordered by physical rank (hierarchy-aware chain/tree).
fn rooted_order(devices: &[usize]) -> Vec<usize> {
    let mut order = devices.to_vec();
    if order.len() > 1 {
        order[1..].sort_unstable();
    }
    order
}

/// Consecutive ring edges (including the wrap-around) in hierarchy-aware order.
fn ring_edges(devices: &[usize]) -> Vec<(usize, usize)> {
    let order = nccl_ring_order(devices);
    let n = order.len();
    (0..n).map(|i| (order[i], order[(i + 1) % n])).collect()
}

/// Chain edges toward (`toward_root`) or away from the first device.
fn chain_edges(devices: &[usize], toward_root: bool) -> Vec<(usize, usize)> {
    let order = rooted_order(devices);
    (1..order.len())
        .map(|i| {
            if toward_root {
                (order[i], order[i - 1])
            } else {
                (order[i - 1], order[i])
            }
        })
        .collect()
}

/// Binomial-tree edges toward the first device (child → parent).
fn tree_edges(devices: &[usize]) -> Vec<(usize, usize)> {
    let order = rooted_order(devices);
    let n = order.len();
    let mut edges = Vec::new();
    let mut step = 1usize;
    while step < n {
        let mut i = 0usize;
        while i + step < n {
            edges.push((order[i + step], order[i]));
            i += 2 * step;
        }
        step *= 2;
    }
    edges
}

/// Each edge plus its reverse (for AllReduce's reduce-then-broadcast tree).
fn bidirectional(edges: Vec<(usize, usize)>) -> Vec<(usize, usize)> {
    let mut out = edges.clone();
    out.extend(edges.into_iter().map(|(a, b)| (b, a)));
    out
}

/// Every edge reversed (broadcast down a reduction tree).
fn reverse_edges(edges: Vec<(usize, usize)>) -> Vec<(usize, usize)> {
    edges.into_iter().map(|(a, b)| (b, a)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use p2_placement::ParallelismMatrix;
    use p2_synthesis::{baseline_allreduce, HierarchyKind, Synthesizer};
    use p2_topology::presets;

    const GIB: f64 = 1024.0 * 1024.0 * 1024.0;

    fn a100_4() -> p2_topology::SystemTopology {
        presets::a100_system(4)
    }

    #[test]
    fn invalid_bytes_rejected() {
        let sys = a100_4();
        assert!(CostModel::new(&sys, NcclAlgo::Ring, 0.0).is_err());
        assert!(CostModel::new(&sys, NcclAlgo::Ring, f64::NAN).is_err());
        assert!(CostModel::new(&sys, NcclAlgo::Ring, -1.0).is_err());
    }

    #[test]
    fn local_reduction_is_orders_of_magnitude_faster_than_cross_node() {
        // Table 3 rows B1 vs B3 (Result 1): the placement changes AllReduce
        // time by more than two orders of magnitude.
        let sys = a100_4();
        let bytes = 4.0 * (1u64 << 29) as f64 * 4.0;
        let b1 =
            ParallelismMatrix::new(vec![vec![1, 4], vec![4, 4]], vec![4, 16], vec![4, 16]).unwrap();
        let b3 = ParallelismMatrix::new(vec![vec![4, 1], vec![1, 16]], vec![4, 16], vec![4, 16])
            .unwrap();
        for algo in NcclAlgo::ALL {
            let model = CostModel::new(&sys, algo, bytes).unwrap();
            let t1 = model.program_time(&baseline_allreduce(&b1, &[0]).unwrap());
            let t3 = model.program_time(&baseline_allreduce(&b3, &[0]).unwrap());
            assert!(
                t3 / t1 > 100.0,
                "{algo}: expected a large gap, got {t1} vs {t3}"
            );
            // And the same placement is much better for the *other* reduction axis.
            let t1_axis1 = model.program_time(&baseline_allreduce(&b1, &[1]).unwrap());
            let t3_axis1 = model.program_time(&baseline_allreduce(&b3, &[1]).unwrap());
            assert!(t1_axis1 / t3_axis1 > 10.0);
        }
    }

    #[test]
    fn hierarchical_program_beats_flat_allreduce_across_nodes() {
        // Result 5: when the reduction crosses nodes, a topology-aware program
        // (ReduceScatter-AllReduce-AllGather) outperforms the single AllReduce.
        let sys = presets::v100_system(4);
        let bytes = 4.0 * (1u64 << 29) as f64 * 4.0;
        let matrix = ParallelismMatrix::new(vec![vec![4, 8]], vec![4, 8], vec![32]).unwrap();
        let synth =
            Synthesizer::new(matrix.clone(), vec![0], HierarchyKind::ReductionAxes).unwrap();
        let result = synth.synthesize(5);
        let model = CostModel::new(&sys, NcclAlgo::Ring, bytes).unwrap();
        let baseline = model.program_time(&baseline_allreduce(&matrix, &[0]).unwrap());
        let best = result
            .programs
            .iter()
            .map(|p| model.program_time(&synth.lower(p).unwrap()))
            .fold(f64::INFINITY, f64::min);
        assert!(
            best < baseline,
            "best synthesized {best} should beat AllReduce {baseline}"
        );
        let speedup = baseline / best;
        assert!(
            speedup > 1.05 && speedup < 10.0,
            "speedup {speedup} outside plausible range"
        );
    }

    #[test]
    fn local_reduction_is_not_improved_by_synthesis() {
        // Result 3: if the reduction fits in one node, the single AllReduce is
        // already (near-)optimal.
        let sys = a100_4();
        let bytes = 4.0 * (1u64 << 29) as f64 * 4.0;
        // F1-style placement: reduction axis inside the node.
        let matrix =
            ParallelismMatrix::new(vec![vec![1, 8], vec![4, 2]], vec![4, 16], vec![8, 8]).unwrap();
        let synth =
            Synthesizer::new(matrix.clone(), vec![0], HierarchyKind::ReductionAxes).unwrap();
        let model = CostModel::new(&sys, NcclAlgo::Ring, bytes).unwrap();
        let baseline = model.program_time(&baseline_allreduce(&matrix, &[0]).unwrap());
        let best = synth
            .synthesize(5)
            .programs
            .iter()
            .map(|p| model.program_time(&synth.lower(p).unwrap()))
            .fold(f64::INFINITY, f64::min);
        assert!(
            baseline <= best * 1.01,
            "AllReduce {baseline} should be optimal, best {best}"
        );
    }

    #[test]
    fn cost_scales_linearly_with_bytes() {
        let sys = a100_4();
        let matrix =
            ParallelismMatrix::new(vec![vec![4, 1], vec![1, 16]], vec![4, 16], vec![4, 16])
                .unwrap();
        let program = baseline_allreduce(&matrix, &[0]).unwrap();
        let small = CostModel::new(&sys, NcclAlgo::Ring, GIB)
            .unwrap()
            .program_time(&program);
        let large = CostModel::new(&sys, NcclAlgo::Ring, 4.0 * GIB)
            .unwrap()
            .program_time(&program);
        let ratio = large / small;
        assert!(
            (ratio - 4.0).abs() < 0.05,
            "bandwidth-bound cost should scale ~linearly, ratio {ratio}"
        );
    }

    #[test]
    fn contention_slows_groups_down() {
        let sys = a100_4();
        let model = CostModel::new(&sys, NcclAlgo::Ring, GIB).unwrap();
        // One cross-node pair alone...
        let lone = LoweredStep {
            collective: Collective::AllReduce,
            groups: vec![GroupExec {
                devices: vec![0, 16],
                input_fraction: 1.0,
            }],
        };
        // ...versus sixteen cross-node pairs sharing the two NICs.
        let crowded = LoweredStep {
            collective: Collective::AllReduce,
            groups: (0..16)
                .map(|i| GroupExec {
                    devices: vec![i, 16 + i],
                    input_fraction: 1.0,
                })
                .collect(),
        };
        let t_lone = model.step_time(&lone);
        let t_crowded = model.step_time(&crowded);
        let ratio = t_crowded / t_lone;
        assert!(
            (ratio - 16.0).abs() < 0.5,
            "expected ~16x contention slowdown, got {ratio}"
        );
    }

    #[test]
    fn empty_and_trivial_steps_cost_nothing() {
        let sys = a100_4();
        let model = CostModel::new(&sys, NcclAlgo::Tree, GIB).unwrap();
        let step = LoweredStep {
            collective: Collective::Broadcast,
            groups: vec![GroupExec {
                devices: vec![3],
                input_fraction: 1.0,
            }],
        };
        assert_eq!(model.step_time(&step), 0.0);
        let empty = LoweredProgram {
            steps: vec![],
            num_devices: 64,
        };
        assert_eq!(model.program_time(&empty), 0.0);
    }

    #[test]
    fn validate_program_catches_bad_ranks() {
        let sys = a100_4();
        let model = CostModel::new(&sys, NcclAlgo::Ring, GIB).unwrap();
        let bad = LoweredProgram {
            steps: vec![LoweredStep {
                collective: Collective::AllReduce,
                groups: vec![GroupExec {
                    devices: vec![0, 99],
                    input_fraction: 1.0,
                }],
            }],
            num_devices: 64,
        };
        assert!(matches!(
            model.validate_program(&bad),
            Err(CostError::DeviceOutOfRange { rank: 99, .. })
        ));
    }

    #[test]
    fn accumulator_prefixes_lower_bound_and_total_matches_bit_for_bit() {
        let sys = a100_4();
        let matrix =
            ParallelismMatrix::new(vec![vec![2, 8], vec![2, 2]], vec![4, 16], vec![16, 4]).unwrap();
        let synth = Synthesizer::new(matrix, vec![0], HierarchyKind::ReductionAxes).unwrap();
        let programs = synth.synthesize(4).programs;
        for algo in NcclAlgo::ALL {
            let model = CostModel::new(&sys, algo, GIB).unwrap();
            for p in programs.iter().take(10) {
                let lowered = synth.lower(p).unwrap();
                let total = model.program_time(&lowered);
                let mut acc = model.accumulator();
                for (i, step) in lowered.steps.iter().enumerate() {
                    let running = acc.push(step);
                    assert_eq!(acc.steps(), i + 1);
                    assert_eq!(running, acc.seconds());
                    // Every prefix is an admissible lower bound on the total.
                    assert!(running <= total + 1e-15, "prefix {running} above {total}");
                }
                // The full accumulation is bit-identical to program_time.
                assert_eq!(acc.seconds(), total);
            }
        }
    }

    #[test]
    fn accumulator_exceeds_tracks_the_bound() {
        let sys = a100_4();
        let model = CostModel::new(&sys, NcclAlgo::Ring, GIB).unwrap();
        let step = LoweredStep {
            collective: Collective::AllReduce,
            groups: vec![GroupExec {
                devices: vec![0, 16],
                input_fraction: 1.0,
            }],
        };
        let mut acc = model.accumulator();
        assert!(!acc.exceeds(0.0), "an empty prefix exceeds nothing");
        let t = acc.push(&step);
        assert!(t > 0.0);
        assert!(acc.exceeds(t / 2.0));
        assert!(!acc.exceeds(t));
        assert!(!acc.exceeds(2.0 * t));
    }

    #[test]
    fn breakdown_total_matches_program_time() {
        let sys = a100_4();
        let matrix =
            ParallelismMatrix::new(vec![vec![2, 8], vec![2, 2]], vec![4, 16], vec![16, 4]).unwrap();
        let synth = Synthesizer::new(matrix, vec![0], HierarchyKind::ReductionAxes).unwrap();
        let programs = synth.synthesize(4).programs;
        let model = CostModel::new(&sys, NcclAlgo::Tree, GIB).unwrap();
        for p in programs.iter().take(10) {
            let lowered = synth.lower(p).unwrap();
            let breakdown = model.program_breakdown(&lowered);
            assert_eq!(breakdown.steps.len(), lowered.steps.len());
            assert!((breakdown.total() - model.program_time(&lowered)).abs() < 1e-12);
            assert!(breakdown.total() > 0.0);
        }
    }
}
