//! The `CostModel` trait: pluggable prediction of lowered-program time, plus
//! the incremental [`CostAccumulator`] used for admissible prefix pruning.

use std::fmt;
use std::str::FromStr;

use p2_collectives::Collective;
use p2_synthesis::{LoweredProgram, LoweredStep};
use p2_topology::SystemTopology;

use crate::error::CostError;

/// Predicted cost of one step of a lowered program.
#[derive(Debug, Clone, PartialEq)]
pub struct StepCost {
    /// The collective performed by the step.
    pub collective: Collective,
    /// Predicted time of the step: the maximum over its concurrent groups.
    pub seconds: f64,
    /// Predicted time of every group of the step.
    pub group_seconds: Vec<f64>,
}

/// Predicted cost of a whole program, step by step.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct CostBreakdown {
    /// Per-step costs, in program order.
    pub steps: Vec<StepCost>,
}

impl CostBreakdown {
    /// Total predicted time: the sum of the step times.
    pub fn total(&self) -> f64 {
        self.steps.iter().map(|s| s.seconds).sum()
    }
}

/// A performance model predicting the time of lowered reduction programs on a
/// hierarchical system — the pluggable face of the paper's analytic simulator.
///
/// Implementations provide [`step_cost`](CostModel::step_cost); everything
/// else has a default in terms of it. The built-in implementations are
/// [`AlphaBetaModel`](crate::AlphaBetaModel) (the paper's α–β model, the
/// default), [`LogGpModel`](crate::LogGpModel),
/// [`CalibratedModel`](crate::CalibratedModel) and the
/// [`CachedCostModel`](crate::CachedCostModel) decorator; they are selected
/// by name through [`CostModelKind`].
///
/// # Admissibility requirement
///
/// The streaming pipeline prunes candidates by comparing the *prefix* sums a
/// [`CostAccumulator`] produces against an upper bound, and drops a candidate
/// as soon as a prefix exceeds the bound. For that to be sound, every
/// implementation **must** guarantee:
///
/// 1. **Non-negative step times** — `step_time` never returns a negative or
///    NaN value, so the running sum never decreases; and
/// 2. **Additivity** — `program_time` equals folding the per-step times with
///    `+` from `0.0` in program order (the default implementation does
///    exactly this; overrides must preserve it bit for bit, since the
///    determinism suite compares accumulated prefixes against totals with
///    `==`).
///
/// Together these make every prefix sum an *admissible lower bound* on the
/// whole program's predicted time: a candidate whose prefix already exceeds
/// the bound cannot come back under it.
///
/// Models are shared across the worker threads of the placement sweep
/// (`Send + Sync`) and must be deterministic: the same step must always
/// predict the same bits, regardless of call order or thread count.
pub trait CostModel: fmt::Debug + Send + Sync {
    /// A short machine-readable name (e.g. `"alpha-beta"`), used by CLIs and
    /// progress output.
    fn name(&self) -> &str;

    /// The system this model predicts for.
    fn system(&self) -> &SystemTopology;

    /// The per-device buffer size in bytes the predictions assume.
    fn bytes_per_device(&self) -> f64;

    /// Per-group prediction for one step (the primitive operation).
    fn step_cost(&self, step: &LoweredStep) -> StepCost;

    /// Predicted time of one step (the maximum over its concurrent groups).
    fn step_time(&self, step: &LoweredStep) -> f64 {
        self.step_cost(step).seconds
    }

    /// Predicted time of a whole lowered program, in seconds: the per-step
    /// times folded with `+` from `0.0` in program order (see the trait-level
    /// admissibility requirement before overriding).
    fn program_time(&self, program: &LoweredProgram) -> f64 {
        program.steps.iter().map(|s| self.step_time(s)).sum()
    }

    /// Per-step prediction for a lowered program.
    fn program_breakdown(&self, program: &LoweredProgram) -> CostBreakdown {
        CostBreakdown {
            steps: program.steps.iter().map(|s| self.step_cost(s)).collect(),
        }
    }

    /// Validates that a program only references devices of this model's
    /// system.
    ///
    /// # Errors
    ///
    /// Returns [`CostError::DeviceOutOfRange`] for the first offending rank.
    fn validate_program(&self, program: &LoweredProgram) -> Result<(), CostError> {
        let num_devices = self.system().num_devices();
        for step in &program.steps {
            for group in &step.groups {
                for &d in &group.devices {
                    if d >= num_devices {
                        return Err(CostError::DeviceOutOfRange {
                            rank: d,
                            num_devices,
                        });
                    }
                }
            }
        }
        Ok(())
    }

    /// Starts an incremental [`CostAccumulator`] over this model.
    fn accumulator(&self) -> CostAccumulator<'_>
    where
        Self: Sized,
    {
        CostAccumulator::new(self)
    }
}

/// Incremental prefix costing for a lowered program: the running sum of the
/// step times pushed so far.
///
/// Step times are non-negative (a [`CostModel`] invariant), so after any
/// prefix the accumulated value is an *admissible lower bound* on the whole
/// program's predicted time — the streaming pipeline uses it to prune
/// candidates before measuring them. Pushing every step of a program
/// accumulates, bit for bit, the same value as [`CostModel::program_time`]:
/// both fold the identical per-step times with `+` from `0.0` in program
/// order.
#[derive(Debug, Clone)]
pub struct CostAccumulator<'m> {
    model: &'m dyn CostModel,
    seconds: f64,
    steps: usize,
}

impl<'m> CostAccumulator<'m> {
    /// Creates an empty accumulator over `model`.
    pub fn new(model: &'m dyn CostModel) -> Self {
        CostAccumulator {
            model,
            seconds: 0.0,
            steps: 0,
        }
    }

    /// Adds one step's predicted time and returns the running total.
    pub fn push(&mut self, step: &LoweredStep) -> f64 {
        self.seconds += self.model.step_time(step);
        self.steps += 1;
        self.seconds
    }

    /// The accumulated predicted time of the steps pushed so far, in seconds.
    pub fn seconds(&self) -> f64 {
        self.seconds
    }

    /// How many steps have been pushed.
    pub fn steps(&self) -> usize {
        self.steps
    }

    /// Whether the accumulated prefix already exceeds `bound` — once true, the
    /// whole program's predicted time is guaranteed to exceed it too.
    pub fn exceeds(&self, bound: f64) -> bool {
        self.seconds > bound
    }
}

/// The built-in cost models, selectable by name (e.g. from a `--cost-model`
/// CLI flag).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CostModelKind {
    /// The paper's α–β model with per-uplink contention
    /// ([`AlphaBetaModel`](crate::AlphaBetaModel)) — the default.
    AlphaBeta,
    /// The LogGP-style model with per-message overhead and gap terms
    /// ([`LogGpModel`](crate::LogGpModel)).
    LogGp,
    /// The α–β model with per-level terms rescaled from execution-substrate
    /// measurements ([`CalibratedModel`](crate::CalibratedModel)).
    Calibrated,
}

impl CostModelKind {
    /// Every built-in kind, in display order.
    pub const ALL: [CostModelKind; 3] = [
        CostModelKind::AlphaBeta,
        CostModelKind::LogGp,
        CostModelKind::Calibrated,
    ];

    /// The CLI name of the kind (`"alpha-beta"`, `"loggp"`, `"calibrated"`).
    pub fn as_str(self) -> &'static str {
        match self {
            CostModelKind::AlphaBeta => "alpha-beta",
            CostModelKind::LogGp => "loggp",
            CostModelKind::Calibrated => "calibrated",
        }
    }

    /// Reads a `--cost-model <name>` (or `--cost-model=<name>`) flag from an
    /// argument iterator, defaulting to the α–β model when the flag is
    /// absent. The fallible core of [`CostModelKind::from_args`], for hosts
    /// that must not have their process exited for them.
    ///
    /// # Errors
    ///
    /// [`CostError::UnknownModel`] for unknown names or a missing value.
    pub fn try_from_args<I>(args: I) -> Result<CostModelKind, CostError>
    where
        I: IntoIterator,
        I::Item: AsRef<str>,
    {
        let mut args = args.into_iter();
        while let Some(arg) = args.next() {
            let arg = arg.as_ref();
            if let Some(name) = arg.strip_prefix("--cost-model=") {
                return name.parse();
            }
            if arg == "--cost-model" {
                let Some(name) = args.next() else {
                    return Err(CostError::UnknownModel {
                        name: "<missing value>".into(),
                    });
                };
                return name.as_ref().parse();
            }
        }
        Ok(CostModelKind::AlphaBeta)
    }

    /// [`CostModelKind::try_from_args`] over the process arguments, exiting
    /// with a usage message on bad input — the uniform CLI front door every
    /// paper-artifact binary and example shares. Library embedders should
    /// call [`CostModelKind::try_from_args`] instead.
    pub fn from_args() -> CostModelKind {
        CostModelKind::try_from_args(std::env::args().skip(1)).unwrap_or_else(|e| {
            eprintln!("{e} (expected --cost-model alpha-beta|loggp|calibrated)");
            std::process::exit(2);
        })
    }
}

/// [`CostModelKind::from_args`] as a free function, for call sites that read
/// better without the type name.
pub fn cost_model_from_args() -> CostModelKind {
    CostModelKind::from_args()
}

impl fmt::Display for CostModelKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl FromStr for CostModelKind {
    type Err = CostError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "alpha-beta" | "alphabeta" | "ab" => Ok(CostModelKind::AlphaBeta),
            "loggp" | "log-gp" => Ok(CostModelKind::LogGp),
            "calibrated" | "cal" => Ok(CostModelKind::Calibrated),
            _ => Err(CostError::UnknownModel { name: s.into() }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn try_from_args_parses_both_flag_forms() {
        let parse = |args: &[&str]| CostModelKind::try_from_args(args.iter().copied());
        assert_eq!(parse(&[]).unwrap(), CostModelKind::AlphaBeta);
        assert_eq!(
            parse(&["--cost-model", "loggp"]).unwrap(),
            CostModelKind::LogGp
        );
        assert_eq!(
            parse(&["x", "--cost-model=calibrated"]).unwrap(),
            CostModelKind::Calibrated
        );
        assert!(parse(&["--cost-model", "bogus"]).is_err());
        assert!(parse(&["--cost-model"]).is_err());
    }

    #[test]
    fn kind_names_round_trip() {
        for kind in CostModelKind::ALL {
            assert_eq!(kind.as_str().parse::<CostModelKind>().unwrap(), kind);
            assert_eq!(kind.to_string(), kind.as_str());
        }
        assert!(matches!(
            "no-such-model".parse::<CostModelKind>(),
            Err(CostError::UnknownModel { .. })
        ));
    }
}
