//! The α–β cost model with per-uplink contention — the paper's analytic
//! simulator and the default [`CostModel`] implementation.

use p2_synthesis::LoweredStep;
use p2_topology::SystemTopology;

use crate::algo::NcclAlgo;
use crate::error::CostError;
use crate::model::{CostModel, StepCost};
use crate::patterns::{group_traffic_terms, step_cost_with};

/// The paper's analytic simulator: predicts the end-to-end time of a lowered
/// reduction program on a hierarchical system.
///
/// For every step, each concurrently-communicating device group is assigned
/// an *effective bandwidth*: the minimum, over the uplinks its traffic
/// crosses, of the uplink bandwidth divided by the number of groups of the
/// same step using that uplink. The group's time follows the standard α–β
/// formulas for its collective and algorithm; a step takes as long as its
/// slowest group and a program is the sum of its steps.
#[derive(Debug, Clone)]
pub struct AlphaBetaModel {
    system: SystemTopology,
    algo: NcclAlgo,
    bytes_per_device: f64,
}

impl AlphaBetaModel {
    /// Creates a cost model for a system, an NCCL algorithm and a per-device
    /// buffer size in bytes.
    ///
    /// # Errors
    ///
    /// Returns [`CostError::InvalidBytes`] when the byte count is not a
    /// positive finite number.
    pub fn new(
        system: SystemTopology,
        algo: NcclAlgo,
        bytes_per_device: f64,
    ) -> Result<Self, CostError> {
        if !(bytes_per_device.is_finite() && bytes_per_device > 0.0) {
            return Err(CostError::InvalidBytes {
                bytes: bytes_per_device,
            });
        }
        Ok(AlphaBetaModel {
            system,
            algo,
            bytes_per_device,
        })
    }

    /// The NCCL algorithm assumed for every collective call.
    pub fn algo(&self) -> NcclAlgo {
        self.algo
    }
}

impl CostModel for AlphaBetaModel {
    fn name(&self) -> &str {
        "alpha-beta"
    }

    fn system(&self) -> &SystemTopology {
        &self.system
    }

    fn bytes_per_device(&self) -> f64 {
        self.bytes_per_device
    }

    /// α–β: the contention-inflated bandwidth term plus `rounds × latency`.
    fn step_cost(&self, step: &LoweredStep) -> StepCost {
        step_cost_with(&self.system, step, |group, uplinks, usage| {
            let bytes = self.bytes_per_device * group.input_fraction;
            match group_traffic_terms(
                &self.system,
                step.collective,
                self.algo,
                group,
                uplinks,
                usage,
                bytes,
            ) {
                Some(t) => t.bandwidth_seconds + t.rounds * t.wire_latency,
                None => 0.0,
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use p2_collectives::Collective;
    use p2_placement::ParallelismMatrix;
    use p2_synthesis::{baseline_allreduce, GroupExec, HierarchyKind, LoweredProgram, Synthesizer};
    use p2_topology::presets;

    const GIB: f64 = 1024.0 * 1024.0 * 1024.0;

    fn a100_4() -> p2_topology::SystemTopology {
        presets::a100_system(4)
    }

    #[test]
    fn invalid_bytes_rejected() {
        assert!(AlphaBetaModel::new(a100_4(), NcclAlgo::Ring, 0.0).is_err());
        assert!(AlphaBetaModel::new(a100_4(), NcclAlgo::Ring, f64::NAN).is_err());
        assert!(AlphaBetaModel::new(a100_4(), NcclAlgo::Ring, -1.0).is_err());
    }

    #[test]
    fn local_reduction_is_orders_of_magnitude_faster_than_cross_node() {
        // Table 3 rows B1 vs B3 (Result 1): the placement changes AllReduce
        // time by more than two orders of magnitude.
        let bytes = 4.0 * (1u64 << 29) as f64 * 4.0;
        let b1 =
            ParallelismMatrix::new(vec![vec![1, 4], vec![4, 4]], vec![4, 16], vec![4, 16]).unwrap();
        let b3 = ParallelismMatrix::new(vec![vec![4, 1], vec![1, 16]], vec![4, 16], vec![4, 16])
            .unwrap();
        for algo in NcclAlgo::ALL {
            let model = AlphaBetaModel::new(a100_4(), algo, bytes).unwrap();
            let t1 = model.program_time(&baseline_allreduce(&b1, &[0]).unwrap());
            let t3 = model.program_time(&baseline_allreduce(&b3, &[0]).unwrap());
            assert!(
                t3 / t1 > 100.0,
                "{algo}: expected a large gap, got {t1} vs {t3}"
            );
            // And the same placement is much better for the *other* reduction axis.
            let t1_axis1 = model.program_time(&baseline_allreduce(&b1, &[1]).unwrap());
            let t3_axis1 = model.program_time(&baseline_allreduce(&b3, &[1]).unwrap());
            assert!(t1_axis1 / t3_axis1 > 10.0);
        }
    }

    #[test]
    fn hierarchical_program_beats_flat_allreduce_across_nodes() {
        // Result 5: when the reduction crosses nodes, a topology-aware program
        // (ReduceScatter-AllReduce-AllGather) outperforms the single AllReduce.
        let sys = presets::v100_system(4);
        let bytes = 4.0 * (1u64 << 29) as f64 * 4.0;
        let matrix = ParallelismMatrix::new(vec![vec![4, 8]], vec![4, 8], vec![32]).unwrap();
        let synth =
            Synthesizer::new(matrix.clone(), vec![0], HierarchyKind::ReductionAxes).unwrap();
        let result = synth.synthesize(5);
        let model = AlphaBetaModel::new(sys, NcclAlgo::Ring, bytes).unwrap();
        let baseline = model.program_time(&baseline_allreduce(&matrix, &[0]).unwrap());
        let best = result
            .programs
            .iter()
            .map(|p| model.program_time(&synth.lower(p).unwrap()))
            .fold(f64::INFINITY, f64::min);
        assert!(
            best < baseline,
            "best synthesized {best} should beat AllReduce {baseline}"
        );
        let speedup = baseline / best;
        assert!(
            speedup > 1.05 && speedup < 10.0,
            "speedup {speedup} outside plausible range"
        );
    }

    #[test]
    fn local_reduction_is_not_improved_by_synthesis() {
        // Result 3: if the reduction fits in one node, the single AllReduce is
        // already (near-)optimal.
        let bytes = 4.0 * (1u64 << 29) as f64 * 4.0;
        // F1-style placement: reduction axis inside the node.
        let matrix =
            ParallelismMatrix::new(vec![vec![1, 8], vec![4, 2]], vec![4, 16], vec![8, 8]).unwrap();
        let synth =
            Synthesizer::new(matrix.clone(), vec![0], HierarchyKind::ReductionAxes).unwrap();
        let model = AlphaBetaModel::new(a100_4(), NcclAlgo::Ring, bytes).unwrap();
        let baseline = model.program_time(&baseline_allreduce(&matrix, &[0]).unwrap());
        let best = synth
            .synthesize(5)
            .programs
            .iter()
            .map(|p| model.program_time(&synth.lower(p).unwrap()))
            .fold(f64::INFINITY, f64::min);
        assert!(
            baseline <= best * 1.01,
            "AllReduce {baseline} should be optimal, best {best}"
        );
    }

    #[test]
    fn cost_scales_linearly_with_bytes() {
        let matrix =
            ParallelismMatrix::new(vec![vec![4, 1], vec![1, 16]], vec![4, 16], vec![4, 16])
                .unwrap();
        let program = baseline_allreduce(&matrix, &[0]).unwrap();
        let small = AlphaBetaModel::new(a100_4(), NcclAlgo::Ring, GIB)
            .unwrap()
            .program_time(&program);
        let large = AlphaBetaModel::new(a100_4(), NcclAlgo::Ring, 4.0 * GIB)
            .unwrap()
            .program_time(&program);
        let ratio = large / small;
        assert!(
            (ratio - 4.0).abs() < 0.05,
            "bandwidth-bound cost should scale ~linearly, ratio {ratio}"
        );
    }

    #[test]
    fn contention_slows_groups_down() {
        let model = AlphaBetaModel::new(a100_4(), NcclAlgo::Ring, GIB).unwrap();
        // One cross-node pair alone...
        let lone = LoweredStep {
            collective: Collective::AllReduce,
            groups: vec![GroupExec {
                devices: vec![0, 16],
                input_fraction: 1.0,
            }],
        };
        // ...versus sixteen cross-node pairs sharing the two NICs.
        let crowded = LoweredStep {
            collective: Collective::AllReduce,
            groups: (0..16)
                .map(|i| GroupExec {
                    devices: vec![i, 16 + i],
                    input_fraction: 1.0,
                })
                .collect(),
        };
        let t_lone = model.step_time(&lone);
        let t_crowded = model.step_time(&crowded);
        let ratio = t_crowded / t_lone;
        assert!(
            (ratio - 16.0).abs() < 0.5,
            "expected ~16x contention slowdown, got {ratio}"
        );
    }

    #[test]
    fn empty_and_trivial_steps_cost_nothing() {
        let model = AlphaBetaModel::new(a100_4(), NcclAlgo::Tree, GIB).unwrap();
        let step = LoweredStep {
            collective: Collective::Broadcast,
            groups: vec![GroupExec {
                devices: vec![3],
                input_fraction: 1.0,
            }],
        };
        assert_eq!(model.step_time(&step), 0.0);
        let empty = LoweredProgram {
            steps: vec![],
            num_devices: 64,
        };
        assert_eq!(model.program_time(&empty), 0.0);
    }

    #[test]
    fn validate_program_catches_bad_ranks() {
        let model = AlphaBetaModel::new(a100_4(), NcclAlgo::Ring, GIB).unwrap();
        let bad = LoweredProgram {
            steps: vec![LoweredStep {
                collective: Collective::AllReduce,
                groups: vec![GroupExec {
                    devices: vec![0, 99],
                    input_fraction: 1.0,
                }],
            }],
            num_devices: 64,
        };
        assert!(matches!(
            model.validate_program(&bad),
            Err(CostError::DeviceOutOfRange { rank: 99, .. })
        ));
    }

    #[test]
    fn accumulator_prefixes_lower_bound_and_total_matches_bit_for_bit() {
        let matrix =
            ParallelismMatrix::new(vec![vec![2, 8], vec![2, 2]], vec![4, 16], vec![16, 4]).unwrap();
        let synth = Synthesizer::new(matrix, vec![0], HierarchyKind::ReductionAxes).unwrap();
        let programs = synth.synthesize(4).programs;
        for algo in NcclAlgo::ALL {
            let model = AlphaBetaModel::new(a100_4(), algo, GIB).unwrap();
            for p in programs.iter().take(10) {
                let lowered = synth.lower(p).unwrap();
                let total = model.program_time(&lowered);
                let mut acc = model.accumulator();
                for (i, step) in lowered.steps.iter().enumerate() {
                    let running = acc.push(step);
                    assert_eq!(acc.steps(), i + 1);
                    assert_eq!(running, acc.seconds());
                    // Every prefix is an admissible lower bound on the total.
                    assert!(running <= total + 1e-15, "prefix {running} above {total}");
                }
                // The full accumulation is bit-identical to program_time.
                assert_eq!(acc.seconds(), total);
            }
        }
    }

    #[test]
    fn accumulator_exceeds_tracks_the_bound() {
        let model = AlphaBetaModel::new(a100_4(), NcclAlgo::Ring, GIB).unwrap();
        let step = LoweredStep {
            collective: Collective::AllReduce,
            groups: vec![GroupExec {
                devices: vec![0, 16],
                input_fraction: 1.0,
            }],
        };
        let mut acc = model.accumulator();
        assert!(!acc.exceeds(0.0), "an empty prefix exceeds nothing");
        let t = acc.push(&step);
        assert!(t > 0.0);
        assert!(acc.exceeds(t / 2.0));
        assert!(!acc.exceeds(t));
        assert!(!acc.exceeds(2.0 * t));
    }

    #[test]
    fn breakdown_total_matches_program_time() {
        let matrix =
            ParallelismMatrix::new(vec![vec![2, 8], vec![2, 2]], vec![4, 16], vec![16, 4]).unwrap();
        let synth = Synthesizer::new(matrix, vec![0], HierarchyKind::ReductionAxes).unwrap();
        let programs = synth.synthesize(4).programs;
        let model = AlphaBetaModel::new(a100_4(), NcclAlgo::Tree, GIB).unwrap();
        for p in programs.iter().take(10) {
            let lowered = synth.lower(p).unwrap();
            let breakdown = model.program_breakdown(&lowered);
            assert_eq!(breakdown.steps.len(), lowered.steps.len());
            assert!((breakdown.total() - model.program_time(&lowered)).abs() < 1e-12);
            assert!(breakdown.total() > 0.0);
        }
    }

    #[test]
    fn trait_object_dispatch_matches_concrete_calls() {
        let matrix =
            ParallelismMatrix::new(vec![vec![2, 8], vec![2, 2]], vec![4, 16], vec![16, 4]).unwrap();
        let synth = Synthesizer::new(matrix, vec![0], HierarchyKind::ReductionAxes).unwrap();
        let programs = synth.synthesize(3).programs;
        let model = AlphaBetaModel::new(a100_4(), NcclAlgo::Ring, GIB).unwrap();
        let dyn_model: &dyn CostModel = &model;
        for p in programs.iter().take(10) {
            let lowered = synth.lower(p).unwrap();
            assert_eq!(
                model.program_time(&lowered),
                dyn_model.program_time(&lowered)
            );
            let mut acc = crate::CostAccumulator::new(dyn_model);
            for step in &lowered.steps {
                acc.push(step);
            }
            assert_eq!(acc.seconds(), model.program_time(&lowered));
        }
    }
}
