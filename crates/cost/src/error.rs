use std::fmt;

/// Errors produced when constructing a cost model.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum CostError {
    /// The per-device buffer size must be positive and finite.
    InvalidBytes {
        /// The offending value.
        bytes: f64,
    },
    /// A lowered program referenced a device rank outside the system.
    DeviceOutOfRange {
        /// The offending rank.
        rank: usize,
        /// Devices in the system.
        num_devices: usize,
    },
    /// No built-in cost model goes by this name.
    UnknownModel {
        /// The unrecognized name.
        name: String,
    },
    /// A model parameter must be non-negative and finite.
    InvalidParameter {
        /// The parameter's name.
        parameter: &'static str,
        /// The offending value.
        value: f64,
    },
    /// A calibrated model needs one scale per hierarchy level.
    ScaleCountMismatch {
        /// The system's hierarchy depth.
        expected: usize,
        /// The number of scales supplied.
        got: usize,
    },
    /// Calibration scales must be positive and finite.
    InvalidScale {
        /// The hierarchy level of the offending scale.
        level: usize,
        /// The offending value.
        scale: f64,
    },
}

impl fmt::Display for CostError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CostError::InvalidBytes { bytes } => {
                write!(
                    f,
                    "per-device byte count {bytes} is not a positive finite number"
                )
            }
            CostError::DeviceOutOfRange { rank, num_devices } => {
                write!(
                    f,
                    "device rank {rank} out of range for {num_devices} devices"
                )
            }
            CostError::UnknownModel { name } => {
                write!(
                    f,
                    "unknown cost model {name:?} (expected alpha-beta, loggp or calibrated)"
                )
            }
            CostError::InvalidParameter { parameter, value } => {
                write!(
                    f,
                    "cost-model parameter {parameter} must be non-negative and finite, got {value}"
                )
            }
            CostError::ScaleCountMismatch { expected, got } => {
                write!(
                    f,
                    "calibration needs one scale per hierarchy level: expected {expected}, got {got}"
                )
            }
            CostError::InvalidScale { level, scale } => {
                write!(
                    f,
                    "calibration scale for level {level} must be positive and finite, got {scale}"
                )
            }
        }
    }
}

impl std::error::Error for CostError {}
