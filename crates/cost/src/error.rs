use std::fmt;

/// Errors produced when constructing a cost model.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum CostError {
    /// The per-device buffer size must be positive and finite.
    InvalidBytes {
        /// The offending value.
        bytes: f64,
    },
    /// A lowered program referenced a device rank outside the system.
    DeviceOutOfRange {
        /// The offending rank.
        rank: usize,
        /// Devices in the system.
        num_devices: usize,
    },
}

impl fmt::Display for CostError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CostError::InvalidBytes { bytes } => {
                write!(
                    f,
                    "per-device byte count {bytes} is not a positive finite number"
                )
            }
            CostError::DeviceOutOfRange { rank, num_devices } => {
                write!(
                    f,
                    "device rank {rank} out of range for {num_devices} devices"
                )
            }
        }
    }
}

impl std::error::Error for CostError {}
