//! A miniature, dependency-free reimplementation of the slice of the
//! [`proptest`](https://crates.io/crates/proptest) API this workspace's tests
//! use. The real crate cannot be fetched in the offline build environment, so
//! this shim keeps the property-based test files source-compatible.
//!
//! Differences from real proptest, by design:
//!
//! * cases are generated from a fixed per-test seed (derived from the test
//!   name), so runs are fully deterministic and reproducible;
//! * failing cases are **not** shrunk — the failing inputs are reported as
//!   generated;
//! * only the strategy combinators the tests need exist: integer ranges,
//!   tuples, [`Just`], `prop_map`, `prop_flat_map`, [`collection::vec`],
//!   [`sample::Index`] and [`any`].
//!
//! # Example
//!
//! ```
//! use proptest::prelude::*;
//!
//! proptest! {
//!     #![proptest_config(ProptestConfig::with_cases(32))]
//!     // In a real test module this fn would also carry `#[test]`.
//!     fn addition_commutes(a in 0usize..100, b in 0usize..100) {
//!         prop_assert_eq!(a + b, b + a);
//!     }
//! }
//! # addition_commutes();
//! ```

#![deny(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Deterministic pseudo-random generator (SplitMix64) driving case generation.
#[derive(Debug, Clone)]
pub struct TestRng(u64);

impl TestRng {
    /// Creates a generator seeded from a test name.
    pub fn from_name(name: &str) -> Self {
        let mut seed = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            seed ^= u64::from(b);
            seed = seed.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng(seed)
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`. Panics if `bound` is zero.
    pub fn below(&mut self, bound: usize) -> usize {
        assert!(bound > 0, "cannot sample from an empty range");
        (self.next_u64() % bound as u64) as usize
    }
}

/// How a single generated test case ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TestCaseError {
    /// The case was rejected by `prop_assume!` and is not counted.
    Reject,
    /// An assertion failed; the message describes the failure.
    Fail(String),
}

/// Runner configuration; only the case count is configurable.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of accepted cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` accepted cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A generator of test-case values, mirroring `proptest::strategy::Strategy`.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Feeds generated values into `f` to build a dependent second strategy.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy returned by [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;

    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Strategy that always yields a clone of its value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! int_range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample from empty range");
                let span = (hi - lo) as u64 + 1;
                lo + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

int_range_strategies!(usize, u64, u32, u8);

macro_rules! tuple_strategies {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategies! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
}

/// Types with a canonical random generator, mirroring `proptest::arbitrary`.
pub trait Arbitrary: Sized {
    /// Generates an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy returned by [`any`].
#[derive(Debug, Clone, Default)]
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for a type: `any::<T>()`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// Collection strategies (`proptest::collection`).
pub mod collection {
    use super::{Strategy, TestRng};

    /// Anything usable as a `vec` length specification: a fixed length or a
    /// length range.
    pub trait SizeRange {
        /// Picks a concrete length.
        fn pick(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeRange for usize {
        fn pick(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl SizeRange for std::ops::Range<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            Strategy::generate(self, rng)
        }
    }

    impl SizeRange for std::ops::RangeInclusive<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            Strategy::generate(self, rng)
        }
    }

    /// Strategy for `Vec`s of `element` values with a length drawn from `size`.
    pub fn vec<S: Strategy, Z: SizeRange>(element: S, size: Z) -> VecStrategy<S, Z> {
        VecStrategy { element, size }
    }

    /// Strategy returned by [`vec()`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S, Z> {
        element: S,
        size: Z,
    }

    impl<S: Strategy, Z: SizeRange> Strategy for VecStrategy<S, Z> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Sampling helpers (`proptest::sample`).
pub mod sample {
    use super::{Arbitrary, TestRng};

    /// An index into a collection whose length is only known inside the test
    /// body; `index(len)` maps it uniformly into `0..len`.
    #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
    pub struct Index(u64);

    impl Index {
        /// Projects the index into `0..len`. Panics if `len` is zero.
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "Index::index on an empty collection");
            (self.0 % len as u64) as usize
        }
    }

    impl Arbitrary for Index {
        fn arbitrary(rng: &mut TestRng) -> Self {
            Index(rng.next_u64())
        }
    }
}

/// The common imports, mirroring `proptest::prelude`.
pub mod prelude {
    /// Re-export so `proptest::...` paths work inside test bodies.
    pub use crate as proptest;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Just,
        ProptestConfig, Strategy,
    };
}

/// Declares property-based tests. Mirrors `proptest::proptest!`: an optional
/// `#![proptest_config(..)]` attribute followed by `#[test]` functions whose
/// arguments are drawn from strategies with `pattern in strategy` syntax.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { $crate::ProptestConfig::default(); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($config:expr;) => {};
    ($config:expr;
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            let mut rng = $crate::TestRng::from_name(concat!(module_path!(), "::", stringify!($name)));
            let mut accepted: u32 = 0;
            let mut attempts: u32 = 0;
            let max_attempts = config.cases.saturating_mul(20).max(1000);
            while accepted < config.cases && attempts < max_attempts {
                attempts += 1;
                $(let $pat = $crate::Strategy::generate(&($strat), &mut rng);)+
                let outcome: ::std::result::Result<(), $crate::TestCaseError> =
                    (move || { $body ::std::result::Result::Ok(()) })();
                match outcome {
                    ::std::result::Result::Ok(()) => accepted += 1,
                    ::std::result::Result::Err($crate::TestCaseError::Reject) => continue,
                    ::std::result::Result::Err($crate::TestCaseError::Fail(msg)) => {
                        panic!("property {} failed on case {}: {}", stringify!($name), attempts, msg)
                    }
                }
            }
            // Mirror real proptest's "too many global rejects": exhausting the
            // attempt budget before reaching the case target means the
            // property effectively stopped being exercised.
            assert!(
                accepted >= config.cases,
                "property {}: too many rejected cases ({} accepted of {} wanted in {} attempts)",
                stringify!($name),
                accepted,
                config.cases,
                attempts
            );
        }
        $crate::__proptest_impl! { $config; $($rest)* }
    };
}

/// `assert!` that reports through the proptest runner.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!($($fmt)*)));
        }
    };
}

/// `assert_eq!` that reports through the proptest runner.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if !(*left == *right) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!(
                "assertion failed: `{:?}` == `{:?}`",
                left, right
            )));
        }
    }};
}

/// `assert_ne!` that reports through the proptest runner.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if *left == *right {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!(
                "assertion failed: `{:?}` != `{:?}`",
                left, right
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$left, &$right);
        if *left == *right {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!(
                "assertion failed: `{:?}` != `{:?}`: {}",
                left,
                right,
                format!($($fmt)*)
            )));
        }
    }};
}

/// Rejects the current case (it is regenerated and not counted) when the
/// condition does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(a in 3usize..10, b in 5usize..=5) {
            prop_assert!((3..10).contains(&a));
            prop_assert_eq!(b, 5);
        }

        #[test]
        fn flat_map_and_vec((len, v) in (1usize..=8).prop_flat_map(|n| {
            (Just(n), proptest::collection::vec(0usize..100, n))
        })) {
            prop_assert_eq!(v.len(), len);
            prop_assert!(v.iter().all(|&x| x < 100));
        }

        #[test]
        fn assume_rejects_cases(n in 0usize..100) {
            prop_assume!(n % 2 == 0);
            prop_assert!(n % 2 == 0);
        }

        #[test]
        fn index_projects_into_range(idx in any::<proptest::sample::Index>(), len in 1usize..=9) {
            prop_assert!(idx.index(len) < len);
        }
    }

    #[test]
    fn runs_are_deterministic() {
        let mut a = crate::TestRng::from_name("x");
        let mut b = crate::TestRng::from_name("x");
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
