//! Deterministic batch scheduling: many experiment sessions on **one**
//! work-stealing thread pool, with opt-in cross-spec sharing of the dyadic
//! pruning bound and the synthesis interning tables.
//!
//! [`run_batch`] is the engine behind `p2_bench::run_specs`: every session's
//! placement-evaluation jobs are spawned onto a single [`p2_par::Scheduler`]
//! (spec-major, in placement production order) and workers steal across spec
//! boundaries, so a batch of N sessions respects one global thread budget
//! instead of oversubscribing with N nested pools. Results are assembled in
//! production order and are bit-identical to running each session alone, for
//! any thread count and any steal schedule.
//!
//! With [`BatchOptions::share_bounds`], sessions over the same system, buffer
//! size, algorithm and cost model form *sharing groups*: each group reduces
//! its predicted minima through one [`SharedBoundTree`] whose slots number
//! the group's placements spec-major in production order — placement `j` of
//! the group's `i`-th spec occupies slot `offset_i + j`. That is exactly the
//! single-sweep [`SharedBoundObserver`](crate::SharedBoundObserver) contract
//! stretched across specs, so the whole group behaves like one big sweep:
//! deterministic, and strictly fewer predictions than per-spec bounds.
//! Because the group *is* one search, per-spec retained sets may shrink
//! compared to unshared runs — only the group's overall best program is
//! guaranteed to survive (within `prune_slack`), which is why sharing is
//! opt-in.

use std::sync::Arc;
use std::time::Instant;

use p2_collectives::SharedTables;
use p2_par::SchedulerOptions;
use p2_placement::{MatrixControl, ParallelismMatrix};
use p2_synthesis::{MemoBank, Program};

use crate::config::P2Config;
use crate::error::P2Error;
use crate::observer::{RunObserver, SharedBoundTree, SlotBoundObserver};
use crate::pipeline::P2;
use crate::result::{ExperimentResult, PlacementEvaluation};
use crate::table_store::{TableSnapshot, TableStore, TableStoreStats};

/// Options for [`run_batch`].
#[derive(Debug, Clone, Copy, Default)]
pub struct BatchOptions {
    /// Worker threads for the whole batch; `0` resolves to every available
    /// core. This is the batch's *global* budget: no matter how many sessions
    /// are batched, at most this many placement evaluations run at once.
    pub threads: usize,
    /// Share the dyadic pruning bound across the specs of each sharing group
    /// (see the module docs for the grouping key and the retention caveat).
    /// Off by default: the default batch is bit-identical to running every
    /// session on its own.
    pub share_bounds: bool,
    /// Share one [`SharedTables`] interner across each sharing group instead
    /// of one per sweep. Result-invisible (sharing is a cache), applied only
    /// to sessions with [`P2Config::shared_intern`] set and no
    /// externally-supplied tables of their own.
    pub share_tables: bool,
    /// Steal-schedule seed forwarded to [`SchedulerOptions::seed`]: `0` is
    /// round-robin deque assignment, anything else a pseudo-random one.
    /// Results are identical for every value — the knob exists so tests can
    /// exercise arbitrary steal orderings.
    pub steal_seed: u64,
}

impl BatchOptions {
    /// Options with `threads` workers and everything else at its default.
    pub fn with_threads(threads: usize) -> Self {
        BatchOptions {
            threads,
            ..Self::default()
        }
    }

    /// Returns the options with both cross-spec sharing knobs
    /// ([`BatchOptions::share_bounds`] and [`BatchOptions::share_tables`])
    /// enabled.
    pub fn sharing(mut self) -> Self {
        self.share_bounds = true;
        self.share_tables = true;
        self
    }
}

/// What [`run_batch`] produced, plus scheduler telemetry.
#[derive(Debug)]
pub struct BatchOutcome {
    /// One result per session, in input order — bit-identical to running the
    /// sessions one by one (unless bound sharing was requested).
    pub results: Vec<ExperimentResult>,
    /// Number of sharing groups the sessions were partitioned into (computed
    /// even when sharing is off).
    pub groups: usize,
    /// `group_of[i]` is the sharing group of session `i`.
    pub group_of: Vec<usize>,
    /// Per group: the final shared pruning bound (`None` when
    /// [`BatchOptions::share_bounds`] was off or nothing finite was
    /// published).
    pub bounds: Vec<Option<f64>>,
    /// Resolved worker-thread count of the pool.
    pub threads: usize,
    /// Jobs executed by a worker other than the one they were queued on.
    pub steals: usize,
    /// Highest number of jobs observed running simultaneously — never more
    /// than `threads`, whatever the batch size (the oversubscription guard).
    pub peak_in_flight: usize,
    /// Per group: the cross-run table-store telemetry, `Some` when
    /// [`BatchOptions::share_tables`] was on and the group's representative
    /// session carried a [`P2Config::table_store_dir`]. The group loads one
    /// snapshot into its shared tables before any job is spawned and saves
    /// the merged tables once every member has finished.
    pub table_stores: Vec<Option<TableStoreStats>>,
}

/// Two sessions share bounds only if their predicted-time domains are
/// interchangeable: same topology (hierarchy + interconnects), same
/// collective algorithm and buffer size, the same cost model, and the same
/// pruning slack. The measurement knobs (noise, seed, repeats) are included
/// because [`p2_cost::CostModelKind::Calibrated`] models fit against them.
fn same_group(a: &P2Config, b: &P2Config) -> bool {
    let same_model = match (&a.cost_model, &b.cost_model) {
        (None, None) => true,
        // One Arc is trivially the same model; distinct instances of the
        // same built-in kind over an equal system predict identically, and
        // the kind is recoverable from the name.
        (Some(x), Some(y)) => Arc::ptr_eq(x, y) || x.name() == y.name(),
        _ => false,
    };
    same_model
        && a.system.hierarchy() == b.system.hierarchy()
        && a.system.links() == b.system.links()
        && a.algo == b.algo
        && a.bytes_per_device == b.bytes_per_device
        && a.prune_slack == b.prune_slack
        && a.noise_fraction == b.noise_fraction
        && a.seed == b.seed
        && a.repeats == b.repeats
}

/// The per-session observer of a batch run: forwards every event to the
/// caller's observer and, when bound sharing is on, mirrors it into the
/// session's window of the group's [`SharedBoundTree`].
struct BatchMemberObserver<'a> {
    user: &'a dyn RunObserver,
    bound: Option<SlotBoundObserver>,
}

impl RunObserver for BatchMemberObserver<'_> {
    fn on_placement_start(&self, index: usize, matrix: &ParallelismMatrix) -> Option<f64> {
        // The user's seed first (it must not block), then the shared bound's
        // (it may wait on the group's dyadic prefix); prune against the
        // tighter of the two.
        let user = self.user.on_placement_start(index, matrix);
        let shared = self
            .bound
            .as_ref()
            .and_then(|b| b.on_placement_start(index, matrix));
        match (user, shared) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (seed, None) => seed,
            (None, seed) => seed,
        }
    }

    fn on_program_retained(
        &self,
        index: usize,
        program: &Program,
        predicted_seconds: f64,
        measured_seconds: f64,
    ) {
        self.user
            .on_program_retained(index, program, predicted_seconds, measured_seconds);
    }

    fn on_placement_done(&self, index: usize, evaluation: &PlacementEvaluation) {
        self.user.on_placement_done(index, evaluation);
        if let Some(bound) = &self.bound {
            bound.on_placement_done(index, evaluation);
        }
    }

    fn on_placement_aborted(&self, index: usize) {
        self.user.on_placement_aborted(index);
        if let Some(bound) = &self.bound {
            bound.on_placement_aborted(index);
        }
    }
}

/// Runs every session on one work-stealing pool and returns their results in
/// input order, bit-identical — for any [`BatchOptions::threads`] and any
/// [`BatchOptions::steal_seed`] — to running the sessions one after another
/// (with sharing off; see the module docs for what bound sharing changes).
///
/// `observer` receives every session's events; the `index` passed to its
/// hooks is the placement index *within* that session, exactly as in
/// [`P2::run_observed`], and events from different sessions interleave.
///
/// # Errors
///
/// Propagates the first (in input order) session error. Jobs already queued
/// for later sessions drain in the background before the pool shuts down.
pub fn run_batch(
    sessions: &[P2],
    options: &BatchOptions,
    observer: &dyn RunObserver,
) -> Result<BatchOutcome, P2Error> {
    // Partition the sessions into sharing groups (a linear scan over
    // representatives — deterministic in input order).
    let mut group_of: Vec<usize> = Vec::with_capacity(sessions.len());
    let mut representatives: Vec<usize> = Vec::new();
    for session in sessions {
        let group = representatives
            .iter()
            .position(|&r| same_group(sessions[r].config(), session.config()));
        group_of.push(group.unwrap_or_else(|| {
            representatives.push(group_of.len());
            representatives.len() - 1
        }));
    }
    let groups = representatives.len();

    // Slot layout for bound sharing: spec-major, placement production order —
    // the spawn order below — so each group's slots are one big sweep's.
    let mut slot_base: Vec<usize> = vec![0; sessions.len()];
    let trees: Vec<Arc<SharedBoundTree>> = if options.share_bounds {
        let mut next_slot = vec![0usize; groups];
        for (i, session) in sessions.iter().enumerate() {
            slot_base[i] = next_slot[group_of[i]];
            let placements =
                session.for_each_placement(&mut |_: &ParallelismMatrix| MatrixControl::Continue)?;
            next_slot[group_of[i]] += placements;
        }
        (0..groups)
            .map(|_| Arc::new(SharedBoundTree::new()))
            .collect()
    } else {
        Vec::new()
    };

    // Cross-spec interning tables: one per group, attached to sessions that
    // intern and do not already carry external tables.
    let tables: Vec<Arc<SharedTables>> = if options.share_tables {
        (0..groups).map(|_| Arc::new(SharedTables::new())).collect()
    } else {
        Vec::new()
    };
    // Cross-run persistence: when tables are shared and a group's
    // representative opts into a table store, the group loads one snapshot
    // into its shared tables and a group-wide memo bank before any job is
    // spawned, and saves the merged tables once every member has finished.
    // Member sessions hand persistence to the group (external tables and an
    // external bank deactivate their per-session store), so nothing is
    // written twice.
    let mut group_stores: Vec<Option<(TableStore, p2_hash::Fingerprint, TableStoreStats)>> =
        (0..groups).map(|_| None).collect();
    let banks: Vec<Option<Arc<MemoBank>>> = (0..groups)
        .map(|g| {
            if !options.share_tables {
                return None;
            }
            let representative = sessions[representatives[g]].config();
            let dir = representative.table_store_dir.as_ref()?;
            let bank = Arc::new(MemoBank::new());
            let store = TableStore::new(dir);
            let key = representative.table_key();
            let mut stats = TableStoreStats {
                table_key: format!("{key}"),
                ..TableStoreStats::default()
            };
            let started = Instant::now();
            if let Some(snapshot) = store.load(key) {
                stats.loaded = true;
                snapshot.install(Some(&tables[g]), &bank, &mut stats);
            }
            stats.load_micros = started.elapsed().as_micros() as u64;
            group_stores[g] = Some((store, key, stats));
            Some(bank)
        })
        .collect();
    let mut attached: Vec<bool> = vec![false; sessions.len()];
    let prepared: Vec<P2> = sessions
        .iter()
        .enumerate()
        .map(|(i, session)| {
            let config = session.config();
            if options.share_tables && config.shared_intern && config.shared_tables.is_none() {
                attached[i] = true;
                let mut member = session
                    .clone()
                    .with_shared_tables(Arc::clone(&tables[group_of[i]]));
                if config.shared_memo.is_none() {
                    if let Some(bank) = &banks[group_of[i]] {
                        member = member.with_shared_memo(Arc::clone(bank));
                    }
                }
                member
            } else {
                session.clone()
            }
        })
        .collect();

    let observers: Vec<BatchMemberObserver<'_>> = (0..sessions.len())
        .map(|i| BatchMemberObserver {
            user: observer,
            bound: options
                .share_bounds
                .then(|| SlotBoundObserver::new(Arc::clone(&trees[group_of[i]]), slot_base[i])),
        })
        .collect();

    let scheduler_options = SchedulerOptions {
        threads: options.threads,
        seed: options.steal_seed,
    };
    let (mut results, threads, steals, peak_in_flight) =
        p2_par::scope_with(scheduler_options, |scheduler| {
            // Spawn every session's sweep before joining any of them: jobs of
            // all specs coexist in the deques and workers steal across spec
            // boundaries, while each shared-bound slot only ever waits on
            // strictly earlier spawns.
            let mut pending = Vec::with_capacity(prepared.len());
            for (session, member) in prepared.iter().zip(&observers) {
                pending.push(session.spawn_sweep(scheduler, member)?);
            }
            let mut results = Vec::with_capacity(pending.len());
            for sweep in pending {
                results.push(sweep.collect(scheduler)?);
            }
            Ok::<_, P2Error>((
                results,
                scheduler.threads(),
                scheduler.steals(),
                scheduler.peak_in_flight(),
            ))
        })?;

    // Stamp the final cross-spec interner sizes: a set union, deterministic
    // once every sharing session has finished.
    for (i, result) in results.iter_mut().enumerate() {
        if attached[i] {
            result.shared_unique_device_states = Some(tables[group_of[i]].num_states());
        }
    }

    let bounds: Vec<Option<f64>> = if options.share_bounds {
        trees.iter().map(|tree| tree.bound()).collect()
    } else {
        vec![None; groups]
    };

    // Snapshot each persisting group's merged tables — final and
    // deterministic now that every member has joined. A failed save is
    // telemetry, not an error.
    let table_stores: Vec<Option<TableStoreStats>> = group_stores
        .into_iter()
        .enumerate()
        .map(|(g, slot)| {
            let (store, key, mut stats) = slot?;
            let bank = banks[g].as_ref().expect("group store implies a bank");
            let started = Instant::now();
            let snapshot = TableSnapshot::capture(Some(&tables[g]), bank);
            stats.saved_states = snapshot.states.len();
            stats.saved_apply_entries = snapshot.apply.len();
            stats.saved_memo_slabs = snapshot.memo.len();
            stats.saved = !snapshot.is_empty() && store.save(key, &snapshot).is_ok();
            stats.save_micros = started.elapsed().as_micros() as u64;
            stats.seeded_searches = bank.seeded_searches();
            stats.seeded_entries = bank.seeded_entries();
            Some(stats)
        })
        .collect();

    Ok(BatchOutcome {
        results,
        groups,
        group_of,
        bounds,
        threads,
        steals,
        peak_in_flight,
        table_stores,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use p2_topology::presets;

    fn session(axes: Vec<usize>, reduction: Vec<usize>) -> P2 {
        P2::builder(presets::a100_system(2))
            .parallelism_axes(axes)
            .reduction_axes(reduction)
            .bytes_per_device(1.0e9)
            .repeats(2)
            .build()
            .unwrap()
    }

    #[test]
    fn grouping_ignores_axes_but_splits_on_bytes() {
        let a = session(vec![8, 4], vec![0]);
        let b = session(vec![16, 2], vec![1]);
        assert!(same_group(a.config(), b.config()));
        let c = P2::builder(presets::a100_system(2))
            .parallelism_axes([8, 4])
            .reduction_axes([0])
            .bytes_per_device(2.0e9)
            .repeats(2)
            .build()
            .unwrap();
        assert!(!same_group(a.config(), c.config()));
    }

    #[test]
    fn batch_of_one_matches_a_lone_run() {
        let solo = session(vec![8, 4], vec![0]).run().unwrap();
        let outcome = run_batch(
            &[session(vec![8, 4], vec![0])],
            &BatchOptions::with_threads(2),
            &(),
        )
        .unwrap();
        assert_eq!(outcome.results.len(), 1);
        assert_eq!(outcome.groups, 1);
        assert!(outcome.peak_in_flight <= outcome.threads);
        let batched = &outcome.results[0];
        assert_eq!(batched.placements.len(), solo.placements.len());
        for (a, b) in batched.placements.iter().zip(&solo.placements) {
            assert_eq!(a.matrix, b.matrix);
            assert_eq!(a.programs_retained, b.programs_retained);
            for (pa, pb) in a.programs.iter().zip(&b.programs) {
                assert_eq!(pa.signature(), pb.signature());
                assert_eq!(pa.predicted_seconds, pb.predicted_seconds);
                assert_eq!(pa.measured_seconds, pb.measured_seconds);
            }
        }
    }

    #[test]
    fn sharing_groups_persist_and_warm_start_their_tables() {
        let dir = std::env::temp_dir().join(format!(
            "p2-batch-store-test-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let make_sessions = || {
            [session(vec![8, 4], vec![0]), session(vec![16, 2], vec![1])].map(|s| {
                let mut config = s.config().clone();
                config.table_store_dir = Some(dir.clone());
                P2::new(config).unwrap()
            })
        };
        let options = BatchOptions::with_threads(2).sharing();
        let cold = run_batch(&make_sessions(), &options, &()).unwrap();
        assert_eq!(cold.groups, 1);
        let cold_stats = cold.table_stores[0].as_ref().unwrap();
        assert!(!cold_stats.loaded);
        assert!(cold_stats.saved);
        assert!(cold_stats.saved_states > 0);
        // Members left persistence to the group: no per-session store ran.
        assert!(cold.results.iter().all(|r| r.table_store.is_none()));
        let warm = run_batch(&make_sessions(), &options, &()).unwrap();
        let warm_stats = warm.table_stores[0].as_ref().unwrap();
        assert!(warm_stats.loaded);
        assert_eq!(warm_stats.table_key, cold_stats.table_key);
        assert_eq!(warm_stats.warm_states, cold_stats.saved_states);
        assert!(warm_stats.seeded_searches > 0);
        for (a, b) in cold.results.iter().zip(&warm.results) {
            for (pa, pb) in a.placements.iter().zip(&b.placements) {
                assert_eq!(pa.matrix, pb.matrix);
                assert_eq!(pa.programs_retained, pb.programs_retained);
                for (qa, qb) in pa.programs.iter().zip(&pb.programs) {
                    assert_eq!(qa.signature(), qb.signature());
                    assert_eq!(qa.predicted_seconds, qb.predicted_seconds);
                    assert_eq!(qa.measured_seconds, qb.measured_seconds);
                }
            }
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn invalid_sessions_fail_the_batch_up_front() {
        // Shortlist(0) is caught by spawn_sweep before any join.
        let bad = session(vec![8, 4], vec![0]).with_mode(crate::RunMode::Shortlist(0));
        let ok = session(vec![16, 2], vec![0]);
        assert!(run_batch(&[ok, bad], &BatchOptions::default(), &()).is_err());
    }
}
