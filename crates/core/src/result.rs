use std::time::Duration;

use p2_placement::ParallelismMatrix;
use p2_synthesis::{LoweredProgram, Program};

/// One synthesized program together with its predicted and measured times.
#[derive(Debug, Clone)]
pub struct ProgramEvaluation {
    /// The DSL program.
    pub program: Program,
    /// Its lowering to physical device groups.
    pub lowered: LoweredProgram,
    /// Time predicted by the analytic cost model (the paper's simulator), in seconds.
    pub predicted_seconds: f64,
    /// Time reported by the execution substrate (the paper's measurement), in seconds.
    pub measured_seconds: f64,
}

impl ProgramEvaluation {
    /// The `Collective-Collective-…` signature of the program.
    pub fn signature(&self) -> String {
        self.lowered.signature()
    }
}

/// Everything P² produced for one parallelism matrix: the synthesized
/// programs, the AllReduce baseline, and the synthesis statistics.
#[derive(Debug, Clone)]
pub struct PlacementEvaluation {
    /// The parallelism matrix (placement).
    pub matrix: ParallelismMatrix,
    /// Wall-clock time spent synthesizing programs for this placement.
    /// Synthesis and evaluation are interleaved on the program stream, so
    /// this is the stream's wall-clock minus the time spent lowering,
    /// costing and measuring — the quantity the paper's "Synthesis time"
    /// columns report.
    pub synthesis_time: Duration,
    /// Number of synthesized programs (every program the stream emitted,
    /// including ones later pruned or displaced from the top-K retention).
    pub num_programs: usize,
    /// Programs not retained as evaluations: cut early by the cost bound
    /// (never costed in full, never measured) or displaced from the top-K
    /// heap (in eagerly-measuring runs these were measured before eviction).
    /// Zero when the pipeline retains everything (`keep_top = None`).
    pub programs_pruned: usize,
    /// Programs retained as full [`ProgramEvaluation`]s (`programs.len()`).
    pub programs_retained: usize,
    /// Distinct synthesis-space states the search expanded for this
    /// placement — the size of the memoized search DAG.
    pub states_explored: usize,
    /// Distinct device states in this placement's search universe: distinct
    /// `k × k` state matrices hash-consed across the whole DAG build (the
    /// peak size a private interner would reach — identical whether the sweep
    /// shares its interner or not).
    pub unique_device_states: usize,
    /// Suffix-memo entries answered without recomputation during emission.
    pub suffix_memo_hits: usize,
    /// Suffix-memo entries computed for the first time during emission.
    pub suffix_memo_misses: usize,
    /// Suffix-memo entries this placement's search started with, seeded from
    /// a shared [`p2_synthesis::MemoBank`] (0 without a bank or on a bank
    /// miss — every cold run).
    pub suffix_memo_preloaded: usize,
    /// Device states this placement found already interned in the sweep's
    /// shared tables (0 when the sweep runs with private tables; under a
    /// parallel sweep the value depends on worker interleaving).
    pub shared_states_reused: usize,
    /// Predicted time of the single-step AllReduce baseline.
    pub allreduce_predicted: f64,
    /// Measured time of the single-step AllReduce baseline.
    pub allreduce_measured: f64,
    /// Every synthesized program, sorted by measured time (fastest first).
    pub programs: Vec<ProgramEvaluation>,
}

impl PlacementEvaluation {
    /// The program with the lowest measured time, if any.
    pub fn best_measured(&self) -> Option<&ProgramEvaluation> {
        self.programs
            .iter()
            .min_by(|a, b| a.measured_seconds.total_cmp(&b.measured_seconds))
    }

    /// The program the simulator would pick (lowest predicted time), if any.
    pub fn best_predicted(&self) -> Option<&ProgramEvaluation> {
        self.programs
            .iter()
            .min_by(|a, b| a.predicted_seconds.total_cmp(&b.predicted_seconds))
    }

    /// Measured speedup of the best program over the AllReduce baseline
    /// (1.0 when nothing beats AllReduce, as in the paper's tables).
    pub fn speedup(&self) -> f64 {
        match self.best_measured() {
            Some(best) if best.measured_seconds > 0.0 => {
                (self.allreduce_measured / best.measured_seconds).max(1.0)
            }
            _ => 1.0,
        }
    }

    /// How many synthesized programs strictly outperform the AllReduce
    /// baseline in measured time.
    pub fn programs_beating_allreduce(&self) -> usize {
        self.programs
            .iter()
            .filter(|p| p.measured_seconds < self.allreduce_measured)
            .count()
    }

    /// Measured time of the best program (the "Optimal" column of Table 4),
    /// falling back to the AllReduce baseline when no program was synthesized.
    pub fn optimal_measured(&self) -> f64 {
        self.best_measured()
            .map(|p| p.measured_seconds.min(self.allreduce_measured))
            .unwrap_or(self.allreduce_measured)
    }
}

/// The outcome of one end-to-end experiment (one system, parallelism axes,
/// reduction axes and NCCL algorithm): every placement with every synthesized
/// program, predicted and measured.
#[derive(Debug, Clone)]
pub struct ExperimentResult {
    /// Human-readable experiment label.
    pub label: String,
    /// Parallelism axis sizes.
    pub parallelism_axes: Vec<usize>,
    /// Reduction axis indices.
    pub reduction_axes: Vec<usize>,
    /// Per-placement results, in enumeration order.
    pub placements: Vec<PlacementEvaluation>,
    /// Total wall-clock synthesis time across placements.
    pub synthesis_time: Duration,
    /// Final size of the sweep-shared device-state interner, when the sweep
    /// ran with shared tables (`None` with private per-placement interners).
    /// Deterministic for any worker count: it is the size of the set union of
    /// the per-placement universes.
    pub shared_unique_device_states: Option<usize>,
    /// Telemetry of the session's cross-run table-store interaction (`None`
    /// when the session ran without a [`TableStore`](crate::TableStore) of
    /// its own — including batch members whose sharing group owns the store).
    pub table_store: Option<crate::TableStoreStats>,
}

impl ExperimentResult {
    /// Total number of synthesized programs across all placements.
    pub fn total_programs(&self) -> usize {
        self.placements.iter().map(|p| p.num_programs).sum()
    }

    /// Total number of programs dropped by cost-bound pruning or top-K
    /// displacement across all placements.
    pub fn total_programs_pruned(&self) -> usize {
        self.placements.iter().map(|p| p.programs_pruned).sum()
    }

    /// Total number of retained [`ProgramEvaluation`]s across all placements.
    pub fn total_programs_retained(&self) -> usize {
        self.placements.iter().map(|p| p.programs_retained).sum()
    }

    /// Total number of distinct synthesis-space states explored across all
    /// placements (the combined size of the memoized search DAGs).
    pub fn total_states_explored(&self) -> usize {
        self.placements.iter().map(|p| p.states_explored).sum()
    }

    /// The peak interner size a regression watcher should track: the final
    /// size of the sweep-shared interner when the sweep shared one (counting
    /// each device state once across all placements), otherwise the largest
    /// per-placement interner the sweep built.
    pub fn peak_unique_device_states(&self) -> usize {
        self.shared_unique_device_states.unwrap_or_else(|| {
            self.placements
                .iter()
                .map(|p| p.unique_device_states)
                .max()
                .unwrap_or(0)
        })
    }

    /// Total suffix-memo hits across placements (suffixes whose completion
    /// counts were reused during emission).
    pub fn total_suffix_memo_hits(&self) -> usize {
        self.placements.iter().map(|p| p.suffix_memo_hits).sum()
    }

    /// Total suffix-memo entries computed across placements.
    pub fn total_suffix_memo_misses(&self) -> usize {
        self.placements.iter().map(|p| p.suffix_memo_misses).sum()
    }

    /// Total device states placements found already present in the sweep's
    /// shared tables (0 when the sweep ran with private interners).
    pub fn total_shared_states_reused(&self) -> usize {
        self.placements.iter().map(|p| p.shared_states_reused).sum()
    }

    /// Total number of programs that beat their placement's AllReduce baseline.
    pub fn total_programs_beating_allreduce(&self) -> usize {
        self.placements
            .iter()
            .map(PlacementEvaluation::programs_beating_allreduce)
            .sum()
    }

    /// The placement whose AllReduce baseline is fastest (the bold "AllReduce"
    /// column of Table 4).
    pub fn best_allreduce_placement(&self) -> Option<&PlacementEvaluation> {
        self.placements
            .iter()
            .min_by(|a, b| a.allreduce_measured.total_cmp(&b.allreduce_measured))
    }

    /// The overall best (placement, program) pair by measured time.
    pub fn best_overall(&self) -> Option<&ProgramEvaluation> {
        self.placements
            .iter()
            .filter_map(PlacementEvaluation::best_measured)
            .min_by(|a, b| a.measured_seconds.total_cmp(&b.measured_seconds))
    }

    /// The (placement, program) pair the simulator would pick: lowest
    /// *predicted* time across every placement.
    pub fn best_predicted_overall(&self) -> Option<&ProgramEvaluation> {
        self.placements
            .iter()
            .filter_map(PlacementEvaluation::best_predicted)
            .min_by(|a, b| a.predicted_seconds.total_cmp(&b.predicted_seconds))
    }

    /// All (matrix, program) pairs of the experiment flattened and sorted by
    /// measured time — the series plotted in Figure 11 of the paper. Each
    /// entry is `(matrix display string, program signature, measured, predicted)`.
    pub fn series(&self) -> Vec<(String, String, f64, f64)> {
        let mut out: Vec<(String, String, f64, f64)> = self
            .placements
            .iter()
            .flat_map(|pl| {
                pl.programs.iter().map(move |p| {
                    (
                        pl.matrix.to_string(),
                        p.signature(),
                        p.measured_seconds,
                        p.predicted_seconds,
                    )
                })
            })
            .collect();
        out.sort_by(|a, b| a.2.total_cmp(&b.2));
        out
    }

    /// Whether the simulator's top choice (lowest predicted time over the
    /// whole experiment) falls within the measured top-`k` programs — the
    /// per-experiment quantity behind Table 5.
    pub fn predicted_best_in_measured_top_k(&self, k: usize) -> bool {
        let Some(best_pred) = self.best_predicted_overall() else {
            return false;
        };
        let mut measured: Vec<f64> = self
            .placements
            .iter()
            .flat_map(|pl| pl.programs.iter().map(|p| p.measured_seconds))
            .collect();
        if measured.is_empty() || k == 0 {
            return false;
        }
        measured.sort_by(f64::total_cmp);
        let cutoff = measured[(k - 1).min(measured.len() - 1)];
        best_pred.measured_seconds <= cutoff
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use p2_collectives::Collective;
    use p2_synthesis::{GroupExec, LoweredStep};

    fn lowered(sig: Collective) -> LoweredProgram {
        LoweredProgram {
            steps: vec![LoweredStep {
                collective: sig,
                groups: vec![GroupExec {
                    devices: vec![0, 1],
                    input_fraction: 1.0,
                }],
            }],
            num_devices: 4,
        }
    }

    fn eval(pred: f64, meas: f64) -> ProgramEvaluation {
        ProgramEvaluation {
            program: Program::empty(),
            lowered: lowered(Collective::AllReduce),
            predicted_seconds: pred,
            measured_seconds: meas,
        }
    }

    fn placement(allreduce: f64, programs: Vec<ProgramEvaluation>) -> PlacementEvaluation {
        PlacementEvaluation {
            matrix: ParallelismMatrix::new(vec![vec![2, 2]], vec![2, 2], vec![4]).unwrap(),
            synthesis_time: Duration::from_millis(1),
            num_programs: programs.len(),
            programs_pruned: 0,
            programs_retained: programs.len(),
            states_explored: 5,
            unique_device_states: 4,
            suffix_memo_hits: 0,
            suffix_memo_misses: 0,
            suffix_memo_preloaded: 0,
            shared_states_reused: 0,
            allreduce_predicted: allreduce,
            allreduce_measured: allreduce,
            programs,
        }
    }

    #[test]
    fn placement_statistics() {
        let pl = placement(10.0, vec![eval(9.0, 8.0), eval(12.0, 11.0), eval(7.0, 9.5)]);
        assert_eq!(pl.best_measured().unwrap().measured_seconds, 8.0);
        assert_eq!(pl.best_predicted().unwrap().predicted_seconds, 7.0);
        assert_eq!(pl.programs_beating_allreduce(), 2);
        assert!((pl.speedup() - 1.25).abs() < 1e-12);
        assert_eq!(pl.optimal_measured(), 8.0);
    }

    #[test]
    fn speedup_never_below_one() {
        let pl = placement(5.0, vec![eval(9.0, 8.0)]);
        assert_eq!(pl.speedup(), 1.0);
        assert_eq!(pl.optimal_measured(), 5.0);
    }

    #[test]
    fn peak_unique_device_states_prefers_the_shared_interner_size() {
        let mut exp = ExperimentResult {
            label: "test".into(),
            parallelism_axes: vec![4],
            reduction_axes: vec![0],
            placements: vec![placement(10.0, vec![eval(3.0, 5.0)])],
            synthesis_time: Duration::from_millis(2),
            shared_unique_device_states: None,
            table_store: None,
        };
        // Private interners: the per-placement maximum.
        assert_eq!(exp.peak_unique_device_states(), 4);
        // Shared interner: its final size, counted once for the whole sweep
        // (it can be smaller than the per-placement sum ever was).
        exp.shared_unique_device_states = Some(7);
        assert_eq!(exp.peak_unique_device_states(), 7);
        assert_eq!(exp.total_shared_states_reused(), 0);
    }

    #[test]
    fn experiment_top_k() {
        let exp = ExperimentResult {
            label: "test".into(),
            parallelism_axes: vec![4],
            reduction_axes: vec![0],
            placements: vec![
                placement(10.0, vec![eval(3.0, 5.0), eval(4.0, 2.0)]),
                placement(10.0, vec![eval(5.0, 1.0)]),
            ],
            synthesis_time: Duration::from_millis(2),
            shared_unique_device_states: None,
            table_store: None,
        };
        assert_eq!(exp.total_programs(), 3);
        assert_eq!(exp.total_programs_retained(), 3);
        assert_eq!(exp.total_programs_pruned(), 0);
        assert_eq!(exp.total_programs_beating_allreduce(), 3);
        // Predicted best is (3.0 pred, 5.0 meas); measured ranking is 1.0, 2.0, 5.0.
        assert!(!exp.predicted_best_in_measured_top_k(1));
        assert!(!exp.predicted_best_in_measured_top_k(2));
        assert!(exp.predicted_best_in_measured_top_k(3));
        assert_eq!(exp.best_overall().unwrap().measured_seconds, 1.0);
        assert_eq!(exp.best_predicted_overall().unwrap().predicted_seconds, 3.0);
        let series = exp.series();
        assert_eq!(series.len(), 3);
        assert!(series.windows(2).all(|w| w[0].2 <= w[1].2));
    }
}
