//! Cross-run persistence of the synthesis search tables.
//!
//! A sweep's hash-consing tables — the interned device-state universe and
//! collective apply cache of [`p2_collectives::SharedTables`] plus the
//! per-context suffix memos of a [`p2_synthesis::MemoBank`] — are a pure
//! function of the machine shape, the collective algorithm, the synthesis
//! hierarchy and the program-size limit. Nothing about the cost model, buffer
//! size, noise or run mode reaches them, so one run's tables can warm-start
//! any later run that shares those inputs. The [`TableStore`] persists them
//! as versioned JSON snapshots under `<table_key>.json`, where the key is
//! [`P2Config::table_key`](crate::P2Config::table_key) — a
//! `p2_hash::stable_digest128` over the tables-subset canonical form
//! ([`canonical_tables_form`](crate::canonical::canonical_tables_form)) and
//! deliberately coarser than a plan fingerprint.
//!
//! Warm-starting is result-invisible: interner ids are only used for
//! equality/memoization and memo counts are deterministic per context, so a
//! warm run produces bit-identical programs, orderings and retained sets for
//! any thread count and steal seed (pinned in `tests/determinism.rs`). Only
//! the warm-reuse counters in [`TableStoreStats`] observe the difference.
//!
//! The store is deliberately forgiving: a missing, torn, version-skewed or
//! otherwise corrupt snapshot is a counted cache miss, never an error —
//! exactly the plan store's contract. Writes go through
//! [`p2_json::write_atomically`] so a crash mid-save can never leave a torn
//! snapshot under a valid key.

use std::path::{Path, PathBuf};
use std::sync::Arc;

use p2_collectives::{SemanticsError, SharedTables, State};
use p2_hash::Fingerprint;
use p2_json::{Json, JsonObject};
use p2_synthesis::{MemoBank, MemoSlab, MEMO_UNKNOWN};

use crate::canonical::CANONICAL_TABLES_VERSION;

/// One apply-cache entry: the `[collective tag, participant ids...]` key and
/// its memoized outcome (result-state ids, or the semantics violation).
pub type ApplyEntry = (Box<[u32]>, Result<Arc<[u32]>, SemanticsError>);

/// One sweep's search tables in serializable form: the interned device
/// states in id order, the collective apply cache re-keyed by those dense
/// ids, and the per-context suffix-memo slabs.
#[derive(Debug, Clone)]
pub struct TableSnapshot {
    /// Interned device states, index = interner id. Serialized in id order so
    /// re-interning them in order on load reproduces identical ids.
    pub states: Vec<State>,
    /// Apply-cache entries with their memoized outcomes.
    pub apply: Vec<ApplyEntry>,
    /// Suffix-memo slabs by context key, in key order.
    pub memo: Vec<(String, MemoSlab)>,
}

/// Counters describing one session's (or sharing group's) interaction with
/// the table store: what was loaded, how much of it warmed the run, and what
/// was saved back.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TableStoreStats {
    /// The snapshot address, `{:032x}`-rendered.
    pub table_key: String,
    /// Whether a valid snapshot was found under the key.
    pub loaded: bool,
    /// Wall-clock microseconds spent reading + installing the snapshot
    /// (including a miss's failed read).
    pub load_micros: u64,
    /// Interned device states adopted from the snapshot.
    pub warm_states: usize,
    /// Apply-cache entries adopted from the snapshot.
    pub warm_apply_entries: usize,
    /// Suffix-memo slabs adopted from the snapshot.
    pub warm_memo_slabs: usize,
    /// Known suffix-memo entries adopted from the snapshot, summed over slabs.
    pub warm_memo_entries: usize,
    /// Searches that started from a warm memo slab during the run.
    pub seeded_searches: usize,
    /// Known memo entries handed to those searches, summed.
    pub seeded_entries: usize,
    /// Whether a snapshot was written back after the run.
    pub saved: bool,
    /// Wall-clock microseconds spent serializing + writing the snapshot.
    pub save_micros: u64,
    /// Interned device states in the saved snapshot.
    pub saved_states: usize,
    /// Apply-cache entries in the saved snapshot.
    pub saved_apply_entries: usize,
    /// Suffix-memo slabs in the saved snapshot.
    pub saved_memo_slabs: usize,
}

impl TableSnapshot {
    /// Captures the current content of a sweep's shared tables and memo bank
    /// (`tables: None` — a sweep interning privately — captures memo slabs
    /// only). Apply entries are sorted by key so equal tables serialize to
    /// equal bytes regardless of hash-map iteration order.
    pub fn capture(tables: Option<&SharedTables>, bank: &MemoBank) -> Self {
        let (states, mut apply) = match tables {
            Some(tables) => tables.export(),
            None => (Vec::new(), Vec::new()),
        };
        apply.sort_by(|(a, _), (b, _)| a.cmp(b));
        TableSnapshot {
            states: states.iter().map(|s| State::clone(s)).collect(),
            apply,
            memo: bank.export(),
        }
    }

    /// Whether the snapshot holds nothing worth persisting.
    pub fn is_empty(&self) -> bool {
        self.states.is_empty() && self.apply.is_empty() && self.memo.is_empty()
    }

    /// Installs the snapshot into empty tables and a memo bank, recording
    /// what was adopted into `stats`. The interner preload is all-or-nothing
    /// (and refuses non-empty tables); memo slabs merge individually.
    pub fn install(
        self,
        tables: Option<&SharedTables>,
        bank: &MemoBank,
        stats: &mut TableStoreStats,
    ) {
        let num_states = self.states.len();
        let num_entries = self.apply.len();
        if let Some(tables) = tables {
            if tables.preload(self.states, self.apply) {
                stats.warm_states = num_states;
                stats.warm_apply_entries = num_entries;
            }
        }
        for (key, slab) in self.memo {
            if slab.is_well_formed() {
                stats.warm_memo_slabs += 1;
                stats.warm_memo_entries += slab.known_entries();
                bank.publish(&key, slab);
            }
        }
    }

    /// Serializes the snapshot as the one-document JSON record stored under
    /// `key`. All `u64` payloads (state bit-matrix words, memo counts) travel
    /// as hex *strings*: JSON numbers are `f64` and cannot carry them
    /// bit-exactly.
    pub fn to_json_string(&self, key: Fingerprint) -> String {
        let states: Vec<Json> = self
            .states
            .iter()
            .map(|state| {
                let mut words = String::with_capacity(state.raw_words().len() * 16);
                for word in state.raw_words() {
                    words.push_str(&format!("{word:016x}"));
                }
                Json::Arr(vec![Json::Num(state.dim() as f64), Json::Str(words)])
            })
            .collect();
        let apply: Vec<Json> = self
            .apply
            .iter()
            .map(|(apply_key, value)| {
                let key_ids = Json::Arr(apply_key.iter().map(|&id| Json::Num(id as f64)).collect());
                let value = match value {
                    Ok(ids) => Json::Arr(ids.iter().map(|&id| Json::Num(id as f64)).collect()),
                    Err(e) => Json::Str(e.stable_token().to_string()),
                };
                Json::Arr(vec![key_ids, value])
            })
            .collect();
        let memo: Vec<Json> = self
            .memo
            .iter()
            .map(|(memo_key, slab)| {
                JsonObject::new()
                    .push("key", Json::Str(memo_key.clone()))
                    .push("states", Json::Num(slab.num_states as f64))
                    .push("width", Json::Num(slab.width as f64))
                    .push("counts", Json::Str(encode_counts(&slab.counts)))
                    .build()
            })
            .collect();
        JsonObject::new()
            .push("schema", Json::Str(CANONICAL_TABLES_VERSION.to_string()))
            .push("table_key", Json::Str(format!("{key}")))
            .push("states", Json::Arr(states))
            .push("apply", Json::Arr(apply))
            .push("memo", Json::Arr(memo))
            .build()
            .to_string()
    }

    /// Parses a snapshot record, requiring the schema version and the stored
    /// key to match. Any malformation returns `None` — the caller treats it
    /// as a miss.
    pub fn from_json_str(text: &str, key: Fingerprint) -> Option<TableSnapshot> {
        let doc = Json::parse(text).ok()?;
        if doc.get("schema")?.as_str()? != CANONICAL_TABLES_VERSION {
            return None;
        }
        if Fingerprint::parse_hex(doc.get("table_key")?.as_str()?)? != key {
            return None;
        }
        let mut states = Vec::new();
        for entry in doc.get("states")?.as_arr()? {
            let fields = entry.as_arr()?;
            if fields.len() != 2 {
                return None;
            }
            let k = fields[0].as_u64()? as usize;
            let hex = fields[1].as_str()?;
            if hex.len() % 16 != 0 {
                return None;
            }
            let words: Option<Vec<u64>> = hex
                .as_bytes()
                .chunks(16)
                .map(|chunk| u64::from_str_radix(std::str::from_utf8(chunk).ok()?, 16).ok())
                .collect();
            states.push(State::from_raw_words(k, words?)?);
        }
        let mut apply = Vec::new();
        for entry in doc.get("apply")?.as_arr()? {
            let fields = entry.as_arr()?;
            if fields.len() != 2 {
                return None;
            }
            let key_ids: Option<Vec<u32>> = fields[0]
                .as_arr()?
                .iter()
                .map(|id| u32::try_from(id.as_u64()?).ok())
                .collect();
            let value = match &fields[1] {
                Json::Str(token) => Err(SemanticsError::from_stable_token(token)?),
                Json::Arr(ids) => {
                    let ids: Option<Vec<u32>> = ids
                        .iter()
                        .map(|id| u32::try_from(id.as_u64()?).ok())
                        .collect();
                    Ok(Arc::from(ids?.into_boxed_slice()))
                }
                _ => return None,
            };
            apply.push((key_ids?.into_boxed_slice(), value));
        }
        let mut memo = Vec::new();
        for entry in doc.get("memo")?.as_arr()? {
            let slab = MemoSlab {
                num_states: entry.get("states")?.as_u64()? as usize,
                width: entry.get("width")?.as_u64()? as usize,
                counts: decode_counts(entry.get("counts")?.as_str()?)?.into(),
            };
            if !slab.is_well_formed() {
                return None;
            }
            memo.push((entry.get("key")?.as_str()?.to_string(), slab));
        }
        Some(TableSnapshot {
            states,
            apply,
            memo,
        })
    }
}

/// Comma-joined lowercase-hex memo counts, with `?` marking
/// [`MEMO_UNKNOWN`] entries.
fn encode_counts(counts: &[u64]) -> String {
    let mut out = String::with_capacity(counts.len() * 2);
    for (i, &count) in counts.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        if count == MEMO_UNKNOWN {
            out.push('?');
        } else {
            use std::fmt::Write as _;
            let _ = write!(out, "{count:x}");
        }
    }
    out
}

fn decode_counts(text: &str) -> Option<Vec<u64>> {
    if text.is_empty() {
        return Some(Vec::new());
    }
    text.split(',')
        .map(|field| {
            if field == "?" {
                Some(MEMO_UNKNOWN)
            } else {
                u64::from_str_radix(field, 16).ok()
            }
        })
        .collect()
}

/// A directory of table snapshots, one `<table_key>.json` per key.
///
/// Loads never fail — anything unreadable is a miss. Saves report their I/O
/// errors so callers can log them, but the pipeline treats a failed save as
/// telemetry too (the run's results are already in hand).
#[derive(Debug, Clone)]
pub struct TableStore {
    dir: PathBuf,
}

impl TableStore {
    /// A store rooted at `dir`. The directory is created lazily on first
    /// save.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        TableStore { dir: dir.into() }
    }

    /// The store's root directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The snapshot path for `key`.
    pub fn path_for(&self, key: Fingerprint) -> PathBuf {
        self.dir.join(format!("{key}.json"))
    }

    /// Loads and validates the snapshot stored under `key`. Missing files,
    /// unreadable files, version skew and key mismatches all return `None`.
    pub fn load(&self, key: Fingerprint) -> Option<TableSnapshot> {
        let text = std::fs::read_to_string(self.path_for(key)).ok()?;
        TableSnapshot::from_json_str(&text, key)
    }

    /// Atomically writes `snapshot` under `key`, creating the store
    /// directory if needed.
    ///
    /// # Errors
    ///
    /// Propagates the I/O error of the directory creation, write or rename.
    pub fn save(&self, key: Fingerprint, snapshot: &TableSnapshot) -> std::io::Result<()> {
        std::fs::create_dir_all(&self.dir)?;
        p2_json::write_atomically(&self.path_for(key), &snapshot.to_json_string(key))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use p2_collectives::Collective;

    fn sample_snapshot() -> TableSnapshot {
        let tables = SharedTables::new();
        let (a, _) = tables.intern(State::initial(4, 0));
        let (b, _) = tables.intern(State::initial(4, 1));
        let (ok, _) = tables.apply(Collective::AllReduce, &[a, b]);
        assert!(ok.is_ok(), "disjoint initial states should reduce");
        let (err, _) = tables.apply(Collective::AllReduce, &[a, a]);
        assert!(err.is_err(), "overlapping contributions should be rejected");
        let bank = MemoBank::new();
        bank.publish(
            "memo-v1|test",
            MemoSlab {
                num_states: 2,
                width: 3,
                counts: vec![1, MEMO_UNKNOWN, u64::MAX - 1, 0, 7, MEMO_UNKNOWN].into(),
            },
        );
        TableSnapshot::capture(Some(&tables), &bank)
    }

    #[test]
    fn snapshot_round_trips_bit_identically() {
        let snapshot = sample_snapshot();
        let key = Fingerprint::of_bytes(b"test-key");
        let text = snapshot.to_json_string(key);
        let back = TableSnapshot::from_json_str(&text, key).expect("valid snapshot");
        assert_eq!(back.states, snapshot.states);
        assert_eq!(back.apply, snapshot.apply);
        assert_eq!(back.memo, snapshot.memo);
        // Serialization is canonical: re-serializing reproduces the bytes.
        assert_eq!(back.to_json_string(key), text);
        // Saturated (near-u64::MAX) counts survive — they cannot travel as
        // JSON numbers.
        assert!(back.memo[0].1.counts.contains(&(u64::MAX - 1)));
    }

    #[test]
    fn mismatched_key_or_schema_is_a_miss() {
        let snapshot = sample_snapshot();
        let key = Fingerprint::of_bytes(b"test-key");
        let text = snapshot.to_json_string(key);
        let other = Fingerprint::of_bytes(b"other-key");
        assert!(TableSnapshot::from_json_str(&text, other).is_none());
        let skewed = text.replace(CANONICAL_TABLES_VERSION, "p2-tables-v0");
        assert!(TableSnapshot::from_json_str(&skewed, key).is_none());
        for corrupt in ["", "{", "{\"schema\":3}", "null"] {
            assert!(TableSnapshot::from_json_str(corrupt, key).is_none());
        }
    }

    #[test]
    fn store_saves_loads_and_shrugs_off_corruption() {
        let dir = std::env::temp_dir().join(format!(
            "p2-table-store-test-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let store = TableStore::new(&dir);
        let key = Fingerprint::of_bytes(b"store-key");
        // Missing directory, missing file: a miss, not an error.
        assert!(store.load(key).is_none());
        let snapshot = sample_snapshot();
        store.save(key, &snapshot).expect("save");
        let back = store.load(key).expect("hit");
        assert_eq!(back.states, snapshot.states);
        assert_eq!(back.apply, snapshot.apply);
        assert_eq!(back.memo, snapshot.memo);
        // Install into fresh tables reproduces ids and warms the counters.
        let tables = SharedTables::new();
        let bank = MemoBank::new();
        let mut stats = TableStoreStats::default();
        let (num_states, num_entries) = (snapshot.states.len(), snapshot.apply.len());
        back.install(Some(&tables), &bank, &mut stats);
        assert_eq!(stats.warm_states, num_states);
        assert_eq!(stats.warm_apply_entries, num_entries);
        assert_eq!(stats.warm_memo_slabs, 1);
        assert_eq!(stats.warm_memo_entries, 4);
        assert_eq!(tables.num_states(), num_states);
        assert_eq!(tables.num_apply_entries(), num_entries);
        assert_eq!(bank.len(), 1);
        // Torn/corrupt snapshot bytes under the key: a miss again.
        std::fs::write(store.path_for(key), "{\"schema\":").unwrap();
        assert!(store.load(key).is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
