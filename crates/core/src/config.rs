use std::path::PathBuf;
use std::sync::Arc;

use p2_cost::{AlphaBetaModel, CalibratedModel, CostModel, CostModelKind, LogGpModel, NcclAlgo};
use p2_exec::{ExecConfig, Executor};
use p2_synthesis::HierarchyKind;
use p2_topology::SystemTopology;

use crate::error::P2Error;

/// Configuration of one P² experiment: a system, the parallelism axes, the
/// reduction axes, and how programs are costed and measured.
///
/// The defaults follow the paper's setup (§4): NCCL ring, a program-size limit
/// of 5, the reduction-axis synthesis hierarchy, and a per-device buffer of
/// `2^29 × nodes` float32 elements where "nodes" is the cardinality of the
/// system's outermost level.
///
/// Prefer assembling experiments through [`P2::builder`], which validates on
/// `build()` and also carries the run mode; this struct remains the validated
/// value the builder produces. It is `#[non_exhaustive]`: construct it via
/// [`P2Config::new`] (fields may be added in later revisions).
///
/// [`P2::builder`]: crate::P2::builder
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct P2Config {
    /// The hierarchical system to place and reduce on.
    pub system: SystemTopology,
    /// The parallelism axis sizes (e.g. `[8, 4]` for data parallelism 8 and 4
    /// parameter shards). Their product must equal the device count.
    pub parallelism_axes: Vec<usize>,
    /// The axes to reduce over (indices into `parallelism_axes`).
    pub reduction_axes: Vec<usize>,
    /// NCCL algorithm used for every collective call.
    pub algo: NcclAlgo,
    /// Per-device buffer size in bytes.
    pub bytes_per_device: f64,
    /// Maximum number of instructions per synthesized program.
    pub max_program_size: usize,
    /// Which synthesis hierarchy to use (the paper uses
    /// [`HierarchyKind::ReductionAxes`]).
    pub hierarchy_kind: HierarchyKind,
    /// Measurement noise fraction of the execution substrate.
    pub noise_fraction: f64,
    /// Seed of the execution substrate's noise generator.
    pub seed: u64,
    /// Simulated runs averaged per measurement.
    pub repeats: usize,
    /// Worker threads for the placement × synthesis sweep: `0` uses every
    /// available core, `1` runs serially. Results are identical for any value
    /// — the sweep is order-independent and noise is derived from `seed` and
    /// program content alone.
    pub threads: usize,
    /// Retain at most this many program evaluations per placement in a
    /// bounded top-K heap over the program stream, ranked by the same key the
    /// final result ranking uses: measured time in eagerly-measuring runs
    /// ([`P2::run`]), predicted time in shortlist mode where unmeasured
    /// programs report their prediction. `None` — the default — retains every
    /// synthesized program, which is bit-compatible with the materializing
    /// pipeline.
    ///
    /// [`P2::run`]: crate::P2::run
    pub keep_top: Option<usize>,
    /// Cost-bound pruning slack, active only when [`P2Config::keep_top`] is
    /// set: a candidate whose accumulated predicted prefix time exceeds the
    /// placement's best predicted time so far (seeded by the AllReduce
    /// baseline prediction) times `1 + prune_slack` is dropped before it is
    /// fully costed or measured. Larger values prune less aggressively.
    pub prune_slack: f64,
    /// The cost model predicting every synthesized program. `None` — the
    /// default — uses the paper's α–β model
    /// ([`AlphaBetaModel`]) built from this configuration's system, algorithm
    /// and buffer size, which is bit-identical to the pre-trait pipeline.
    /// `Some(model)` substitutes any [`CostModel`] implementation; build one
    /// from a CLI name with [`P2Config::make_cost_model`].
    pub cost_model: Option<Arc<dyn CostModel>>,
    /// Whether the sweep wraps the cost model in a per-placement
    /// [`p2_cost::CachedCostModel`], interning step times per
    /// (hierarchy-level, collective, size-class) class. Caching never changes
    /// predictions (the cache key pins the exact step), it only removes
    /// recomputation; defaults to `true`.
    pub cost_cache: bool,
    /// Whether the sweep shares one device-state interner and collective
    /// transposition table ([`p2_collectives::SharedTables`]) across all of
    /// its placements. Every placement reduces over the same k×k device-state
    /// universe, so sharing lets later placements reuse states and collective
    /// applications discovered by earlier ones instead of rebuilding them.
    /// Sharing never changes results: programs, their order, and every
    /// deterministic statistic are bit-identical for any worker-thread count,
    /// with shared or private tables; defaults to `true`.
    pub shared_intern: bool,
    /// Whether each placement's search-DAG construction runs the
    /// level-synchronous *parallel* build
    /// ([`Synthesizer::with_build_threads`](p2_synthesis::Synthesizer::with_build_threads)),
    /// recruiting the sweep pool's idle workers for intra-placement
    /// expansion. The parallel build is bit-identical to the serial one for
    /// any thread count, so this only affects wall-clock time; it matters
    /// most on sweeps whose cost is dominated by one heavy placement.
    /// Defaults to `true`; `false` forces the serial build. With
    /// [`P2Config::threads`] of 1 the builds are serial either way.
    pub parallel_build: bool,
    /// Externally-supplied interning tables, extending
    /// [`P2Config::shared_intern`]'s sweep-wide sharing across every session
    /// holding the same tables (the batch scheduler's cross-spec sharing).
    /// `None` — the default — lets the sweep build its own tables when
    /// `shared_intern` is set. When `Some`, the session uses these tables
    /// regardless of `shared_intern` and reports
    /// `shared_unique_device_states` as `None` (the final size belongs to
    /// whoever owns the tables). Set via
    /// [`P2::with_shared_tables`](crate::P2::with_shared_tables).
    pub shared_tables: Option<Arc<p2_collectives::SharedTables>>,
    /// Externally-supplied suffix-memo bank, the [`P2Config::shared_tables`]
    /// counterpart for the emission engine's completion-count memos: searches
    /// over a context already solved by any session holding the same bank
    /// start from a filled memo. Result-invisible — memo values are
    /// deterministic per context — so sharing never changes programs or
    /// orderings, only the warm-start counters. `None` (the default) gives a
    /// sweep its own bank only when a table store is attached. Set via
    /// [`P2::with_shared_memo`](crate::P2::with_shared_memo).
    pub shared_memo: Option<Arc<p2_synthesis::MemoBank>>,
    /// Directory of cross-run table snapshots (see
    /// [`TableStore`](crate::TableStore)). When set — and the session carries
    /// no external tables or memo bank of its own — the sweep loads the
    /// snapshot addressed by [`P2Config::table_key`] before spawning (or
    /// starts empty on a miss) and writes its final tables back after
    /// collecting. Warm starts are result-invisible; only
    /// [`ExperimentResult::table_store`](crate::ExperimentResult::table_store)
    /// observes them.
    pub table_store_dir: Option<PathBuf>,
}

impl P2Config {
    /// Creates a configuration with the paper's default settings.
    ///
    /// The default `bytes_per_device` is `2^29 × nodes` float32 elements,
    /// where "nodes" is the cardinality of the system's *outermost* hierarchy
    /// level — the paper's §4 setup scales the buffer with the node count.
    ///
    /// # Panics
    ///
    /// Panics if the system's hierarchy has no levels. [`p2_topology::Hierarchy`]
    /// rejects empty level lists at construction, so this assertion documents
    /// an invariant rather than a reachable failure.
    pub fn new(
        system: SystemTopology,
        parallelism_axes: Vec<usize>,
        reduction_axes: Vec<usize>,
    ) -> Self {
        let arities = system.hierarchy().arities();
        assert!(
            !arities.is_empty(),
            "the bytes_per_device default scales with the outermost-level \
             cardinality, which requires a non-empty hierarchy"
        );
        let nodes = arities[0];
        let bytes_per_device = (1u64 << 29) as f64 * nodes as f64 * 4.0;
        P2Config {
            system,
            parallelism_axes,
            reduction_axes,
            algo: NcclAlgo::Ring,
            bytes_per_device,
            max_program_size: 5,
            hierarchy_kind: HierarchyKind::ReductionAxes,
            noise_fraction: 0.03,
            seed: 0x5eed,
            repeats: 5,
            threads: 0,
            keep_top: None,
            prune_slack: 0.5,
            cost_model: None,
            cost_cache: true,
            shared_intern: true,
            parallel_build: true,
            shared_tables: None,
            shared_memo: None,
            table_store_dir: None,
        }
    }

    /// Builds one of the built-in cost models for this configuration's
    /// system, algorithm and buffer size — the bridge from a CLI
    /// `--cost-model` name to a runnable model.
    ///
    /// [`CostModelKind::Calibrated`] wraps the α–β model with per-level
    /// scales fitted against this configuration's execution substrate (same
    /// noise, seed and repeats as the sweep's measurements), so it is as
    /// deterministic as the measurements themselves.
    ///
    /// # Errors
    ///
    /// Propagates cost-model and executor construction errors (e.g. a
    /// non-positive buffer size).
    pub fn make_cost_model(&self, kind: CostModelKind) -> Result<Arc<dyn CostModel>, P2Error> {
        let alpha_beta = Arc::new(AlphaBetaModel::new(
            self.system.clone(),
            self.algo,
            self.bytes_per_device,
        )?);
        Ok(match kind {
            CostModelKind::AlphaBeta => alpha_beta,
            CostModelKind::LogGp => Arc::new(LogGpModel::new(
                self.system.clone(),
                self.algo,
                self.bytes_per_device,
            )?),
            CostModelKind::Calibrated => {
                let exec_config = ExecConfig::new(self.algo, self.bytes_per_device)
                    .with_noise(self.noise_fraction)
                    .with_seed(self.seed)
                    .with_repeats(self.repeats);
                let executor = Executor::new(&self.system, exec_config)?;
                Arc::new(CalibratedModel::calibrate(alpha_beta, |program| {
                    executor.measure(program)
                })?)
            }
        })
    }

    /// Sets the NCCL algorithm.
    pub fn with_algo(mut self, algo: NcclAlgo) -> Self {
        self.algo = algo;
        self
    }

    /// Sets the per-device buffer size in bytes.
    pub fn with_bytes_per_device(mut self, bytes: f64) -> Self {
        self.bytes_per_device = bytes;
        self
    }

    /// Sets the program-size limit.
    pub fn with_max_program_size(mut self, size: usize) -> Self {
        self.max_program_size = size;
        self
    }

    /// Sets the synthesis hierarchy kind.
    pub fn with_hierarchy_kind(mut self, kind: HierarchyKind) -> Self {
        self.hierarchy_kind = kind;
        self
    }

    /// Sets the measurement noise fraction.
    pub fn with_noise(mut self, noise_fraction: f64) -> Self {
        self.noise_fraction = noise_fraction;
        self
    }

    /// Sets the noise seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the number of simulated runs per measurement.
    pub fn with_repeats(mut self, repeats: usize) -> Self {
        self.repeats = repeats;
        self
    }

    /// Sets the worker-thread count for the placement sweep (`0` = all cores,
    /// `1` = serial — the sentinel is resolved by [`p2_par::par_map_threads`]).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Bounds the per-placement retention to the `keep_top` best programs
    /// (by the final ranking key — see [`P2Config::keep_top`]) and enables
    /// cost-bound pruning of the stream.
    pub fn with_keep_top(mut self, keep_top: usize) -> Self {
        self.keep_top = Some(keep_top);
        self
    }

    /// Sets the cost-bound pruning slack (only meaningful together with
    /// [`P2Config::with_keep_top`]).
    pub fn with_prune_slack(mut self, prune_slack: f64) -> Self {
        self.prune_slack = prune_slack;
        self
    }

    /// Substitutes the cost model predicting every synthesized program (see
    /// [`P2Config::cost_model`]).
    pub fn with_cost_model(mut self, model: Arc<dyn CostModel>) -> Self {
        self.cost_model = Some(model);
        self
    }

    /// Enables or disables the per-placement step-cost cache (see
    /// [`P2Config::cost_cache`]).
    pub fn with_cost_cache(mut self, cost_cache: bool) -> Self {
        self.cost_cache = cost_cache;
        self
    }

    /// Enables or disables the sweep-wide shared interning tables (see
    /// [`P2Config::shared_intern`]).
    pub fn with_shared_intern(mut self, shared_intern: bool) -> Self {
        self.shared_intern = shared_intern;
        self
    }

    /// Enables or disables the parallel level-synchronous DAG build inside
    /// each placement (see [`P2Config::parallel_build`]).
    pub fn with_parallel_build(mut self, parallel_build: bool) -> Self {
        self.parallel_build = parallel_build;
        self
    }

    /// Points the session at a cross-run table-snapshot directory (see
    /// [`P2Config::table_store_dir`]).
    pub fn with_table_store_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.table_store_dir = Some(dir.into());
        self
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`P2Error::InvalidConfig`] with a description of the problem.
    pub fn validate(&self) -> Result<(), P2Error> {
        if self.parallelism_axes.is_empty() {
            return Err(P2Error::InvalidConfig {
                reason: "no parallelism axes".into(),
            });
        }
        if self.reduction_axes.is_empty() {
            return Err(P2Error::InvalidConfig {
                reason: "no reduction axes".into(),
            });
        }
        if self
            .reduction_axes
            .iter()
            .any(|&a| a >= self.parallelism_axes.len())
        {
            return Err(P2Error::InvalidConfig {
                reason: "reduction axis out of range".into(),
            });
        }
        let devices = self.system.num_devices();
        let parallelism: usize = self.parallelism_axes.iter().product();
        if devices != parallelism {
            return Err(P2Error::InvalidConfig {
                reason: format!(
                    "parallelism axes multiply to {parallelism} but the system has {devices} devices"
                ),
            });
        }
        if !(self.bytes_per_device.is_finite() && self.bytes_per_device > 0.0) {
            return Err(P2Error::InvalidConfig {
                reason: "bytes_per_device must be positive".into(),
            });
        }
        if self.max_program_size == 0 {
            return Err(P2Error::InvalidConfig {
                reason: "max_program_size must be positive".into(),
            });
        }
        if self.repeats == 0 {
            return Err(P2Error::InvalidConfig {
                reason: "repeats must be positive".into(),
            });
        }
        if self.keep_top == Some(0) {
            return Err(P2Error::InvalidConfig {
                reason: "keep_top must be positive (use None to keep all)".into(),
            });
        }
        if !(self.prune_slack.is_finite() && self.prune_slack >= 0.0) {
            return Err(P2Error::InvalidConfig {
                reason: "prune_slack must be a non-negative finite number".into(),
            });
        }
        if let Some(model) = &self.cost_model {
            // The name may differ (clones, decorators); the hierarchy and
            // links must not — a model over a structurally different
            // topology would silently predict garbage.
            let model_system = model.system();
            if model_system.hierarchy() != self.system.hierarchy()
                || model_system.links() != self.system.links()
            {
                return Err(P2Error::InvalidConfig {
                    reason: format!(
                        "cost model {:?} predicts for system {:?} but the session sweeps {:?} \
                         (hierarchy and interconnects must match)",
                        model.name(),
                        model_system.name(),
                        self.system.name()
                    ),
                });
            }
        }
        Ok(())
    }

    /// A short human-readable label for the experiment, e.g.
    /// `"a100-4node axes=[16, 2, 2] reduce=[0, 2] Ring"`.
    pub fn label(&self) -> String {
        format!(
            "{} axes={:?} reduce={:?} {}",
            self.system.name(),
            self.parallelism_axes,
            self.reduction_axes,
            self.algo
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use p2_topology::presets;

    #[test]
    fn default_bytes_follow_the_paper() {
        let c = P2Config::new(presets::a100_system(4), vec![64], vec![0]);
        assert_eq!(c.bytes_per_device, (1u64 << 29) as f64 * 4.0 * 4.0);
        assert!(c.validate().is_ok());
        assert!(c.label().contains("a100-4node"));
    }

    #[test]
    fn invalid_configs_are_rejected() {
        let sys = presets::a100_system(2);
        assert!(P2Config::new(sys.clone(), vec![], vec![0])
            .validate()
            .is_err());
        assert!(P2Config::new(sys.clone(), vec![32], vec![])
            .validate()
            .is_err());
        assert!(P2Config::new(sys.clone(), vec![32], vec![1])
            .validate()
            .is_err());
        assert!(P2Config::new(sys.clone(), vec![30], vec![0])
            .validate()
            .is_err());
        assert!(P2Config::new(sys.clone(), vec![32], vec![0])
            .with_bytes_per_device(-1.0)
            .validate()
            .is_err());
        assert!(P2Config::new(sys.clone(), vec![32], vec![0])
            .with_max_program_size(0)
            .validate()
            .is_err());
        assert!(P2Config::new(sys.clone(), vec![32], vec![0])
            .with_repeats(0)
            .validate()
            .is_err());
        assert!(P2Config::new(sys.clone(), vec![32], vec![0])
            .with_keep_top(0)
            .validate()
            .is_err());
        assert!(P2Config::new(sys.clone(), vec![32], vec![0])
            .with_prune_slack(-0.1)
            .validate()
            .is_err());
        assert!(P2Config::new(sys.clone(), vec![32], vec![0])
            .with_prune_slack(f64::NAN)
            .validate()
            .is_err());
        assert!(P2Config::new(sys, vec![32], vec![0])
            .with_keep_top(5)
            .with_prune_slack(1.0)
            .validate()
            .is_ok());
    }

    #[test]
    fn every_cost_model_kind_builds_for_a_config() {
        let c =
            P2Config::new(presets::a100_system(2), vec![32], vec![0]).with_bytes_per_device(1.0e8);
        for kind in CostModelKind::ALL {
            let model = c.make_cost_model(kind).expect("kind builds");
            assert_eq!(model.system().num_devices(), 32);
            assert_eq!(model.bytes_per_device(), 1.0e8);
            assert!(model.name().contains(match kind {
                CostModelKind::AlphaBeta => "alpha-beta",
                CostModelKind::LogGp => "loggp",
                CostModelKind::Calibrated => "calibrated",
            }));
        }
    }

    #[test]
    fn cost_model_for_another_system_is_rejected() {
        let other = P2Config::new(presets::a100_system(4), vec![64], vec![0]);
        let model = other.make_cost_model(CostModelKind::AlphaBeta).unwrap();
        let config =
            P2Config::new(presets::a100_system(2), vec![32], vec![0]).with_cost_model(model);
        assert!(config.validate().is_err());
        // Same device count is not enough: a structurally different topology
        // (2-level 64-GPU A100 vs. 3-level 4x2x8 rack system) is rejected too.
        let other = P2Config::new(presets::a100_system(4), vec![64], vec![0]);
        let model = other.make_cost_model(CostModelKind::AlphaBeta).unwrap();
        let config = P2Config::new(presets::rack_node_gpu_system(4, 2, 8), vec![64], vec![0])
            .with_cost_model(model);
        assert!(config.validate().is_err());
        // A model over an identical topology passes regardless of its name.
        let same = P2Config::new(presets::a100_system(2), vec![32], vec![0]);
        let model = same.make_cost_model(CostModelKind::LogGp).unwrap();
        let config = P2Config::new(presets::a100_system(2), vec![32], vec![0]) //
            .with_cost_model(model);
        assert!(config.validate().is_ok());
    }
}
