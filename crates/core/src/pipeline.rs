use std::time::Instant;

use p2_cost::CostModel;
use p2_exec::{ExecConfig, Executor};
use p2_placement::{enumerate_matrices, ParallelismMatrix};
use p2_synthesis::{baseline_allreduce, Synthesizer};

use crate::config::P2Config;
use crate::error::P2Error;
use crate::result::{ExperimentResult, PlacementEvaluation, ProgramEvaluation};

/// The P² tool: parallelism placement synthesis, placement-aware reduction
/// strategy synthesis, prediction, and evaluation.
#[derive(Debug, Clone)]
pub struct P2 {
    config: P2Config,
}

impl P2 {
    /// Creates the tool from a validated configuration.
    ///
    /// # Errors
    ///
    /// Returns [`P2Error::InvalidConfig`] for inconsistent configurations.
    pub fn new(config: P2Config) -> Result<Self, P2Error> {
        config.validate()?;
        Ok(P2 { config })
    }

    /// The configuration in use.
    pub fn config(&self) -> &P2Config {
        &self.config
    }

    /// Enumerates every parallelism matrix for the configured system and axes.
    ///
    /// # Errors
    ///
    /// Propagates placement errors.
    pub fn placements(&self) -> Result<Vec<p2_placement::ParallelismMatrix>, P2Error> {
        Ok(enumerate_matrices(
            &self.config.system.hierarchy().arities(),
            &self.config.parallelism_axes,
        )?)
    }

    /// Runs the pipeline in the paper's intended deployment mode (§5): every
    /// synthesized program is *predicted* with the analytic simulator, but
    /// only the `shortlist` programs with the best predictions — across all
    /// placements — are actually measured on the execution substrate. The
    /// measured time of unmeasured programs is reported as their prediction.
    ///
    /// This is how P² avoids "massive evaluations of synthesis results": with
    /// the simulator's top-10 accuracy, a shortlist of 10 almost always
    /// contains the true optimum at a fraction of the evaluation cost.
    ///
    /// # Errors
    ///
    /// Same as [`P2::run`].
    pub fn run_with_shortlist(&self, shortlist: usize) -> Result<ExperimentResult, P2Error> {
        let mut result = self.run_internal(false)?;
        // Rank all programs by predicted time and measure only the shortlist.
        let mut order: Vec<(usize, usize, f64)> = result
            .placements
            .iter()
            .enumerate()
            .flat_map(|(pi, pl)| {
                pl.programs
                    .iter()
                    .enumerate()
                    .map(move |(qi, p)| (pi, qi, p.predicted_seconds))
            })
            .collect();
        order.sort_by(|a, b| a.2.total_cmp(&b.2));
        let exec_config = ExecConfig::new(self.config.algo, self.config.bytes_per_device)
            .with_noise(self.config.noise_fraction)
            .with_seed(self.config.seed)
            .with_repeats(self.config.repeats);
        let executor = Executor::new(&self.config.system, exec_config)?;
        let chosen = &order[..shortlist.min(order.len())];
        // Measurements fan out across threads; noise depends only on the seed
        // and program content, so the values match a serial run exactly.
        let measured = p2_par::par_map_threads(self.config.threads, chosen, |_, &(pi, qi, _)| {
            executor.measure(&result.placements[pi].programs[qi].lowered)
        });
        for (&(pi, qi, _), seconds) in chosen.iter().zip(measured) {
            result.placements[pi].programs[qi].measured_seconds = seconds;
        }
        for placement in &mut result.placements {
            placement
                .programs
                .sort_by(|a, b| a.measured_seconds.total_cmp(&b.measured_seconds));
        }
        Ok(result)
    }

    /// Runs the full pipeline: enumerate placements, synthesize reduction
    /// programs for each, predict every program with the analytic cost model
    /// and measure it on the execution substrate.
    ///
    /// # Errors
    ///
    /// Propagates errors from any stage; synthesis itself cannot fail, so an
    /// error indicates an inconsistent configuration.
    pub fn run(&self) -> Result<ExperimentResult, P2Error> {
        self.run_internal(true)
    }

    /// Synthesizes, predicts and optionally measures every program of one
    /// placement — the per-item body of the parallel sweep.
    fn evaluate_placement(
        &self,
        matrix: &ParallelismMatrix,
        cost: &CostModel<'_>,
        executor: &Executor<'_>,
        measure_programs: bool,
    ) -> Result<PlacementEvaluation, P2Error> {
        let synthesizer = Synthesizer::new(
            matrix.clone(),
            self.config.reduction_axes.clone(),
            self.config.hierarchy_kind,
        )?;
        let start = Instant::now();
        let synthesis = synthesizer.synthesize(self.config.max_program_size);
        let synthesis_time = start.elapsed();

        let baseline = baseline_allreduce(matrix, &self.config.reduction_axes)?;
        let allreduce_predicted = cost.program_time(&baseline);
        let allreduce_measured = executor.measure(&baseline);

        let mut programs = Vec::with_capacity(synthesis.programs.len());
        for program in &synthesis.programs {
            let lowered = synthesizer.lower(program)?;
            let predicted_seconds = cost.program_time(&lowered);
            let measured_seconds = if measure_programs {
                executor.measure(&lowered)
            } else {
                predicted_seconds
            };
            programs.push(ProgramEvaluation {
                program: program.clone(),
                lowered,
                predicted_seconds,
                measured_seconds,
            });
        }
        programs.sort_by(|a, b| a.measured_seconds.total_cmp(&b.measured_seconds));

        Ok(PlacementEvaluation {
            matrix: matrix.clone(),
            synthesis_time,
            num_programs: synthesis.programs.len(),
            allreduce_predicted,
            allreduce_measured,
            programs,
        })
    }

    fn run_internal(&self, measure_programs: bool) -> Result<ExperimentResult, P2Error> {
        let cost = CostModel::new(
            &self.config.system,
            self.config.algo,
            self.config.bytes_per_device,
        )?;
        let exec_config = ExecConfig::new(self.config.algo, self.config.bytes_per_device)
            .with_noise(self.config.noise_fraction)
            .with_seed(self.config.seed)
            .with_repeats(self.config.repeats);
        let executor = Executor::new(&self.config.system, exec_config)?;

        // The sweep is embarrassingly parallel: each placement synthesizes,
        // predicts and measures independently. `par_map_threads` returns
        // results in enumeration order, and measurement noise is a pure
        // function of (seed, program content), so any thread count — including
        // a serial run — produces bit-identical results.
        let matrices = self.placements()?;
        let evaluations = p2_par::par_map_threads(self.config.threads, &matrices, |_, matrix| {
            self.evaluate_placement(matrix, &cost, &executor, measure_programs)
        });

        let mut placements = Vec::with_capacity(evaluations.len());
        let mut total_synthesis = std::time::Duration::ZERO;
        for evaluation in evaluations {
            let placement = evaluation?;
            total_synthesis += placement.synthesis_time;
            placements.push(placement);
        }

        Ok(ExperimentResult {
            label: self.config.label(),
            parallelism_axes: self.config.parallelism_axes.clone(),
            reduction_axes: self.config.reduction_axes.clone(),
            placements,
            synthesis_time: total_synthesis,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use p2_cost::NcclAlgo;
    use p2_topology::presets;

    /// A small configuration that exercises the whole pipeline quickly.
    fn small_config() -> P2Config {
        P2Config::new(presets::a100_system(2), vec![8, 4], vec![0])
            .with_bytes_per_device(1.0e9)
            .with_repeats(2)
    }

    #[test]
    fn pipeline_produces_consistent_results() {
        let result = P2::new(small_config()).unwrap().run().unwrap();
        assert!(!result.placements.is_empty());
        for pl in &result.placements {
            assert!(pl.num_programs >= 1);
            assert_eq!(pl.num_programs, pl.programs.len());
            assert!(pl.allreduce_measured > 0.0 && pl.allreduce_predicted > 0.0);
            // Programs are sorted by measured time.
            assert!(pl
                .programs
                .windows(2)
                .all(|w| w[0].measured_seconds <= w[1].measured_seconds));
            // Every synthesized set contains the plain AllReduce.
            assert!(pl.programs.iter().any(|p| p.signature() == "AllReduce"));
            for p in &pl.programs {
                assert!(p.predicted_seconds > 0.0 && p.measured_seconds > 0.0);
                assert!(p.lowered.groups_are_disjoint());
            }
        }
        assert!(result.total_programs() > 0);
        assert!(result.best_overall().is_some());
    }

    #[test]
    fn cross_node_placements_benefit_from_synthesis() {
        // Result 5 of the paper, end to end: for the placement that forces
        // cross-node reduction, some synthesized program beats AllReduce.
        let result = P2::new(small_config()).unwrap().run().unwrap();
        let cross_node = result
            .placements
            .iter()
            .max_by(|a, b| a.allreduce_measured.total_cmp(&b.allreduce_measured))
            .unwrap();
        assert!(
            cross_node.programs_beating_allreduce() > 0,
            "expected a synthesized program to beat AllReduce for {}",
            cross_node.matrix
        );
        assert!(cross_node.speedup() > 1.05);
    }

    #[test]
    fn shortlist_run_measures_only_the_best_predictions() {
        let p2 = P2::new(small_config()).unwrap();
        let full = p2.run().unwrap();
        let shortlisted = p2.run_with_shortlist(10).unwrap();
        assert_eq!(full.total_programs(), shortlisted.total_programs());
        // Exactly `shortlist` programs carry a real measurement (measured !=
        // predicted is not guaranteed under zero noise, so count programs whose
        // measurement differs from the prediction plus those that happen to
        // coincide is fragile; instead check the chosen optimum agrees with the
        // full run within the noise envelope).
        let full_best = full.best_overall().unwrap().measured_seconds;
        let short_best = shortlisted.best_overall().unwrap().measured_seconds;
        assert!(
            (full_best - short_best).abs() / full_best < 0.2,
            "shortlist optimum {short_best} too far from full optimum {full_best}"
        );
        // Unmeasured programs report their prediction.
        let some_unmeasured = shortlisted
            .placements
            .iter()
            .flat_map(|p| &p.programs)
            .filter(|p| (p.measured_seconds - p.predicted_seconds).abs() < f64::EPSILON)
            .count();
        assert!(some_unmeasured >= shortlisted.total_programs().saturating_sub(10));
    }

    #[test]
    fn invalid_config_rejected_at_construction() {
        let bad = P2Config::new(presets::a100_system(2), vec![7], vec![0]);
        assert!(P2::new(bad).is_err());
    }

    #[test]
    fn tree_and_ring_runs_both_work() {
        for algo in NcclAlgo::ALL {
            let config = small_config().with_algo(algo);
            let result = P2::new(config).unwrap().run().unwrap();
            assert!(result.total_programs() > 0);
        }
    }
}
