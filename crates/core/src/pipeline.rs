use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::time::Instant;

use p2_cost::CostModel;
use p2_exec::{ExecConfig, Executor};
use p2_placement::{enumerate_matrices, ParallelismMatrix};
use p2_synthesis::{
    baseline_allreduce, LoweredProgram, Program, SinkControl, SynthesisError, Synthesizer,
};

use crate::config::P2Config;
use crate::error::P2Error;
use crate::result::{ExperimentResult, PlacementEvaluation, ProgramEvaluation};

/// One retained candidate in the bounded top-K retention heap, ordered so the
/// heap's maximum is the *worst* retained program: highest measured time, ties
/// broken toward the latest arrival (so on equal times the earlier program
/// survives — a deterministic, stream-order-local policy). Ranking by the
/// measured time is ranking by the same key the final result rankings use; in
/// shortlist mode, where nothing is measured on the stream, `measured` holds
/// the prediction, exactly as the reported evaluations do.
struct HeapEntry {
    predicted: f64,
    measured: f64,
    seq: usize,
    program: Program,
    lowered: LoweredProgram,
}

impl HeapEntry {
    fn rank(&self) -> (f64, usize) {
        (self.measured, self.seq)
    }
}

impl PartialEq for HeapEntry {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for HeapEntry {}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        self.measured
            .total_cmp(&other.measured)
            .then(self.seq.cmp(&other.seq))
    }
}

/// The P² tool: parallelism placement synthesis, placement-aware reduction
/// strategy synthesis, prediction, and evaluation.
#[derive(Debug, Clone)]
pub struct P2 {
    config: P2Config,
}

impl P2 {
    /// Creates the tool from a validated configuration.
    ///
    /// # Errors
    ///
    /// Returns [`P2Error::InvalidConfig`] for inconsistent configurations.
    pub fn new(config: P2Config) -> Result<Self, P2Error> {
        config.validate()?;
        Ok(P2 { config })
    }

    /// The configuration in use.
    pub fn config(&self) -> &P2Config {
        &self.config
    }

    /// Enumerates every parallelism matrix for the configured system and axes.
    ///
    /// # Errors
    ///
    /// Propagates placement errors.
    pub fn placements(&self) -> Result<Vec<p2_placement::ParallelismMatrix>, P2Error> {
        Ok(enumerate_matrices(
            &self.config.system.hierarchy().arities(),
            &self.config.parallelism_axes,
        )?)
    }

    /// Runs the pipeline in the paper's intended deployment mode (§5): every
    /// synthesized program is *predicted* with the analytic simulator, but
    /// only the `shortlist` programs with the best predictions — across all
    /// placements — are actually measured on the execution substrate. The
    /// measured time of unmeasured programs is reported as their prediction.
    ///
    /// This is how P² avoids "massive evaluations of synthesis results": with
    /// the simulator's top-10 accuracy, a shortlist of 10 almost always
    /// contains the true optimum at a fraction of the evaluation cost.
    ///
    /// Combined with [`P2Config::with_keep_top`] the prediction pass itself
    /// becomes bounded: each placement streams its programs through a top-K
    /// heap, and candidates whose predicted prefix already exceeds the
    /// pruning bound are dropped without ever being retained. With
    /// K ≥ `shortlist`, top-K displacement alone cannot change the measured
    /// shortlist (every globally top-`shortlist` prediction is by definition
    /// within its own placement's top-K); cost-bound pruning can still drop a
    /// candidate predicting worse than `1 + prune_slack` times its
    /// placement's best, so the shortlist is only guaranteed identical to the
    /// exhaustive one up to such far-from-optimal entries.
    ///
    /// # Errors
    ///
    /// Same as [`P2::run`].
    pub fn run_with_shortlist(&self, shortlist: usize) -> Result<ExperimentResult, P2Error> {
        let mut result = self.run_internal(false)?;
        // Rank all programs by predicted time and measure only the shortlist.
        let mut order: Vec<(usize, usize, f64)> = result
            .placements
            .iter()
            .enumerate()
            .flat_map(|(pi, pl)| {
                pl.programs
                    .iter()
                    .enumerate()
                    .map(move |(qi, p)| (pi, qi, p.predicted_seconds))
            })
            .collect();
        order.sort_by(|a, b| a.2.total_cmp(&b.2));
        let exec_config = ExecConfig::new(self.config.algo, self.config.bytes_per_device)
            .with_noise(self.config.noise_fraction)
            .with_seed(self.config.seed)
            .with_repeats(self.config.repeats);
        let executor = Executor::new(&self.config.system, exec_config)?;
        let chosen = &order[..shortlist.min(order.len())];
        // Measurements fan out across threads; noise depends only on the seed
        // and program content, so the values match a serial run exactly.
        let measured = p2_par::par_map_threads(self.config.threads, chosen, |_, &(pi, qi, _)| {
            executor.measure(&result.placements[pi].programs[qi].lowered)
        });
        for (&(pi, qi, _), seconds) in chosen.iter().zip(measured) {
            result.placements[pi].programs[qi].measured_seconds = seconds;
        }
        for placement in &mut result.placements {
            placement
                .programs
                .sort_by(|a, b| a.measured_seconds.total_cmp(&b.measured_seconds));
        }
        Ok(result)
    }

    /// Runs the full pipeline: enumerate placements, synthesize reduction
    /// programs for each, predict every program with the analytic cost model
    /// and measure it on the execution substrate.
    ///
    /// # Errors
    ///
    /// Propagates errors from any stage; synthesis itself cannot fail, so an
    /// error indicates an inconsistent configuration.
    pub fn run(&self) -> Result<ExperimentResult, P2Error> {
        self.run_internal(true)
    }

    /// Synthesizes, predicts and optionally measures every program of one
    /// placement — the per-item body of the parallel sweep.
    ///
    /// Programs are consumed *streaming*: the synthesizer's visitor emits one
    /// program at a time, which is lowered, costed incrementally and either
    /// retained or dropped on the spot. With the default configuration
    /// (`keep_top = None`) every program is retained and the results are
    /// bit-compatible with the old materializing pipeline; with
    /// [`P2Config::with_keep_top`] only a bounded top-K heap survives, ranked
    /// by the same key the final result ranking uses (measured time when
    /// measuring eagerly, predicted time in shortlist mode), and candidates
    /// whose accumulated predicted prefix already exceeds the placement's
    /// best prediction so far times `1 + prune_slack` (or the heap's worst
    /// retained prediction once it is full, in shortlist mode) are pruned
    /// before they are fully costed or measured.
    fn evaluate_placement(
        &self,
        matrix: &ParallelismMatrix,
        cost: &CostModel<'_>,
        executor: &Executor<'_>,
        measure_programs: bool,
    ) -> Result<PlacementEvaluation, P2Error> {
        let synthesizer = Synthesizer::new(
            matrix.clone(),
            self.config.reduction_axes.clone(),
            self.config.hierarchy_kind,
        )?;
        let baseline = baseline_allreduce(matrix, &self.config.reduction_axes)?;
        let allreduce_predicted = cost.program_time(&baseline);
        let allreduce_measured = executor.measure(&baseline);

        let keep_top = self.config.keep_top;
        let prune_slack = self.config.prune_slack;
        let mut programs: Vec<ProgramEvaluation> = Vec::new();
        let mut heap: BinaryHeap<HeapEntry> = BinaryHeap::new();
        let mut num_programs = 0usize;
        let mut seq = 0usize;
        // The pruning bound tracks the best prediction seen in this placement,
        // seeded by the AllReduce baseline the sweep always evaluates anyway.
        // All of this is per-placement state, so the sweep stays bit-identical
        // across worker-thread counts.
        let mut best_predicted = allreduce_predicted;
        let mut lower_error: Option<SynthesisError> = None;
        // Evaluation work (lowering, costing, measuring) is interleaved with
        // the search on the stream; subtracting it from the pass's wall-clock
        // keeps `synthesis_time` meaning what the paper's tables report.
        let mut evaluation_time = std::time::Duration::ZERO;

        let start = Instant::now();
        let stats =
            synthesizer.for_each_program(self.config.max_program_size, &mut |program: &Program| {
                let eval_start = Instant::now();
                let ctrl = (|| {
                    num_programs += 1;
                    let lowered = match synthesizer.lower(program) {
                        Ok(lowered) => lowered,
                        Err(e) => {
                            lower_error = Some(e);
                            return SinkControl::Stop;
                        }
                    };
                    let Some(k) = keep_top else {
                        // Exhaustive mode (the default): evaluate and retain every
                        // program, bit-compatible with the materializing pipeline.
                        let predicted_seconds = cost.program_time(&lowered);
                        let measured_seconds = if measure_programs {
                            executor.measure(&lowered)
                        } else {
                            predicted_seconds
                        };
                        programs.push(ProgramEvaluation {
                            program: program.clone(),
                            lowered,
                            predicted_seconds,
                            measured_seconds,
                        });
                        return SinkControl::Continue;
                    };
                    // Bounded mode: incremental prefix costing with pruning. The
                    // prefix bound lives in the *predicted* domain, so the heap's
                    // worst retained time may only tighten it in shortlist mode,
                    // where ranking time and prediction coincide.
                    let mut bound = best_predicted * (1.0 + prune_slack);
                    if !measure_programs && heap.len() == k {
                        if let Some(worst) = heap.peek() {
                            bound = bound.min(worst.measured);
                        }
                    }
                    let mut acc = cost.accumulator();
                    for step in &lowered.steps {
                        acc.push(step);
                        if acc.exceeds(bound) {
                            return SinkControl::Continue;
                        }
                    }
                    let predicted = acc.seconds();
                    best_predicted = best_predicted.min(predicted);
                    let measured = if measure_programs {
                        executor.measure(&lowered)
                    } else {
                        predicted
                    };
                    let entry = HeapEntry {
                        predicted,
                        measured,
                        seq,
                        program: program.clone(),
                        lowered,
                    };
                    seq += 1;
                    if heap.len() < k {
                        heap.push(entry);
                    } else if let Some(worst) = heap.peek() {
                        if entry.rank() < worst.rank() {
                            heap.pop();
                            heap.push(entry);
                        }
                    }
                    SinkControl::Continue
                })();
                evaluation_time += eval_start.elapsed();
                ctrl
            });
        let synthesis_time = start.elapsed().saturating_sub(evaluation_time);
        if let Some(e) = lower_error {
            return Err(e.into());
        }
        debug_assert_eq!(stats.programs_emitted, num_programs);

        if keep_top.is_some() {
            let mut entries = heap.into_vec();
            entries.sort();
            programs = entries
                .into_iter()
                .map(|entry| ProgramEvaluation {
                    program: entry.program,
                    lowered: entry.lowered,
                    predicted_seconds: entry.predicted,
                    measured_seconds: entry.measured,
                })
                .collect();
        }
        programs.sort_by(|a, b| a.measured_seconds.total_cmp(&b.measured_seconds));

        Ok(PlacementEvaluation {
            matrix: matrix.clone(),
            synthesis_time,
            num_programs,
            programs_pruned: num_programs - programs.len(),
            programs_retained: programs.len(),
            allreduce_predicted,
            allreduce_measured,
            programs,
        })
    }

    fn run_internal(&self, measure_programs: bool) -> Result<ExperimentResult, P2Error> {
        let cost = CostModel::new(
            &self.config.system,
            self.config.algo,
            self.config.bytes_per_device,
        )?;
        let exec_config = ExecConfig::new(self.config.algo, self.config.bytes_per_device)
            .with_noise(self.config.noise_fraction)
            .with_seed(self.config.seed)
            .with_repeats(self.config.repeats);
        let executor = Executor::new(&self.config.system, exec_config)?;

        // The sweep is embarrassingly parallel: each placement synthesizes,
        // predicts and measures independently. `par_map_threads` returns
        // results in enumeration order, and measurement noise is a pure
        // function of (seed, program content), so any thread count — including
        // a serial run — produces bit-identical results.
        let matrices = self.placements()?;
        let evaluations = p2_par::par_map_threads(self.config.threads, &matrices, |_, matrix| {
            self.evaluate_placement(matrix, &cost, &executor, measure_programs)
        });

        let mut placements = Vec::with_capacity(evaluations.len());
        let mut total_synthesis = std::time::Duration::ZERO;
        for evaluation in evaluations {
            let placement = evaluation?;
            total_synthesis += placement.synthesis_time;
            placements.push(placement);
        }

        Ok(ExperimentResult {
            label: self.config.label(),
            parallelism_axes: self.config.parallelism_axes.clone(),
            reduction_axes: self.config.reduction_axes.clone(),
            placements,
            synthesis_time: total_synthesis,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use p2_cost::NcclAlgo;
    use p2_topology::presets;

    /// A small configuration that exercises the whole pipeline quickly.
    fn small_config() -> P2Config {
        P2Config::new(presets::a100_system(2), vec![8, 4], vec![0])
            .with_bytes_per_device(1.0e9)
            .with_repeats(2)
    }

    #[test]
    fn pipeline_produces_consistent_results() {
        let result = P2::new(small_config()).unwrap().run().unwrap();
        assert!(!result.placements.is_empty());
        for pl in &result.placements {
            assert!(pl.num_programs >= 1);
            assert_eq!(pl.num_programs, pl.programs.len());
            assert!(pl.allreduce_measured > 0.0 && pl.allreduce_predicted > 0.0);
            // Programs are sorted by measured time.
            assert!(pl
                .programs
                .windows(2)
                .all(|w| w[0].measured_seconds <= w[1].measured_seconds));
            // Every synthesized set contains the plain AllReduce.
            assert!(pl.programs.iter().any(|p| p.signature() == "AllReduce"));
            for p in &pl.programs {
                assert!(p.predicted_seconds > 0.0 && p.measured_seconds > 0.0);
                assert!(p.lowered.groups_are_disjoint());
            }
        }
        assert!(result.total_programs() > 0);
        assert!(result.best_overall().is_some());
    }

    #[test]
    fn cross_node_placements_benefit_from_synthesis() {
        // Result 5 of the paper, end to end: for the placement that forces
        // cross-node reduction, some synthesized program beats AllReduce.
        let result = P2::new(small_config()).unwrap().run().unwrap();
        let cross_node = result
            .placements
            .iter()
            .max_by(|a, b| a.allreduce_measured.total_cmp(&b.allreduce_measured))
            .unwrap();
        assert!(
            cross_node.programs_beating_allreduce() > 0,
            "expected a synthesized program to beat AllReduce for {}",
            cross_node.matrix
        );
        assert!(cross_node.speedup() > 1.05);
    }

    #[test]
    fn shortlist_run_measures_only_the_best_predictions() {
        let p2 = P2::new(small_config()).unwrap();
        let full = p2.run().unwrap();
        let shortlisted = p2.run_with_shortlist(10).unwrap();
        assert_eq!(full.total_programs(), shortlisted.total_programs());
        // Exactly `shortlist` programs carry a real measurement (measured !=
        // predicted is not guaranteed under zero noise, so count programs whose
        // measurement differs from the prediction plus those that happen to
        // coincide is fragile; instead check the chosen optimum agrees with the
        // full run within the noise envelope).
        let full_best = full.best_overall().unwrap().measured_seconds;
        let short_best = shortlisted.best_overall().unwrap().measured_seconds;
        assert!(
            (full_best - short_best).abs() / full_best < 0.2,
            "shortlist optimum {short_best} too far from full optimum {full_best}"
        );
        // Unmeasured programs report their prediction.
        let some_unmeasured = shortlisted
            .placements
            .iter()
            .flat_map(|p| &p.programs)
            .filter(|p| (p.measured_seconds - p.predicted_seconds).abs() < f64::EPSILON)
            .count();
        assert!(some_unmeasured >= shortlisted.total_programs().saturating_sub(10));
    }

    #[test]
    fn keep_top_bounds_retention_and_preserves_the_best_program() {
        let unbounded = P2::new(small_config()).unwrap().run().unwrap();
        let best = unbounded.best_overall().unwrap();
        for k in [1usize, 2, 5] {
            let bounded = P2::new(small_config().with_keep_top(k))
                .unwrap()
                .run()
                .unwrap();
            // Same synthesis space, strictly bounded retention.
            assert_eq!(bounded.total_programs(), unbounded.total_programs());
            assert!(bounded.total_programs_retained() < unbounded.total_programs_retained());
            assert!(bounded.total_programs_pruned() > 0);
            for pl in &bounded.placements {
                assert!(pl.programs.len() <= k);
                assert_eq!(pl.programs_retained, pl.programs.len());
                assert_eq!(pl.programs_pruned + pl.programs_retained, pl.num_programs);
                // Retained predictions are the placement's best k.
                for p in &pl.programs {
                    assert!(p.predicted_seconds.is_finite());
                }
            }
            // The overall winner survives any retention bound (with the
            // default slack) and its measurement is bit-identical.
            let bounded_best = bounded.best_overall().unwrap();
            assert_eq!(bounded_best.signature(), best.signature());
            assert_eq!(bounded_best.measured_seconds, best.measured_seconds);
        }
    }

    #[test]
    fn invalid_config_rejected_at_construction() {
        let bad = P2Config::new(presets::a100_system(2), vec![7], vec![0]);
        assert!(P2::new(bad).is_err());
    }

    #[test]
    fn tree_and_ring_runs_both_work() {
        for algo in NcclAlgo::ALL {
            let config = small_config().with_algo(algo);
            let result = P2::new(config).unwrap().run().unwrap();
            assert!(result.total_programs() > 0);
        }
    }
}
