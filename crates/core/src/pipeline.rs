use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::sync::Arc;
use std::time::Instant;

use p2_collectives::SharedTables;
use p2_cost::{AlphaBetaModel, CachedCostModel, CostAccumulator, CostModel};
use p2_exec::{ExecConfig, Executor};
use p2_par::{JobHandle, Scheduler};
use p2_placement::{
    enumerate_matrices, for_each_matrix, MatrixControl, MatrixSink, ParallelismMatrix,
};
use p2_synthesis::{
    baseline_allreduce, LoweredProgram, MemoBank, Program, SinkControl, SynthesisError, Synthesizer,
};

use crate::builder::P2Builder;
use crate::config::P2Config;
use crate::error::P2Error;
use crate::observer::RunObserver;
use crate::result::{ExperimentResult, PlacementEvaluation, ProgramEvaluation};
use crate::table_store::{TableSnapshot, TableStore, TableStoreStats};

/// How [`P2::run`] drives the synthesized programs through prediction and
/// measurement.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RunMode {
    /// Measure every synthesized program on the execution substrate (the
    /// exhaustive evaluation behind the paper's tables). The default.
    #[default]
    Measure,
    /// Predict every program with the analytic simulator, then measure only
    /// the globally best `n` predictions — the paper's intended deployment
    /// mode (§5). Unmeasured programs report their prediction as their
    /// measured time.
    Shortlist(usize),
    /// Predict every program and measure nothing; every program's measured
    /// time is its prediction. (The AllReduce baseline is still measured to
    /// anchor the tables.) This is the seeding pass of
    /// [`TwoPassSharedBound`](crate::TwoPassSharedBound).
    PredictOnly,
}

/// One retained candidate in the bounded top-K retention heap, ordered so the
/// heap's maximum is the *worst* retained program: highest measured time, ties
/// broken toward the latest arrival (so on equal times the earlier program
/// survives — a deterministic, stream-order-local policy). Ranking by the
/// measured time is ranking by the same key the final result rankings use; in
/// shortlist mode, where nothing is measured on the stream, `measured` holds
/// the prediction, exactly as the reported evaluations do.
struct HeapEntry {
    predicted: f64,
    measured: f64,
    seq: usize,
    program: Program,
    lowered: LoweredProgram,
}

impl HeapEntry {
    fn rank(&self) -> (f64, usize) {
        (self.measured, self.seq)
    }
}

impl PartialEq for HeapEntry {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for HeapEntry {}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        self.measured
            .total_cmp(&other.measured)
            .then(self.seq.cmp(&other.seq))
    }
}

/// The P² tool: parallelism placement synthesis, placement-aware reduction
/// strategy synthesis, prediction, and evaluation.
///
/// A `P2` is an experiment *session*: a validated [`P2Config`] plus the
/// [`RunMode`] that [`P2::run`] executes. Sessions are assembled with
/// [`P2::builder`] (or [`P2::new`] from an existing config, which defaults to
/// [`RunMode::Measure`]).
#[derive(Debug, Clone)]
pub struct P2 {
    config: P2Config,
    mode: RunMode,
}

impl P2 {
    /// Creates the tool from a validated configuration, with the default
    /// [`RunMode::Measure`].
    ///
    /// # Errors
    ///
    /// Returns [`P2Error::InvalidConfig`] for inconsistent configurations.
    pub fn new(config: P2Config) -> Result<Self, P2Error> {
        config.validate()?;
        Ok(P2 {
            config,
            mode: RunMode::Measure,
        })
    }

    /// Starts a typed builder for an experiment session on `system`.
    /// Validation happens at [`P2Builder::build`].
    ///
    /// # Examples
    ///
    /// ```
    /// use p2_core::{RunMode, P2};
    /// use p2_topology::presets;
    ///
    /// // The paper's deployment mode: predict everything, measure the best
    /// // ten predictions across all placements.
    /// let result = P2::builder(presets::a100_system(2))
    ///     .parallelism_axes([8, 4])
    ///     .reduction_axes([0])
    ///     .bytes_per_device(1.0e9)
    ///     .repeats(2)
    ///     .mode(RunMode::Shortlist(10))
    ///     .build()?
    ///     .run()?;
    /// assert!(result.best_overall().is_some());
    /// # Ok::<(), p2_core::P2Error>(())
    /// ```
    pub fn builder(system: p2_topology::SystemTopology) -> P2Builder {
        P2Builder::new(system)
    }

    /// The configuration in use.
    pub fn config(&self) -> &P2Config {
        &self.config
    }

    /// The run mode [`P2::run`] executes.
    pub fn mode(&self) -> RunMode {
        self.mode
    }

    /// Returns the session with a different run mode, leaving the
    /// configuration untouched.
    pub fn with_mode(mut self, mode: RunMode) -> Self {
        self.mode = mode;
        self
    }

    /// Enumerates every parallelism matrix for the configured system and axes.
    ///
    /// This materializes the full list; the sweep itself streams matrices via
    /// [`P2::for_each_placement`] and never holds them all.
    ///
    /// # Errors
    ///
    /// Propagates placement errors.
    pub fn placements(&self) -> Result<Vec<ParallelismMatrix>, P2Error> {
        Ok(enumerate_matrices(
            &self.config.system.hierarchy().arities(),
            &self.config.parallelism_axes,
        )?)
    }

    /// Streams every parallelism matrix for the configured system and axes
    /// into `sink`, in enumeration order, without materializing the list.
    /// Returns the number of matrices delivered.
    ///
    /// # Errors
    ///
    /// Propagates placement errors (all raised before the first matrix).
    pub fn for_each_placement<S>(&self, sink: &mut S) -> Result<usize, P2Error>
    where
        S: MatrixSink + ?Sized,
    {
        Ok(for_each_matrix(
            &self.config.system.hierarchy().arities(),
            &self.config.parallelism_axes,
            sink,
        )?)
    }

    /// Runs the pipeline in the session's [`RunMode`]: enumerate placements
    /// (streaming), synthesize reduction programs for each, predict every
    /// program with the analytic cost model, and measure on the execution
    /// substrate whatever the mode calls for — everything under
    /// [`RunMode::Measure`], the best `n` predictions under
    /// [`RunMode::Shortlist`], nothing under [`RunMode::PredictOnly`].
    ///
    /// # Errors
    ///
    /// Propagates errors from any stage; synthesis itself cannot fail, so an
    /// error indicates an inconsistent configuration.
    pub fn run(&self) -> Result<ExperimentResult, P2Error> {
        self.run_observed(&())
    }

    /// [`P2::run`] with a [`RunObserver`] receiving progress events from the
    /// parallel sweep: per placement, `on_placement_start`, then
    /// `on_program_retained` in stream order, then `on_placement_done`.
    /// Events from different placements interleave when the sweep runs on
    /// more than one thread; the per-placement sequences are deterministic.
    ///
    /// The session owns its pool here: a work-stealing scope of
    /// [`P2Config::threads`](crate::P2Config) workers is spun up for this run
    /// alone. To schedule several sessions onto *one* pool — the batch path —
    /// use [`P2::run_on`] (or [`P2::spawn_sweep`]) with a caller-supplied
    /// [`Scheduler`].
    ///
    /// # Errors
    ///
    /// Same as [`P2::run`].
    pub fn run_observed(&self, observer: &dyn RunObserver) -> Result<ExperimentResult, P2Error> {
        p2_par::scope(self.config.threads, |scheduler| {
            self.run_on(scheduler, observer)
        })
    }

    /// Runs the session's full pipeline on a caller-supplied work-stealing
    /// scheduler: [`P2::spawn_sweep`] immediately followed by
    /// [`PendingSweep::collect`].
    ///
    /// This is the building block batch drivers use to run many sessions on
    /// one thread pool without oversubscription; results are bit-identical to
    /// [`P2::run_observed`] for any pool size or steal schedule.
    ///
    /// # Errors
    ///
    /// Same as [`P2::run`].
    pub fn run_on<'env>(
        &'env self,
        scheduler: &Scheduler<'_, 'env>,
        observer: &'env dyn RunObserver,
    ) -> Result<ExperimentResult, P2Error> {
        self.spawn_sweep(scheduler, observer)?.collect(scheduler)
    }

    /// Submits one placement-evaluation job per placement to `scheduler` and
    /// returns without waiting: the session no longer owns its fan-out, so a
    /// batch driver can spawn *several* sessions' sweeps onto one pool and the
    /// scheduler steals across their boundaries. Redeem the returned
    /// [`PendingSweep`] with [`PendingSweep::collect`].
    ///
    /// Jobs are spawned in placement production order. Observers that block on
    /// other placements' slots (the shared-bound reduction tree) rely on that:
    /// a placement only ever waits on strictly earlier spawns, which is what
    /// keeps the pool deadlock-free under any steal schedule.
    ///
    /// # Errors
    ///
    /// Returns [`P2Error::InvalidConfig`] for [`RunMode::Shortlist`]`(0)` and
    /// propagates placement-enumeration and cost-model errors — all before
    /// any job is spawned.
    pub fn spawn_sweep<'env>(
        &'env self,
        scheduler: &Scheduler<'_, 'env>,
        observer: &'env dyn RunObserver,
    ) -> Result<PendingSweep<'env>, P2Error> {
        // Rejected here as well as in the builder so sessions assembled via
        // `with_mode` get the same error instead of silently degrading to a
        // predict-only run.
        if let RunMode::Shortlist(0) = self.mode {
            return Err(P2Error::InvalidConfig {
                reason: "shortlist length must be positive (use RunMode::PredictOnly to \
                         measure nothing)"
                    .into(),
            });
        }
        let measure_programs = matches!(self.mode, RunMode::Measure);
        let model = self.resolve_model()?;
        // One set of hash-consing tables for the whole sweep: every placement
        // reduces over the same device-state universe, so workers reuse each
        // other's interned states and memoized collective applications. A
        // batch driver may supply the tables instead, extending the sharing
        // across every spec of a group.
        let (shared, external_tables) = match &self.config.shared_tables {
            Some(tables) => (Some(Arc::clone(tables)), true),
            None => (
                self.config
                    .shared_intern
                    .then(|| Arc::new(SharedTables::new())),
                false,
            ),
        };
        // The suffix-memo bank: externally supplied (batch sharing), or
        // created fresh when this session owns a table store that will
        // persist it. Plain sweeps skip the bank — every placement of one
        // sweep solves a distinct context, so within a run there is nothing
        // to share and, without a store, nothing to keep.
        let external_memo = self.config.shared_memo.is_some();
        let store_active =
            self.config.table_store_dir.is_some() && !external_tables && !external_memo;
        let memo: Option<Arc<MemoBank>> = match &self.config.shared_memo {
            Some(bank) => Some(Arc::clone(bank)),
            None => store_active.then(|| Arc::new(MemoBank::new())),
        };
        // Load-or-empty: a snapshot under this session's table key warms the
        // fresh tables and bank before any job is spawned; a missing or
        // corrupt snapshot is a counted miss and the sweep starts cold.
        let store = if store_active {
            let dir = self.config.table_store_dir.clone().expect("store active");
            let store = TableStore::new(dir);
            let key = self.config.table_key();
            let mut stats = TableStoreStats {
                table_key: format!("{key}"),
                ..TableStoreStats::default()
            };
            let started = Instant::now();
            if let Some(snapshot) = store.load(key) {
                stats.loaded = true;
                let bank = memo.as_ref().expect("store implies a bank");
                snapshot.install(shared.as_deref(), bank, &mut stats);
            }
            stats.load_micros = started.elapsed().as_micros() as u64;
            Some((store, key, stats))
        } else {
            None
        };
        let mut handles = Vec::new();
        self.for_each_placement(&mut |matrix: &ParallelismMatrix| {
            let index = handles.len();
            let matrix = matrix.clone();
            let model = Arc::clone(&model);
            let shared = shared.clone();
            let memo = memo.clone();
            handles.push(scheduler.spawn(move || {
                self.evaluate_placement(
                    index,
                    &matrix,
                    &model,
                    shared.as_ref(),
                    memo.as_ref(),
                    measure_programs,
                    observer,
                )
            }));
            MatrixControl::Continue
        })?;
        Ok(PendingSweep {
            session: self,
            handles,
            shared,
            external_tables,
            memo,
            store,
        })
    }

    /// Ranks all programs of a predict-only sweep by predicted time and
    /// measures only the best `shortlist` of them — the post-pass of
    /// [`RunMode::Shortlist`]. With the simulator's top-10 accuracy, a
    /// shortlist of 10 almost always contains the true optimum at a fraction
    /// of the evaluation cost; this is how P² avoids "massive evaluations of
    /// synthesis results".
    ///
    /// Combined with [`P2Config::keep_top`] the prediction pass itself is
    /// bounded. With K ≥ `shortlist`, top-K displacement alone cannot change
    /// the measured shortlist (every globally top-`shortlist` prediction is
    /// by definition within its own placement's top-K); cost-bound pruning
    /// can still drop a candidate predicting worse than `1 + prune_slack`
    /// times its placement's best, so the shortlist is only guaranteed
    /// identical to the exhaustive one up to such far-from-optimal entries.
    fn measure_shortlist_on<'env>(
        &'env self,
        scheduler: &Scheduler<'_, 'env>,
        result: &mut ExperimentResult,
        shortlist: usize,
    ) -> Result<(), P2Error> {
        // Rank all programs by predicted time and measure only the shortlist.
        let mut order: Vec<(usize, usize, f64)> = result
            .placements
            .iter()
            .enumerate()
            .flat_map(|(pi, pl)| {
                pl.programs
                    .iter()
                    .enumerate()
                    .map(move |(qi, p)| (pi, qi, p.predicted_seconds))
            })
            .collect();
        order.sort_by(|a, b| a.2.total_cmp(&b.2));
        let chosen: Vec<(usize, usize)> = order[..shortlist.min(order.len())]
            .iter()
            .map(|&(pi, qi, _)| (pi, qi))
            .collect();
        // Measurements fan out as scheduler jobs (each clones its lowered
        // program, so nothing borrows the result being patched); noise depends
        // only on the seed and program content and the per-job executor is
        // stateless, so the values match a serial run exactly.
        let handles: Vec<JobHandle<Result<f64, P2Error>>> = chosen
            .iter()
            .map(|&(pi, qi)| {
                let lowered = result.placements[pi].programs[qi].lowered.clone();
                scheduler.spawn(move || {
                    let executor = Executor::new(&self.config.system, self.exec_config())?;
                    Ok(executor.measure(&lowered))
                })
            })
            .collect();
        for (&(pi, qi), handle) in chosen.iter().zip(handles) {
            result.placements[pi].programs[qi].measured_seconds = handle.join()?;
        }
        for placement in &mut result.placements {
            placement
                .programs
                .sort_by(|a, b| a.measured_seconds.total_cmp(&b.measured_seconds));
        }
        Ok(())
    }

    /// The execution-substrate configuration every measurement in this session
    /// uses: measurements are a pure function of (this config, program), which
    /// is what lets each job build its own [`Executor`] without changing a
    /// single measured bit.
    fn exec_config(&self) -> ExecConfig {
        ExecConfig::new(self.config.algo, self.config.bytes_per_device)
            .with_noise(self.config.noise_fraction)
            .with_seed(self.config.seed)
            .with_repeats(self.config.repeats)
    }

    /// The session's cost model: the configured one, or the paper's α–β model
    /// over the configured system — bit-identical to the pre-trait pipeline.
    fn resolve_model(&self) -> Result<Arc<dyn CostModel>, P2Error> {
        Ok(match &self.config.cost_model {
            Some(model) => Arc::clone(model),
            None => Arc::new(AlphaBetaModel::new(
                self.config.system.clone(),
                self.config.algo,
                self.config.bytes_per_device,
            )?),
        })
    }

    /// Synthesizes, predicts and optionally measures every program of one
    /// placement — the per-item body of the parallel sweep.
    ///
    /// Programs are consumed *streaming*: the synthesizer's visitor emits one
    /// program at a time, which is lowered, costed incrementally and either
    /// retained or dropped on the spot. With the default configuration
    /// (`keep_top = None`, no observer bound) every program is retained and
    /// the results are bit-compatible with the old materializing pipeline;
    /// with [`P2Config::keep_top`] only a bounded top-K heap survives, ranked
    /// by the same key the final result ranking uses (measured time when
    /// measuring eagerly, predicted time otherwise), and candidates whose
    /// accumulated predicted prefix already exceeds the placement's best
    /// prediction so far times `1 + prune_slack` (or the heap's worst
    /// retained prediction once it is full, in predict-first modes) are
    /// pruned before they are fully costed or measured. An observer-supplied
    /// bound ([`RunObserver::on_placement_start`]) tightens the best
    /// prediction's seed — normally the placement's own AllReduce baseline —
    /// and activates prefix pruning even without `keep_top`.
    ///
    /// All predictions come from the configured [`CostModel`]; with
    /// [`P2Config::cost_cache`] the model is wrapped in a per-placement
    /// [`CachedCostModel`], which is where the intern table pays off — the
    /// programs of one placement reuse the same lowered steps over and over.
    ///
    /// Errors — and panics unwinding through this frame — fire
    /// [`RunObserver::on_placement_aborted`] before propagating, so observers
    /// blocking on this placement's completion (the shared-bound reduction
    /// tree) are released instead of waiting forever; a panic is re-raised on
    /// the thread joining the sweep, failing the run exactly as it did before
    /// observers could block.
    #[allow(clippy::too_many_arguments)]
    fn evaluate_placement(
        &self,
        index: usize,
        matrix: &ParallelismMatrix,
        model: &Arc<dyn CostModel>,
        shared: Option<&Arc<SharedTables>>,
        memo: Option<&Arc<MemoBank>>,
        measure_programs: bool,
        observer: &dyn RunObserver,
    ) -> Result<PlacementEvaluation, P2Error> {
        struct AbortGuard<'a> {
            observer: &'a dyn RunObserver,
            index: usize,
            armed: bool,
        }
        impl Drop for AbortGuard<'_> {
            fn drop(&mut self) {
                if self.armed {
                    self.observer.on_placement_aborted(self.index);
                }
            }
        }
        let mut guard = AbortGuard {
            observer,
            index,
            armed: true,
        };
        let result = self.evaluate_placement_inner(
            index,
            matrix,
            model,
            shared,
            memo,
            measure_programs,
            observer,
        );
        guard.armed = result.is_err();
        result
    }

    #[allow(clippy::too_many_arguments)]
    fn evaluate_placement_inner(
        &self,
        index: usize,
        matrix: &ParallelismMatrix,
        model: &Arc<dyn CostModel>,
        shared: Option<&Arc<SharedTables>>,
        memo: Option<&Arc<MemoBank>>,
        measure_programs: bool,
        observer: &dyn RunObserver,
    ) -> Result<PlacementEvaluation, P2Error> {
        // Each placement job builds its own (cheap, stateless) executor, so
        // jobs spawned onto a shared batch scheduler borrow nothing but the
        // session itself.
        let executor = Executor::new(&self.config.system, self.exec_config())?;
        let cache;
        let cost: &dyn CostModel = if self.config.cost_cache {
            cache = CachedCostModel::new(Arc::clone(model));
            &cache
        } else {
            model.as_ref()
        };
        let bound_seed = observer.on_placement_start(index, matrix);
        let mut synthesizer = Synthesizer::new(
            matrix.clone(),
            self.config.reduction_axes.clone(),
            self.config.hierarchy_kind,
        )?;
        if let Some(tables) = shared {
            synthesizer = synthesizer.with_shared_tables(Arc::clone(tables));
        }
        if let Some(bank) = memo {
            synthesizer = synthesizer.with_memo_bank(Arc::clone(bank));
        }
        if self.config.parallel_build {
            // Placement jobs already run on the sweep pool, so the build
            // recruits the pool's idle workers rather than spawning its own.
            synthesizer = synthesizer.with_build_threads(self.config.threads);
        }
        let baseline = baseline_allreduce(matrix, &self.config.reduction_axes)?;
        let allreduce_predicted = cost.program_time(&baseline);
        let allreduce_measured = executor.measure(&baseline);

        let keep_top = self.config.keep_top;
        let prune_slack = self.config.prune_slack;
        let prune = keep_top.is_some() || bound_seed.is_some();
        let mut programs: Vec<ProgramEvaluation> = Vec::new();
        let mut heap: BinaryHeap<HeapEntry> = BinaryHeap::new();
        let mut num_programs = 0usize;
        let mut seq = 0usize;
        // The pruning bound tracks the best prediction seen in this placement,
        // seeded by the AllReduce baseline the sweep always evaluates anyway —
        // tightened up front by the observer's cross-placement bound when one
        // is supplied. Either way the bound is fixed before the stream starts
        // and then only shrinks with this placement's own predictions, so the
        // sweep stays bit-identical across worker-thread counts.
        let mut best_predicted = allreduce_predicted;
        if let Some(seed) = bound_seed {
            best_predicted = best_predicted.min(seed);
        }
        let mut lower_error: Option<SynthesisError> = None;
        // Evaluation work (lowering, costing, measuring) is interleaved with
        // the search on the stream; subtracting it from the pass's wall-clock
        // keeps `synthesis_time` meaning what the paper's tables report.
        let mut evaluation_time = std::time::Duration::ZERO;

        let start = Instant::now();
        let stats =
            synthesizer.for_each_program(self.config.max_program_size, &mut |program: &Program| {
                let eval_start = Instant::now();
                let ctrl = (|| {
                    num_programs += 1;
                    let lowered = match synthesizer.lower(program) {
                        Ok(lowered) => lowered,
                        Err(e) => {
                            lower_error = Some(e);
                            return SinkControl::Stop;
                        }
                    };
                    if !prune {
                        // Exhaustive mode (the default): evaluate and retain every
                        // program, bit-compatible with the materializing pipeline.
                        let predicted_seconds = cost.program_time(&lowered);
                        let measured_seconds = if measure_programs {
                            executor.measure(&lowered)
                        } else {
                            predicted_seconds
                        };
                        observer.on_program_retained(
                            index,
                            program,
                            predicted_seconds,
                            measured_seconds,
                        );
                        programs.push(ProgramEvaluation {
                            program: program.clone(),
                            lowered,
                            predicted_seconds,
                            measured_seconds,
                        });
                        return SinkControl::Continue;
                    }
                    // Pruned mode: incremental prefix costing against the bound.
                    // The prefix bound lives in the *predicted* domain, so the
                    // heap's worst retained time may only tighten it in
                    // predict-first modes, where ranking time and prediction
                    // coincide.
                    let mut bound = best_predicted * (1.0 + prune_slack);
                    if let Some(k) = keep_top {
                        if !measure_programs && heap.len() == k {
                            if let Some(worst) = heap.peek() {
                                bound = bound.min(worst.measured);
                            }
                        }
                    }
                    let mut acc = CostAccumulator::new(cost);
                    for step in &lowered.steps {
                        acc.push(step);
                        if acc.exceeds(bound) {
                            return SinkControl::Continue;
                        }
                    }
                    let predicted = acc.seconds();
                    best_predicted = best_predicted.min(predicted);
                    let measured = if measure_programs {
                        executor.measure(&lowered)
                    } else {
                        predicted
                    };
                    let Some(k) = keep_top else {
                        // Bound-only pruning (observer-supplied bound, no
                        // retention limit): keep every survivor.
                        observer.on_program_retained(index, program, predicted, measured);
                        programs.push(ProgramEvaluation {
                            program: program.clone(),
                            lowered,
                            predicted_seconds: predicted,
                            measured_seconds: measured,
                        });
                        return SinkControl::Continue;
                    };
                    let entry = HeapEntry {
                        predicted,
                        measured,
                        seq,
                        program: program.clone(),
                        lowered,
                    };
                    seq += 1;
                    if heap.len() < k {
                        observer.on_program_retained(index, program, predicted, measured);
                        heap.push(entry);
                    } else if let Some(worst) = heap.peek() {
                        if entry.rank() < worst.rank() {
                            observer.on_program_retained(index, program, predicted, measured);
                            heap.pop();
                            heap.push(entry);
                        }
                    }
                    SinkControl::Continue
                })();
                evaluation_time += eval_start.elapsed();
                ctrl
            });
        let synthesis_time = start.elapsed().saturating_sub(evaluation_time);
        if let Some(e) = lower_error {
            return Err(e.into());
        }
        debug_assert_eq!(stats.programs_emitted, num_programs);

        if keep_top.is_some() {
            let mut entries = heap.into_vec();
            entries.sort();
            programs = entries
                .into_iter()
                .map(|entry| ProgramEvaluation {
                    program: entry.program,
                    lowered: entry.lowered,
                    predicted_seconds: entry.predicted,
                    measured_seconds: entry.measured,
                })
                .collect();
        }
        programs.sort_by(|a, b| a.measured_seconds.total_cmp(&b.measured_seconds));

        let evaluation = PlacementEvaluation {
            matrix: matrix.clone(),
            synthesis_time,
            num_programs,
            programs_pruned: num_programs - programs.len(),
            programs_retained: programs.len(),
            states_explored: stats.states_explored,
            unique_device_states: stats.unique_device_states,
            suffix_memo_hits: stats.suffix_memo_hits,
            suffix_memo_misses: stats.suffix_memo_misses,
            suffix_memo_preloaded: stats.suffix_memo_preloaded,
            shared_states_reused: stats.shared_states_reused,
            allreduce_predicted,
            allreduce_measured,
            programs,
        };
        observer.on_placement_done(index, &evaluation);
        Ok(evaluation)
    }

    /// Returns the session with its synthesis hash-consing tables replaced by
    /// caller-supplied ones, extending state interning and collective-apply
    /// memoization across every session sharing the `tables`.
    ///
    /// Sharing is result-invisible — programs, predictions, measurements and
    /// the deterministic per-placement statistics are bit-identical — with one
    /// reporting exception: a session running on external tables reports
    /// [`ExperimentResult::shared_unique_device_states`] as `None`, because
    /// the tables' *final* size is only known once every sharing session has
    /// finished (mid-batch it would depend on the steal schedule). Batch
    /// drivers fill the field in afterwards.
    pub fn with_shared_tables(mut self, tables: Arc<SharedTables>) -> Self {
        self.config.shared_tables = Some(tables);
        self
    }

    /// Returns the session with its suffix-memo bank replaced by a
    /// caller-supplied one, extending completion-count memoization across
    /// every session sharing the bank (see [`P2Config::shared_memo`]).
    /// Result-invisible, like [`P2::with_shared_tables`]; a session holding
    /// an external bank leaves snapshot persistence to whoever owns it.
    pub fn with_shared_memo(mut self, bank: Arc<MemoBank>) -> Self {
        self.config.shared_memo = Some(bank);
        self
    }
}

/// A sweep whose placement-evaluation jobs have been submitted to a
/// [`Scheduler`] by [`P2::spawn_sweep`] but not yet joined.
///
/// Dropping a `PendingSweep` does not cancel its jobs — they drain on the
/// pool (their observer events still fire, releasing any shared-bound
/// waiters); only their results are discarded.
pub struct PendingSweep<'env> {
    session: &'env P2,
    handles: Vec<JobHandle<Result<PlacementEvaluation, P2Error>>>,
    shared: Option<Arc<SharedTables>>,
    external_tables: bool,
    memo: Option<Arc<MemoBank>>,
    store: Option<(TableStore, p2_hash::Fingerprint, TableStoreStats)>,
}

impl<'env> PendingSweep<'env> {
    /// Number of placement jobs in flight.
    pub fn placements(&self) -> usize {
        self.handles.len()
    }

    /// Joins every placement job in production order, assembles the
    /// [`ExperimentResult`], and — for [`RunMode::Shortlist`] sessions — runs
    /// the shortlist measurements as jobs on the same `scheduler`.
    ///
    /// Joining in production order is what keeps batch results bit-identical:
    /// placements land in the result exactly where the serial pipeline puts
    /// them, whatever order the pool actually finished them in.
    ///
    /// # Errors
    ///
    /// Returns the first (in production order) placement error; remaining
    /// jobs drain in the background. Panics inside jobs are re-raised here.
    pub fn collect(self, scheduler: &Scheduler<'_, 'env>) -> Result<ExperimentResult, P2Error> {
        let PendingSweep {
            session,
            handles,
            shared,
            external_tables,
            memo,
            store,
        } = self;
        let mut placements = Vec::with_capacity(handles.len());
        let mut total_synthesis = std::time::Duration::ZERO;
        for handle in handles {
            let placement = handle.join()?;
            total_synthesis += placement.synthesis_time;
            placements.push(placement);
        }
        let mut result = ExperimentResult {
            label: session.config.label(),
            parallelism_axes: session.config.parallelism_axes.clone(),
            reduction_axes: session.config.reduction_axes.clone(),
            placements,
            synthesis_time: total_synthesis,
            // External tables are still growing while other sessions of the
            // batch run; their final (deterministic, set-union) size is only
            // known to the batch driver, which stamps it afterwards.
            shared_unique_device_states: if external_tables {
                None
            } else {
                shared.as_ref().map(|tables| tables.num_states())
            },
            table_store: None,
        };
        // Snapshot-after-run: the sweep has drained, so the tables and bank
        // hold their final (deterministic) content. A failed save is
        // telemetry, not an error — the results are already in hand.
        if let Some((store, key, mut stats)) = store {
            let bank = memo.as_ref().expect("store implies a bank");
            let started = Instant::now();
            let snapshot = TableSnapshot::capture(shared.as_deref(), bank);
            stats.saved_states = snapshot.states.len();
            stats.saved_apply_entries = snapshot.apply.len();
            stats.saved_memo_slabs = snapshot.memo.len();
            stats.saved = !snapshot.is_empty() && store.save(key, &snapshot).is_ok();
            stats.save_micros = started.elapsed().as_micros() as u64;
            stats.seeded_searches = bank.seeded_searches();
            stats.seeded_entries = bank.seeded_entries();
            result.table_store = Some(stats);
        }
        if let RunMode::Shortlist(n) = session.mode {
            session.measure_shortlist_on(scheduler, &mut result, n)?;
        }
        Ok(result)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use p2_cost::NcclAlgo;
    use p2_topology::presets;

    /// A small configuration that exercises the whole pipeline quickly.
    fn small_config() -> P2Config {
        P2Config::new(presets::a100_system(2), vec![8, 4], vec![0])
            .with_bytes_per_device(1.0e9)
            .with_repeats(2)
    }

    /// The same experiment through the new builder API.
    fn small_builder() -> P2Builder {
        P2::builder(presets::a100_system(2))
            .parallelism_axes([8, 4])
            .reduction_axes([0])
            .bytes_per_device(1.0e9)
            .repeats(2)
    }

    #[test]
    fn pipeline_produces_consistent_results() {
        let result = small_builder().run().unwrap();
        assert!(!result.placements.is_empty());
        for pl in &result.placements {
            assert!(pl.num_programs >= 1);
            assert_eq!(pl.num_programs, pl.programs.len());
            assert!(pl.allreduce_measured > 0.0 && pl.allreduce_predicted > 0.0);
            // Programs are sorted by measured time.
            assert!(pl
                .programs
                .windows(2)
                .all(|w| w[0].measured_seconds <= w[1].measured_seconds));
            // Every synthesized set contains the plain AllReduce.
            assert!(pl.programs.iter().any(|p| p.signature() == "AllReduce"));
            for p in &pl.programs {
                assert!(p.predicted_seconds > 0.0 && p.measured_seconds > 0.0);
                assert!(p.lowered.groups_are_disjoint());
            }
        }
        assert!(result.total_programs() > 0);
        assert!(result.best_overall().is_some());
    }

    #[test]
    fn builder_session_matches_config_session() {
        let from_config = P2::new(small_config()).unwrap().run().unwrap();
        let from_builder = small_builder().run().unwrap();
        assert_eq!(from_config.label, from_builder.label);
        assert_eq!(from_config.placements.len(), from_builder.placements.len());
        for (a, b) in from_config.placements.iter().zip(&from_builder.placements) {
            assert_eq!(a.matrix, b.matrix);
            assert_eq!(a.allreduce_measured, b.allreduce_measured);
            for (pa, pb) in a.programs.iter().zip(&b.programs) {
                assert_eq!(pa.signature(), pb.signature());
                assert_eq!(pa.measured_seconds, pb.measured_seconds);
            }
        }
    }

    #[test]
    fn cross_node_placements_benefit_from_synthesis() {
        // Result 5 of the paper, end to end: for the placement that forces
        // cross-node reduction, some synthesized program beats AllReduce.
        let result = small_builder().run().unwrap();
        let cross_node = result
            .placements
            .iter()
            .max_by(|a, b| a.allreduce_measured.total_cmp(&b.allreduce_measured))
            .unwrap();
        assert!(
            cross_node.programs_beating_allreduce() > 0,
            "expected a synthesized program to beat AllReduce for {}",
            cross_node.matrix
        );
        assert!(cross_node.speedup() > 1.05);
    }

    #[test]
    fn shortlist_run_measures_only_the_best_predictions() {
        let full = small_builder().run().unwrap();
        let shortlisted = small_builder().mode(RunMode::Shortlist(10)).run().unwrap();
        assert_eq!(full.total_programs(), shortlisted.total_programs());
        // Exactly `shortlist` programs carry a real measurement (measured !=
        // predicted is not guaranteed under zero noise, so count programs whose
        // measurement differs from the prediction plus those that happen to
        // coincide is fragile; instead check the chosen optimum agrees with the
        // full run within the noise envelope).
        let full_best = full.best_overall().unwrap().measured_seconds;
        let short_best = shortlisted.best_overall().unwrap().measured_seconds;
        assert!(
            (full_best - short_best).abs() / full_best < 0.2,
            "shortlist optimum {short_best} too far from full optimum {full_best}"
        );
        // Unmeasured programs report their prediction.
        let some_unmeasured = shortlisted
            .placements
            .iter()
            .flat_map(|p| &p.programs)
            .filter(|p| (p.measured_seconds - p.predicted_seconds).abs() < f64::EPSILON)
            .count();
        assert!(some_unmeasured >= shortlisted.total_programs().saturating_sub(10));
    }

    #[test]
    fn predict_only_reports_predictions_as_measurements() {
        let predicted = small_builder().mode(RunMode::PredictOnly).run().unwrap();
        assert!(predicted.total_programs() > 0);
        for pl in &predicted.placements {
            // The AllReduce baseline is still measured.
            assert!(pl.allreduce_measured > 0.0);
            for p in &pl.programs {
                assert_eq!(p.measured_seconds, p.predicted_seconds);
            }
        }
    }

    #[test]
    fn keep_top_bounds_retention_and_preserves_the_best_program() {
        let unbounded = small_builder().run().unwrap();
        let best = unbounded.best_overall().unwrap();
        for k in [1usize, 2, 5] {
            let bounded = small_builder().keep_top(k).run().unwrap();
            // Same synthesis space, strictly bounded retention.
            assert_eq!(bounded.total_programs(), unbounded.total_programs());
            assert!(bounded.total_programs_retained() < unbounded.total_programs_retained());
            assert!(bounded.total_programs_pruned() > 0);
            for pl in &bounded.placements {
                assert!(pl.programs.len() <= k);
                assert_eq!(pl.programs_retained, pl.programs.len());
                assert_eq!(pl.programs_pruned + pl.programs_retained, pl.num_programs);
                // Retained predictions are the placement's best k.
                for p in &pl.programs {
                    assert!(p.predicted_seconds.is_finite());
                }
            }
            // The overall winner survives any retention bound (with the
            // default slack) and its measurement is bit-identical.
            let bounded_best = bounded.best_overall().unwrap();
            assert_eq!(bounded_best.signature(), best.signature());
            assert_eq!(bounded_best.measured_seconds, best.measured_seconds);
        }
    }

    #[test]
    fn with_mode_matches_the_builder_mode() {
        // The two ways to select a run mode — builder `.mode(...)` and
        // `P2::new(config).with_mode(...)` — are one code path. (These pins
        // belonged to the `run_with_shortlist` shim until its removal.)
        let via_mode = small_builder().mode(RunMode::Shortlist(5)).run().unwrap();
        let via_with_mode = P2::new(small_config())
            .unwrap()
            .with_mode(RunMode::Shortlist(5))
            .run()
            .unwrap();
        assert_eq!(via_mode.placements.len(), via_with_mode.placements.len());
        for (a, b) in via_mode.placements.iter().zip(&via_with_mode.placements) {
            assert_eq!(a.matrix, b.matrix);
            for (pa, pb) in a.programs.iter().zip(&b.programs) {
                assert_eq!(pa.signature(), pb.signature());
                assert_eq!(pa.predicted_seconds, pb.predicted_seconds);
                assert_eq!(pa.measured_seconds, pb.measured_seconds);
            }
        }
    }

    #[test]
    fn zero_length_shortlist_is_rejected_consistently() {
        // Both session entry points refuse Shortlist(0) instead of silently
        // degrading to a predict-only run — callers who want that spell it
        // RunMode::PredictOnly.
        assert!(small_builder().mode(RunMode::Shortlist(0)).run().is_err());
        assert!(P2::new(small_config())
            .unwrap()
            .with_mode(RunMode::Shortlist(0))
            .run()
            .is_err());
        let old = P2::new(small_config())
            .unwrap()
            .with_mode(RunMode::PredictOnly)
            .run()
            .unwrap();
        let predict_only = small_builder().mode(RunMode::PredictOnly).run().unwrap();
        assert_eq!(old.total_programs(), predict_only.total_programs());
        for (a, b) in old.placements.iter().zip(&predict_only.placements) {
            for (pa, pb) in a.programs.iter().zip(&b.programs) {
                assert_eq!(pa.measured_seconds, pb.measured_seconds);
                assert_eq!(pa.measured_seconds, pa.predicted_seconds);
            }
        }
    }

    #[test]
    fn streaming_placements_match_the_materialized_list() {
        let session = small_builder().build().unwrap();
        let materialized = session.placements().unwrap();
        let mut streamed = Vec::new();
        let emitted = session
            .for_each_placement(&mut |m: &ParallelismMatrix| {
                streamed.push(m.clone());
                MatrixControl::Continue
            })
            .unwrap();
        assert_eq!(emitted, materialized.len());
        assert_eq!(streamed, materialized);
    }

    #[test]
    fn invalid_config_rejected_at_construction() {
        let bad = P2Config::new(presets::a100_system(2), vec![7], vec![0]);
        assert!(P2::new(bad).is_err());
    }

    #[test]
    fn tree_and_ring_runs_both_work() {
        for algo in NcclAlgo::ALL {
            let result = small_builder().algo(algo).run().unwrap();
            assert!(result.total_programs() > 0);
        }
    }

    fn assert_same_numbers(a: &ExperimentResult, b: &ExperimentResult) {
        assert_eq!(a.placements.len(), b.placements.len());
        for (pa, pb) in a.placements.iter().zip(&b.placements) {
            assert_eq!(pa.matrix, pb.matrix);
            assert_eq!(pa.allreduce_predicted, pb.allreduce_predicted);
            assert_eq!(pa.allreduce_measured, pb.allreduce_measured);
            assert_eq!(pa.programs_retained, pb.programs_retained);
            for (qa, qb) in pa.programs.iter().zip(&pb.programs) {
                assert_eq!(qa.signature(), qb.signature());
                assert_eq!(qa.predicted_seconds, qb.predicted_seconds);
                assert_eq!(qa.measured_seconds, qb.measured_seconds);
            }
        }
    }

    #[test]
    fn cost_cache_never_changes_results() {
        let cached = small_builder().cost_cache(true).run().unwrap();
        let uncached = small_builder().cost_cache(false).run().unwrap();
        assert_same_numbers(&cached, &uncached);
        // Also under bounded retention, where predictions steer pruning.
        let cached = small_builder().keep_top(3).cost_cache(true).run().unwrap();
        let uncached = small_builder().keep_top(3).cost_cache(false).run().unwrap();
        assert_same_numbers(&cached, &uncached);
    }

    #[test]
    fn table_store_warm_start_is_result_invisible() {
        let dir = std::env::temp_dir().join(format!(
            "p2-pipeline-store-test-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let plain = small_builder().run().unwrap();
        assert!(plain.table_store.is_none());
        // Cold run: nothing to load, snapshot written.
        let cold = small_builder().table_store_dir(&dir).run().unwrap();
        let cold_stats = cold.table_store.as_ref().unwrap();
        assert!(!cold_stats.loaded);
        assert!(cold_stats.saved);
        assert!(cold_stats.saved_states > 0);
        assert!(cold_stats.saved_memo_slabs > 0);
        assert_eq!(cold_stats.seeded_searches, 0);
        // Warm run: snapshot adopted, every placement's search seeded.
        let warm = small_builder().table_store_dir(&dir).run().unwrap();
        let warm_stats = warm.table_store.as_ref().unwrap();
        assert!(warm_stats.loaded);
        assert_eq!(warm_stats.table_key, cold_stats.table_key);
        assert_eq!(warm_stats.warm_states, cold_stats.saved_states);
        assert!(warm_stats.seeded_searches > 0);
        assert!(warm.placements.iter().any(|p| p.suffix_memo_preloaded > 0));
        // Warm-starting changes no result bit.
        assert_same_numbers(&plain, &cold);
        assert_same_numbers(&cold, &warm);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn explicit_alpha_beta_kind_matches_the_default_model_bit_for_bit() {
        use p2_cost::CostModelKind;
        let implicit = small_builder().run().unwrap();
        let explicit = small_builder()
            .cost_model_kind(CostModelKind::AlphaBeta)
            .run()
            .unwrap();
        assert_same_numbers(&implicit, &explicit);
    }

    #[test]
    fn every_cost_model_kind_runs_end_to_end() {
        use p2_cost::CostModelKind;
        for kind in CostModelKind::ALL {
            let result = small_builder()
                .cost_model_kind(kind)
                .mode(RunMode::Shortlist(5))
                .run()
                .unwrap();
            assert!(result.total_programs() > 0, "{kind}: no programs");
            assert!(result.best_overall().is_some(), "{kind}: no best program");
            for pl in &result.placements {
                for p in &pl.programs {
                    assert!(
                        p.predicted_seconds.is_finite() && p.predicted_seconds >= 0.0,
                        "{kind}: bad prediction {}",
                        p.predicted_seconds
                    );
                }
            }
        }
    }
}
