//! The experiment-session builder: typed construction of a [`P2`] session
//! with validation at [`P2Builder::build`].

use std::sync::Arc;

use p2_collectives::SharedTables;
use p2_cost::{CostModel, CostModelKind, NcclAlgo};
use p2_synthesis::HierarchyKind;
use p2_topology::SystemTopology;

use crate::config::P2Config;
use crate::error::P2Error;
use crate::pipeline::{RunMode, P2};
use crate::result::ExperimentResult;

/// Builds a [`P2`] experiment session field by field.
///
/// Created by [`P2::builder`]. Every setting has the paper's default (see
/// [`P2Config::new`]); only the parallelism and reduction axes must be
/// supplied. Validation happens once, at [`build`](P2Builder::build) — an
/// inconsistent combination (axes not covering the device count, zero
/// repeats, …) is reported as [`P2Error::InvalidConfig`] there, and a built
/// session is always runnable.
///
/// # Examples
///
/// ```
/// use p2_core::{RunMode, P2};
/// use p2_topology::presets;
///
/// let result = P2::builder(presets::a100_system(2))
///     .parallelism_axes([8, 4])
///     .reduction_axes([0])
///     .bytes_per_device(1.0e9)
///     .repeats(2)
///     .mode(RunMode::Shortlist(10))
///     .run()?;
/// assert!(result.best_overall().is_some());
/// # Ok::<(), p2_core::P2Error>(())
/// ```
#[derive(Debug, Clone)]
pub struct P2Builder {
    system: SystemTopology,
    parallelism_axes: Vec<usize>,
    reduction_axes: Vec<usize>,
    algo: Option<NcclAlgo>,
    bytes_per_device: Option<f64>,
    max_program_size: Option<usize>,
    hierarchy_kind: Option<HierarchyKind>,
    noise_fraction: Option<f64>,
    seed: Option<u64>,
    repeats: Option<usize>,
    threads: Option<usize>,
    keep_top: Option<usize>,
    prune_slack: Option<f64>,
    cost_model: Option<Arc<dyn CostModel>>,
    cost_model_kind: Option<CostModelKind>,
    cost_cache: Option<bool>,
    shared_intern: Option<bool>,
    parallel_build: Option<bool>,
    shared_tables: Option<Arc<SharedTables>>,
    table_store_dir: Option<std::path::PathBuf>,
    mode: RunMode,
}

impl P2Builder {
    /// Starts a builder for `system` with every setting at the paper default.
    pub(crate) fn new(system: SystemTopology) -> Self {
        P2Builder {
            system,
            parallelism_axes: Vec::new(),
            reduction_axes: Vec::new(),
            algo: None,
            bytes_per_device: None,
            max_program_size: None,
            hierarchy_kind: None,
            noise_fraction: None,
            seed: None,
            repeats: None,
            threads: None,
            keep_top: None,
            prune_slack: None,
            cost_model: None,
            cost_model_kind: None,
            cost_cache: None,
            shared_intern: None,
            parallel_build: None,
            shared_tables: None,
            table_store_dir: None,
            mode: RunMode::Measure,
        }
    }

    /// Starts a builder preloaded from an existing configuration — the
    /// migration path for code that still assembles a [`P2Config`] by hand.
    /// Every field of `config` becomes an explicit override, so
    /// `P2Builder::from_config(c).build()` validates exactly `c`.
    pub fn from_config(config: P2Config) -> Self {
        P2Builder {
            parallelism_axes: config.parallelism_axes,
            reduction_axes: config.reduction_axes,
            algo: Some(config.algo),
            bytes_per_device: Some(config.bytes_per_device),
            max_program_size: Some(config.max_program_size),
            hierarchy_kind: Some(config.hierarchy_kind),
            noise_fraction: Some(config.noise_fraction),
            seed: Some(config.seed),
            repeats: Some(config.repeats),
            threads: Some(config.threads),
            keep_top: config.keep_top,
            prune_slack: Some(config.prune_slack),
            cost_model: config.cost_model,
            cost_model_kind: None,
            cost_cache: Some(config.cost_cache),
            shared_intern: Some(config.shared_intern),
            parallel_build: Some(config.parallel_build),
            shared_tables: config.shared_tables,
            table_store_dir: config.table_store_dir,
            mode: RunMode::Measure,
            system: config.system,
        }
    }

    /// Sets the parallelism axis sizes (e.g. `[8, 4]` for data parallelism 8
    /// and 4 parameter shards). Their product must equal the system's device
    /// count; checked at [`build`](P2Builder::build).
    pub fn parallelism_axes(mut self, axes: impl IntoIterator<Item = usize>) -> Self {
        self.parallelism_axes = axes.into_iter().collect();
        self
    }

    /// Sets the axes to reduce over, as indices into the parallelism axes.
    pub fn reduction_axes(mut self, axes: impl IntoIterator<Item = usize>) -> Self {
        self.reduction_axes = axes.into_iter().collect();
        self
    }

    /// Sets the NCCL algorithm used for every collective call.
    pub fn algo(mut self, algo: NcclAlgo) -> Self {
        self.algo = Some(algo);
        self
    }

    /// Sets the per-device buffer size in bytes. Defaults to the paper's
    /// `2^29 × nodes` float32 elements, where "nodes" is the cardinality of
    /// the system's outermost hierarchy level.
    pub fn bytes_per_device(mut self, bytes: f64) -> Self {
        self.bytes_per_device = Some(bytes);
        self
    }

    /// Sets the program-size limit of the synthesis search.
    pub fn max_program_size(mut self, size: usize) -> Self {
        self.max_program_size = Some(size);
        self
    }

    /// Sets the synthesis hierarchy kind (the paper uses
    /// [`HierarchyKind::ReductionAxes`]).
    pub fn hierarchy_kind(mut self, kind: HierarchyKind) -> Self {
        self.hierarchy_kind = Some(kind);
        self
    }

    /// Sets the measurement noise fraction of the execution substrate.
    pub fn noise(mut self, noise_fraction: f64) -> Self {
        self.noise_fraction = Some(noise_fraction);
        self
    }

    /// Sets the seed of the execution substrate's noise generator.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = Some(seed);
        self
    }

    /// Sets the number of simulated runs averaged per measurement.
    pub fn repeats(mut self, repeats: usize) -> Self {
        self.repeats = Some(repeats);
        self
    }

    /// Sets the worker-thread count for the placement sweep (`0` = all cores,
    /// `1` = serial). Results are bit-identical for any value.
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads);
        self
    }

    /// Bounds the per-placement retention to the `keep_top` best programs and
    /// enables cost-bound pruning of the program stream (see
    /// [`P2Config::keep_top`]).
    pub fn keep_top(mut self, keep_top: usize) -> Self {
        self.keep_top = Some(keep_top);
        self
    }

    /// Sets the cost-bound pruning slack (see [`P2Config::prune_slack`]).
    pub fn prune_slack(mut self, prune_slack: f64) -> Self {
        self.prune_slack = Some(prune_slack);
        self
    }

    /// Substitutes the cost model predicting every synthesized program (see
    /// [`P2Config::cost_model`]). Takes precedence over
    /// [`cost_model_kind`](P2Builder::cost_model_kind).
    pub fn cost_model(mut self, model: Arc<dyn CostModel>) -> Self {
        self.cost_model = Some(model);
        self
    }

    /// Selects one of the built-in cost models by kind — the CLI-friendly
    /// form of [`cost_model`](P2Builder::cost_model). The model is built at
    /// [`build`](P2Builder::build), from the final system, algorithm and
    /// buffer size (and, for [`CostModelKind::Calibrated`], the final noise,
    /// seed and repeats).
    pub fn cost_model_kind(mut self, kind: CostModelKind) -> Self {
        self.cost_model_kind = Some(kind);
        self
    }

    /// Enables or disables the per-placement step-cost cache (see
    /// [`P2Config::cost_cache`]).
    pub fn cost_cache(mut self, cost_cache: bool) -> Self {
        self.cost_cache = Some(cost_cache);
        self
    }

    /// Enables or disables the sweep-wide shared interning tables (see
    /// [`P2Config::shared_intern`]).
    pub fn shared_intern(mut self, shared_intern: bool) -> Self {
        self.shared_intern = Some(shared_intern);
        self
    }

    /// Enables or disables the parallel level-synchronous DAG build inside
    /// each placement (see [`P2Config::parallel_build`]).
    pub fn parallel_build(mut self, parallel_build: bool) -> Self {
        self.parallel_build = Some(parallel_build);
        self
    }

    /// Supplies externally-owned interning tables, extending sharing across
    /// every session holding the same tables (see
    /// [`P2Config::shared_tables`]).
    pub fn shared_tables(mut self, tables: Arc<SharedTables>) -> Self {
        self.shared_tables = Some(tables);
        self
    }

    /// Points the session at a cross-run table-snapshot directory: the sweep
    /// warm-starts from the snapshot addressed by
    /// [`P2Config::table_key`](crate::P2Config::table_key) and writes its
    /// final tables back (see [`P2Config::table_store_dir`]).
    pub fn table_store_dir(mut self, dir: impl Into<std::path::PathBuf>) -> Self {
        self.table_store_dir = Some(dir.into());
        self
    }

    /// Sets how [`P2::run`] drives the pipeline: [`RunMode::Measure`] (the
    /// default), [`RunMode::Shortlist`] or [`RunMode::PredictOnly`].
    pub fn mode(mut self, mode: RunMode) -> Self {
        self.mode = mode;
        self
    }

    /// Validates the assembled settings and returns the session.
    ///
    /// # Errors
    ///
    /// Returns [`P2Error::InvalidConfig`] describing the first inconsistency
    /// (missing axes, axis product not matching the device count,
    /// non-positive sizes, a zero-length shortlist, …).
    pub fn build(self) -> Result<P2, P2Error> {
        if let RunMode::Shortlist(0) = self.mode {
            return Err(P2Error::InvalidConfig {
                reason: "shortlist length must be positive (use RunMode::PredictOnly to \
                         measure nothing)"
                    .into(),
            });
        }
        let mut config = P2Config::new(self.system, self.parallelism_axes, self.reduction_axes);
        if let Some(algo) = self.algo {
            config.algo = algo;
        }
        if let Some(bytes) = self.bytes_per_device {
            config.bytes_per_device = bytes;
        }
        if let Some(size) = self.max_program_size {
            config.max_program_size = size;
        }
        if let Some(kind) = self.hierarchy_kind {
            config.hierarchy_kind = kind;
        }
        if let Some(noise) = self.noise_fraction {
            config.noise_fraction = noise;
        }
        if let Some(seed) = self.seed {
            config.seed = seed;
        }
        if let Some(repeats) = self.repeats {
            config.repeats = repeats;
        }
        if let Some(threads) = self.threads {
            config.threads = threads;
        }
        if self.keep_top.is_some() {
            config.keep_top = self.keep_top;
        }
        if let Some(slack) = self.prune_slack {
            config.prune_slack = slack;
        }
        if let Some(cache) = self.cost_cache {
            config.cost_cache = cache;
        }
        if let Some(shared) = self.shared_intern {
            config.shared_intern = shared;
        }
        if let Some(parallel) = self.parallel_build {
            config.parallel_build = parallel;
        }
        if let Some(tables) = self.shared_tables {
            config.shared_tables = Some(tables);
        }
        if let Some(dir) = self.table_store_dir {
            config.table_store_dir = Some(dir);
        }
        if let Some(model) = self.cost_model {
            config.cost_model = Some(model);
        } else if let Some(kind) = self.cost_model_kind {
            let model = config.make_cost_model(kind)?;
            config.cost_model = Some(model);
        }
        Ok(P2::new(config)?.with_mode(self.mode))
    }

    /// Builds the session and runs it in the configured mode —
    /// `builder.run()` is shorthand for `builder.build()?.run()`.
    ///
    /// # Errors
    ///
    /// Returns validation errors from [`build`](P2Builder::build) and
    /// pipeline errors from [`P2::run`].
    pub fn run(self) -> Result<ExperimentResult, P2Error> {
        self.build()?.run()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use p2_topology::presets;

    #[test]
    fn builder_defaults_match_config_defaults() {
        let built = P2::builder(presets::a100_system(4))
            .parallelism_axes([64])
            .reduction_axes([0])
            .build()
            .unwrap();
        let config = P2Config::new(presets::a100_system(4), vec![64], vec![0]);
        let b = built.config();
        assert_eq!(b.algo, config.algo);
        assert_eq!(b.bytes_per_device, config.bytes_per_device);
        assert_eq!(b.max_program_size, config.max_program_size);
        assert_eq!(b.hierarchy_kind, config.hierarchy_kind);
        assert_eq!(b.noise_fraction, config.noise_fraction);
        assert_eq!(b.seed, config.seed);
        assert_eq!(b.repeats, config.repeats);
        assert_eq!(b.threads, config.threads);
        assert_eq!(b.keep_top, config.keep_top);
        assert_eq!(b.prune_slack, config.prune_slack);
        assert_eq!(b.shared_intern, config.shared_intern);
        assert!(b.shared_intern, "sweep-wide interning defaults on");
        assert_eq!(b.parallel_build, config.parallel_build);
        assert!(b.parallel_build, "parallel DAG build defaults on");
        assert_eq!(built.mode(), RunMode::Measure);
    }

    #[test]
    fn builder_overrides_are_applied() {
        let session = P2::builder(presets::a100_system(2))
            .parallelism_axes([8, 4])
            .reduction_axes([0])
            .algo(NcclAlgo::Tree)
            .bytes_per_device(1.0e8)
            .max_program_size(4)
            .hierarchy_kind(HierarchyKind::System)
            .noise(0.01)
            .seed(42)
            .repeats(7)
            .threads(2)
            .keep_top(3)
            .prune_slack(1.5)
            .shared_intern(false)
            .mode(RunMode::Shortlist(5))
            .build()
            .unwrap();
        let c = session.config();
        assert!(!c.shared_intern);
        assert_eq!(c.algo, NcclAlgo::Tree);
        assert_eq!(c.bytes_per_device, 1.0e8);
        assert_eq!(c.max_program_size, 4);
        assert_eq!(c.hierarchy_kind, HierarchyKind::System);
        assert_eq!(c.noise_fraction, 0.01);
        assert_eq!(c.seed, 42);
        assert_eq!(c.repeats, 7);
        assert_eq!(c.threads, 2);
        assert_eq!(c.keep_top, Some(3));
        assert_eq!(c.prune_slack, 1.5);
        assert_eq!(session.mode(), RunMode::Shortlist(5));
    }

    #[test]
    fn from_config_round_trips_every_field() {
        let config = P2Config::new(presets::v100_system(2), vec![4, 4], vec![1])
            .with_algo(NcclAlgo::Tree)
            .with_bytes_per_device(2.0e8)
            .with_max_program_size(4)
            .with_hierarchy_kind(HierarchyKind::RowMajor)
            .with_noise(0.07)
            .with_seed(99)
            .with_repeats(4)
            .with_threads(3)
            .with_keep_top(6)
            .with_prune_slack(0.25)
            .with_shared_intern(false)
            .with_parallel_build(false);
        let rebuilt = P2Builder::from_config(config.clone()).build().unwrap();
        let r = rebuilt.config();
        assert_eq!(r.system.name(), config.system.name());
        assert_eq!(r.parallelism_axes, config.parallelism_axes);
        assert_eq!(r.reduction_axes, config.reduction_axes);
        assert_eq!(r.algo, config.algo);
        assert_eq!(r.bytes_per_device, config.bytes_per_device);
        assert_eq!(r.max_program_size, config.max_program_size);
        assert_eq!(r.hierarchy_kind, config.hierarchy_kind);
        assert_eq!(r.noise_fraction, config.noise_fraction);
        assert_eq!(r.seed, config.seed);
        assert_eq!(r.repeats, config.repeats);
        assert_eq!(r.threads, config.threads);
        assert_eq!(r.keep_top, config.keep_top);
        assert_eq!(r.prune_slack, config.prune_slack);
        assert_eq!(r.shared_intern, config.shared_intern);
        assert_eq!(r.parallel_build, config.parallel_build);
        assert!(!r.parallel_build, "override must survive the round-trip");
        assert_eq!(rebuilt.mode(), RunMode::Measure);
    }

    #[test]
    fn cost_model_selection_is_resolved_at_build() {
        let session = P2::builder(presets::a100_system(2))
            .parallelism_axes([8, 4])
            .reduction_axes([0])
            .bytes_per_device(1.0e8)
            .cost_model_kind(CostModelKind::LogGp)
            .cost_cache(false)
            .build()
            .unwrap();
        let c = session.config();
        assert_eq!(c.cost_model.as_ref().unwrap().name(), "loggp");
        assert!(!c.cost_cache);
        // An explicit model instance wins over a kind.
        let config = P2Config::new(presets::a100_system(2), vec![32], vec![0]);
        let explicit = config.make_cost_model(CostModelKind::AlphaBeta).unwrap();
        let session = P2::builder(presets::a100_system(2))
            .parallelism_axes([32])
            .reduction_axes([0])
            .cost_model(Arc::clone(&explicit))
            .cost_model_kind(CostModelKind::LogGp)
            .build()
            .unwrap();
        assert_eq!(
            session.config().cost_model.as_ref().unwrap().name(),
            "alpha-beta"
        );
    }

    #[test]
    fn build_validates() {
        // Missing axes.
        assert!(P2::builder(presets::a100_system(2)).build().is_err());
        // Axis product not covering the device count.
        assert!(P2::builder(presets::a100_system(2))
            .parallelism_axes([7])
            .reduction_axes([0])
            .build()
            .is_err());
        // Zero-length shortlist.
        assert!(P2::builder(presets::a100_system(2))
            .parallelism_axes([32])
            .reduction_axes([0])
            .mode(RunMode::Shortlist(0))
            .build()
            .is_err());
        // Invalid overrides are caught by the same validation.
        assert!(P2::builder(presets::a100_system(2))
            .parallelism_axes([32])
            .reduction_axes([0])
            .repeats(0)
            .build()
            .is_err());
    }
}
