//! Canonical serialized form of a P² experiment — the hashing substrate of
//! the plan service's content addresses.
//!
//! [`canonical_system`] and [`P2Config::canonical_form`] render everything
//! that can change *results* into one stable, line-oriented string;
//! `p2_service` digests that string into a plan fingerprint. Two requests
//! with equal canonical forms are guaranteed (by the workspace's determinism
//! pins) to produce bit-identical plans, so a cache keyed on the digest can
//! serve either from the other's result.
//!
//! What is **included**: the system's level arities and per-level link
//! bandwidth/latency (as exact `f64` bit patterns), the parallelism and
//! reduction axes, the NCCL algorithm, buffer size, program-size limit,
//! synthesis hierarchy kind, noise fraction, seed, repeats, retention
//! (`keep_top`/`prune_slack`), and the cost model's identity (its
//! [`name()`](p2_cost::CostModel::name), or `default` for the implicit α–β
//! model). [`canonical_session`] appends the [`RunMode`].
//!
//! What is deliberately **excluded** — the representation-insensitivity half
//! of the contract:
//!
//! * **Names.** System, level and interconnect names are labels; two
//!   topologies that differ only in naming plan identically.
//! * **`threads`** — results are bit-identical for any worker count (pinned
//!   in `tests/determinism.rs`).
//! * **`cost_cache`** — the step-cost cache keys on the exact step, so it
//!   removes recomputation without changing predictions.
//! * **`shared_intern` / `shared_tables`** — table sharing is
//!   result-invisible by the PR 6/7 determinism pins.
//!
//! Axis *order* is *not* normalized away: `parallelism_axes = [8, 4]` and
//! `[4, 8]` are different experiments, and `reduction_axes` order feeds the
//! synthesis hierarchy's per-level axis factors in sequence, so `[0, 1]` and
//! `[1, 0]` may synthesize different programs. Order-insensitivity here
//! means *construction* order (builder-call order, constructor choice), not
//! semantic field order.
//!
//! Floats are rendered as `0x`-prefixed IEEE-754 bit patterns: the digest
//! must distinguish every value the pipeline can distinguish (including
//! `-0.0` vs `0.0`) and must not depend on decimal formatting.

use std::fmt::Write as _;

use p2_cost::NcclAlgo;
use p2_synthesis::HierarchyKind;
use p2_topology::SystemTopology;

use crate::config::P2Config;
use crate::pipeline::RunMode;

/// Version tag leading every canonical form. Bump it whenever the rendering
/// below changes in any way — the tag flows into the fingerprint, so a bump
/// cleanly invalidates every previously persisted content address instead of
/// colliding with it.
pub const CANONICAL_VERSION: &str = "p2-canonical-v1";

/// Version tag leading every canonical *tables* form (and stored inside
/// every table-store snapshot). Bump it whenever
/// [`canonical_tables_form`] changes, whenever the snapshot JSON layout
/// changes, or whenever anything the persisted tables encode changes
/// meaning (the `Collective` tag order in apply keys, the `State` word
/// layout, the memo-key format) — a bump re-addresses every snapshot, so
/// stale tables are simply never loaded instead of being misread.
pub const CANONICAL_TABLES_VERSION: &str = "p2-tables-v1";

fn push_f64(out: &mut String, key: &str, value: f64) {
    let _ = writeln!(out, "{key}=0x{:016x}", value.to_bits());
}

fn push_list(out: &mut String, key: &str, values: &[usize]) {
    let _ = write!(out, "{key}=");
    for (i, v) in values.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{v}");
    }
    out.push('\n');
}

/// Renders the result-relevant content of a system: depth, then one line per
/// level (outermost first) with the level's arity and its uplink's bandwidth
/// and latency bit patterns. Names are omitted — see the module docs.
pub fn canonical_system(system: &SystemTopology) -> String {
    let mut out = String::new();
    let levels = system.hierarchy().levels();
    let _ = writeln!(out, "system.depth={}", levels.len());
    for (index, level) in levels.iter().enumerate() {
        let link = system.link(index);
        let _ = writeln!(
            out,
            "system.level={index},arity:{},bw:0x{:016x},lat:0x{:016x}",
            level.arity(),
            link.bandwidth().to_bits(),
            link.latency().to_bits(),
        );
    }
    out
}

fn algo_token(algo: NcclAlgo) -> &'static str {
    match algo {
        NcclAlgo::Ring => "ring",
        NcclAlgo::Tree => "tree",
    }
}

fn hierarchy_token(kind: HierarchyKind) -> &'static str {
    match kind {
        HierarchyKind::System => "system",
        HierarchyKind::ColumnMajor => "column-major",
        HierarchyKind::RowMajor => "row-major",
        HierarchyKind::ReductionAxes => "reduction-axes",
    }
}

/// Renders the *tables*-relevant subset of an experiment: everything the
/// persisted search tables (interned device states, collective apply cache,
/// suffix memos) are a function of, and nothing more. Compared to
/// [`P2Config::canonical_form`] this drops link bandwidth/latency, buffer
/// size, noise, seed, repeats, retention, the cost model, the parallelism
/// axes and the run mode — none of them reach the tables — so one snapshot
/// warms every plan fingerprint that shares a machine shape, algorithm,
/// hierarchy kind and program-size limit.
pub fn canonical_tables_form(
    system: &SystemTopology,
    algo: NcclAlgo,
    hierarchy_kind: HierarchyKind,
    max_program_size: usize,
) -> String {
    let mut out = String::with_capacity(128);
    out.push_str(CANONICAL_TABLES_VERSION);
    out.push('\n');
    let levels = system.hierarchy().levels();
    let _ = writeln!(out, "system.depth={}", levels.len());
    for (index, level) in levels.iter().enumerate() {
        let _ = writeln!(out, "system.level={index},arity:{}", level.arity());
    }
    let _ = writeln!(out, "algo={}", algo_token(algo));
    let _ = writeln!(out, "hierarchy={}", hierarchy_token(hierarchy_kind));
    let _ = writeln!(out, "max_program_size={max_program_size}");
    out
}

/// Renders a [`RunMode`] as its canonical token.
pub fn canonical_mode(mode: RunMode) -> String {
    match mode {
        RunMode::Measure => "measure".to_string(),
        RunMode::Shortlist(n) => format!("shortlist:{n}"),
        RunMode::PredictOnly => "predict-only".to_string(),
    }
}

impl P2Config {
    /// The canonical serialized form of this configuration — see the module
    /// docs for the inclusion/exclusion contract. Equal canonical forms ⇒
    /// bit-identical results; hash this (e.g. with
    /// `p2_hash::stable_digest128`) to content-address an experiment.
    ///
    /// A custom [`cost_model`](P2Config::cost_model) contributes only its
    /// [`name()`](p2_cost::CostModel::name); models whose behavior is not
    /// determined by (name, configuration) must encode their extra identity
    /// in the name to be safely cacheable.
    pub fn canonical_form(&self) -> String {
        let mut out = String::with_capacity(256);
        out.push_str(CANONICAL_VERSION);
        out.push('\n');
        out.push_str(&canonical_system(&self.system));
        push_list(&mut out, "axes", &self.parallelism_axes);
        push_list(&mut out, "reduce", &self.reduction_axes);
        let _ = writeln!(out, "algo={}", algo_token(self.algo));
        push_f64(&mut out, "bytes", self.bytes_per_device);
        let _ = writeln!(out, "max_program_size={}", self.max_program_size);
        let _ = writeln!(out, "hierarchy={}", hierarchy_token(self.hierarchy_kind));
        push_f64(&mut out, "noise", self.noise_fraction);
        let _ = writeln!(out, "seed=0x{:016x}", self.seed);
        let _ = writeln!(out, "repeats={}", self.repeats);
        match self.keep_top {
            None => out.push_str("keep_top=all\n"),
            Some(k) => {
                let _ = writeln!(out, "keep_top={k}");
            }
        }
        push_f64(&mut out, "prune_slack", self.prune_slack);
        match &self.cost_model {
            None => out.push_str("cost_model=default\n"),
            Some(model) => {
                let _ = writeln!(out, "cost_model={}", model.name());
            }
        }
        out
    }

    /// The tables-subset canonical form of this configuration — see
    /// [`canonical_tables_form`].
    pub fn canonical_tables_form(&self) -> String {
        canonical_tables_form(
            &self.system,
            self.algo,
            self.hierarchy_kind,
            self.max_program_size,
        )
    }

    /// The content address of this configuration's search-table snapshot:
    /// `stable_digest128` over [`P2Config::canonical_tables_form`]. Coarser
    /// than the plan fingerprint by design — many distinct plan fingerprints
    /// (different buffer sizes, noise, cost models, modes, axes) map to one
    /// table key and warm-start from the same snapshot.
    pub fn table_key(&self) -> p2_hash::Fingerprint {
        p2_hash::Fingerprint::of_bytes(self.canonical_tables_form().as_bytes())
    }
}

/// [`P2Config::canonical_form`] plus the session's [`RunMode`] — the string a
/// plan-request fingerprint digests.
pub fn canonical_session(config: &P2Config, mode: RunMode) -> String {
    let mut out = config.canonical_form();
    let _ = writeln!(out, "mode={}", canonical_mode(mode));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use p2_cost::CostModelKind;
    use p2_topology::presets;

    fn base_config() -> P2Config {
        P2Config::new(presets::a100_system(2), vec![8, 4], vec![0])
    }

    #[test]
    fn result_invisible_knobs_do_not_change_the_form() {
        let reference = base_config().canonical_form();
        let mut threads = base_config();
        threads.threads = 7;
        let mut cache = base_config();
        cache.cost_cache = false;
        let mut intern = base_config();
        intern.shared_intern = false;
        for variant in [threads, cache, intern] {
            assert_eq!(variant.canonical_form(), reference);
        }
    }

    #[test]
    fn renaming_the_system_does_not_change_the_form() {
        let renamed = SystemTopology::with_name(
            "totally-different-label",
            presets::a100_system(2).hierarchy().clone(),
            presets::a100_system(2).links().to_vec(),
        )
        .expect("valid system");
        let config = P2Config::new(renamed, vec![8, 4], vec![0]);
        assert_eq!(config.canonical_form(), base_config().canonical_form());
    }

    #[test]
    fn every_result_relevant_knob_changes_the_form() {
        let reference = base_config().canonical_form();
        let variants: Vec<P2Config> = vec![
            P2Config::new(presets::a100_system(4), vec![16, 2], vec![0]),
            P2Config::new(presets::v100_system(2), vec![8, 4], vec![0]),
            P2Config::new(presets::a100_system(2), vec![4, 8], vec![0]),
            P2Config::new(presets::a100_system(2), vec![8, 4], vec![1]),
            {
                let mut c = base_config();
                c.algo = NcclAlgo::Tree;
                c
            },
            {
                let mut c = base_config();
                c.bytes_per_device = 1.0e9;
                c
            },
            {
                let mut c = base_config();
                c.max_program_size = 6;
                c
            },
            {
                let mut c = base_config();
                c.hierarchy_kind = HierarchyKind::System;
                c
            },
            {
                let mut c = base_config();
                c.noise_fraction = 0.0;
                c
            },
            {
                let mut c = base_config();
                c.seed = 1;
                c
            },
            {
                let mut c = base_config();
                c.repeats = 2;
                c
            },
            {
                let mut c = base_config();
                c.keep_top = Some(8);
                c
            },
            {
                let mut c = base_config();
                c.prune_slack = 0.25;
                c
            },
            {
                let mut c = base_config();
                c.cost_model = Some(c.make_cost_model(CostModelKind::LogGp).expect("model"));
                c
            },
        ];
        for (index, variant) in variants.iter().enumerate() {
            assert_ne!(
                variant.canonical_form(),
                reference,
                "variant {index} should differ from the reference form"
            );
        }
        // And all variants differ pairwise from each other.
        for i in 0..variants.len() {
            for j in i + 1..variants.len() {
                assert_ne!(
                    variants[i].canonical_form(),
                    variants[j].canonical_form(),
                    "variants {i} and {j} should differ"
                );
            }
        }
    }

    #[test]
    fn table_key_ignores_cost_only_knobs() {
        let reference = base_config().table_key();
        // Everything the tables never see: bytes, noise, seed, repeats,
        // retention, cost model, cost/intern toggles, the parallelism and
        // reduction axes, even the link speeds.
        let mut variants: Vec<P2Config> = vec![
            P2Config::new(presets::a100_system(2), vec![4, 8], vec![1]),
            {
                let mut c = base_config();
                c.bytes_per_device = 1.0e9;
                c
            },
            {
                let mut c = base_config();
                c.noise_fraction = 0.0;
                c.seed = 1;
                c.repeats = 2;
                c
            },
            {
                let mut c = base_config();
                c.keep_top = Some(4);
                c.prune_slack = 0.1;
                c
            },
            {
                let mut c = base_config();
                c.cost_model = Some(c.make_cost_model(CostModelKind::LogGp).expect("model"));
                c.cost_cache = false;
                c.shared_intern = false;
                c
            },
        ];
        // A system with the same level arities but different link speeds.
        let base_system = presets::a100_system(2);
        let slow_links: Vec<_> = base_system
            .links()
            .iter()
            .map(|l| {
                p2_topology::Interconnect::new(l.name(), l.bandwidth() / 2.0, l.latency() * 3.0)
                    .unwrap()
            })
            .collect();
        let slow =
            SystemTopology::with_name("slow-links", base_system.hierarchy().clone(), slow_links)
                .expect("valid system");
        variants.push(P2Config::new(slow, vec![8, 4], vec![0]));
        for (index, variant) in variants.iter().enumerate() {
            assert_eq!(
                variant.table_key(),
                reference,
                "cost-only variant {index} should share the table key"
            );
        }
    }

    #[test]
    fn table_key_tracks_every_tables_relevant_knob() {
        let reference = base_config().table_key();
        let variants: Vec<P2Config> = vec![
            // Different arities (4 nodes instead of 2).
            P2Config::new(presets::a100_system(4), vec![16, 4], vec![0]),
            {
                let mut c = base_config();
                c.algo = NcclAlgo::Tree;
                c
            },
            {
                let mut c = base_config();
                c.hierarchy_kind = HierarchyKind::System;
                c
            },
            {
                let mut c = base_config();
                c.max_program_size = 6;
                c
            },
        ];
        for (index, variant) in variants.iter().enumerate() {
            assert_ne!(
                variant.table_key(),
                reference,
                "tables-relevant variant {index} should change the table key"
            );
        }
        assert!(base_config()
            .canonical_tables_form()
            .starts_with(CANONICAL_TABLES_VERSION));
    }

    #[test]
    fn mode_tokens_are_distinct() {
        let config = base_config();
        let measure = canonical_session(&config, RunMode::Measure);
        let short = canonical_session(&config, RunMode::Shortlist(10));
        let short5 = canonical_session(&config, RunMode::Shortlist(5));
        let predict = canonical_session(&config, RunMode::PredictOnly);
        assert_ne!(measure, short);
        assert_ne!(short, short5);
        assert_ne!(measure, predict);
        assert!(measure.starts_with(CANONICAL_VERSION));
    }
}
