//! End-to-end pipeline and public facade for the P² reproduction.
//!
//! [`P2`] ties the substrates together: it enumerates parallelism placements
//! ([`p2_placement`]), synthesizes reduction programs for each placement
//! ([`p2_synthesis`]), predicts their cost with the analytic simulator
//! ([`p2_cost`]) and "measures" them on the execution substrate
//! ([`p2_exec`]), returning an [`ExperimentResult`] with everything the
//! paper's tables and figures are derived from.
//!
//! # Example
//!
//! ```
//! use p2_core::{P2, P2Config};
//! use p2_cost::NcclAlgo;
//! use p2_topology::presets;
//!
//! let config = P2Config::new(presets::a100_system(2), vec![8, 4], vec![0])
//!     .with_algo(NcclAlgo::Ring)
//!     .with_bytes_per_device(1.0e9);
//! let result = P2::new(config).unwrap().run().unwrap();
//! // Every placement has an AllReduce baseline and at least one synthesized program.
//! assert!(!result.placements.is_empty());
//! let best = result.best_overall().unwrap();
//! assert!(best.measured_seconds > 0.0);
//! ```

#![deny(missing_docs)]

mod accuracy;
mod config;
mod error;
mod pipeline;
mod result;

pub use accuracy::{top_k_accuracy, TopKReport};
pub use config::P2Config;
pub use error::P2Error;
pub use pipeline::P2;
pub use result::{ExperimentResult, PlacementEvaluation, ProgramEvaluation};
