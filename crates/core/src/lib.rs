//! End-to-end pipeline and public facade for the P² reproduction.
//!
//! [`P2`] ties the substrates together: it enumerates parallelism placements
//! ([`p2_placement`]), synthesizes reduction programs for each placement
//! ([`p2_synthesis`]), predicts their cost with the analytic simulator
//! ([`p2_cost`]) and "measures" them on the execution substrate
//! ([`p2_exec`]), returning an [`ExperimentResult`] with everything the
//! paper's tables and figures are derived from.
//!
//! # Example
//!
//! Experiments are assembled with [`P2::builder`]: axes and overrides are set
//! field by field, validation happens once at `build()`, and the session's
//! [`RunMode`] decides what gets measured.
//!
//! ```
//! use p2_core::{RunMode, P2};
//! use p2_cost::NcclAlgo;
//! use p2_topology::presets;
//!
//! let result = P2::builder(presets::a100_system(2))
//!     .parallelism_axes([8, 4])
//!     .reduction_axes([0])
//!     .algo(NcclAlgo::Ring)
//!     .bytes_per_device(1.0e9)
//!     .build()
//!     .unwrap()
//!     .run()
//!     .unwrap();
//! // Every placement has an AllReduce baseline and at least one synthesized program.
//! assert!(!result.placements.is_empty());
//! let best = result.best_overall().unwrap();
//! assert!(best.measured_seconds > 0.0);
//! ```

#![deny(missing_docs)]

mod accuracy;
mod batch;
mod builder;
pub mod canonical;
mod config;
mod error;
mod observer;
mod pipeline;
mod result;
mod table_store;

pub use accuracy::{top_k_accuracy, TopKReport};
pub use batch::{run_batch, BatchOptions, BatchOutcome};
pub use builder::P2Builder;
pub use canonical::{
    canonical_mode, canonical_session, canonical_system, canonical_tables_form,
    CANONICAL_TABLES_VERSION, CANONICAL_VERSION,
};
pub use config::P2Config;
pub use error::P2Error;
pub use observer::{
    ProgressObserver, RunObserver, SharedBoundObserver, SharedBoundTree, SlotBoundObserver,
    TwoPassSharedBound,
};
pub use pipeline::{PendingSweep, RunMode, P2};
pub use result::{ExperimentResult, PlacementEvaluation, ProgramEvaluation};
pub use table_store::{TableSnapshot, TableStore, TableStoreStats};
