use std::fmt;

use p2_cost::CostError;
use p2_exec::ExecError;
use p2_placement::PlacementError;
use p2_synthesis::SynthesisError;
use p2_topology::TopologyError;

/// Errors produced by the end-to-end P² pipeline.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum P2Error {
    /// The configuration was inconsistent (e.g. zero axes, bad byte count).
    InvalidConfig {
        /// Human-readable description of the problem.
        reason: String,
    },
    /// An underlying topology error.
    Topology(TopologyError),
    /// An underlying placement error.
    Placement(PlacementError),
    /// An underlying synthesis error.
    Synthesis(SynthesisError),
    /// An underlying cost-model error.
    Cost(CostError),
    /// An underlying execution-simulator error.
    Exec(ExecError),
}

impl fmt::Display for P2Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            P2Error::InvalidConfig { reason } => write!(f, "invalid configuration: {reason}"),
            P2Error::Topology(e) => write!(f, "topology error: {e}"),
            P2Error::Placement(e) => write!(f, "placement error: {e}"),
            P2Error::Synthesis(e) => write!(f, "synthesis error: {e}"),
            P2Error::Cost(e) => write!(f, "cost model error: {e}"),
            P2Error::Exec(e) => write!(f, "execution simulator error: {e}"),
        }
    }
}

impl std::error::Error for P2Error {}

impl From<TopologyError> for P2Error {
    fn from(e: TopologyError) -> Self {
        P2Error::Topology(e)
    }
}

impl From<PlacementError> for P2Error {
    fn from(e: PlacementError) -> Self {
        P2Error::Placement(e)
    }
}

impl From<SynthesisError> for P2Error {
    fn from(e: SynthesisError) -> Self {
        P2Error::Synthesis(e)
    }
}

impl From<CostError> for P2Error {
    fn from(e: CostError) -> Self {
        P2Error::Cost(e)
    }
}

impl From<ExecError> for P2Error {
    fn from(e: ExecError) -> Self {
        P2Error::Exec(e)
    }
}
