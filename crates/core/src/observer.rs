//! Run observers: streaming visibility into the placement × synthesis sweep,
//! plus the bundled [`SharedBoundObserver`] implementing deterministic
//! cross-placement pruning as a two-pass run.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use p2_placement::ParallelismMatrix;
use p2_synthesis::Program;

use crate::error::P2Error;
use crate::pipeline::{RunMode, P2};
use crate::result::{ExperimentResult, PlacementEvaluation};

/// Observes the progress of one experiment run ([`P2::run_observed`]).
///
/// Every method has a no-op default, so implementations override only what
/// they need. The sweep fans placements out across worker threads, so the
/// observer is shared (`&self`, `Sync` supertrait) and events from *different*
/// placements interleave nondeterministically; events *within* one placement
/// are strictly ordered and deterministic:
/// [`on_placement_start`](RunObserver::on_placement_start), then
/// [`on_program_retained`](RunObserver::on_program_retained) in program-stream
/// order, then [`on_placement_done`](RunObserver::on_placement_done). The
/// `index` passed to each hook is the placement's position in enumeration
/// order — the same index its [`PlacementEvaluation`] ends up at in
/// [`ExperimentResult::placements`].
pub trait RunObserver: Sync {
    /// Called once per placement, before its synthesis stream starts.
    ///
    /// Returning `Some(bound)` seeds the placement's predicted-time pruning
    /// bound with `bound` (in seconds, predicted domain): candidates whose
    /// accumulated predicted prefix exceeds
    /// `min(bound, allreduce_predicted) × (1 + prune_slack)` are dropped
    /// before they are fully costed or measured. Returning a bound activates
    /// prefix pruning even when `keep_top` is unset; returning `None` (the
    /// default) leaves the run's pruning behaviour untouched.
    fn on_placement_start(&self, index: usize, matrix: &ParallelismMatrix) -> Option<f64> {
        let _ = (index, matrix);
        None
    }

    /// Called for each program entering the placement's retention set, in
    /// stream order. Under bounded retention (`keep_top`) a retained program
    /// may later be displaced by a better one; displaced programs do not
    /// produce another event. In predict-only and shortlist sweeps
    /// `measured_seconds` equals `predicted_seconds`.
    fn on_program_retained(
        &self,
        index: usize,
        program: &Program,
        predicted_seconds: f64,
        measured_seconds: f64,
    ) {
        let _ = (index, program, predicted_seconds, measured_seconds);
    }

    /// Called once per placement, after its evaluation is complete (programs
    /// sorted, counters final).
    fn on_placement_done(&self, index: usize, evaluation: &PlacementEvaluation) {
        let _ = (index, evaluation);
    }
}

/// The no-op observer: every hook keeps its default.
impl RunObserver for () {}

/// Cross-placement pruning as a deterministic two-pass run (the ROADMAP's
/// "shared bound" item).
///
/// The per-placement pruning bound of the streaming engine is deliberately
/// local so results stay bit-identical across worker-thread counts — but that
/// locality means a cheap placement can never prune an expensive one. This
/// observer restores cross-placement pruning without giving up determinism by
/// splitting the run in two:
///
/// 1. **Seeding pass** ([`RunMode::PredictOnly`]): every placement is swept
///    with the analytic cost model only; the observer records the global
///    minimum predicted time across all placements. A minimum is
///    order-independent, so the recorded bound is identical for any thread
///    count or interleaving.
/// 2. **Pruned pass** (the session's own mode): the frozen global bound seeds
///    every placement's pruning bound via
///    [`RunObserver::on_placement_start`], so placements whose programs all
///    predict worse than `global_best × (1 + prune_slack)` retain little or
///    nothing — cheap placements prune expensive ones.
///
/// Both passes are deterministic, so the overall result is too
/// (`tests/observer.rs` pins this).
///
/// # Examples
///
/// ```
/// use p2_core::{RunMode, SharedBoundObserver, P2};
/// use p2_topology::presets;
///
/// let session = P2::builder(presets::a100_system(2))
///     .parallelism_axes([8, 4])
///     .reduction_axes([0])
///     .bytes_per_device(1.0e9)
///     .repeats(2)
///     .build()?;
/// let mut observer = SharedBoundObserver::new();
/// let pruned = observer.run(&session)?;
/// let exhaustive = session.run()?;
/// assert!(pruned.total_programs_retained() <= exhaustive.total_programs_retained());
/// # Ok::<(), p2_core::P2Error>(())
/// ```
#[derive(Debug)]
pub struct SharedBoundObserver {
    /// `true` while the predict-only pass is recording the bound.
    seeding: AtomicBool,
    /// Bit pattern of the global minimum predicted time. Predicted times are
    /// positive finite floats, whose IEEE-754 bit patterns order exactly like
    /// the values — `fetch_min` on the bits is `min` on the seconds.
    bound_bits: AtomicU64,
}

impl Default for SharedBoundObserver {
    fn default() -> Self {
        Self::new()
    }
}

impl SharedBoundObserver {
    /// Creates an observer with no recorded bound, ready for a seeding pass.
    pub fn new() -> Self {
        SharedBoundObserver {
            seeding: AtomicBool::new(true),
            bound_bits: AtomicU64::new(f64::INFINITY.to_bits()),
        }
    }

    /// The global best predicted time recorded so far, if any.
    pub fn bound(&self) -> Option<f64> {
        let bound = f64::from_bits(self.bound_bits.load(Ordering::SeqCst));
        bound.is_finite().then_some(bound)
    }

    /// Runs the two passes on `session`: a [`RunMode::PredictOnly`] pass that
    /// seeds the global bound, then the session's own mode pruned against it.
    /// Returns the pruned pass's result.
    ///
    /// Takes `&mut self` so one observer cannot drive two overlapping runs —
    /// the seeding/bound state is per-run, and interleaving two runs would
    /// hand a partially-collected bound to the other's sweep.
    ///
    /// # Errors
    ///
    /// Propagates errors from either pass.
    pub fn run(&mut self, session: &P2) -> Result<ExperimentResult, P2Error> {
        self.seeding.store(true, Ordering::SeqCst);
        self.bound_bits
            .store(f64::INFINITY.to_bits(), Ordering::SeqCst);
        session
            .clone()
            .with_mode(RunMode::PredictOnly)
            .run_observed(self)?;
        self.seeding.store(false, Ordering::SeqCst);
        session.run_observed(self)
    }
}

impl RunObserver for SharedBoundObserver {
    fn on_placement_start(&self, _index: usize, _matrix: &ParallelismMatrix) -> Option<f64> {
        if self.seeding.load(Ordering::SeqCst) {
            // The bound is still being collected; handing out a partial bound
            // here would make pruning depend on sweep interleaving.
            None
        } else {
            self.bound()
        }
    }

    fn on_placement_done(&self, _index: usize, evaluation: &PlacementEvaluation) {
        if !self.seeding.load(Ordering::SeqCst) {
            return;
        }
        let mut best = evaluation.allreduce_predicted;
        for program in &evaluation.programs {
            best = best.min(program.predicted_seconds);
        }
        if best.is_finite() && best > 0.0 {
            self.bound_bits.fetch_min(best.to_bits(), Ordering::SeqCst);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bound_is_none_until_seeded() {
        let observer = SharedBoundObserver::new();
        assert_eq!(observer.bound(), None);
        let eval_bound = observer.on_placement_start(
            0,
            &ParallelismMatrix::new(vec![vec![2, 2]], vec![2, 2], vec![4]).unwrap(),
        );
        assert_eq!(eval_bound, None);
    }

    #[test]
    fn positive_float_bits_order_like_the_floats() {
        // The invariant `fetch_min` relies on.
        for (a, b) in [(0.1f64, 0.2), (1.0, 1.0 + f64::EPSILON), (1e-300, 1e300)] {
            assert_eq!(a < b, a.to_bits() < b.to_bits());
        }
    }
}
