//! Run observers: streaming visibility into the placement × synthesis sweep,
//! the [`SharedBoundTree`] dyadic reduction tree behind deterministic
//! cross-placement (and, via [`SlotBoundObserver`], cross-spec) pruning, the
//! single-pass [`SharedBoundObserver`], the reference [`TwoPassSharedBound`],
//! and the [`ProgressObserver`] progress/ETA reporter.

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

use p2_placement::ParallelismMatrix;
use p2_synthesis::Program;

use crate::error::P2Error;
use crate::pipeline::{RunMode, P2};
use crate::result::{ExperimentResult, PlacementEvaluation};

/// Observes the progress of one experiment run ([`P2::run_observed`]).
///
/// Every method has a no-op default, so implementations override only what
/// they need. The sweep fans placements out across worker threads, so the
/// observer is shared (`&self`, `Sync` supertrait) and events from *different*
/// placements interleave nondeterministically; events *within* one placement
/// are strictly ordered and deterministic:
/// [`on_placement_start`](RunObserver::on_placement_start), then
/// [`on_program_retained`](RunObserver::on_program_retained) in program-stream
/// order, then [`on_placement_done`](RunObserver::on_placement_done). The
/// `index` passed to each hook is the placement's position in enumeration
/// order — the same index its [`PlacementEvaluation`] ends up at in
/// [`ExperimentResult::placements`].
pub trait RunObserver: Sync {
    /// Called once per placement, before its synthesis stream starts.
    ///
    /// Returning `Some(bound)` seeds the placement's predicted-time pruning
    /// bound with `bound` (in seconds, predicted domain): candidates whose
    /// accumulated predicted prefix exceeds
    /// `min(bound, allreduce_predicted) × (1 + prune_slack)` are dropped
    /// before they are fully costed or measured. Returning a bound activates
    /// prefix pruning even when `keep_top` is unset; returning `None` (the
    /// default) leaves the run's pruning behaviour untouched.
    fn on_placement_start(&self, index: usize, matrix: &ParallelismMatrix) -> Option<f64> {
        let _ = (index, matrix);
        None
    }

    /// Called for each program entering the placement's retention set, in
    /// stream order. Under bounded retention (`keep_top`) a retained program
    /// may later be displaced by a better one; displaced programs do not
    /// produce another event. In predict-only and shortlist sweeps
    /// `measured_seconds` equals `predicted_seconds`.
    fn on_program_retained(
        &self,
        index: usize,
        program: &Program,
        predicted_seconds: f64,
        measured_seconds: f64,
    ) {
        let _ = (index, program, predicted_seconds, measured_seconds);
    }

    /// Called once per placement, after its evaluation is complete (programs
    /// sorted, counters final).
    fn on_placement_done(&self, index: usize, evaluation: &PlacementEvaluation) {
        let _ = (index, evaluation);
    }

    /// Called instead of [`on_placement_done`](RunObserver::on_placement_done)
    /// when a placement's evaluation aborts with an error (the whole run is
    /// about to fail with it). Observers that block on other placements'
    /// completion — like [`SharedBoundObserver`] — must treat this as a
    /// completion signal so in-flight workers can drain instead of waiting
    /// forever on a placement that will never finish.
    fn on_placement_aborted(&self, index: usize) {
        let _ = index;
    }
}

/// The no-op observer: every hook keeps its default.
impl RunObserver for () {}

/// Per-run state of the single-pass shared bound: the published per-placement
/// minima and the memoized dyadic-prefix reductions over them.
#[derive(Debug, Default)]
struct BoundTree {
    /// `slots[i]` is placement `i`'s published predicted minimum
    /// (`f64::INFINITY` for degenerate placements), `None` until published.
    slots: Vec<Option<f64>>,
    /// `prefix[k]` memoizes `min(slots[0 .. 1 << k])` — the internal nodes of
    /// the reduction tree, computed once when their subtree completes.
    prefix: Vec<Option<f64>>,
}

impl BoundTree {
    fn publish(&mut self, index: usize, value: f64) {
        if self.slots.len() <= index {
            self.slots.resize(index + 1, None);
        }
        self.slots[index] = Some(value);
    }

    /// The reduction-tree node covering `slots[0..len]`, computing and
    /// memoizing it when every slot of the prefix is published. `len` must be
    /// a power of two (`1 << k`).
    fn prefix_min(&mut self, k: usize) -> Option<f64> {
        if let Some(Some(v)) = self.prefix.get(k) {
            return Some(*v);
        }
        let len = 1usize << k;
        if self.slots.len() < len || self.slots[..len].iter().any(Option::is_none) {
            return None;
        }
        let v = self.slots[..len]
            .iter()
            .map(|s| s.expect("checked above"))
            .fold(f64::INFINITY, f64::min);
        if self.prefix.len() <= k {
            self.prefix.resize(k + 1, None);
        }
        self.prefix[k] = Some(v);
        Some(v)
    }
}

/// A shared, slot-addressed dyadic reduction tree over published predicted
/// minima — the synchronization primitive behind [`SharedBoundObserver`]
/// (slots = one sweep's placements) and the batch scheduler's cross-spec
/// bound sharing (slots = every placement of every spec in a group, numbered
/// spec-major in production order).
///
/// Slot `i` seeds its pruning bound from the tree node covering the dyadic
/// prefix `[0, 2^⌊log₂ i⌋)`, blocking until every slot of that prefix has
/// published. The dependency set of a slot is a pure function of its index
/// and every published minimum is deterministic, so any consumer built on
/// this tree is bit-identical for any thread count or steal schedule.
/// Waiting cannot deadlock as long as slots are *started* in ascending order
/// along each work queue: a slot only ever waits on strictly lower slots.
#[derive(Debug, Default)]
pub struct SharedBoundTree {
    state: Mutex<BoundTree>,
    published: Condvar,
}

impl SharedBoundTree {
    /// Creates an empty tree.
    pub fn new() -> Self {
        Self::default()
    }

    /// Seeds slot `index`: blocks until the slot's dyadic prefix
    /// `[0, 2^⌊log₂ index⌋)` is fully published, then returns its minimum
    /// (`None` for slot 0, which has no predecessors, and for prefixes whose
    /// published minima are all infinite).
    pub fn seed(&self, index: usize) -> Option<f64> {
        if index == 0 {
            // The tree root has no predecessors; slot 0 runs unpruned.
            return None;
        }
        let k = (usize::BITS - 1 - index.leading_zeros()) as usize;
        let mut state = self.state.lock().expect("bound tree poisoned");
        loop {
            if let Some(bound) = state.prefix_min(k) {
                return bound.is_finite().then_some(bound);
            }
            state = self
                .published
                .wait(state)
                .expect("bound tree poisoned while waiting");
        }
    }

    /// Publishes `value` into slot `index` and wakes every waiter.
    /// Non-finite or non-positive values are recorded as `f64::INFINITY`:
    /// degenerate slots never poison the bound but still unblock their tree
    /// ancestors.
    pub fn publish(&self, index: usize, value: f64) {
        let value = if value.is_finite() && value > 0.0 {
            value
        } else {
            f64::INFINITY
        };
        let mut state = self.state.lock().expect("bound tree poisoned");
        state.publish(index, value);
        self.published.notify_all();
    }

    /// Publishes a neutral (infinite) value into slot `index` — the abort
    /// path: waiters blocked on the slot drain instead of hanging, and the
    /// bound is unaffected.
    pub fn publish_neutral(&self, index: usize) {
        self.publish(index, f64::INFINITY);
    }

    /// The minimum over all published finite slots so far, if any.
    pub fn bound(&self) -> Option<f64> {
        let state = self.state.lock().expect("bound tree poisoned");
        let bound = state
            .slots
            .iter()
            .flatten()
            .fold(f64::INFINITY, |a, &b| a.min(b));
        bound.is_finite().then_some(bound)
    }

    /// Clears every slot and memoized prefix, ready for a fresh run.
    pub fn reset(&self) {
        *self.state.lock().expect("bound tree poisoned") = BoundTree::default();
    }
}

/// A completed placement's contribution to the shared bound: its AllReduce
/// baseline prediction or its best retained program, whichever is smaller.
fn predicted_minimum(evaluation: &PlacementEvaluation) -> f64 {
    let mut best = evaluation.allreduce_predicted;
    for program in &evaluation.programs {
        best = best.min(program.predicted_seconds);
    }
    best
}

/// An observer window into a [`SharedBoundTree`] shared by several sweeps:
/// placement `i` of this observer's sweep maps to tree slot `offset + i`.
///
/// This is how the batch scheduler generalizes [`SharedBoundObserver`] across
/// specs: each spec in a sharing group gets a `SlotBoundObserver` onto the
/// group's tree, with offsets assigned spec-major in production order so the
/// combined slot numbering is exactly one big sweep's. Completed placements
/// anywhere in the group tighten the bound every other spec prunes against.
#[derive(Debug, Clone)]
pub struct SlotBoundObserver {
    tree: Arc<SharedBoundTree>,
    offset: usize,
}

impl SlotBoundObserver {
    /// Creates a window onto `tree` starting at slot `offset`.
    pub fn new(tree: Arc<SharedBoundTree>, offset: usize) -> Self {
        SlotBoundObserver { tree, offset }
    }

    /// The shared tree this window publishes into.
    pub fn tree(&self) -> &Arc<SharedBoundTree> {
        &self.tree
    }
}

impl RunObserver for SlotBoundObserver {
    fn on_placement_start(&self, index: usize, _matrix: &ParallelismMatrix) -> Option<f64> {
        self.tree.seed(self.offset + index)
    }

    fn on_placement_done(&self, index: usize, evaluation: &PlacementEvaluation) {
        self.tree
            .publish(self.offset + index, predicted_minimum(evaluation));
    }

    fn on_placement_aborted(&self, index: usize) {
        self.tree.publish_neutral(self.offset + index);
    }
}

/// Cross-placement pruning inside a *single* sweep (the ROADMAP's
/// "shared bound inside one pass" item), deterministic for any worker-thread
/// count.
///
/// The naive shared bound — prune every placement against the best prediction
/// seen *so far* — is nondeterministic under parallelism: what "so far" means
/// depends on which worker finishes first. This observer instead reduces the
/// published per-placement minima through a **fixed tree keyed by placement
/// production order**:
///
/// * when placement `i` completes, its worker publishes the placement's
///   predicted minimum (its AllReduce baseline prediction or its best
///   retained program, whichever is smaller) into slot `i` of the tree;
/// * before placement `i` starts pruning, it seeds its bound with the tree
///   node covering the dyadic prefix `[0, 2^⌊log₂ i⌋)` — waiting, if
///   necessary, for every slot of that prefix to be published.
///
/// The dependency set of each placement is a pure function of its production
/// index, and every published minimum is itself deterministic (a placement's
/// own evaluation only depends on its deterministic seed), so the whole sweep
/// is bit-identical for any thread count — `tests/observer.rs` pins this.
/// Waiting cannot deadlock: the streamed placements are dequeued in
/// production order, so the lowest in-flight index only depends on completed
/// placements.
///
/// Unlike the reference [`TwoPassSharedBound`], nothing is predicted twice:
/// the sweep issues strictly fewer predictions (also pinned in
/// `tests/observer.rs`). The price is twofold. The bound is weaker for early
/// placements — placement 0 is never pruned, and the bound tightens as the
/// prefix doubles. And the prefix waits are *barriers*: every placement in
/// `[2^k, 2^(k+1))` blocks until the slowest placement in `[0, 2^k)`
/// finishes, so a sweep with heavily skewed per-placement cost serializes at
/// each power-of-two boundary (O(log n) of them per run) and may keep
/// workers parked there. Both observers land on the same retained best
/// program; prefer the two-pass when per-placement cost is wildly skewed and
/// wall-clock matters more than the duplicate prediction pass.
///
/// # Examples
///
/// ```
/// use p2_core::{SharedBoundObserver, P2};
/// use p2_topology::presets;
///
/// let session = P2::builder(presets::a100_system(2))
///     .parallelism_axes([8, 4])
///     .reduction_axes([0])
///     .bytes_per_device(1.0e9)
///     .repeats(2)
///     .build()?;
/// let mut observer = SharedBoundObserver::new();
/// let pruned = observer.run(&session)?;
/// let exhaustive = session.run()?;
/// assert!(pruned.total_programs_retained() <= exhaustive.total_programs_retained());
/// assert_eq!(
///     pruned.best_overall().map(|p| p.signature()),
///     exhaustive.best_overall().map(|p| p.signature()),
/// );
/// # Ok::<(), p2_core::P2Error>(())
/// ```
#[derive(Debug, Default)]
pub struct SharedBoundObserver {
    tree: SharedBoundTree,
}

impl SharedBoundObserver {
    /// Creates an observer with an empty reduction tree.
    pub fn new() -> Self {
        Self::default()
    }

    /// The global best published predicted minimum so far, if any placement
    /// published a finite one.
    pub fn bound(&self) -> Option<f64> {
        self.tree.bound()
    }

    /// Runs `session` once with this observer, resetting the reduction tree
    /// first.
    ///
    /// Takes `&mut self` so one observer cannot drive two overlapping runs —
    /// slot indices are per-run, and interleaving two runs would mix their
    /// bounds.
    ///
    /// # Errors
    ///
    /// Propagates the sweep's errors.
    pub fn run(&mut self, session: &P2) -> Result<ExperimentResult, P2Error> {
        self.tree.reset();
        session.run_observed(self)
    }
}

impl RunObserver for SharedBoundObserver {
    fn on_placement_start(&self, index: usize, _matrix: &ParallelismMatrix) -> Option<f64> {
        self.tree.seed(index)
    }

    fn on_placement_done(&self, index: usize, evaluation: &PlacementEvaluation) {
        self.tree.publish(index, predicted_minimum(evaluation));
    }

    fn on_placement_aborted(&self, index: usize) {
        self.tree.publish_neutral(index);
    }
}

/// Cross-placement pruning as a deterministic two-pass run — the reference
/// implementation the single-pass [`SharedBoundObserver`] is checked against.
///
/// 1. **Seeding pass** ([`RunMode::PredictOnly`]): every placement is swept
///    with the cost model only; the observer records the global minimum
///    predicted time across all placements. A minimum is order-independent,
///    so the recorded bound is identical for any thread count or
///    interleaving.
/// 2. **Pruned pass** (the session's own mode): the frozen global bound seeds
///    every placement's pruning bound via
///    [`RunObserver::on_placement_start`], so placements whose programs all
///    predict worse than `global_best × (1 + prune_slack)` retain little or
///    nothing — cheap placements prune expensive ones.
///
/// Both passes are deterministic, so the overall result is too. The price is
/// that every program is predicted twice (and every baseline measured twice);
/// prefer [`SharedBoundObserver`] unless the strongest possible bound is
/// worth a second sweep.
#[derive(Debug)]
pub struct TwoPassSharedBound {
    /// `true` while the predict-only pass is recording the bound.
    seeding: AtomicBool,
    /// Bit pattern of the global minimum predicted time. Predicted times are
    /// positive finite floats, whose IEEE-754 bit patterns order exactly like
    /// the values — `fetch_min` on the bits is `min` on the seconds.
    bound_bits: AtomicU64,
}

impl Default for TwoPassSharedBound {
    fn default() -> Self {
        Self::new()
    }
}

impl TwoPassSharedBound {
    /// Creates an observer with no recorded bound, ready for a seeding pass.
    pub fn new() -> Self {
        TwoPassSharedBound {
            seeding: AtomicBool::new(true),
            bound_bits: AtomicU64::new(f64::INFINITY.to_bits()),
        }
    }

    /// The global best predicted time recorded so far, if any.
    pub fn bound(&self) -> Option<f64> {
        let bound = f64::from_bits(self.bound_bits.load(Ordering::SeqCst));
        bound.is_finite().then_some(bound)
    }

    /// Runs the two passes on `session`: a [`RunMode::PredictOnly`] pass that
    /// seeds the global bound, then the session's own mode pruned against it.
    /// Returns the pruned pass's result.
    ///
    /// Takes `&mut self` so one observer cannot drive two overlapping runs —
    /// the seeding/bound state is per-run, and interleaving two runs would
    /// hand a partially-collected bound to the other's sweep.
    ///
    /// # Errors
    ///
    /// Propagates errors from either pass.
    pub fn run(&mut self, session: &P2) -> Result<ExperimentResult, P2Error> {
        self.seeding.store(true, Ordering::SeqCst);
        self.bound_bits
            .store(f64::INFINITY.to_bits(), Ordering::SeqCst);
        session
            .clone()
            .with_mode(RunMode::PredictOnly)
            .run_observed(self)?;
        self.seeding.store(false, Ordering::SeqCst);
        session.run_observed(self)
    }
}

impl RunObserver for TwoPassSharedBound {
    fn on_placement_start(&self, _index: usize, _matrix: &ParallelismMatrix) -> Option<f64> {
        if self.seeding.load(Ordering::SeqCst) {
            // The bound is still being collected; handing out a partial bound
            // here would make pruning depend on sweep interleaving.
            None
        } else {
            self.bound()
        }
    }

    fn on_placement_done(&self, _index: usize, evaluation: &PlacementEvaluation) {
        if !self.seeding.load(Ordering::SeqCst) {
            return;
        }
        let best = predicted_minimum(evaluation);
        if best.is_finite() && best > 0.0 {
            self.bound_bits.fetch_min(best.to_bits(), Ordering::SeqCst);
        }
    }
}

/// A progress/ETA reporter for long sweeps: prints one line to stderr per
/// completed placement (or per [`every`](ProgressObserver::with_every)
/// placements), with the retained-program count, the elapsed wall-clock time
/// and — when a total is known — an ETA extrapolated from the mean
/// per-placement time.
///
/// The observer only accumulates counters, so it can be shared across several
/// consecutive runs (e.g. every spec of a table sweep) to report aggregate
/// progress; pass the expected grand total of placements to
/// [`with_total`](ProgressObserver::with_total) for the ETA column.
#[derive(Debug)]
pub struct ProgressObserver {
    label: String,
    total: Option<usize>,
    every: usize,
    started: Instant,
    placements_done: AtomicUsize,
    programs_seen: AtomicUsize,
    programs_retained: AtomicUsize,
}

impl ProgressObserver {
    /// Creates a reporter printing `label` on every line.
    pub fn new(label: impl Into<String>) -> Self {
        ProgressObserver {
            label: label.into(),
            total: None,
            every: 1,
            started: Instant::now(),
            placements_done: AtomicUsize::new(0),
            programs_seen: AtomicUsize::new(0),
            programs_retained: AtomicUsize::new(0),
        }
    }

    /// Sets the expected total number of placements (across every run this
    /// observer will see), enabling the percentage and ETA columns.
    pub fn with_total(mut self, total: usize) -> Self {
        self.total = Some(total);
        self
    }

    /// Prints only every `every`-th completed placement (and always the
    /// last one when a total is set). `every` is clamped to at least 1.
    pub fn with_every(mut self, every: usize) -> Self {
        self.every = every.max(1);
        self
    }

    /// Placements completed so far.
    pub fn placements_done(&self) -> usize {
        self.placements_done.load(Ordering::Relaxed)
    }

    /// Programs synthesized so far (including pruned ones).
    pub fn programs_seen(&self) -> usize {
        self.programs_seen.load(Ordering::Relaxed)
    }

    /// Program evaluations retained so far.
    pub fn programs_retained(&self) -> usize {
        self.programs_retained.load(Ordering::Relaxed)
    }
}

impl RunObserver for ProgressObserver {
    fn on_placement_done(&self, _index: usize, evaluation: &PlacementEvaluation) {
        self.programs_seen
            .fetch_add(evaluation.num_programs, Ordering::Relaxed);
        self.programs_retained
            .fetch_add(evaluation.programs_retained, Ordering::Relaxed);
        let done = self.placements_done.fetch_add(1, Ordering::Relaxed) + 1;
        let last = self.total == Some(done);
        if !done.is_multiple_of(self.every) && !last {
            return;
        }
        let elapsed = self.started.elapsed().as_secs_f64();
        let programs = self.programs_seen.load(Ordering::Relaxed);
        let retained = self.programs_retained.load(Ordering::Relaxed);
        match self.total {
            Some(total) if total >= done => {
                let eta = elapsed / done as f64 * (total - done) as f64;
                eprintln!(
                    "[{}] {done}/{total} placements ({:.0}%) · {programs} programs \
                     ({retained} retained) · {elapsed:.1}s elapsed · ETA {eta:.1}s",
                    self.label,
                    done as f64 / total as f64 * 100.0,
                );
            }
            _ => {
                eprintln!(
                    "[{}] {done} placements · {programs} programs ({retained} retained) · \
                     {elapsed:.1}s elapsed",
                    self.label,
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bound_is_none_until_seeded() {
        let single = SharedBoundObserver::new();
        assert_eq!(single.bound(), None);
        let two_pass = TwoPassSharedBound::new();
        assert_eq!(two_pass.bound(), None);
        let eval_bound = two_pass.on_placement_start(
            0,
            &ParallelismMatrix::new(vec![vec![2, 2]], vec![2, 2], vec![4]).unwrap(),
        );
        assert_eq!(eval_bound, None);
    }

    #[test]
    fn positive_float_bits_order_like_the_floats() {
        // The invariant the two-pass `fetch_min` relies on.
        for (a, b) in [(0.1f64, 0.2), (1.0, 1.0 + f64::EPSILON), (1e-300, 1e300)] {
            assert_eq!(a < b, a.to_bits() < b.to_bits());
        }
    }

    #[test]
    fn reduction_tree_seeds_dyadic_prefixes() {
        let mut tree = BoundTree::default();
        tree.publish(0, 4.0);
        assert_eq!(tree.prefix_min(0), Some(4.0)); // covers [0, 1)
        assert_eq!(tree.prefix_min(1), None); // [0, 2) incomplete
        tree.publish(1, 2.0);
        assert_eq!(tree.prefix_min(1), Some(2.0));
        // Publishing out of order completes [0, 4) only when slot 2 lands.
        tree.publish(3, 1.0);
        assert_eq!(tree.prefix_min(2), None);
        tree.publish(2, 8.0);
        assert_eq!(tree.prefix_min(2), Some(1.0));
        // The memoized node is frozen: later publishes cannot change it.
        tree.publish(0, 0.5);
        assert_eq!(tree.prefix_min(2), Some(1.0));
    }

    #[test]
    fn shared_bound_tree_sanitizes_and_resets() {
        let tree = SharedBoundTree::new();
        tree.publish(0, f64::NAN);
        tree.publish(1, -3.0);
        assert_eq!(tree.bound(), None, "degenerate publishes stay neutral");
        // Slot 2's prefix [0, 2) is complete (all infinite) → no bound.
        assert_eq!(tree.seed(2), None);
        tree.publish(2, 0.25);
        assert_eq!(tree.bound(), Some(0.25));
        tree.publish(3, 0.125);
        // [0, 4) complete: slots 4..8 seed from its minimum.
        assert_eq!(tree.seed(4), Some(0.125));
        tree.reset();
        assert_eq!(tree.bound(), None);
        assert_eq!(tree.seed(0), None);
    }

    #[test]
    fn slot_observer_windows_share_one_tree_across_offsets() {
        let tree = Arc::new(SharedBoundTree::new());
        let first = SlotBoundObserver::new(Arc::clone(&tree), 0);
        let second = SlotBoundObserver::new(Arc::clone(&tree), 2);
        let matrix = ParallelismMatrix::new(vec![vec![2, 2]], vec![2, 2], vec![4]).unwrap();
        // The two windows' local indices land in disjoint global slots.
        tree.publish(0, 4.0);
        tree.publish(1, 2.0);
        // second's placement 0 is global slot 2: its prefix [0, 2) is ready.
        assert_eq!(second.on_placement_start(0, &matrix), Some(2.0));
        second.on_placement_aborted(1); // global slot 3 → neutral publish
                                        // first's placement 0 is the root and never waits.
        assert_eq!(first.on_placement_start(0, &matrix), None);
        assert_eq!(tree.bound(), Some(2.0));
    }

    #[test]
    fn aborted_placements_release_waiters_instead_of_hanging() {
        let observer = SharedBoundObserver::new();
        let matrix = ParallelismMatrix::new(vec![vec![2, 2]], vec![2, 2], vec![4]).unwrap();
        // Placement 0 errors out; placement 1 depends on its slot. The abort
        // hook publishes a neutral value, so the seed resolves (to "no
        // bound") instead of blocking forever.
        observer.on_placement_aborted(0);
        assert_eq!(observer.on_placement_start(1, &matrix), None);
        assert_eq!(observer.bound(), None);
    }

    #[test]
    fn progress_observer_counts_and_reports() {
        let matrix = ParallelismMatrix::new(vec![vec![2, 2]], vec![2, 2], vec![4]).unwrap();
        let evaluation = PlacementEvaluation {
            matrix,
            synthesis_time: std::time::Duration::from_millis(1),
            num_programs: 7,
            programs_pruned: 7,
            programs_retained: 0,
            states_explored: 0,
            unique_device_states: 0,
            suffix_memo_hits: 0,
            suffix_memo_misses: 0,
            suffix_memo_preloaded: 0,
            shared_states_reused: 0,
            allreduce_predicted: 1.0,
            allreduce_measured: 1.0,
            programs: Vec::new(),
        };
        let progress = ProgressObserver::new("test").with_total(2).with_every(1);
        progress.on_placement_done(0, &evaluation);
        progress.on_placement_done(1, &evaluation);
        assert_eq!(progress.placements_done(), 2);
        assert_eq!(progress.programs_seen(), 14);
        assert_eq!(progress.programs_retained(), 0);
    }
}
