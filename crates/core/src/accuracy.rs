//! Top-k prediction accuracy of the analytic simulator against the execution
//! substrate (paper §5, Table 5).

use crate::result::ExperimentResult;

/// Top-k accuracy of the simulator over a collection of experiments.
#[derive(Debug, Clone, PartialEq)]
pub struct TopKReport {
    /// The `k` values, in the order they were requested.
    pub ks: Vec<usize>,
    /// For each `k`, the fraction of experiments whose predicted-best program
    /// lands within the measured top-`k`.
    pub accuracy: Vec<f64>,
    /// Number of experiments the report was computed over.
    pub experiments: usize,
}

impl TopKReport {
    /// The accuracy for a specific `k`, if it was requested.
    pub fn accuracy_for(&self, k: usize) -> Option<f64> {
        self.ks
            .iter()
            .position(|&x| x == k)
            .map(|i| self.accuracy[i])
    }
}

impl std::fmt::Display for TopKReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for (k, acc) in self.ks.iter().zip(&self.accuracy) {
            write!(f, "top-{k}: {:.1}%  ", acc * 100.0)?;
        }
        write!(f, "({} experiments)", self.experiments)
    }
}

/// Computes the top-k accuracy of the simulator: for each experiment, the
/// program with the lowest *predicted* time is checked against the measured
/// ranking; accuracy is the fraction of experiments where it falls within the
/// measured top-k (the quantity reported in Table 5 of the paper).
pub fn top_k_accuracy(results: &[ExperimentResult], ks: &[usize]) -> TopKReport {
    let experiments = results.len();
    let accuracy = ks
        .iter()
        .map(|&k| {
            if experiments == 0 {
                return 0.0;
            }
            let hits = results
                .iter()
                .filter(|r| r.predicted_best_in_measured_top_k(k))
                .count();
            hits as f64 / experiments as f64
        })
        .collect();
    TopKReport {
        ks: ks.to_vec(),
        accuracy,
        experiments,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::P2Config;
    use crate::pipeline::P2;
    use p2_topology::presets;

    #[test]
    fn accuracy_is_monotone_in_k() {
        // Two small experiments on the 2-node A100 system.
        let mut results = Vec::new();
        for reduction in [vec![0], vec![1]] {
            let config = P2Config::new(presets::a100_system(2), vec![8, 4], reduction)
                .with_bytes_per_device(1.0e9)
                .with_repeats(2);
            results.push(P2::new(config).unwrap().run().unwrap());
        }
        let report = top_k_accuracy(&results, &[1, 2, 3, 5, 10]);
        assert_eq!(report.experiments, 2);
        assert!(report.accuracy.windows(2).all(|w| w[0] <= w[1]), "{report}");
        // With a generous k the prediction must land in the top set.
        assert!(report.accuracy_for(10).unwrap() > 0.49);
        assert!(report.accuracy_for(7).is_none());
    }

    #[test]
    fn empty_input_gives_zero_accuracy() {
        let report = top_k_accuracy(&[], &[1, 5]);
        assert_eq!(report.accuracy, vec![0.0, 0.0]);
        assert_eq!(report.experiments, 0);
    }
}
