use std::fmt;

/// Errors produced while constructing or querying parallelism placements.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum PlacementError {
    /// The product of the parallelism axes must equal the number of devices.
    ProductMismatch {
        /// Product of the hierarchy cardinalities.
        devices: usize,
        /// Product of the parallelism axis sizes.
        parallelism: usize,
    },
    /// At least one parallelism axis is required.
    EmptyAxes,
    /// At least one hierarchy level is required.
    EmptyHierarchy,
    /// Axis sizes and level cardinalities must be non-zero.
    ZeroSize,
    /// The matrix supplied to [`crate::ParallelismMatrix::new`] violates the
    /// row-product constraint (Equation 2 of the paper).
    RowProductMismatch {
        /// Offending axis index.
        axis: usize,
    },
    /// The matrix violates the column-product constraint (Equation 1).
    ColumnProductMismatch {
        /// Offending level index.
        level: usize,
    },
    /// The matrix shape does not match the axes/hierarchy.
    ShapeMismatch,
    /// A reduction axis index was out of range.
    AxisOutOfRange {
        /// The offending axis index.
        axis: usize,
    },
    /// A device rank or axis coordinate was out of range.
    CoordinateOutOfRange,
}

impl fmt::Display for PlacementError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlacementError::ProductMismatch {
                devices,
                parallelism,
            } => write!(
                f,
                "parallelism axes multiply to {parallelism} but the system has {devices} devices"
            ),
            PlacementError::EmptyAxes => write!(f, "no parallelism axes given"),
            PlacementError::EmptyHierarchy => write!(f, "no hierarchy levels given"),
            PlacementError::ZeroSize => write!(f, "axis sizes and cardinalities must be non-zero"),
            PlacementError::RowProductMismatch { axis } => {
                write!(
                    f,
                    "row {axis} does not multiply to the corresponding axis size"
                )
            }
            PlacementError::ColumnProductMismatch { level } => {
                write!(
                    f,
                    "column {level} does not multiply to the corresponding cardinality"
                )
            }
            PlacementError::ShapeMismatch => {
                write!(f, "matrix shape does not match axes/hierarchy")
            }
            PlacementError::AxisOutOfRange { axis } => write!(f, "axis index {axis} out of range"),
            PlacementError::CoordinateOutOfRange => {
                write!(f, "device or axis coordinate out of range")
            }
        }
    }
}

impl std::error::Error for PlacementError {}
