use std::collections::BTreeMap;
use std::fmt;

use crate::error::PlacementError;

/// A parallelism matrix: the factorization of every parallelism axis across
/// every hardware-hierarchy level (paper §3.1).
///
/// Rows correspond to parallelism axes, columns to hierarchy levels
/// (outermost level first). Element `x[i][j]` is the *parallelism factor*:
/// the number of pieces axis `i` is split into at level `j`. Row `i`
/// multiplies to the axis size `p_i` (Equation 2) and column `j` multiplies to
/// the level cardinality `h_j` (Equation 1), so a matrix is simultaneously a
/// placement of program partitions onto devices and a recipe for forming
/// reduction groups.
///
/// The induced device mapping interprets each level's child index as a
/// mixed-radix number over the column's factors with axis 0 most significant,
/// and each axis coordinate as the mixed-radix combination of its per-level
/// digits with level 0 most significant; this matches the level-by-level
/// reading of Figure 2 in the paper.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ParallelismMatrix {
    /// `factors[axis][level]`
    factors: Vec<Vec<usize>>,
    /// Hierarchy cardinalities (column targets).
    arities: Vec<usize>,
    /// Parallelism axis sizes (row targets).
    axes: Vec<usize>,
}

impl ParallelismMatrix {
    /// Creates a parallelism matrix, validating the shape and the row/column
    /// product constraints of the paper.
    ///
    /// # Errors
    ///
    /// Returns a [`PlacementError`] if the shape does not match, any entry is
    /// zero, a row does not multiply to its axis size, or a column does not
    /// multiply to its level cardinality.
    pub fn new(
        factors: Vec<Vec<usize>>,
        arities: Vec<usize>,
        axes: Vec<usize>,
    ) -> Result<Self, PlacementError> {
        if axes.is_empty() {
            return Err(PlacementError::EmptyAxes);
        }
        if arities.is_empty() {
            return Err(PlacementError::EmptyHierarchy);
        }
        if axes.contains(&0) || arities.contains(&0) {
            return Err(PlacementError::ZeroSize);
        }
        if factors.len() != axes.len() || factors.iter().any(|row| row.len() != arities.len()) {
            return Err(PlacementError::ShapeMismatch);
        }
        if factors.iter().flatten().any(|&x| x == 0) {
            return Err(PlacementError::ZeroSize);
        }
        for (i, row) in factors.iter().enumerate() {
            if row.iter().product::<usize>() != axes[i] {
                return Err(PlacementError::RowProductMismatch { axis: i });
            }
        }
        for j in 0..arities.len() {
            let col: usize = factors.iter().map(|row| row[j]).product();
            if col != arities[j] {
                return Err(PlacementError::ColumnProductMismatch { level: j });
            }
        }
        Ok(ParallelismMatrix {
            factors,
            arities,
            axes,
        })
    }

    /// Number of parallelism axes (rows).
    pub fn num_axes(&self) -> usize {
        self.axes.len()
    }

    /// Number of hierarchy levels (columns).
    pub fn num_levels(&self) -> usize {
        self.arities.len()
    }

    /// Total number of devices (the product of the cardinalities).
    pub fn num_devices(&self) -> usize {
        self.arities.iter().product()
    }

    /// The parallelism factor for `axis` at `level`.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    pub fn factor(&self, axis: usize, level: usize) -> usize {
        self.factors[axis][level]
    }

    /// The factor row for one axis (one entry per level).
    ///
    /// # Panics
    ///
    /// Panics if `axis` is out of range.
    pub fn row(&self, axis: usize) -> &[usize] {
        &self.factors[axis]
    }

    /// All factor rows.
    pub fn rows(&self) -> &[Vec<usize>] {
        &self.factors
    }

    /// The hierarchy cardinalities this matrix was built for.
    pub fn arities(&self) -> &[usize] {
        &self.arities
    }

    /// The parallelism axis sizes this matrix was built for.
    pub fn axis_sizes(&self) -> &[usize] {
        &self.axes
    }

    /// The per-axis, per-level digits of a device: `digits[axis][level]` is
    /// the index of the device along axis `axis` *within* level `level`.
    ///
    /// # Errors
    ///
    /// Returns [`PlacementError::CoordinateOutOfRange`] if `rank` is not a
    /// valid device rank.
    pub fn device_digits(&self, rank: usize) -> Result<Vec<Vec<usize>>, PlacementError> {
        if rank >= self.num_devices() {
            return Err(PlacementError::CoordinateOutOfRange);
        }
        // Per-level child index, level 0 most significant.
        let mut level_index = vec![0usize; self.num_levels()];
        let mut rest = rank;
        for j in (0..self.num_levels()).rev() {
            level_index[j] = rest % self.arities[j];
            rest /= self.arities[j];
        }
        // Decompose each level index over the column factors, axis 0 most significant.
        let mut digits = vec![vec![0usize; self.num_levels()]; self.num_axes()];
        for j in 0..self.num_levels() {
            let mut rem = level_index[j];
            for i in (0..self.num_axes()).rev() {
                digits[i][j] = rem % self.factors[i][j];
                rem /= self.factors[i][j];
            }
        }
        Ok(digits)
    }

    /// Reassembles a device rank from per-axis, per-level digits (the inverse
    /// of [`ParallelismMatrix::device_digits`]).
    ///
    /// # Errors
    ///
    /// Returns [`PlacementError::CoordinateOutOfRange`] if the digit array has
    /// the wrong shape or any digit exceeds its factor.
    pub fn device_from_digits(&self, digits: &[Vec<usize>]) -> Result<usize, PlacementError> {
        if digits.len() != self.num_axes()
            || digits.iter().any(|row| row.len() != self.num_levels())
        {
            return Err(PlacementError::CoordinateOutOfRange);
        }
        let mut rank = 0usize;
        for (j, &arity) in self.arities.iter().enumerate() {
            let mut level_index = 0usize;
            for (i, axis_digits) in digits.iter().enumerate() {
                if axis_digits[j] >= self.factors[i][j] {
                    return Err(PlacementError::CoordinateOutOfRange);
                }
                level_index = level_index * self.factors[i][j] + axis_digits[j];
            }
            rank = rank * arity + level_index;
        }
        Ok(rank)
    }

    /// The coordinate of a device along every parallelism axis.
    ///
    /// Two devices participate in the same reduction along axis `r` exactly
    /// when they agree on every coordinate except `r`.
    ///
    /// # Errors
    ///
    /// Returns [`PlacementError::CoordinateOutOfRange`] if `rank` is invalid.
    pub fn axis_coords(&self, rank: usize) -> Result<Vec<usize>, PlacementError> {
        let digits = self.device_digits(rank)?;
        let mut coords = vec![0usize; self.num_axes()];
        for (i, coord) in coords.iter_mut().enumerate() {
            let mut a = 0usize;
            for (j, &digit) in digits[i].iter().enumerate() {
                a = a * self.factors[i][j] + digit;
            }
            *coord = a;
        }
        Ok(coords)
    }

    /// The device that holds the partition at the given per-axis coordinates
    /// (the inverse of [`ParallelismMatrix::axis_coords`]).
    ///
    /// # Errors
    ///
    /// Returns [`PlacementError::CoordinateOutOfRange`] if the coordinate
    /// vector has the wrong length or any coordinate exceeds its axis size.
    pub fn device_for_axis_coords(&self, coords: &[usize]) -> Result<usize, PlacementError> {
        if coords.len() != self.num_axes() {
            return Err(PlacementError::CoordinateOutOfRange);
        }
        let mut digits = vec![vec![0usize; self.num_levels()]; self.num_axes()];
        for i in 0..self.num_axes() {
            if coords[i] >= self.axes[i] {
                return Err(PlacementError::CoordinateOutOfRange);
            }
            let mut rest = coords[i];
            for j in (0..self.num_levels()).rev() {
                digits[i][j] = rest % self.factors[i][j];
                rest /= self.factors[i][j];
            }
        }
        self.device_from_digits(&digits)
    }

    /// The reduction groups induced by reducing along `reduction_axes`
    /// (paper §2.1): devices that agree on every *non*-reduction axis
    /// coordinate belong to the same group. Each group is ordered by the
    /// reduction-axis coordinates (so index 0 is the root used by `Reduce`
    /// and `Broadcast`), and groups are ordered by their non-reduction
    /// coordinates.
    ///
    /// # Errors
    ///
    /// Returns [`PlacementError::AxisOutOfRange`] if any reduction axis index
    /// is invalid or the list is empty.
    pub fn reduction_groups(
        &self,
        reduction_axes: &[usize],
    ) -> Result<Vec<Vec<usize>>, PlacementError> {
        if reduction_axes.is_empty() {
            return Err(PlacementError::EmptyAxes);
        }
        for &axis in reduction_axes {
            if axis >= self.num_axes() {
                return Err(PlacementError::AxisOutOfRange { axis });
            }
        }
        let mut groups: BTreeMap<Vec<usize>, Vec<(Vec<usize>, usize)>> = BTreeMap::new();
        for rank in 0..self.num_devices() {
            let coords = self.axis_coords(rank)?;
            let key: Vec<usize> = (0..self.num_axes())
                .filter(|i| !reduction_axes.contains(i))
                .map(|i| coords[i])
                .collect();
            let in_group_key: Vec<usize> = reduction_axes.iter().map(|&i| coords[i]).collect();
            groups.entry(key).or_default().push((in_group_key, rank));
        }
        Ok(groups
            .into_values()
            .map(|mut members| {
                members.sort();
                members.into_iter().map(|(_, rank)| rank).collect()
            })
            .collect())
    }

    /// The size of every reduction group along `reduction_axes` (the product
    /// of the reduced axis sizes).
    ///
    /// # Errors
    ///
    /// Returns [`PlacementError::AxisOutOfRange`] if any axis index is invalid.
    pub fn reduction_group_size(&self, reduction_axes: &[usize]) -> Result<usize, PlacementError> {
        for &axis in reduction_axes {
            if axis >= self.num_axes() {
                return Err(PlacementError::AxisOutOfRange { axis });
            }
        }
        Ok(reduction_axes.iter().map(|&i| self.axes[i]).product())
    }
}

impl fmt::Display for ParallelismMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for row in &self.factors {
            write!(f, "[")?;
            for (j, x) in row.iter().enumerate() {
                if j > 0 {
                    write!(f, " ")?;
                }
                write!(f, "{x}")?;
            }
            write!(f, "]")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Figure 2b: [[1 2 2 1][1 1 1 4]] on the [1 2 2 4] system.
    fn figure2b() -> ParallelismMatrix {
        ParallelismMatrix::new(
            vec![vec![1, 2, 2, 1], vec![1, 1, 1, 4]],
            vec![1, 2, 2, 4],
            vec![4, 4],
        )
        .unwrap()
    }

    /// Figure 2d: [[1 1 2 2][1 2 1 2]].
    fn figure2d() -> ParallelismMatrix {
        ParallelismMatrix::new(
            vec![vec![1, 1, 2, 2], vec![1, 2, 1, 2]],
            vec![1, 2, 2, 4],
            vec![4, 4],
        )
        .unwrap()
    }

    #[test]
    fn invalid_matrices_rejected() {
        // Row product wrong.
        assert!(matches!(
            ParallelismMatrix::new(vec![vec![1, 2], vec![1, 4]], vec![1, 8], vec![4, 4]),
            Err(PlacementError::RowProductMismatch { axis: 0 })
        ));
        // Column product wrong.
        assert!(matches!(
            ParallelismMatrix::new(vec![vec![2, 2], vec![1, 4]], vec![1, 16], vec![4, 4]),
            Err(PlacementError::ColumnProductMismatch { level: 0 })
        ));
        // Shape wrong.
        assert!(matches!(
            ParallelismMatrix::new(vec![vec![1, 4]], vec![1, 16], vec![4, 4]),
            Err(PlacementError::ShapeMismatch)
        ));
        // Zero entries.
        assert!(ParallelismMatrix::new(vec![vec![0, 4]], vec![0, 4], vec![0]).is_err());
    }

    #[test]
    fn figure2b_mapping_each_cpu_is_a_replica() {
        // In Figure 2b each CPU corresponds to one data-parallel replica and
        // each GPU within a CPU holds one parameter shard.
        let m = figure2b();
        for rank in 0..16 {
            let coords = m.axis_coords(rank).unwrap();
            let cpu = rank / 4; // 4 GPUs per CPU, CPUs numbered 0..4
            let gpu_in_cpu = rank % 4;
            assert_eq!(coords[0], cpu, "data-parallel index is the CPU index");
            assert_eq!(
                coords[1], gpu_in_cpu,
                "shard index is the GPU index within the CPU"
            );
        }
    }

    #[test]
    fn axis_coords_roundtrip() {
        for m in [figure2b(), figure2d()] {
            for rank in 0..m.num_devices() {
                let coords = m.axis_coords(rank).unwrap();
                assert_eq!(m.device_for_axis_coords(&coords).unwrap(), rank);
                let digits = m.device_digits(rank).unwrap();
                assert_eq!(m.device_from_digits(&digits).unwrap(), rank);
            }
        }
    }

    #[test]
    fn figure2b_reduction_along_shards_stays_inside_a_cpu() {
        let m = figure2b();
        let groups = m.reduction_groups(&[1]).unwrap();
        assert_eq!(groups.len(), 4);
        for group in &groups {
            assert_eq!(group.len(), 4);
            // All members of a group share the same CPU: ranks differ only in
            // the last two bits.
            let cpu = group[0] / 4;
            assert!(group.iter().all(|&d| d / 4 == cpu));
        }
    }

    #[test]
    fn figure2d_reduction_along_shards_spans_servers() {
        let m = figure2d();
        // Axis 1 (parameter sharding) is split across the server and GPU
        // levels in Figure 2d, so reducing along it crosses the server
        // boundary (ranks 0..8 are server 0, 8..16 server 1).
        let groups = m.reduction_groups(&[1]).unwrap();
        assert_eq!(groups.len(), 4);
        assert!(groups.iter().all(|g| g.len() == 4));
        for g in &groups {
            assert!(g.iter().any(|&d| d < 8) && g.iter().any(|&d| d >= 8));
        }
        // Axis 0 (data parallelism) is split across CPU and GPU levels only,
        // so reducing along it stays inside a server.
        let groups0 = m.reduction_groups(&[0]).unwrap();
        for g in &groups0 {
            let server = g[0] / 8;
            assert!(g.iter().all(|&d| d / 8 == server));
        }
    }

    #[test]
    fn multi_axis_reduction_covers_everything() {
        let m = figure2d();
        let groups = m.reduction_groups(&[0, 1]).unwrap();
        assert_eq!(groups.len(), 1);
        assert_eq!(groups[0].len(), 16);
        assert_eq!(m.reduction_group_size(&[0, 1]).unwrap(), 16);
    }

    #[test]
    fn reduction_group_members_are_disjoint_and_cover_all_devices() {
        let m = figure2d();
        for axes in [vec![0], vec![1], vec![0, 1]] {
            let groups = m.reduction_groups(&axes).unwrap();
            let mut all: Vec<usize> = groups.iter().flatten().copied().collect();
            all.sort_unstable();
            assert_eq!(all, (0..16).collect::<Vec<_>>());
        }
    }

    #[test]
    fn bad_reduction_axes_rejected() {
        let m = figure2b();
        assert!(matches!(
            m.reduction_groups(&[2]),
            Err(PlacementError::AxisOutOfRange { axis: 2 })
        ));
        assert!(m.reduction_groups(&[]).is_err());
    }

    #[test]
    fn display_matches_paper_notation() {
        assert_eq!(figure2b().to_string(), "[[1 2 2 1][1 1 1 4]]");
    }

    #[test]
    fn group_is_ordered_by_reduction_coordinate() {
        let m = figure2b();
        let groups = m.reduction_groups(&[1]).unwrap();
        for group in groups {
            let shard_coords: Vec<usize> = group
                .iter()
                .map(|&d| m.axis_coords(d).unwrap()[1])
                .collect();
            assert_eq!(shard_coords, vec![0, 1, 2, 3]);
        }
    }
}
