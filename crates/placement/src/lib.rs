//! Parallelism placement synthesis for the P² reproduction (paper §2.1, §3.1).
//!
//! A *parallelism placement* decides which part of a partitioned program runs
//! on which device. Instead of enumerating all `(#devices)!` arbitrary
//! mappings, P² factorizes every parallelism axis over the hardware hierarchy:
//! the result is a [`ParallelismMatrix`] whose element `x[i][j]` says how many
//! ways parallelism axis `i` is split across hierarchy level `j`. Row products
//! must equal the axis sizes and column products must equal the level
//! cardinalities (Equations 1 and 2 of the paper).
//!
//! # Example
//!
//! ```
//! use p2_placement::{enumerate_matrices, ParallelismMatrix};
//!
//! // Figure 2: 16 GPUs arranged as [1, 2, 2, 4]; data parallelism 4 x 4 shards.
//! let matrices = enumerate_matrices(&[1, 2, 2, 4], &[4, 4]).unwrap();
//! assert!(matrices.iter().any(|m| m.row(0) == [1, 2, 2, 1] && m.row(1) == [1, 1, 1, 4]));
//! // Reduction along the parameter-sharding axis (axis 1) forms groups of 4.
//! let m: &ParallelismMatrix = &matrices[0];
//! let groups = m.reduction_groups(&[1]).unwrap();
//! assert!(groups.iter().all(|g| g.len() == 4));
//! ```

#![deny(missing_docs)]

mod enumerate;
mod error;
mod matrix;

pub use enumerate::{
    enumerate_matrices, for_each_matrix, ordered_factorizations, MatrixControl, MatrixSink,
};
pub use error::PlacementError;
pub use matrix::ParallelismMatrix;
