//! Exhaustive, pruned enumeration of parallelism matrices (paper §3.1).
//!
//! The enumeration is *streaming*: [`for_each_matrix`] walks the search tree
//! and hands each valid [`ParallelismMatrix`] to a [`MatrixSink`] the moment
//! it is completed, so huge axis/hierarchy combinations never hold the full
//! matrix list in memory. [`enumerate_matrices`] is a thin collecting wrapper
//! for callers that want the materialized list.

use crate::error::PlacementError;
use crate::matrix::ParallelismMatrix;

/// Tells [`for_each_matrix`] whether to keep enumerating after a matrix has
/// been delivered to the sink.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MatrixControl {
    /// Keep enumerating.
    Continue,
    /// Stop the enumeration; [`for_each_matrix`] returns with the matrices
    /// emitted so far counted.
    Stop,
}

/// A consumer of streamed parallelism matrices.
///
/// Any `FnMut(&ParallelismMatrix) -> MatrixControl` closure is a sink.
pub trait MatrixSink {
    /// Receives one enumerated matrix. Matrices arrive in the same order
    /// [`enumerate_matrices`] returns them.
    fn accept(&mut self, matrix: &ParallelismMatrix) -> MatrixControl;
}

impl<F: FnMut(&ParallelismMatrix) -> MatrixControl> MatrixSink for F {
    fn accept(&mut self, matrix: &ParallelismMatrix) -> MatrixControl {
        self(matrix)
    }
}

/// All ordered factorizations of `n` into exactly `parts` positive factors.
///
/// The result is ordered lexicographically. `ordered_factorizations(4, 2)`
/// yields `[1,4] [2,2] [4,1]`.
///
/// # Examples
///
/// ```
/// use p2_placement::ordered_factorizations;
/// assert_eq!(ordered_factorizations(4, 2), vec![vec![1, 4], vec![2, 2], vec![4, 1]]);
/// assert_eq!(ordered_factorizations(1, 3), vec![vec![1, 1, 1]]);
/// ```
pub fn ordered_factorizations(n: usize, parts: usize) -> Vec<Vec<usize>> {
    if parts == 0 {
        return if n == 1 { vec![vec![]] } else { vec![] };
    }
    let mut out = Vec::new();
    let mut current = Vec::with_capacity(parts);
    fn rec(
        remaining: usize,
        parts_left: usize,
        current: &mut Vec<usize>,
        out: &mut Vec<Vec<usize>>,
    ) {
        if parts_left == 1 {
            current.push(remaining);
            out.push(current.clone());
            current.pop();
            return;
        }
        for d in 1..=remaining {
            if remaining.is_multiple_of(d) {
                current.push(d);
                rec(remaining / d, parts_left - 1, current, out);
                current.pop();
            }
        }
    }
    rec(n, parts, &mut current, &mut out);
    out
}

/// Enumerates every parallelism matrix for the given hierarchy cardinalities
/// and parallelism axis sizes, i.e. every matrix satisfying Equations (1) and
/// (2) of the paper.
///
/// The search walks the hierarchy level by level, choosing an ordered
/// factorization of each cardinality into one factor per axis and pruning
/// branches whose factors do not divide the axis budget that remains, so the
/// enumeration is exhaustive but never materializes an invalid prefix.
///
/// # Errors
///
/// Returns [`PlacementError::ProductMismatch`] when the axis sizes do not
/// multiply to the device count, and propagates shape errors for empty
/// inputs or zero sizes.
///
/// # Examples
///
/// ```
/// use p2_placement::enumerate_matrices;
/// // Paper Figure 2: 3 of the placements for [1 2 2 4] with axes [4, 4].
/// let matrices = enumerate_matrices(&[1, 2, 2, 4], &[4, 4]).unwrap();
/// assert!(matrices.len() >= 3);
/// ```
pub fn enumerate_matrices(
    arities: &[usize],
    axes: &[usize],
) -> Result<Vec<ParallelismMatrix>, PlacementError> {
    let mut out = Vec::new();
    for_each_matrix(arities, axes, &mut |m: &ParallelismMatrix| {
        out.push(m.clone());
        MatrixControl::Continue
    })?;
    Ok(out)
}

/// Streams every parallelism matrix for the given hierarchy cardinalities and
/// parallelism axis sizes into `sink`, in exactly the order
/// [`enumerate_matrices`] returns them, without ever materializing the list.
/// Returns the number of matrices delivered to the sink.
///
/// The sink can abort the enumeration by returning [`MatrixControl::Stop`];
/// the matrix that triggered the stop is included in the returned count.
///
/// # Errors
///
/// Same as [`enumerate_matrices`]; all argument checks happen before the
/// first matrix is emitted.
///
/// # Examples
///
/// ```
/// use p2_placement::{enumerate_matrices, for_each_matrix, MatrixControl, ParallelismMatrix};
///
/// let mut streamed = Vec::new();
/// let emitted = for_each_matrix(&[1, 2, 2, 4], &[4, 4], &mut |m: &ParallelismMatrix| {
///     streamed.push(m.clone());
///     MatrixControl::Continue
/// })
/// .unwrap();
/// assert_eq!(emitted, streamed.len());
/// assert_eq!(streamed, enumerate_matrices(&[1, 2, 2, 4], &[4, 4]).unwrap());
/// ```
pub fn for_each_matrix<S>(
    arities: &[usize],
    axes: &[usize],
    sink: &mut S,
) -> Result<usize, PlacementError>
where
    S: MatrixSink + ?Sized,
{
    if axes.is_empty() {
        return Err(PlacementError::EmptyAxes);
    }
    if arities.is_empty() {
        return Err(PlacementError::EmptyHierarchy);
    }
    if axes.contains(&0) || arities.contains(&0) {
        return Err(PlacementError::ZeroSize);
    }
    let devices: usize = arities.iter().product();
    let parallelism: usize = axes.iter().product();
    if devices != parallelism {
        return Err(PlacementError::ProductMismatch {
            devices,
            parallelism,
        });
    }

    // columns[j] will hold the chosen factorization of arities[j].
    let mut columns: Vec<Vec<usize>> = Vec::with_capacity(arities.len());
    // remaining[i] = axis budget still to be assigned to axis i.
    let mut remaining: Vec<usize> = axes.to_vec();
    let mut emitted = 0usize;

    fn rec<S: MatrixSink + ?Sized>(
        level: usize,
        arities: &[usize],
        axes: &[usize],
        columns: &mut Vec<Vec<usize>>,
        remaining: &mut Vec<usize>,
        emitted: &mut usize,
        sink: &mut S,
    ) -> MatrixControl {
        if level == arities.len() {
            if remaining.iter().all(|&r| r == 1) {
                let rows: Vec<Vec<usize>> = (0..axes.len())
                    .map(|i| columns.iter().map(|col| col[i]).collect())
                    .collect();
                let matrix = ParallelismMatrix::new(rows, arities.to_vec(), axes.to_vec())
                    .expect("enumeration only constructs valid matrices");
                *emitted += 1;
                return sink.accept(&matrix);
            }
            return MatrixControl::Continue;
        }
        for factorization in ordered_factorizations(arities[level], axes.len()) {
            // Prune: each factor must divide the axis budget that remains.
            if factorization
                .iter()
                .zip(remaining.iter())
                .any(|(f, r)| r % f != 0)
            {
                continue;
            }
            for (i, f) in factorization.iter().enumerate() {
                remaining[i] /= f;
            }
            columns.push(factorization.clone());
            let ctrl = rec(level + 1, arities, axes, columns, remaining, emitted, sink);
            columns.pop();
            for (i, f) in factorization.iter().enumerate() {
                remaining[i] *= f;
            }
            if ctrl == MatrixControl::Stop {
                return MatrixControl::Stop;
            }
        }
        MatrixControl::Continue
    }

    rec(
        0,
        arities,
        axes,
        &mut columns,
        &mut remaining,
        &mut emitted,
        sink,
    );
    Ok(emitted)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn factorizations_of_one() {
        assert_eq!(ordered_factorizations(1, 2), vec![vec![1, 1]]);
    }

    #[test]
    fn factorizations_count_matches_divisor_structure() {
        // 12 = 2^2 * 3: the number of ordered 2-part factorizations is
        // d(12) = 6.
        assert_eq!(ordered_factorizations(12, 2).len(), 6);
        // Ordered 3-part factorizations of 8 = 2^3: C(3+2,2) = 10.
        assert_eq!(ordered_factorizations(8, 3).len(), 10);
    }

    #[test]
    fn zero_parts() {
        assert_eq!(ordered_factorizations(1, 0), vec![Vec::<usize>::new()]);
        assert!(ordered_factorizations(2, 0).is_empty());
    }

    #[test]
    fn figure2_enumeration_contains_all_three_examples() {
        let matrices = enumerate_matrices(&[1, 2, 2, 4], &[4, 4]).unwrap();
        let strings: Vec<String> = matrices.iter().map(|m| m.to_string()).collect();
        assert!(strings.contains(&"[[1 2 2 1][1 1 1 4]]".to_string()));
        assert!(strings.contains(&"[[1 2 1 2][1 1 2 2]]".to_string()));
        assert!(strings.contains(&"[[1 1 2 2][1 2 1 2]]".to_string()));
    }

    #[test]
    fn a100_single_axis_counts() {
        // A single parallelism axis has exactly one valid matrix: the
        // hierarchy itself.
        let matrices = enumerate_matrices(&[2, 16], &[32]).unwrap();
        assert_eq!(matrices.len(), 1);
        assert_eq!(matrices[0].row(0), &[2, 16]);
    }

    #[test]
    fn a100_two_axis_counts_match_paper_table() {
        // Paper Table 3/4 uses [2 32], [4 16], [8 8], [16 2] style axes on the
        // [4 16] system; the number of matrices equals the number of ways to
        // split each axis across the two levels consistently.
        let m_2_32 = enumerate_matrices(&[4, 16], &[2, 32]).unwrap();
        assert_eq!(
            m_2_32.len(),
            2,
            "{:?}",
            m_2_32.iter().map(|m| m.to_string()).collect::<Vec<_>>()
        );
        let m_4_16 = enumerate_matrices(&[4, 16], &[4, 16]).unwrap();
        assert_eq!(m_4_16.len(), 3);
        let m_8_8 = enumerate_matrices(&[4, 16], &[8, 8]).unwrap();
        assert_eq!(m_8_8.len(), 3);
    }

    #[test]
    fn product_mismatch_rejected() {
        assert!(matches!(
            enumerate_matrices(&[2, 16], &[3, 16]),
            Err(PlacementError::ProductMismatch {
                devices: 32,
                parallelism: 48
            })
        ));
    }

    #[test]
    fn every_enumerated_matrix_is_valid_and_unique() {
        let matrices = enumerate_matrices(&[2, 2, 8], &[4, 2, 4]).unwrap();
        assert!(!matrices.is_empty());
        let mut seen = std::collections::HashSet::new();
        for m in &matrices {
            assert!(seen.insert(m.to_string()), "duplicate matrix {m}");
            for (i, row) in m.rows().iter().enumerate() {
                assert_eq!(row.iter().product::<usize>(), m.axis_sizes()[i]);
            }
        }
    }

    #[test]
    fn three_axis_enumeration_is_nontrivial() {
        let matrices = enumerate_matrices(&[4, 16], &[16, 2, 2]).unwrap();
        assert!(matrices.len() >= 4);
    }

    #[test]
    fn streaming_matches_materializing_in_content_and_order() {
        for (arities, axes) in [
            (vec![1usize, 2, 2, 4], vec![4usize, 4]),
            (vec![4, 16], vec![16, 2, 2]),
            (vec![2, 2, 8], vec![4, 2, 4]),
        ] {
            let materialized = enumerate_matrices(&arities, &axes).unwrap();
            let mut streamed = Vec::new();
            let emitted = for_each_matrix(&arities, &axes, &mut |m: &ParallelismMatrix| {
                streamed.push(m.clone());
                MatrixControl::Continue
            })
            .unwrap();
            assert_eq!(emitted, materialized.len());
            assert_eq!(streamed, materialized);
        }
    }

    #[test]
    fn stop_aborts_after_a_prefix() {
        let all = enumerate_matrices(&[4, 16], &[8, 8]).unwrap();
        assert!(all.len() >= 3);
        let mut streamed = Vec::new();
        let emitted = for_each_matrix(&[4, 16], &[8, 8], &mut |m: &ParallelismMatrix| {
            streamed.push(m.clone());
            if streamed.len() == 2 {
                MatrixControl::Stop
            } else {
                MatrixControl::Continue
            }
        })
        .unwrap();
        assert_eq!(emitted, 2);
        assert_eq!(streamed, all[..2]);
    }

    #[test]
    fn streaming_rejects_invalid_arguments_before_emitting() {
        let mut sink = |_: &ParallelismMatrix| panic!("nothing must be emitted");
        assert!(matches!(
            for_each_matrix(&[], &[4], &mut sink),
            Err(PlacementError::EmptyHierarchy)
        ));
        assert!(matches!(
            for_each_matrix(&[4], &[], &mut sink),
            Err(PlacementError::EmptyAxes)
        ));
        assert!(matches!(
            for_each_matrix(&[4, 0], &[4], &mut sink),
            Err(PlacementError::ZeroSize)
        ));
        assert!(matches!(
            for_each_matrix(&[4], &[8], &mut sink),
            Err(PlacementError::ProductMismatch { .. })
        ));
    }
}
