//! Criterion bench: parallelism-matrix enumeration (paper §3.1) — the step
//! that replaces the naive `(#devices)!` placement search.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use p2_placement::enumerate_matrices;

fn bench_enumeration(c: &mut Criterion) {
    let mut group = c.benchmark_group("placement_enum");
    let configs: Vec<(&str, Vec<usize>, Vec<usize>)> = vec![
        ("a100x4_two_axes", vec![4, 16], vec![8, 8]),
        ("a100x4_three_axes", vec![4, 16], vec![8, 2, 4]),
        ("v100x4_three_axes", vec![4, 8], vec![8, 2, 2]),
        ("figure2a_two_axes", vec![1, 2, 2, 4], vec![4, 4]),
        (
            "deep_hierarchy_three_axes",
            vec![2, 2, 2, 2, 4],
            vec![8, 4, 2],
        ),
    ];
    for (label, arities, axes) in configs {
        group.bench_with_input(
            BenchmarkId::new("enumerate", label),
            &(arities, axes),
            |b, (h, p)| b.iter(|| enumerate_matrices(h, p).expect("valid").len()),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_enumeration);
criterion_main!(benches);
