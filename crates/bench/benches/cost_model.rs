//! Criterion bench: analytic cost-model throughput (the "Simulation time"
//! column of the appendix table — predicting every synthesized program), for
//! every built-in [`CostModel`] implementation, plus the interned step-cost
//! cache against the uncached path.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use p2_cost::{AlphaBetaModel, CachedCostModel, CostModel, LogGpModel, NcclAlgo};
use p2_placement::enumerate_matrices;
use p2_synthesis::{HierarchyKind, LoweredProgram, Synthesizer};
use p2_topology::presets;

fn lowered_programs(arities: &[usize], axes: &[usize], reduction: &[usize]) -> Vec<LoweredProgram> {
    enumerate_matrices(arities, axes)
        .expect("valid config")
        .into_iter()
        .flat_map(|m| {
            let synth = Synthesizer::new(m, reduction.to_vec(), HierarchyKind::ReductionAxes)
                .expect("valid synthesizer");
            synth
                .synthesize(5)
                .programs
                .iter()
                .map(|p| synth.lower(p).expect("lowers"))
                .collect::<Vec<_>>()
        })
        .collect()
}

fn bench_cost(c: &mut Criterion) {
    let mut group = c.benchmark_group("cost_model");
    let bytes = (1u64 << 29) as f64 * 4.0 * 4.0;
    let programs = lowered_programs(&[4, 16], &[8, 8], &[0]);
    for algo in NcclAlgo::ALL {
        let models: Vec<Arc<dyn CostModel>> = vec![
            Arc::new(
                AlphaBetaModel::new(presets::a100_system(4), algo, bytes).expect("valid model"),
            ),
            Arc::new(LogGpModel::new(presets::a100_system(4), algo, bytes).expect("valid model")),
        ];
        for model in models {
            group.bench_with_input(
                BenchmarkId::new("predict_all_programs", format!("{}/{algo}", model.name())),
                &programs,
                |b, ps| {
                    b.iter(|| ps.iter().map(|p| model.program_time(p)).sum::<f64>());
                },
            );
        }
    }
    group.finish();
}

/// The interned step-cost cache against the raw model on the same program
/// set: synthesized programs of one placement reuse a handful of lowered
/// steps, so the cached pass should degrade into hash lookups.
fn bench_cache(c: &mut Criterion) {
    let mut group = c.benchmark_group("cost_cache");
    let bytes = (1u64 << 29) as f64 * 4.0 * 4.0;
    let programs = lowered_programs(&[4, 16], &[8, 8], &[0]);
    let model: Arc<dyn CostModel> = Arc::new(
        AlphaBetaModel::new(presets::a100_system(4), NcclAlgo::Ring, bytes).expect("valid model"),
    );
    group.bench_with_input(BenchmarkId::new("sweep", "uncached"), &programs, |b, ps| {
        b.iter(|| ps.iter().map(|p| model.program_time(p)).sum::<f64>());
    });
    group.bench_with_input(BenchmarkId::new("sweep", "cached"), &programs, |b, ps| {
        b.iter(|| {
            // A fresh cache per iteration, as the pipeline uses per placement.
            let cached = CachedCostModel::new(Arc::clone(&model));
            ps.iter().map(|p| cached.program_time(p)).sum::<f64>()
        });
    });
    group.finish();
}

criterion_group!(benches, bench_cost, bench_cache);
criterion_main!(benches);
