//! Criterion bench: analytic cost-model throughput (the "Simulation time"
//! column of the appendix table — predicting every synthesized program).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use p2_cost::{CostModel, NcclAlgo};
use p2_placement::enumerate_matrices;
use p2_synthesis::{HierarchyKind, LoweredProgram, Synthesizer};
use p2_topology::presets;

fn lowered_programs(arities: &[usize], axes: &[usize], reduction: &[usize]) -> Vec<LoweredProgram> {
    enumerate_matrices(arities, axes)
        .expect("valid config")
        .into_iter()
        .flat_map(|m| {
            let synth = Synthesizer::new(m, reduction.to_vec(), HierarchyKind::ReductionAxes)
                .expect("valid synthesizer");
            synth
                .synthesize(5)
                .programs
                .iter()
                .map(|p| synth.lower(p).expect("lowers"))
                .collect::<Vec<_>>()
        })
        .collect()
}

fn bench_cost(c: &mut Criterion) {
    let mut group = c.benchmark_group("cost_model");
    let system = presets::a100_system(4);
    let bytes = (1u64 << 29) as f64 * 4.0 * 4.0;
    let programs = lowered_programs(&[4, 16], &[8, 8], &[0]);
    for algo in NcclAlgo::ALL {
        let model = CostModel::new(&system, algo, bytes).expect("valid model");
        group.bench_with_input(
            BenchmarkId::new("predict_all_programs", algo.to_string()),
            &programs,
            |b, ps| {
                b.iter(|| ps.iter().map(|p| model.program_time(p)).sum::<f64>());
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_cost);
criterion_main!(benches);
