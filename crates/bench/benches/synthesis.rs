//! Criterion bench: reduction-program synthesis time (the "Synthesis time"
//! column of Table 4 / the appendix table, and RQ2 of the paper).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use p2_bench::sweep_synthesis;
use p2_placement::enumerate_matrices;
use p2_synthesis::{HierarchyKind, Synthesizer};

/// (label, system arities, parallelism axes, reduction axes).
type SynthesisConfig = (&'static str, Vec<usize>, Vec<usize>, Vec<usize>);

fn bench_synthesis(c: &mut Criterion) {
    let mut group = c.benchmark_group("synthesis");
    // The Table 4 configurations with the largest search spaces.
    let configs: Vec<SynthesisConfig> = vec![
        ("F_a100x2_[8,4]_r0", vec![2, 16], vec![8, 4], vec![0]),
        ("G_a100x4_[4,16]_r0", vec![4, 16], vec![4, 16], vec![0]),
        (
            "H_a100x4_[16,2,2]_r02",
            vec![4, 16],
            vec![16, 2, 2],
            vec![0, 2],
        ),
        ("J_a100x4_[64]_r0", vec![4, 16], vec![64], vec![0]),
        (
            "K_v100x4_[8,2,2]_r02",
            vec![4, 8],
            vec![8, 2, 2],
            vec![0, 2],
        ),
    ];
    for (label, arities, axes, reduction) in configs {
        let matrices = enumerate_matrices(&arities, &axes).expect("valid config");
        group.bench_with_input(
            BenchmarkId::new("all_matrices", label),
            &matrices,
            |b, ms| {
                b.iter(|| {
                    let mut total = 0usize;
                    for m in ms {
                        let synth = Synthesizer::new(
                            m.clone(),
                            reduction.clone(),
                            HierarchyKind::ReductionAxes,
                        )
                        .expect("valid synthesizer");
                        total += synth.synthesize(5).programs.len();
                    }
                    total
                })
            },
        );
    }
    group.finish();
}

/// The beyond-the-paper `max_program_size = 6` sweep (ROADMAP: "larger
/// `max_program_size` sweeps") on the figure-2d and rack/node/GPU presets:
/// the state DAG — not the program set — dominates here, so this is the
/// configuration the hash-consed interning is sized against.
fn bench_synthesis_size6(c: &mut Criterion) {
    use p2_topology::presets;
    let mut group = c.benchmark_group("synthesis_size6");
    let figure2d_system = presets::figure2a_system();
    let rack = presets::rack_node_gpu_system(2, 2, 4);
    let cases: Vec<SynthesisConfig> = vec![
        (
            "figure2d_[4,4]_r1",
            figure2d_system.hierarchy().arities().to_vec(),
            vec![4, 4],
            vec![1],
        ),
        (
            "rack_node_gpu_[16]_r0",
            rack.hierarchy().arities().to_vec(),
            vec![16],
            vec![0],
        ),
    ];
    for (label, arities, axes, reduction) in cases {
        let matrices = enumerate_matrices(&arities, &axes).expect("valid config");
        group.bench_with_input(
            BenchmarkId::new("all_matrices", label),
            &matrices,
            |b, ms| {
                b.iter(|| {
                    let mut total = 0usize;
                    for m in ms {
                        let synth = Synthesizer::new(
                            m.clone(),
                            reduction.clone(),
                            HierarchyKind::ReductionAxes,
                        )
                        .expect("valid synthesizer");
                        total += synth.synthesize(6).programs.len();
                    }
                    total
                })
            },
        );
    }
    group.finish();
}

/// The suffix-memoized engine against the reference DFS at the size-6/size-7
/// wall (ROADMAP: "break the size-7 wall"), on the heaviest rack/node/GPU
/// placement: `reference_full` is the oracle path (admissible `min_steps`
/// pruning, no memo), `memoized_full` the production emission driven by the
/// exact suffix-completion counts, and `count_only` the fast path that
/// aggregates program counts straight from the memo without walking a path.
fn bench_suffix_memo_modes(c: &mut Criterion) {
    use p2_topology::presets;
    let mut group = c.benchmark_group("suffix_memo");
    let rack = presets::rack_node_gpu_system(2, 2, 4);
    let matrix = enumerate_matrices(&rack.hierarchy().arities(), &[16])
        .expect("valid config")
        .remove(0);
    let synth =
        Synthesizer::new(matrix, vec![0], HierarchyKind::ReductionAxes).expect("valid synthesizer");
    for size in [6usize, 7] {
        group.bench_with_input(BenchmarkId::new("reference_full", size), &size, |b, &s| {
            b.iter(|| synth.synthesize_reference(s).programs.len())
        });
        group.bench_with_input(BenchmarkId::new("memoized_full", size), &size, |b, &s| {
            b.iter(|| synth.synthesize(s).programs.len())
        });
        group.bench_with_input(BenchmarkId::new("count_only", size), &size, |b, &s| {
            b.iter(|| synth.count_programs(s).total)
        });
    }
    group.finish();
}

/// The placement × synthesis sweep, serial vs. fanned out over every core —
/// the parallel path must win on a multi-core host (and tie on one core).
fn bench_sweep_parallelism(c: &mut Criterion) {
    let mut group = c.benchmark_group("synthesis_sweep");
    let matrices = enumerate_matrices(&[4, 16], &[16, 2, 2]).expect("valid config");
    for (label, threads) in [("serial", 1usize), ("parallel", 0usize)] {
        group.bench_with_input(
            BenchmarkId::new("placement_sweep", label),
            &matrices,
            |b, ms| b.iter(|| sweep_synthesis(ms, &[0, 2], 5, threads, None, None)),
        );
    }
    group.finish();
}

/// Materializing the full program set per placement vs. streaming it through
/// the visitor with bounded retention — the memory-model contrast of the
/// streaming engine. Both count the same programs; the streaming side clones
/// at most `keep_top` of them per matrix instead of the whole set.
fn bench_streaming_vs_materialized(c: &mut Criterion) {
    let mut group = c.benchmark_group("streaming_vs_materialized");
    let matrices = enumerate_matrices(&[4, 16], &[16, 2, 2]).expect("valid config");
    for (label, keep_top) in [
        ("materialized", None),
        ("streaming_top10", Some(10usize)),
        ("streaming_top1", Some(1usize)),
    ] {
        group.bench_with_input(BenchmarkId::new("sweep", label), &matrices, |b, ms| {
            b.iter(|| sweep_synthesis(ms, &[0, 2], 5, 1, keep_top, None))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_synthesis, bench_synthesis_size6, bench_suffix_memo_modes, bench_sweep_parallelism, bench_streaming_vs_materialized
}
criterion_main!(benches);
