//! Criterion bench: execution-substrate throughput (replacing the paper's
//! real cluster runs; every synthesized program is "measured" here).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use p2_cost::NcclAlgo;
use p2_exec::{ExecConfig, Executor};
use p2_placement::enumerate_matrices;
use p2_synthesis::{baseline_allreduce, HierarchyKind, Synthesizer};
use p2_topology::presets;

fn bench_exec(c: &mut Criterion) {
    let mut group = c.benchmark_group("exec_sim");
    let system = presets::v100_system(4);
    let bytes = (1u64 << 29) as f64 * 4.0 * 4.0;

    // Single-step AllReduce over the whole machine (the most transfer-heavy case).
    let matrix = enumerate_matrices(&[4, 8], &[32]).expect("valid").remove(0);
    let baseline = baseline_allreduce(&matrix, &[0]).expect("valid baseline");
    for algo in NcclAlgo::ALL {
        let exec = Executor::new(&system, ExecConfig::new(algo, bytes).with_repeats(1))
            .expect("valid exec");
        group.bench_with_input(
            BenchmarkId::new("allreduce_32_gpus", algo.to_string()),
            &baseline,
            |b, p| b.iter(|| exec.measure_once(p, 0)),
        );
    }

    // A three-step hierarchical program.
    let synth = Synthesizer::new(matrix, vec![0], HierarchyKind::ReductionAxes).expect("valid");
    let program = synth
        .synthesize(5)
        .programs
        .iter()
        .find(|p| p.signature() == "ReduceScatter-AllReduce-AllGather")
        .map(|p| synth.lower(p).expect("lowers"))
        .expect("hierarchical program synthesized");
    let exec = Executor::new(
        &system,
        ExecConfig::new(NcclAlgo::Ring, bytes).with_repeats(1),
    )
    .expect("valid exec");
    group.bench_with_input(
        BenchmarkId::new("hierarchical_program", "Ring"),
        &program,
        |b, p| b.iter(|| exec.measure_once(p, 0)),
    );
    group.finish();
}

criterion_group!(benches, bench_exec);
criterion_main!(benches);
