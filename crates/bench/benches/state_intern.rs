//! Criterion bench for the hash-consed synthesis-state machinery.
//!
//! Three comparisons:
//!
//! 1. `build_size6`: the size-6 DAG build, **legacy engine vs. current** —
//!    the `legacy` module below reproduces the pre-flattening engine
//!    verbatim (nested `Vec<Bitset>` state matrices, O(n²) pairwise
//!    pre-condition checks, `Vec<State>`-keyed memoization, no interning,
//!    std `HashMap`), so the ratio is the PR's acceptance number: the
//!    interned build must be ≥3× faster on both presets.
//! 2. `synthesize_size6`: full enumeration through the flat-state
//!    no-interning reference vs. the interned engine — isolates what
//!    interning itself buys on top of the flat representation.
//! 3. `reduction_precondition` / `apply_cache`: the single-pass
//!    pre-condition check and the transposition-cache hit path, plus the
//!    cache hit rates of the size-6 searches.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

use p2_collectives::{apply_collective, ApplyCache, Collective, State, StateInterner};
use p2_placement::{enumerate_matrices, ParallelismMatrix};
use p2_synthesis::{HierarchyKind, Program, SinkControl, Synthesizer};
use p2_topology::presets;

/// The pre-flattening synthesis engine, kept verbatim as the "main" side of
/// the old-vs-new interning comparison: one heap `Bitset` per matrix row, a
/// fresh `rows_mask()` allocation per check, O(n²) pairwise disjointness,
/// and a search DAG memoized on full `Vec<LegacyState>` keys.
mod legacy {
    use std::collections::{HashMap, VecDeque};

    use criterion::black_box;
    use p2_collectives::{Bitset, Collective};
    use p2_synthesis::{Instruction, Synthesizer};

    #[derive(Debug, Clone, PartialEq, Eq, Hash)]
    pub struct LegacyState {
        k: usize,
        rows: Vec<Bitset>,
    }

    impl LegacyState {
        pub fn empty(k: usize) -> Self {
            LegacyState {
                k,
                rows: vec![Bitset::new(k); k],
            }
        }

        /// Converts from the current flat representation.
        pub fn from_state(state: &p2_collectives::State) -> Self {
            let k = state.dim();
            let mut s = LegacyState::empty(k);
            for r in 0..k {
                for c in 0..k {
                    if state.get(r, c) {
                        s.rows[r].set(c, true);
                    }
                }
            }
            s
        }

        fn rows_mask(&self) -> Bitset {
            let mut mask = Bitset::new(self.k);
            for r in 0..self.k {
                if !self.rows[r].is_empty() {
                    mask.set(r, true);
                }
            }
            mask
        }

        fn nonempty_rows(&self) -> Vec<usize> {
            (0..self.k).filter(|&r| !self.rows[r].is_empty()).collect()
        }

        fn num_nonempty_rows(&self) -> usize {
            self.nonempty_rows().len()
        }

        fn union_with(&mut self, other: &LegacyState) {
            for (a, b) in self.rows.iter_mut().zip(&other.rows) {
                a.union_with(b);
            }
        }

        fn le(&self, other: &LegacyState) -> bool {
            self.rows
                .iter()
                .zip(&other.rows)
                .all(|(a, b)| a.is_subset(b))
        }

        fn lt(&self, other: &LegacyState) -> bool {
            self.le(other) && self != other
        }

        fn retain_rows(&self, keep: &[usize]) -> LegacyState {
            let mut out = LegacyState::empty(self.k);
            for &r in keep {
                out.rows[r] = self.rows[r].clone();
            }
            out
        }
    }

    fn check_reduction_preconditions(states: &[LegacyState]) -> Option<LegacyState> {
        let rows_mask = states[0].rows_mask();
        if states.iter().any(|s| s.rows_mask() != rows_mask) {
            return None;
        }
        if rows_mask.is_empty() {
            return None;
        }
        for r in rows_mask.iter_ones() {
            for i in 0..states.len() {
                for j in (i + 1)..states.len() {
                    if !states[i].rows[r].is_disjoint(&states[j].rows[r]) {
                        return None;
                    }
                }
            }
        }
        let mut sum = LegacyState::empty(states[0].k);
        for s in states {
            sum.union_with(s);
        }
        Some(sum)
    }

    fn apply_collective(
        collective: Collective,
        states: &[LegacyState],
    ) -> Option<Vec<LegacyState>> {
        match collective {
            Collective::AllReduce => {
                let sum = check_reduction_preconditions(states)?;
                Some(vec![sum; states.len()])
            }
            Collective::Reduce => {
                let sum = check_reduction_preconditions(states)?;
                let k = sum.k;
                let mut out = vec![LegacyState::empty(k); states.len()];
                out[0] = sum;
                Some(out)
            }
            Collective::ReduceScatter => {
                let sum = check_reduction_preconditions(states)?;
                let rows = sum.nonempty_rows();
                let n = states.len();
                if rows.len() % n != 0 {
                    return None;
                }
                let per = rows.len() / n;
                Some(
                    (0..n)
                        .map(|i| sum.retain_rows(&rows[i * per..(i + 1) * per]))
                        .collect(),
                )
            }
            Collective::AllGather => {
                let count = states[0].num_nonempty_rows();
                if states.iter().any(|s| s.num_nonempty_rows() != count) || count == 0 {
                    return None;
                }
                for i in 0..states.len() {
                    for j in (i + 1)..states.len() {
                        if !states[i].rows_mask().is_disjoint(&states[j].rows_mask()) {
                            return None;
                        }
                    }
                }
                let mut sum = LegacyState::empty(states[0].k);
                for s in states {
                    sum.union_with(s);
                }
                Some(vec![sum; states.len()])
            }
            Collective::Broadcast => {
                let root = &states[0];
                if !states.iter().all(|s| s.le(root)) || !states.iter().any(|s| s.lt(root)) {
                    return None;
                }
                Some(vec![root.clone(); states.len()])
            }
        }
    }

    fn apply_to_groups(
        collective: Collective,
        states: &[LegacyState],
        groups: &[Vec<usize>],
    ) -> Option<Vec<LegacyState>> {
        let mut updates: Vec<(usize, LegacyState)> = Vec::new();
        for group in groups {
            let members: Vec<LegacyState> = group.iter().map(|&d| states[d].clone()).collect();
            let after = apply_collective(collective, &members)?;
            updates.extend(group.iter().copied().zip(after));
        }
        let mut out = states.to_vec();
        for (device, state) in updates {
            out[device] = state;
        }
        Some(out)
    }

    fn intern_state(
        states: &[LegacyState],
        goals: &[LegacyState],
        ids: &mut HashMap<Vec<LegacyState>, usize>,
        is_goal: &mut Vec<bool>,
        edges: &mut Vec<Option<Vec<(usize, usize)>>>,
    ) -> (usize, bool) {
        if let Some(&id) = ids.get(states) {
            return (id, false);
        }
        let id = is_goal.len();
        ids.insert(states.to_vec(), id);
        is_goal.push(states == goals);
        edges.push(None);
        (id, true)
    }

    /// The pre-flattening `build_graph`, including the reverse
    /// breadth-first distance pass. Returns the number of states explored.
    pub fn build_graph(
        synth: &Synthesizer,
        candidates: &[(Instruction, Vec<Vec<usize>>)],
        max_size: usize,
    ) -> usize {
        let initial: Vec<LegacyState> = synth
            .context()
            .initial_states()
            .iter()
            .map(LegacyState::from_state)
            .collect();
        let goals: Vec<LegacyState> = synth
            .context()
            .goal_states()
            .iter()
            .map(LegacyState::from_state)
            .collect();
        let mut ids: HashMap<Vec<LegacyState>, usize> = HashMap::new();
        let mut is_goal: Vec<bool> = Vec::new();
        let mut edges: Vec<Option<Vec<(usize, usize)>>> = Vec::new();
        let mut queue: VecDeque<(usize, usize, Vec<LegacyState>)> = VecDeque::new();
        let mut states_explored = 0usize;

        let (init_id, _) = intern_state(&initial, &goals, &mut ids, &mut is_goal, &mut edges);
        queue.push_back((init_id, 0, initial));
        while let Some((id, depth, states)) = queue.pop_front() {
            if is_goal[id] || depth >= max_size {
                continue;
            }
            states_explored += 1;
            let mut out = Vec::new();
            for (ci, (instr, groups)) in candidates.iter().enumerate() {
                let Some(next) = apply_to_groups(instr.collective, &states, groups) else {
                    continue;
                };
                if !next.iter().zip(&goals).all(|(s, g)| s.le(g)) {
                    continue;
                }
                if next == states {
                    continue;
                }
                let (next_id, new) =
                    intern_state(&next, &goals, &mut ids, &mut is_goal, &mut edges);
                if new {
                    queue.push_back((next_id, depth + 1, next));
                }
                out.push((ci, next_id));
            }
            edges[id] = Some(out);
        }

        let n = is_goal.len();
        let mut rev: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (id, out) in edges.iter().enumerate() {
            if let Some(out) = out {
                for &(_, next) in out {
                    rev[next].push(id);
                }
            }
        }
        let mut min_steps = vec![usize::MAX; n];
        let mut q: VecDeque<usize> = VecDeque::new();
        for (id, &g) in is_goal.iter().enumerate() {
            if g {
                min_steps[id] = 0;
                q.push_back(id);
            }
        }
        while let Some(id) = q.pop_front() {
            for &p in &rev[id] {
                if min_steps[p] == usize::MAX {
                    min_steps[p] = min_steps[id] + 1;
                    q.push_back(p);
                }
            }
        }
        black_box(min_steps);
        states_explored
    }
}

/// The two acceptance presets: the paper's figure-2d running example and the
/// heaviest placement of the rack/node/GPU preset (a 16-wide reduction scope).
fn preset_cases() -> Vec<(&'static str, Synthesizer)> {
    let figure2d = ParallelismMatrix::new(
        vec![vec![1, 1, 2, 2], vec![1, 2, 1, 2]],
        vec![1, 2, 2, 4],
        vec![4, 4],
    )
    .expect("figure 2d matrix is valid");
    let rack = presets::rack_node_gpu_system(2, 2, 4);
    let rack_matrix = enumerate_matrices(&rack.hierarchy().arities(), &[16])
        .expect("rack axes fit the system")
        .into_iter()
        .next()
        .expect("at least one rack placement");
    vec![
        (
            "figure2d",
            Synthesizer::new(figure2d, vec![1], HierarchyKind::ReductionAxes)
                .expect("valid synthesizer"),
        ),
        (
            "rack_node_gpu",
            Synthesizer::new(rack_matrix, vec![0], HierarchyKind::ReductionAxes)
                .expect("valid synthesizer"),
        ),
    ]
}

/// A sink that stops at the first program: `for_each_program` then measures
/// exactly the DAG build (the enumeration aborts immediately after).
fn build_only(synth: &Synthesizer, max_size: usize) -> usize {
    let mut sink = |_: &Program| SinkControl::Stop;
    synth.for_each_program(max_size, &mut sink).states_explored
}

/// The acceptance comparison: size-6 `build_graph` wall-clock, the legacy
/// (pre-flattening, pre-interning) engine vs. the current one.
fn bench_build_graph(c: &mut Criterion) {
    let mut group = c.benchmark_group("build_size6");
    for (label, synth) in preset_cases() {
        let candidates = synth.candidate_instructions();
        group.bench_with_input(BenchmarkId::new("legacy", label), &synth, |b, s| {
            b.iter(|| black_box(legacy::build_graph(s, &candidates, 6)))
        });
        group.bench_with_input(BenchmarkId::new("interned", label), &synth, |b, s| {
            b.iter(|| black_box(build_only(s, 6)))
        });
    }
    group.finish();
}

/// What interning buys on top of the flat state representation: the
/// flat-but-`Vec<State>`-keyed reference enumeration vs. the interned one.
fn bench_interning(c: &mut Criterion) {
    let mut group = c.benchmark_group("synthesize_size6");
    for (label, synth) in preset_cases() {
        for (engine, interned) in [("flat_reference", false), ("interned", true)] {
            group.bench_with_input(BenchmarkId::new(engine, label), &synth, |b, s| {
                b.iter(|| {
                    let result = if interned {
                        s.synthesize(6)
                    } else {
                        s.synthesize_reference(6)
                    };
                    black_box(result.len())
                })
            });
        }
    }
    group.finish();
}

/// The single-pass reduction pre-condition check (union + popcount-sum
/// comparison replacing the former O(n²) pairwise disjointness).
fn bench_precondition(c: &mut Criterion) {
    let mut group = c.benchmark_group("reduction_precondition");
    for k in [4usize, 16, 64] {
        let states: Vec<State> = (0..k).map(|d| State::initial(k, d)).collect();
        group.bench_with_input(BenchmarkId::new("allreduce_initial", k), &states, |b, s| {
            b.iter(|| black_box(apply_collective(Collective::AllReduce, s).unwrap().len()))
        });
        // The rejecting path: reducing an already-reduced group trips the
        // overlapping-contributions check on the first row.
        let reduced = apply_collective(Collective::AllReduce, &states).expect("valid reduction");
        group.bench_with_input(BenchmarkId::new("allreduce_reject", k), &reduced, |b, s| {
            b.iter(|| black_box(apply_collective(Collective::AllReduce, s).is_err()))
        });
    }
    group.finish();
}

/// Transposition-cache behaviour: repeated application over interned ids must
/// be pure table lookups, and the search itself should hit far more often
/// than it misses (the hit rates are printed once per preset).
fn bench_apply_cache(c: &mut Criterion) {
    let mut group = c.benchmark_group("apply_cache");
    let k = 16usize;
    let mut interner = StateInterner::new();
    let mut cache = ApplyCache::new();
    let ids: Vec<u32> = (0..k)
        .map(|d| interner.intern(State::initial(k, d)))
        .collect();
    group.bench_function("hit_path_allreduce_16", |b| {
        b.iter(|| {
            black_box(
                cache
                    .apply(&mut interner, Collective::AllReduce, &ids)
                    .expect("valid reduction")
                    .len(),
            )
        })
    });
    group.finish();

    for (label, synth) in preset_cases() {
        let stats = synth.synthesize(6).stats;
        let total = stats.apply_cache_hits + stats.apply_cache_misses;
        eprintln!(
            "apply-cache hit rate ({label}, size 6): {}/{} = {:.1}% \
             ({} unique device states, {} synthesis states)",
            stats.apply_cache_hits,
            total,
            stats.apply_cache_hits as f64 / total.max(1) as f64 * 100.0,
            stats.unique_device_states,
            stats.states_explored,
        );
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_build_graph, bench_interning, bench_precondition, bench_apply_cache
}
criterion_main!(benches);
