//! Merges the per-bench JSON artifacts (`BENCH_*.json`) into one
//! `BENCH_trajectory.json` with a stable flat schema, so the CI history of
//! every benchmark is a single downloadable record per commit:
//!
//! ```json
//! {
//!   "schema": "p2-bench-trajectory-v1",
//!   "git_sha": "…",
//!   "records": [
//!     { "bin": "synthesis_smoke", "metric": "cases.rack_node_gpu_reduce0.build_ms", "value": 10.9 },
//!     …
//!   ]
//! }
//! ```
//!
//! Every numeric leaf of every input file becomes one record. The `bin` is
//! the input's top-level `"bench"` field when present, else the file stem
//! (so `BENCH_sweep.json` → `BENCH_sweep`); the metric is the dotted path to
//! the leaf, with array elements named by their `"case"`/`"label"`/`"name"`
//! field when they carry one and by index otherwise. Booleans are recorded
//! as 0/1; strings and nulls are skipped (they are identifiers, not
//! measurements). Inputs that are missing are skipped with a note — a bench
//! job that did not run must not fail the merge — but unparsable inputs do
//! fail it.
//!
//! Usage: `cargo run --release -p p2_bench --bin bench_trajectory --`
//! `--out BENCH_trajectory.json [--sha SHA] FILE...`
//!
//! The commit sha comes from `--sha`, else the `GITHUB_SHA` environment
//! variable, else `"unknown"`.

use std::path::Path;

use p2_json::{write_atomically, Json};

struct Record {
    bin: String,
    metric: String,
    value: f64,
}

/// Appends one record per numeric leaf under `value`, extending `path` with
/// dotted segments.
fn flatten(bin: &str, path: &str, value: &Json, out: &mut Vec<Record>) {
    match value {
        Json::Num(n) => out.push(Record {
            bin: bin.to_string(),
            metric: path.to_string(),
            value: *n,
        }),
        Json::Bool(b) => out.push(Record {
            bin: bin.to_string(),
            metric: path.to_string(),
            value: f64::from(u8::from(*b)),
        }),
        Json::Null | Json::Str(_) => {}
        Json::Arr(items) => {
            for (index, item) in items.iter().enumerate() {
                let segment = ["case", "label", "name"]
                    .iter()
                    .find_map(|key| item.get(key).and_then(Json::as_str))
                    .map_or_else(|| index.to_string(), str::to_string);
                flatten(bin, &join(path, &segment), item, out);
            }
        }
        Json::Obj(fields) => {
            for (key, field) in fields {
                flatten(bin, &join(path, key), field, out);
            }
        }
    }
}

fn join(path: &str, segment: &str) -> String {
    if path.is_empty() {
        segment.to_string()
    } else {
        format!("{path}.{segment}")
    }
}

/// JSON string escaping for the metric names we emit (paths and labels are
/// plain identifiers today; the escapes keep the writer honest anyway).
fn escape(text: &str) -> String {
    text.chars()
        .flat_map(|c| match c {
            '"' => "\\\"".chars().collect::<Vec<_>>(),
            '\\' => "\\\\".chars().collect(),
            c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect()
}

fn main() {
    let mut out_path = None;
    let mut sha = None;
    let mut inputs = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--out" => out_path = Some(args.next().expect("--out takes a path")),
            "--sha" => sha = Some(args.next().expect("--sha takes a value")),
            other => inputs.push(other.to_string()),
        }
    }
    let out_path = out_path.expect("--out is required");
    let sha = sha
        .or_else(|| std::env::var("GITHUB_SHA").ok())
        .unwrap_or_else(|| "unknown".to_string());
    assert!(!inputs.is_empty(), "no input files given");

    let mut records = Vec::new();
    let mut merged = 0usize;
    for input in &inputs {
        let path = Path::new(input);
        let Ok(text) = std::fs::read_to_string(path) else {
            println!("skipping {input}: not present (bench did not run)");
            continue;
        };
        let value =
            Json::parse(&text).unwrap_or_else(|err| panic!("{input}: invalid JSON ({err})"));
        let bin = value
            .get("bench")
            .and_then(Json::as_str)
            .map(str::to_string)
            .unwrap_or_else(|| {
                path.file_stem()
                    .map(|stem| stem.to_string_lossy().into_owned())
                    .unwrap_or_else(|| input.clone())
            });
        let before = records.len();
        flatten(&bin, "", &value, &mut records);
        println!("{input}: {} metrics from '{bin}'", records.len() - before);
        merged += 1;
    }
    assert!(merged > 0, "every input file was missing");

    let body = records
        .iter()
        .map(|r| {
            format!(
                "    {{ \"bin\": \"{}\", \"metric\": \"{}\", \"value\": {} }}",
                escape(&r.bin),
                escape(&r.metric),
                // f64 Display round-trips every value we parsed.
                r.value,
            )
        })
        .collect::<Vec<_>>()
        .join(",\n");
    let json = format!(
        concat!(
            "{{\n",
            "  \"schema\": \"p2-bench-trajectory-v1\",\n",
            "  \"git_sha\": \"{}\",\n",
            "  \"records\": [\n{}\n  ]\n",
            "}}\n"
        ),
        escape(&sha),
        body,
    );
    write_atomically(Path::new(&out_path), &json).expect("writing the merged trajectory");
    println!(
        "wrote {out_path}: {} records from {merged} of {} inputs",
        records.len(),
        inputs.len()
    );

    // The merge must itself round-trip as valid JSON with the pinned schema.
    let check = Json::parse(&json).expect("merged trajectory is valid JSON");
    assert_eq!(
        check.get("schema").and_then(Json::as_str),
        Some("p2-bench-trajectory-v1")
    );
}
