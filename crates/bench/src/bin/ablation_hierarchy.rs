//! Reproduces the search-space results of the paper: **RQ2 / Result 2**
//! (synthesis is fast because the search space is tamed) and the
//! **§2.5 / §3.4** synthesis-hierarchy comparison behind Theorem 3.2.
//!
//! Two ablations are reported:
//!
//! 1. program counts and synthesis time under synthesis hierarchies (a)–(d)
//!    on the running example;
//! 2. a program-size-limit sweep showing that raising the limit beyond the
//!    paper's value of 5 makes synthesis slower without finding new programs.
//!
//! Run with `cargo run --release -p p2-bench --bin ablation_hierarchy`
//! `[-- --cost-model alpha-beta|loggp|calibrated]`.

use std::collections::HashSet;
use std::sync::Arc;
use std::time::Instant;

use p2_bench::{cost_model_from_args, fmt_s, table4_specs};
use p2_core::P2Config;
use p2_cost::{CostModel, CostModelKind};
use p2_placement::{enumerate_matrices, ParallelismMatrix};
use p2_synthesis::{HierarchyKind, LoweredProgram, Synthesizer};
use p2_topology::presets;

fn canonical(program: &LoweredProgram) -> String {
    program
        .steps
        .iter()
        .map(|s| {
            let mut gs: Vec<Vec<usize>> = s
                .groups
                .iter()
                .map(|g| {
                    let mut d = g.devices.clone();
                    d.sort_unstable();
                    d
                })
                .collect();
            gs.sort();
            format!("{}{:?}", s.collective, gs)
        })
        .collect::<Vec<_>>()
        .join("|")
}

fn hierarchy_ablation(model_kind: CostModelKind) {
    println!(
        "-- Synthesis hierarchies (a)-(d) on the running example (Figure 2d, reduce axis 1) --\n"
    );
    let matrix = ParallelismMatrix::new(
        vec![vec![1, 1, 2, 2], vec![1, 2, 1, 2]],
        vec![1, 2, 2, 4],
        vec![4, 4],
    )
    .expect("figure 2d matrix");
    // The running example lives on the Figure 2a system (same as
    // examples/hierarchy_ablation.rs); every hierarchy's best program is
    // predicted with the selected model.
    let model: Arc<dyn CostModel> = P2Config::new(presets::figure2a_system(), vec![4, 4], vec![1])
        .make_cost_model(model_kind)
        .expect("cost model builds");
    println!(
        "{:<20} {:>10} {:>10} {:>14} {:>12} {:>14}",
        "hierarchy", "space", "programs", "instr. tried", "time (ms)", "best pred (s)"
    );
    let mut sets: Vec<(HierarchyKind, HashSet<String>)> = Vec::new();
    for kind in HierarchyKind::ALL {
        let synth = Synthesizer::new(matrix.clone(), vec![1], kind).expect("valid synthesizer");
        let start = Instant::now();
        let result = synth.synthesize(4);
        let elapsed = start.elapsed();
        let mut best_predicted = f64::INFINITY;
        let lowered: HashSet<String> = result
            .programs
            .iter()
            .map(|p| {
                let lowered = synth.lower(p).unwrap();
                best_predicted = best_predicted.min(model.program_time(&lowered));
                canonical(&lowered)
            })
            .collect();
        sets.push((kind, lowered));
        println!(
            "({}) {:<16} {:>10} {:>10} {:>14} {:>12.2} {:>14}",
            kind.letter(),
            format!("{kind:?}"),
            synth.context().space_size(),
            result.programs.len(),
            result.stats.instructions_tried,
            elapsed.as_secs_f64() * 1e3,
            fmt_s(best_predicted),
        );
    }
    let d_set = sets
        .iter()
        .find(|(k, _)| *k == HierarchyKind::ReductionAxes)
        .map(|(_, s)| s.clone())
        .unwrap();
    for (kind, set) in &sets {
        if *kind == HierarchyKind::ReductionAxes {
            continue;
        }
        let covered = set.iter().filter(|p| d_set.contains(*p)).count();
        println!(
            "    Theorem 3.2 check: (d) finds {covered}/{} of the lowered programs of ({})",
            set.len(),
            kind.letter()
        );
    }
    println!();
}

fn size_limit_sweep() {
    println!("-- Program-size-limit sweep (Result 2: limit 5 is sufficient) --\n");
    println!(
        "{:<6} {:<16} {:>8} {:>10} {:>12}",
        "id", "axes", "limit", "programs", "time (ms)"
    );
    for spec in table4_specs().into_iter().take(3) {
        let system = spec.system.system(spec.nodes);
        let matrices =
            enumerate_matrices(&system.hierarchy().arities(), &spec.axes).expect("spec axes valid");
        for limit in [3usize, 4, 5, 6] {
            let start = Instant::now();
            let mut total = 0usize;
            for matrix in &matrices {
                let synth = Synthesizer::new(
                    matrix.clone(),
                    spec.reduction.clone(),
                    HierarchyKind::ReductionAxes,
                )
                .expect("valid synthesizer");
                total += synth.synthesize(limit).programs.len();
            }
            let elapsed = start.elapsed();
            println!(
                "{:<6} {:<16} {:>8} {:>10} {:>12.2}",
                spec.id,
                format!("{:?}", spec.axes),
                limit,
                total,
                elapsed.as_secs_f64() * 1e3
            );
        }
    }
    println!();
    println!("(the paper sets the limit to 5: increasing it further mostly adds synthesis time, not programs)");
}

fn main() {
    let model_kind = cost_model_from_args();
    println!("RQ2 / synthesis-hierarchy ablations");
    println!("(predictions by the {model_kind} cost model, select with --cost-model)\n");
    hierarchy_ablation(model_kind);
    size_limit_sweep();
}
