//! Reproduces **Figures 3 and 10** of the paper: the common optimal reduction
//! programs — Reduce-AllReduce-Broadcast (program i) and
//! ReduceScatter-AllReduce-AllGather (program ii) — shown as synthesized
//! instruction sequences and as lowered device groups on the running example,
//! plus the Result 5 comparison of when each one wins.
//!
//! Run with `cargo run --release -p p2-bench --bin figure10`
//! `[-- --cost-model alpha-beta|loggp|calibrated] [--threads N]`.

use p2_bench::{cost_model_from_args, fmt_s, run_specs_batch, table4_specs, threads_from_args};
use p2_core::BatchOptions;
use p2_placement::ParallelismMatrix;
use p2_synthesis::{HierarchyKind, Synthesizer};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let kind = cost_model_from_args();
    let threads = threads_from_args(&args);
    // The Figure 2d placement of the running example, reduction along the
    // parameter-sharding axis.
    let matrix = ParallelismMatrix::new(
        vec![vec![1, 1, 2, 2], vec![1, 2, 1, 2]],
        vec![1, 2, 2, 4],
        vec![4, 4],
    )
    .expect("figure 2d matrix is valid");
    let synthesizer = Synthesizer::new(matrix.clone(), vec![1], HierarchyKind::ReductionAxes)
        .expect("running example synthesizer");
    let result = synthesizer.synthesize(5);

    println!("Figures 3 & 10: common reduction programs on placement {matrix} (reduce axis 1)\n");
    for target in [
        "AllReduce",
        "AllReduce-AllReduce",
        "Reduce-AllReduce-Broadcast",
        "ReduceScatter-AllReduce-AllGather",
    ] {
        let Some(program) = result.programs.iter().find(|p| p.signature() == target) else {
            println!("{target}: not synthesized (unexpected)");
            continue;
        };
        let lowered = synthesizer
            .lower(program)
            .expect("synthesized program lowers");
        println!("{target}");
        println!("  DSL       : {program}");
        for (i, step) in lowered.steps.iter().enumerate() {
            let groups: Vec<String> = step
                .groups
                .iter()
                .map(|g| format!("{:?}", g.devices))
                .collect();
            println!(
                "  step {i}: {:<14} data fraction {:.2}  groups {}",
                step.collective.to_string(),
                step.groups.first().map(|g| g.input_fraction).unwrap_or(0.0),
                groups.join(" ")
            );
        }
        println!();
    }

    // Result 5's comparison of programs (i) and (ii) across the Table 4
    // configurations: which one is optimal more often, and by how much.
    println!("Program (i) Reduce-AllReduce-Broadcast vs (ii) ReduceScatter-AllReduce-AllGather");
    println!("across the Table 4 configurations (measured on the simulated substrate,");
    println!(" predictions by the {kind} cost model):\n");
    println!(
        "{:<4} {:<22} {:>12} {:>12} {:>10}",
        "id", "parallelism matrix", "(i) RAB", "(ii) RS-AR-AG", "winner"
    );
    let mut wins_i = 0usize;
    let mut wins_ii = 0usize;
    let specs = table4_specs();
    let results = run_specs_batch(
        &specs,
        None,
        kind,
        &BatchOptions::with_threads(threads),
        &(),
    )
    .expect("table 4 specs build and run")
    .results;
    for (spec, result) in specs.iter().zip(&results) {
        for placement in &result.placements {
            let find = |sig: &str| {
                placement
                    .programs
                    .iter()
                    .filter(|p| p.signature() == sig)
                    .map(|p| p.measured_seconds)
                    .fold(f64::INFINITY, f64::min)
            };
            let i_time = find("Reduce-AllReduce-Broadcast");
            let ii_time = find("ReduceScatter-AllReduce-AllGather");
            if !i_time.is_finite() || !ii_time.is_finite() {
                continue;
            }
            let winner = if ii_time < i_time {
                wins_ii += 1;
                "(ii)"
            } else {
                wins_i += 1;
                "(i)"
            };
            println!(
                "{:<4} {:<22} {:>12} {:>12} {:>10}",
                spec.id,
                placement.matrix.to_string(),
                fmt_s(i_time),
                fmt_s(ii_time),
                winner
            );
        }
    }
    println!();
    println!(
        "program (ii) wins {wins_ii} times, program (i) wins {wins_i} times — the paper finds (ii) \
         to be optimal more often (§4.2, Result 5)"
    );
}
