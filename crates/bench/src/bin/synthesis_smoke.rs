//! Release-mode synthesis smoke run at `max_program_size = 6` (beyond the
//! paper's limit of 5): synthesizes the figure-2d running example and the
//! heaviest placement of the rack/node/GPU preset, asserts the program
//! counts match pinned constants, and prints the search statistics (states
//! explored, device-state interner size, apply-cache hit rate) so CI catches
//! both correctness and search-space regressions.
//!
//! Run with `cargo run --release -p p2_bench --bin synthesis_smoke`.

use std::time::Instant;

use p2_placement::{enumerate_matrices, ParallelismMatrix};
use p2_synthesis::{HierarchyKind, Synthesizer};
use p2_topology::presets;

const MAX_SIZE: usize = 6;

/// `(label, matrix, reduction axes, pinned program count at size 6)`.
fn cases() -> Vec<(&'static str, ParallelismMatrix, Vec<usize>, usize)> {
    let figure2d = ParallelismMatrix::new(
        vec![vec![1, 1, 2, 2], vec![1, 2, 1, 2]],
        vec![1, 2, 2, 4],
        vec![4, 4],
    )
    .expect("figure 2d matrix is valid");
    let rack = presets::rack_node_gpu_system(2, 2, 4);
    let rack_matrix = enumerate_matrices(&rack.hierarchy().arities(), &[16])
        .expect("rack axes fit the system")
        .into_iter()
        .next()
        .expect("at least one rack placement");
    vec![
        ("figure2d_reduce1", figure2d, vec![1], 93),
        ("rack_node_gpu_reduce0", rack_matrix, vec![0], 4576),
    ]
}

fn main() {
    println!("Synthesis smoke run at max_program_size = {MAX_SIZE}\n");
    for (label, matrix, reduction, expected) in cases() {
        let synth = Synthesizer::new(matrix, reduction, HierarchyKind::ReductionAxes)
            .expect("valid synthesizer");
        let start = Instant::now();
        let result = synth.synthesize(MAX_SIZE);
        let elapsed = start.elapsed();
        let stats = &result.stats;
        let lookups = stats.apply_cache_hits + stats.apply_cache_misses;
        println!(
            "{label}: {} programs in {:.1} ms\n  {} states explored, {} instructions tried, \
             {} unique device states, apply-cache hit rate {:.1}%",
            result.len(),
            elapsed.as_secs_f64() * 1e3,
            stats.states_explored,
            stats.instructions_tried,
            stats.unique_device_states,
            stats.apply_cache_hits as f64 / lookups.max(1) as f64 * 100.0,
        );
        assert_eq!(
            result.len(),
            expected,
            "{label}: program count diverged from the pinned constant"
        );
    }
    println!("\nok: all pinned program counts matched");
}
