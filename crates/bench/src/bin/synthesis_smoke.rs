//! Release-mode synthesis smoke run: synthesizes the figure-2d running
//! example and the heaviest placement of the rack/node/GPU preset, asserts
//! the program counts match pinned constants, and prints the search
//! statistics (states explored, device-state interner size, apply-cache and
//! suffix-memo hit rates) so CI catches both correctness and search-space
//! regressions.
//!
//! Beyond the default full enumeration at `max_program_size = 6` (the paper
//! stops at 5), the suffix-memoized counting fast path makes size 7
//! tractable: `--size 7 --count-only` aggregates program counts straight
//! from the memo without materializing a single path, and CI pins that
//! count too. With the parallel level-synchronous DAG build (`--threads 0`
//! for all cores) size 8 joins the pinned set: the rack case's size-8 graph
//! is built across cores and counted from the memo.
//!
//! Usage: `cargo run --release -p p2_bench --bin synthesis_smoke --`
//! `[--size N] [--count-only] [--threads N] [--profile] [--case LABEL]`
//! `[--json PATH]`
//!
//! `--threads N` runs the DAG build on an `N`-thread pool (`0` = all cores,
//! default `1` = serial); every printed statistic and pinned count is
//! bit-identical for any value. `--profile` prints a per-phase wall-time
//! breakdown (candidate generation / DAG build / emission or counting).
//! `--json PATH` writes one machine-readable record per case (timings, hit
//! rates, peak interner size) for archiving as a CI artifact.

use std::time::Instant;

use p2_placement::{enumerate_matrices, ParallelismMatrix};
use p2_synthesis::{HierarchyKind, SynthesisStats, Synthesizer};
use p2_topology::presets;

struct Case {
    label: &'static str,
    matrix: ParallelismMatrix,
    reduction: Vec<usize>,
}

fn cases() -> Vec<Case> {
    let figure2d = ParallelismMatrix::new(
        vec![vec![1, 1, 2, 2], vec![1, 2, 1, 2]],
        vec![1, 2, 2, 4],
        vec![4, 4],
    )
    .expect("figure 2d matrix is valid");
    let rack = presets::rack_node_gpu_system(2, 2, 4);
    let rack_matrix = enumerate_matrices(&rack.hierarchy().arities(), &[16])
        .expect("rack axes fit the system")
        .into_iter()
        .next()
        .expect("at least one rack placement");
    vec![
        Case {
            label: "figure2d_reduce1",
            matrix: figure2d,
            reduction: vec![1],
        },
        Case {
            label: "rack_node_gpu_reduce0",
            matrix: rack_matrix,
            reduction: vec![0],
        },
    ]
}

/// The figure-2d search space saturates below size 7: no valid program needs
/// more than 6 steps, so the size-7 and size-8 counts equal the size-6 count.
const PIN_FIGURE2D_7: u64 = 93;
const PIN_RACK_7: u64 = 8749;
const PIN_FIGURE2D_8: u64 = 93;
const PIN_RACK_8: u64 = 12014;

/// Pinned program counts per `(case label, max_program_size)`. Full
/// enumeration and count-only must agree, so one table serves both modes;
/// sizes 7 and 8 are only ever exercised count-only in CI (full emission
/// would walk every path).
fn pinned_count(label: &str, size: usize) -> Option<u64> {
    match (label, size) {
        ("figure2d_reduce1", 6) => Some(93),
        ("rack_node_gpu_reduce0", 6) => Some(4576),
        ("figure2d_reduce1", 7) => Some(PIN_FIGURE2D_7),
        ("rack_node_gpu_reduce0", 7) => Some(PIN_RACK_7),
        ("figure2d_reduce1", 8) => Some(PIN_FIGURE2D_8),
        ("rack_node_gpu_reduce0", 8) => Some(PIN_RACK_8),
        _ => None,
    }
}

struct Record {
    label: &'static str,
    programs: u64,
    elapsed_ms: f64,
    stats: SynthesisStats,
}

impl Record {
    fn json(&self, size: usize, count_only: bool, threads: usize) -> String {
        let s = &self.stats;
        let apply_lookups = s.apply_cache_hits + s.apply_cache_misses;
        let memo_lookups = s.suffix_memo_hits + s.suffix_memo_misses;
        format!(
            concat!(
                "    {{\n",
                "      \"case\": \"{}\",\n",
                "      \"max_program_size\": {},\n",
                "      \"count_only\": {},\n",
                "      \"build_threads\": {},\n",
                "      \"programs\": {},\n",
                "      \"total_ms\": {:.3},\n",
                "      \"candidate_ms\": {:.3},\n",
                "      \"build_ms\": {:.3},\n",
                "      \"emit_ms\": {:.3},\n",
                "      \"states_explored\": {},\n",
                "      \"instructions_tried\": {},\n",
                "      \"peak_interner_states\": {},\n",
                "      \"apply_cache_hit_rate\": {:.4},\n",
                "      \"suffix_memo_hit_rate\": {:.4},\n",
                "      \"suffix_memo_hits\": {},\n",
                "      \"suffix_memo_misses\": {}\n",
                "    }}"
            ),
            self.label,
            size,
            count_only,
            threads,
            self.programs,
            self.elapsed_ms,
            s.candidate_duration.as_secs_f64() * 1e3,
            s.build_duration.as_secs_f64() * 1e3,
            s.emit_duration.as_secs_f64() * 1e3,
            s.states_explored,
            s.instructions_tried,
            s.unique_device_states,
            s.apply_cache_hits as f64 / apply_lookups.max(1) as f64,
            s.suffix_memo_hits as f64 / memo_lookups.max(1) as f64,
            s.suffix_memo_hits,
            s.suffix_memo_misses,
        )
    }
}

struct Args {
    size: usize,
    count_only: bool,
    threads: usize,
    profile: bool,
    case_filter: Option<String>,
    json_path: Option<String>,
}

fn parse_args() -> Args {
    let mut parsed = Args {
        size: 6,
        count_only: false,
        threads: 1,
        profile: false,
        case_filter: None,
        json_path: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--size" => {
                let value = args.next().expect("--size takes a value");
                parsed.size = value.parse().expect("--size takes an integer");
            }
            "--count-only" => parsed.count_only = true,
            "--threads" => {
                let value = args.next().expect("--threads takes a value");
                parsed.threads = value.parse().expect("--threads takes an integer");
            }
            "--profile" => parsed.profile = true,
            "--case" => parsed.case_filter = Some(args.next().expect("--case takes a label")),
            "--json" => parsed.json_path = Some(args.next().expect("--json takes a path")),
            other => panic!("unknown argument: {other} (see the doc comment for usage)"),
        }
    }
    parsed
}

fn main() {
    let Args {
        size,
        count_only,
        threads,
        profile,
        case_filter,
        json_path,
    } = parse_args();
    let mode = if count_only {
        "count-only"
    } else {
        "full enumeration"
    };
    let build = if threads == 1 {
        "serial build".to_string()
    } else if threads == 0 {
        "parallel build, all cores".to_string()
    } else {
        format!("parallel build, {threads} threads")
    };
    println!("Synthesis smoke run at max_program_size = {size} ({mode}, {build})\n");

    let mut records = Vec::new();
    for case in cases() {
        if case_filter.as_deref().is_some_and(|f| f != case.label) {
            continue;
        }
        let synth = Synthesizer::new(case.matrix, case.reduction, HierarchyKind::ReductionAxes)
            .expect("valid synthesizer")
            .with_build_threads(threads);
        let start = Instant::now();
        let (programs, stats) = if count_only {
            let count = synth.count_programs(size);
            (count.total, count.stats)
        } else {
            let result = synth.synthesize(size);
            (result.len() as u64, result.stats)
        };
        let elapsed_ms = start.elapsed().as_secs_f64() * 1e3;
        let label = case.label;
        let apply_lookups = stats.apply_cache_hits + stats.apply_cache_misses;
        let memo_lookups = stats.suffix_memo_hits + stats.suffix_memo_misses;
        println!(
            "{label}: {programs} programs in {elapsed_ms:.1} ms \
             (build {:.1} ms, emit {:.1} ms)\n  {} states explored, {} instructions tried, \
             {} unique device states,\n  apply-cache hit rate {:.1}%, \
             suffix-memo hit rate {:.1}% ({} hits / {} misses)",
            stats.build_duration.as_secs_f64() * 1e3,
            stats.emit_duration.as_secs_f64() * 1e3,
            stats.states_explored,
            stats.instructions_tried,
            stats.unique_device_states,
            stats.apply_cache_hits as f64 / apply_lookups.max(1) as f64 * 100.0,
            stats.suffix_memo_hits as f64 / memo_lookups.max(1) as f64 * 100.0,
            stats.suffix_memo_hits,
            stats.suffix_memo_misses,
        );
        if profile {
            let candidate_ms = stats.candidate_duration.as_secs_f64() * 1e3;
            let build_ms = stats.build_duration.as_secs_f64() * 1e3;
            let emit_ms = stats.emit_duration.as_secs_f64() * 1e3;
            let emit_phase = if count_only { "count" } else { "emit" };
            println!(
                "  profile: candidates {candidate_ms:.1} ms ({:.1}%), \
                 DAG build {build_ms:.1} ms ({:.1}%), \
                 {emit_phase} {emit_ms:.1} ms ({:.1}%)",
                candidate_ms / elapsed_ms.max(1e-9) * 100.0,
                build_ms / elapsed_ms.max(1e-9) * 100.0,
                emit_ms / elapsed_ms.max(1e-9) * 100.0,
            );
        }
        match pinned_count(label, size) {
            Some(expected) => assert_eq!(
                programs, expected,
                "{label}: program count diverged from the pinned constant at size {size}"
            ),
            None => println!("  (no pinned count for size {size}; informational run)"),
        }
        records.push(Record {
            label,
            programs,
            elapsed_ms,
            stats,
        });
    }
    assert!(!records.is_empty(), "case filter matched no case");

    if let Some(path) = json_path {
        let body = records
            .iter()
            .map(|r| r.json(size, count_only, threads))
            .collect::<Vec<_>>()
            .join(",\n");
        let json = format!(
            "{{\n  \"bench\": \"synthesis_smoke\",\n  \"max_program_size\": {size},\n  \
             \"count_only\": {count_only},\n  \"cases\": [\n{body}\n  ]\n}}\n"
        );
        std::fs::write(&path, json).expect("writing the JSON report");
        println!("\nwrote {path}");
    }
    println!("\nok: all pinned program counts matched");
}
