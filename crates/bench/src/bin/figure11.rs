//! Reproduces **Figure 11** of the paper: predicted vs. measured time for
//! every synthesized (placement, program) pair, in increasing order of
//! measured time, for the two captioned configurations.
//!
//! Run with `cargo run --release -p p2-bench --bin figure11`
//! `[-- --cost-model alpha-beta|loggp|calibrated] [--threads N]`.

use std::time::Instant;

use p2_bench::{threads_from_args, ExperimentSpec, SystemKind};
use p2_cost::{CostModelKind, NcclAlgo};

fn panel(title: &str, spec: ExperimentSpec, kind: CostModelKind, threads: usize) {
    println!("{title}");
    println!("  ({})", spec.describe());
    let start = Instant::now();
    let result = spec
        .session()
        .cost_model_kind(kind)
        .threads(threads)
        .run()
        .expect("pipeline runs");
    let wall = start.elapsed();
    println!(
        "  synthesis {:.2}s, synthesis+simulation wall-clock {:.2}s, {} programs across {} matrices",
        result.synthesis_time.as_secs_f64(),
        wall.as_secs_f64(),
        result.total_programs(),
        result.placements.len()
    );
    println!(
        "  {:<5} {:<22} {:<42} {:>12} {:>12} {:>9}",
        "#", "parallelism matrix", "program", "measured", "predicted", "error"
    );
    for (i, (matrix, signature, measured, predicted)) in result.series().iter().enumerate() {
        let error = if *measured > 0.0 {
            (predicted - measured) / measured * 100.0
        } else {
            0.0
        };
        println!(
            "  {:<5} {:<22} {:<42} {:>12.3} {:>12.3} {:>8.1}%",
            i + 1,
            matrix,
            signature,
            measured,
            predicted,
            error
        );
    }
    let top10 = result.predicted_best_in_measured_top_k(10);
    let top1 = result.predicted_best_in_measured_top_k(1);
    println!(
        "  simulator's top choice is the measured best: {top1}; within the measured top-10: {top10}"
    );
    println!();
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let kind = p2_bench::cost_model_from_args();
    let threads = threads_from_args(&args);
    println!("Figure 11: simulation vs. measurement, in increasing order of measured time");
    println!("(predictions by the {kind} cost model, select with --cost-model)\n");
    panel(
        "(a) 4 nodes of V100, NCCL Ring, parallelism axes [2 16], reduction on the 1st axis",
        ExperimentSpec::new(
            "11a",
            SystemKind::V100,
            4,
            vec![2, 16],
            vec![1],
            NcclAlgo::Ring,
        ),
        kind,
        threads,
    );
    panel(
        "(b) 4 nodes of A100, NCCL Tree, parallelism axes [4 2 8], reduction on the 0th and 2nd axes",
        ExperimentSpec::new("11b", SystemKind::A100, 4, vec![4, 2, 8], vec![0, 2], NcclAlgo::Tree),
        kind,
        threads,
    );
}
